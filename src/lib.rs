//! # finepack-repro
//!
//! The facade crate of the FinePack (HPCA 2023) reproduction: re-exports
//! every workspace crate so examples, integration tests, and downstream
//! users can depend on one package.
//!
//! - [`sim_engine`] — discrete-event simulation substrate.
//! - [`telemetry`] — structured event tracing, time-series sampling,
//!   and Chrome-trace/CSV export.
//! - [`protocol`] — PCIe/NVLink/CXL wire formats and framing costs.
//! - [`gpu_model`] — trace-driven GPU memory-system model.
//! - [`finepack`] — the paper's contribution and its baselines.
//! - [`workloads`] — the eight-application evaluation suite + substrates.
//! - [`system`] — multi-GPU assembly, paradigms, and experiment drivers.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]

pub use finepack;
pub use gpu_model;
pub use protocol;
pub use sim_engine;
pub use system;
pub use telemetry;
pub use workloads;
