//! Closed-loop flow control, end to end.
//!
//! The credited model's contract has three legs:
//!
//! 1. **Transparent when provisioned**: with a generous credit pool the
//!    closed loop must reproduce the open-loop analytic timing
//!    *bit-for-bit* — same total time, same wire accounting, same
//!    packet counts — for every paradigm. Credits may only change the
//!    numbers when they actually run out.
//! 2. **Backpressure when starved**: a tiny pool must produce real
//!    stalls (`stall_time > 0`), strictly longer execution, and still
//!    deliver byte-identical destination memory images — backpressure
//!    reshapes timing, never data.
//! 3. **Deterministic always**: retry events ride the same seeded
//!    event queue as everything else, so identical seeds reproduce
//!    identical stalls.

use gpu_model::{AddressMap, Gpu, GpuId, KernelRun, MemoryImage};
use sim_engine::SimTime;
use system::{
    CreditConfig, FaultProfile, FlowControlMode, Paradigm, PreparedWorkload, Runner, SystemConfig,
};
use workloads::{Pagerank, RunSpec, Sssp, Workload};

/// A pool that can hold one maximum-size FinePack TLP (4KB = 256 PD
/// units) and almost nothing else: every stream starves on it.
fn starved() -> CreditConfig {
    CreditConfig {
        ph: 2,
        pd: 260,
        return_latency: SimTime::from_ns(500),
        buffer_packets: 2,
    }
}

fn runs_for(app: &dyn Workload, cfg: &SystemConfig, spec: &RunSpec) -> Vec<KernelRun> {
    let map = AddressMap::new(cfg.num_gpus, 16 << 30);
    (0..cfg.num_gpus)
        .map(|g| {
            let gpu = Gpu::new(cfg.gpu, GpuId::new(g), map);
            gpu.execute_kernel(&app.trace(spec, 0, GpuId::new(g)))
        })
        .collect()
}

/// Leg 1: generous credits reproduce open-loop timing exactly, for
/// every paradigm that touches the fabric.
#[test]
fn generous_credits_reproduce_open_loop_exactly() {
    let spec = RunSpec::tiny();
    let base = SystemConfig::paper(2);
    let open = base.open_loop();
    let credited = base.with_flow_control(FlowControlMode::Credited(CreditConfig::generous()));
    let app = Pagerank::default();
    let prep = PreparedWorkload::new(&app, &base, &spec);
    for p in [
        Paradigm::P2pStores,
        Paradigm::FinePack,
        Paradigm::WriteCombining,
        Paradigm::Gps,
        Paradigm::BulkDma,
    ] {
        let a = prep.run(&open, p);
        let b = prep.run(&credited, p);
        assert_eq!(a.total_time, b.total_time, "{p}: total_time");
        assert_eq!(a.drain_tail, b.drain_tail, "{p}: drain_tail");
        assert_eq!(a.traffic, b.traffic, "{p}: wire accounting");
        assert_eq!(a.egress.packets, b.egress.packets, "{p}: packets");
        assert_eq!(a.egress.wire_bytes, b.egress.wire_bytes, "{p}: wire bytes");
        assert_eq!(b.stall_time, SimTime::ZERO, "{p}: generous pool stalled");
        assert_eq!(b.fc_blocked_attempts, 0, "{p}: generous pool blocked");
    }
}

/// Leg 2a: a starved pool produces real stalls and strictly longer
/// runs — backpressure reaches the SM store stream.
#[test]
fn starved_pool_stalls_and_strictly_slows() {
    let spec = RunSpec::tiny();
    let base = SystemConfig::paper(2);
    let open = base.open_loop();
    let credited = base.with_flow_control(FlowControlMode::Credited(starved()));
    let app = Pagerank::default();
    let prep = PreparedWorkload::new(&app, &base, &spec);
    for p in [Paradigm::P2pStores, Paradigm::FinePack] {
        let a = prep.run(&open, p);
        let b = prep.run(&credited, p);
        assert!(
            b.stall_time > SimTime::ZERO,
            "{p}: starved pool produced no stalls"
        );
        assert!(b.fc_blocked_attempts > 0, "{p}: nothing ever blocked");
        assert!(
            b.total_time > a.total_time,
            "{p}: credited {} not slower than open {}",
            b.total_time,
            a.total_time
        );
        // Flow control shapes timing, not traffic: the same bytes
        // eventually cross the wire.
        assert_eq!(a.traffic, b.traffic, "{p}: wire accounting changed");
    }
}

/// Leg 2b: destination memory images are byte-identical across
/// paradigms even while every stream is starved for credits.
#[test]
fn transparency_survives_backpressure() {
    let spec = RunSpec::tiny();
    let cfg = SystemConfig::paper(2).with_flow_control(FlowControlMode::Credited(starved()));
    let app = Pagerank::default();
    let runs = runs_for(&app, &cfg, &spec);
    let image_for = |p: Paradigm| -> Vec<MemoryImage> {
        let mut r = Runner::new(cfg, p, 0.0, true);
        r.try_run_iteration(&runs, &[])
            .expect("starved run survives");
        r.images().unwrap().to_vec()
    };
    let p2p = image_for(Paradigm::P2pStores);
    let fp = image_for(Paradigm::FinePack);
    let wc = image_for(Paradigm::WriteCombining);
    for g in 0..2 {
        assert!(
            p2p[g].same_contents(&fp[g]),
            "finepack image differs on GPU{g}"
        );
        assert!(
            p2p[g].same_contents(&wc[g]),
            "write-combining image differs on GPU{g}"
        );
    }
}

/// Leg 3: retry events are deterministic — identical seeds reproduce
/// identical stalls and times; different seeds stay in regime.
#[test]
fn credited_retries_are_deterministic_across_seeds() {
    let base = SystemConfig::paper(2);
    let credited = base.with_flow_control(FlowControlMode::Credited(starved()));
    let app = Sssp::default();
    for seed in [7u64, 1312] {
        let mut spec = RunSpec::tiny();
        spec.seed = seed;
        let a = PreparedWorkload::new(&app, &base, &spec).run(&credited, Paradigm::FinePack);
        let b = PreparedWorkload::new(&app, &base, &spec).run(&credited, Paradigm::FinePack);
        assert_eq!(a.total_time, b.total_time, "seed {seed}: time");
        assert_eq!(a.stall_time, b.stall_time, "seed {seed}: stall");
        assert_eq!(
            a.fc_blocked_attempts, b.fc_blocked_attempts,
            "seed {seed}: blocked attempts"
        );
        assert!(a.stall_time > SimTime::ZERO, "seed {seed}: no stalls");
    }
}

/// Fault injection composes with flow control: replayed TLPs hold
/// their credits until acked, runs stay deterministic, and images stay
/// transparent.
#[test]
fn faults_compose_with_credits() {
    let spec = RunSpec::tiny();
    let cfg = SystemConfig::paper(2)
        .with_flow_control(FlowControlMode::Credited(starved()))
        .with_faults(FaultProfile::new(1e-6));
    let app = Pagerank::default();
    let runs = runs_for(&app, &cfg, &spec);
    let run_once = || {
        let mut r = Runner::new(cfg, Paradigm::FinePack, 0.0, true);
        r.try_run_iteration(&runs, &[])
            .expect("faulty starved run survives");
        let images = r.images().unwrap().to_vec();
        (r.finish("pagerank", 0.8), images)
    };
    let (ra, ia) = run_once();
    let (rb, ib) = run_once();
    assert_eq!(ra.total_time, rb.total_time);
    assert_eq!(ra.stall_time, rb.stall_time);
    assert_eq!(ra.replayed_bytes, rb.replayed_bytes);
    assert!(ra.stall_time > SimTime::ZERO);
    for g in 0..2 {
        assert!(
            ia[g].same_contents(&ib[g]),
            "faulty runs diverged on GPU{g}"
        );
    }
    // And against the clean open-loop image: still transparent.
    let mut clean = Runner::new(
        SystemConfig::paper(2).open_loop(),
        Paradigm::FinePack,
        0.0,
        true,
    );
    clean.try_run_iteration(&runs, &[]).unwrap();
    let ic = clean.images().unwrap().to_vec();
    for g in 0..2 {
        assert!(
            ia[g].same_contents(&ic[g]),
            "backpressure+faults changed GPU{g}'s image"
        );
    }
}
