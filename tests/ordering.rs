//! Memory-ordering compatibility (§IV-C "Compatibility with Memory
//! Ordering Rules"): FinePack reorders non-overlapping stores freely —
//! legal under the GPU's weak memory model — while PCIe keeps posted
//! writes ordered per stream, preserving same-address ordering. These
//! tests check the observable consequences.

use finepack::{EgressPath, FinePackConfig, FinePackEgress, WirePacket};
use gpu_model::{GpuId, MemoryImage, RemoteStore};
use protocol::FramingModel;
use sim_engine::{DetRng, SimTime};

fn store(dst: u8, line: u64, off: u32, len: u32, v: u8) -> RemoteStore {
    RemoteStore {
        src: GpuId::new(0),
        dst: GpuId::new(dst),
        addr: 0x1_0000_0000 + line * 128 + u64::from(off),
        data: (0..len).map(|i| v.wrapping_add(i as u8)).collect(),
    }
}

fn emit_all(stores: &[RemoteStore]) -> Vec<WirePacket> {
    let mut fp = FinePackEgress::new(
        GpuId::new(0),
        FinePackConfig::paper(4),
        FramingModel::pcie_gen4(),
    );
    let mut packets = Vec::new();
    for s in stores {
        packets.extend(fp.push(s, SimTime::ZERO).expect("valid store"));
    }
    packets.extend(fp.release());
    packets
}

fn apply(packets: &[&WirePacket]) -> Vec<MemoryImage> {
    let mut images: Vec<MemoryImage> = (0..4).map(|_| MemoryImage::new()).collect();
    for p in packets {
        let stores = p.stores.full().expect("paths default to full payloads");
        for s in stores {
            images[p.dst.index()].write(s.addr, &s.data);
        }
    }
    images
}

/// Interleaves per-destination packet streams in an arbitrary (seeded)
/// order while preserving each stream's internal order — the reorderings
/// a switched fabric can legally introduce.
fn legal_shuffle(packets: &[WirePacket], seed: u64) -> Vec<&WirePacket> {
    let mut streams: Vec<Vec<&WirePacket>> = vec![Vec::new(); 4];
    for p in packets {
        streams[p.dst.index()].push(p);
    }
    let mut rng = DetRng::new(seed, "interleave");
    let mut cursors = [0usize; 4];
    let mut out = Vec::with_capacity(packets.len());
    while out.len() < packets.len() {
        let live: Vec<usize> = (0..4).filter(|d| cursors[*d] < streams[*d].len()).collect();
        let pick = live[rng.next_u64_below(live.len() as u64) as usize];
        out.push(streams[pick][cursors[pick]]);
        cursors[pick] += 1;
    }
    out
}

/// Any fabric-legal interleaving of per-destination streams yields
/// identical final memory images on every GPU.
#[test]
fn cross_destination_reordering_is_unobservable() {
    let mut rng = DetRng::new(0x0D_0001, "reorder");
    for _ in 0..48 {
        let n = rng.next_in_range(1, 200);
        let stores: Vec<RemoteStore> = (0..n)
            .map(|_| {
                let d = rng.next_in_range(1, 4) as u8;
                let l = rng.next_u64_below(64);
                let o = (rng.next_u64_below(120) as u32).min(127);
                let len = (rng.next_in_range(1, 9) as u32).min(128 - o);
                let v = rng.next_u64() as u8;
                store(d, l, o, len, v)
            })
            .collect();
        let seed_a = rng.next_u64();
        let seed_b = rng.next_u64();
        let packets = emit_all(&stores);
        let a = apply(&legal_shuffle(&packets, seed_a));
        let b = apply(&legal_shuffle(&packets, seed_b));
        for g in 0..4 {
            assert!(a[g].same_contents(&b[g]), "GPU{g} image differs");
        }
    }
}

/// Same-address load-store ordering: at any point in the stream, a
/// load probe must observe the latest preceding store's value — the
/// flush it triggers carries that value, or the value already left.
#[test]
fn load_probe_observes_latest_value() {
    let mut rng = DetRng::new(0x0D_0002, "probe");
    for _ in 0..48 {
        let n = rng.next_in_range(1, 64) as usize;
        let writes: Vec<(u32, u8)> = (0..n)
            .map(|_| (rng.next_u64_below(16) as u32, rng.next_u64() as u8))
            .collect();
        let probe_after = rng.next_u64_below(64) as usize;
        let mut fp = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        let mut image = MemoryImage::new();
        let apply_pkts = |pkts: Vec<WirePacket>, image: &mut MemoryImage| {
            for p in pkts {
                let stores = p.stores.full().expect("paths default to full payloads");
                for s in stores {
                    image.write(s.addr, &s.data);
                }
            }
        };
        let base = 0x1_0000_0000u64;
        let mut latest = [None::<u8>; 16];
        let probe_at = probe_after.min(writes.len() - 1);
        for (i, (slot, v)) in writes.iter().enumerate() {
            let s = RemoteStore {
                src: GpuId::new(0),
                dst: GpuId::new(1),
                addr: base + u64::from(*slot) * 8,
                data: vec![*v; 8],
            };
            latest[*slot as usize] = Some(*v);
            let pkts = fp.push(&s, SimTime::ZERO).expect("valid");
            apply_pkts(pkts, &mut image);
            if i == probe_at {
                // The consumer loads every slot written so far; FinePack
                // must make them visible first.
                for slot in 0..16u64 {
                    let pkts = fp.load_probe(GpuId::new(1), base + slot * 8, 8, SimTime::ZERO);
                    apply_pkts(pkts, &mut image);
                }
                for (slot, expected) in latest.iter().enumerate() {
                    if let Some(v) = expected {
                        let got = image.read(base + slot as u64 * 8, 1)[0];
                        assert_eq!(got, *v, "slot {} stale at probe", slot);
                    }
                }
            }
        }
    }
}
