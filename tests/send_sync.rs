//! Thread-safety guarantees (Rust API guidelines C-SEND-SYNC): the
//! library's value types and engines must be `Send` (movable to worker
//! threads for parallel parameter sweeps), and the immutable ones `Sync`.

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn engine_types_are_send() {
    assert_send::<sim_engine::EventQueue<u64>>();
    assert_send::<sim_engine::DetRng>();
    assert_send_sync::<sim_engine::SimTime>();
    assert_send_sync::<sim_engine::Bandwidth>();
    assert_send_sync::<sim_engine::Histogram>();
}

#[test]
fn telemetry_types_are_send() {
    assert_send_sync::<telemetry::TraceEvent>();
    assert_send_sync::<telemetry::Sample>();
    assert_send::<telemetry::RingCollector>();
    assert_send_sync::<telemetry::NullCollector>();
    // The handle is cloned into runners and egress paths, which must
    // stay Send for parallel sweeps.
    assert_send::<telemetry::TraceHandle>();
}

#[test]
fn protocol_types_are_send_sync() {
    assert_send_sync::<protocol::FramingModel>();
    assert_send_sync::<protocol::TlpHeader>();
    assert_send_sync::<protocol::NvlinkModel>();
    assert_send_sync::<protocol::CreditAccount>();
    assert_send_sync::<protocol::Dllp>();
    assert_send_sync::<protocol::ProtocolError>();
}

#[test]
fn gpu_model_types_are_send() {
    assert_send_sync::<gpu_model::GpuConfig>();
    assert_send_sync::<gpu_model::AddressMap>();
    assert_send_sync::<gpu_model::Gpu>();
    assert_send::<gpu_model::KernelTrace>();
    assert_send::<gpu_model::KernelRun>();
    assert_send::<gpu_model::MemoryImage>();
}

#[test]
fn finepack_types_are_send() {
    assert_send_sync::<finepack::FinePackConfig>();
    assert_send_sync::<finepack::SubheaderFormat>();
    assert_send::<finepack::RemoteWriteQueue>();
    assert_send::<finepack::FinePackEgress>();
    assert_send::<finepack::FinePackPacket>();
    assert_send::<finepack::Depacketizer>();
    assert_send_sync::<finepack::FinePackError>();
}

#[test]
fn system_types_are_send() {
    assert_send_sync::<system::SystemConfig>();
    assert_send_sync::<system::Topology>();
    assert_send::<system::Runner>();
    assert_send::<system::RunReport>();
    assert_send::<system::PreparedWorkload>();
}

#[test]
fn workloads_are_send_for_parallel_sweeps() {
    assert_send_sync::<workloads::RunSpec>();
    assert_send_sync::<workloads::Jacobi>();
    assert_send_sync::<workloads::Synthetic>();
    assert_send::<workloads::PagerankGraph>();
    // Boxed suite entries can be fanned out across threads.
    fn assert_all_send(suite: Vec<Box<dyn workloads::Workload>>) -> usize {
        std::thread::scope(|s| {
            suite
                .into_iter()
                .map(|app| {
                    s.spawn(move || {
                        app.trace(&workloads::RunSpec::tiny(), 0, gpu_model::GpuId::new(0))
                            .store_count()
                    })
                })
                .map(|h| h.join().expect("worker"))
                .sum()
        })
    }
    assert!(assert_all_send(workloads::suite()) > 0);
}
