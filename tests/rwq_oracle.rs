//! Executable specification of §IV-B, checked against the real remote
//! write queue: a deliberately naive model that tracks, per destination,
//! an open window of byte->value mappings and flushes on exactly the
//! paper's conditions. On any store stream, the real queue and the
//! oracle must agree on (a) the sequence of flush reasons, (b) each
//! flush's byte content, and (c) the final buffered content.

use std::collections::BTreeMap;

use finepack::{AllocationPolicy, FinePackConfig, FlushReason, RemoteWriteQueue};
use gpu_model::{GpuId, RemoteStore};
use sim_engine::DetRng;

/// The naive §IV-B model: one open window per destination.
#[derive(Debug, Default)]
struct Oracle {
    /// dst -> (window base, bytes, payload cost so far, line set)
    open: BTreeMap<u8, OracleWindow>,
}

#[derive(Debug, Default, Clone)]
struct OracleWindow {
    base: u64,
    bytes: BTreeMap<u64, u8>,
    payload_used: u32,
    lines: std::collections::BTreeSet<u64>,
}

#[derive(Debug, PartialEq, Eq)]
struct OracleFlush {
    dst: u8,
    reason: FlushReason,
    bytes: BTreeMap<u64, u8>,
}

impl Oracle {
    fn insert(&mut self, cfg: &FinePackConfig, store: &RemoteStore) -> Option<OracleFlush> {
        let dst = store.dst.index() as u8;
        let sub = cfg.subheader;
        let line = store.addr & !u64::from(cfg.entry_bytes - 1);
        let mut flush = None;
        if let Some(w) = self.open.get(&dst) {
            let in_window = store.addr >= w.base && store.end() <= w.base + sub.addressable_range();
            let line_present = w.lines.contains(&line);
            let fresh_bytes = (store.addr..store.end())
                .filter(|a| !w.bytes.contains_key(a))
                .count() as u32;
            let cost = if line_present {
                fresh_bytes
            } else {
                store.len() + sub.bytes()
            };
            let payload_ok = w.payload_used + cost <= cfg.max_payload;
            let entries_ok = line_present || w.lines.len() < cfg.entries_per_partition as usize;
            if !in_window || !payload_ok || !entries_ok {
                let reason = if !in_window {
                    FlushReason::WindowMiss
                } else if !payload_ok {
                    FlushReason::PayloadFull
                } else {
                    FlushReason::EntriesFull
                };
                let w = self.open.remove(&dst).expect("window open");
                flush = Some(OracleFlush {
                    dst,
                    reason,
                    bytes: w.bytes,
                });
            }
        }
        let w = self.open.entry(dst).or_insert_with(|| OracleWindow {
            base: cfg.subheader.window_base(store.addr),
            ..OracleWindow::default()
        });
        // Payload-cost accounting mirrors the register semantics.
        let line_present = w.lines.contains(&line);
        let fresh_bytes = (store.addr..store.end())
            .filter(|a| !w.bytes.contains_key(a))
            .count() as u32;
        w.payload_used += if line_present {
            fresh_bytes
        } else {
            store.len() + cfg.subheader.bytes()
        };
        w.lines.insert(line);
        for (i, b) in store.data.iter().enumerate() {
            w.bytes.insert(store.addr + i as u64, *b);
        }
        flush
    }

    fn release(&mut self) -> Vec<OracleFlush> {
        std::mem::take(&mut self.open)
            .into_iter()
            .map(|(dst, w)| OracleFlush {
                dst,
                reason: FlushReason::Release,
                bytes: w.bytes,
            })
            .collect()
    }
}

fn batch_bytes(batch: &finepack::FlushedBatch) -> BTreeMap<u64, u8> {
    let mut out = BTreeMap::new();
    for e in &batch.entries {
        for (off, len) in e.runs() {
            for i in off..off + len {
                out.insert(e.line_addr + u64::from(i), e.data[i as usize]);
            }
        }
    }
    out
}

fn random_store(rng: &mut DetRng) -> RemoteStore {
    let dst = rng.next_in_range(1, 4) as u8;
    let line = rng.next_u64_below(512);
    let off = (rng.next_u64_below(128) as u32).min(127);
    let len = (rng.next_in_range(1, 33) as u32).min(128 - off);
    let v = rng.next_u64() as u8;
    RemoteStore {
        src: GpuId::new(0),
        dst: GpuId::new(dst),
        // Two 1GB-window-crossing regions to exercise window misses.
        addr: (u64::from(dst % 2) << 31) + line * 128 + u64::from(off),
        data: vec![v; len as usize],
    }
}

/// Byte conservation at the queue boundary: every masked byte a store
/// delivers is either committed by some flush or elided as an overwrite
/// of a still-buffered byte — nothing is lost or invented. Random
/// streams hit same-address overwrites, window misses, and (under
/// `DynamicShared`) cross-destination evictions.
#[test]
fn masked_bytes_are_conserved_through_the_queue() {
    let mut rng = DetRng::new(0x09_0002, "rwq-conservation");
    for alloc in [
        AllocationPolicy::StaticPartition,
        AllocationPolicy::DynamicShared,
    ] {
        for _ in 0..32 {
            let stores: Vec<RemoteStore> = (0..rng.next_in_range(1, 300))
                .map(|_| random_store(&mut rng))
                .collect();
            let cfg = FinePackConfig::paper(4).with_allocation(alloc);
            let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
            let mut issued = 0u64;
            let mut committed = 0u64;
            for s in &stores {
                issued += u64::from(s.len());
                if let Some(batch) = rwq.insert(s).expect("valid store") {
                    committed += batch_bytes(&batch).len() as u64;
                }
            }
            for batch in rwq.flush_all(FlushReason::Release) {
                committed += batch_bytes(&batch).len() as u64;
            }
            assert_eq!(
                issued,
                committed + rwq.stats().overwritten_bytes,
                "byte conservation broke under {alloc:?}: \
                 {issued} issued != {committed} committed + {} overwritten",
                rwq.stats().overwritten_bytes
            );
        }
    }
}

/// Pins the queue's `available_payload` charges to the oracle's payload
/// accounting: after every insert, each open window's remaining budget
/// must equal `max_payload` minus the §IV-B cost of everything merged
/// into it (fresh bytes on hits, data plus subheader on new lines).
#[test]
fn window_budgets_match_the_oracle_payload_accounting() {
    let mut rng = DetRng::new(0x09_0003, "rwq-budget");
    for _ in 0..32 {
        let stores: Vec<RemoteStore> = (0..rng.next_in_range(1, 300))
            .map(|_| random_store(&mut rng))
            .collect();
        let cfg = FinePackConfig::paper(4);
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        let mut oracle = Oracle::default();
        for s in &stores {
            let _ = rwq.insert(s).expect("valid store");
            let _ = oracle.insert(&cfg, s);
            for (dst, w) in &oracle.open {
                let budgets = rwq.window_budgets(GpuId::new(*dst));
                assert_eq!(budgets.len(), 1, "paper config keeps one window open");
                assert_eq!(budgets[0].0, w.base, "window base diverged");
                assert_eq!(
                    budgets[0].1,
                    cfg.max_payload - w.payload_used,
                    "available payload diverged for dst {dst} at base {:#x}",
                    w.base
                );
            }
        }
    }
}

#[test]
fn queue_matches_the_executable_spec() {
    let mut rng = DetRng::new(0x09_0001, "rwq-oracle");
    for _ in 0..64 {
        let stores: Vec<RemoteStore> = (0..rng.next_in_range(1, 300))
            .map(|_| random_store(&mut rng))
            .collect();
        let cfg = FinePackConfig::paper(4);
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        let mut oracle = Oracle::default();
        for s in &stores {
            let real = rwq.insert(s).expect("valid store");
            let spec = oracle.insert(&cfg, s);
            match (real, spec) {
                (None, None) => {}
                (Some(batch), Some(expected)) => {
                    assert_eq!(batch.dst.index() as u8, expected.dst);
                    assert_eq!(batch.reason, expected.reason);
                    assert_eq!(batch_bytes(&batch), expected.bytes);
                }
                (real, spec) => {
                    panic!("divergence: real={real:?} spec={spec:?}");
                }
            }
        }
        // Final release must agree byte-for-byte per destination.
        let mut real: Vec<(u8, BTreeMap<u64, u8>)> = rwq
            .flush_all(FlushReason::Release)
            .iter()
            .map(|b| (b.dst.index() as u8, batch_bytes(b)))
            .collect();
        let mut spec: Vec<(u8, BTreeMap<u64, u8>)> = oracle
            .release()
            .into_iter()
            .map(|f| (f.dst, f.bytes))
            .collect();
        real.sort_by_key(|(d, _)| *d);
        spec.sort_by_key(|(d, _)| *d);
        assert_eq!(real, spec);
    }
}
