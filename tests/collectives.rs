//! The collectives workload family end-to-end: per-collective
//! determinism across every parallelism knob, conservation-audit
//! cleanliness (including degenerate bulk-dominated points), and the
//! fine-vs-bulk message-size crossover the family exists to show.

use system::{audit_run, Paradigm, PreparedWorkload, SystemConfig};
use workloads::{collective, collectives_suite, CollectiveTuning, MsgDist, RunSpec};

/// Small spec the audits and determinism runs share: real traffic, tiny
/// wall-clock.
fn small_spec(num_gpus: u8) -> RunSpec {
    let mut spec = RunSpec::paper(num_gpus);
    spec.iterations = 1;
    spec.scale_down = 256;
    spec
}

/// Determinism matrix: for every collective, seeds x flow-control
/// regimes x `--intra-jobs` values must produce byte-identical reports.
/// The single-run CLI path exercises trace synthesis, the event core,
/// and table rendering in one shot.
#[test]
fn collective_reports_are_byte_identical_across_parallelism() {
    for (name, _) in workloads::COLLECTIVE_REGISTRY {
        for (seed, fc) in [("7", "credited"), ("99", "open")] {
            let argv = |intra: &str| -> Vec<String> {
                vec![
                    "run",
                    "--app",
                    name,
                    "--gpus",
                    "4",
                    "--scale-down",
                    "256",
                    "--iterations",
                    "1",
                    "--seed",
                    seed,
                    "--flow-control",
                    fc,
                    "--intra-jobs",
                    intra,
                ]
                .into_iter()
                .map(String::from)
                .collect()
            };
            let base = cli::run(argv("1")).expect("serial run");
            for intra in ["2", "4"] {
                let sharded = cli::run(argv(intra)).expect("sharded run");
                assert_eq!(
                    base, sharded,
                    "{name} seed {seed} {fc} diverges at --intra-jobs {intra}"
                );
            }
        }
    }
}

/// The full `collectives` sweep must be byte-identical across `--jobs`
/// and `--intra-jobs` (its report text carries no wall-clock numbers by
/// design, so identity is exact).
#[test]
fn collectives_sweep_is_byte_identical_across_pool_shapes() {
    let argv = |jobs: &str, intra: &str| -> Vec<String> {
        vec![
            "collectives",
            "--gpus",
            "4",
            "--max-gpus",
            "4",
            "--scale-down",
            "256",
            "--iterations",
            "1",
            "--jobs",
            jobs,
            "--intra-jobs",
            intra,
        ]
        .into_iter()
        .map(String::from)
        .collect()
    };
    let base = cli::run(argv("1", "1")).expect("serial sweep");
    assert!(base.contains("message-size crossover"), "{base}");
    assert!(base.contains("weak scaling"), "{base}");
    for (jobs, intra) in [("2", "1"), ("4", "1"), ("1", "2"), ("1", "4")] {
        let other = cli::run(argv(jobs, intra)).expect("pooled sweep");
        assert_eq!(base, other, "sweep diverges at jobs={jobs} intra={intra}");
    }
}

/// The weak-scaling section reaches 16 GPUs and reports every collective
/// at every point.
#[test]
fn collectives_sweep_scales_to_sixteen_gpus() {
    let out = cli::run([
        "collectives",
        "--collective",
        "ring-allreduce",
        "--gpus",
        "2",
        "--max-gpus",
        "16",
        "--scale-down",
        "256",
        "--iterations",
        "1",
    ])
    .expect("16-GPU sweep");
    for gpus in ["2", "4", "8", "16"] {
        assert!(
            out.contains(&format!("ring-allreduce  {gpus}")),
            "missing {gpus}-GPU weak-scaling row in:\n{out}"
        );
    }
}

/// Every collective must replay audit-clean under the conservation
/// auditor for every transport paradigm, in both the fine-dominated
/// default tuning and a bulk-dominated degenerate one (single huge
/// aligned messages, where packing has nothing to do).
#[test]
fn every_collective_audits_clean_in_both_regimes() {
    let spec = small_spec(2);
    let cfg = SystemConfig::paper(2);
    let tunings = [
        CollectiveTuning::default(),
        CollectiveTuning {
            msg: MsgDist::Fixed(65536),
            ..CollectiveTuning::default()
        },
    ];
    for tuning in &tunings {
        for app in collectives_suite(tuning) {
            let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
            for p in [Paradigm::FinePack, Paradigm::P2pStores, Paradigm::BulkDma] {
                let outcome = audit_run(&prep, &cfg, p).expect("audit completes");
                assert!(
                    outcome.is_clean(),
                    "{} {p} dirty under {}: {outcome:?}",
                    app.name(),
                    tuning.msg
                );
            }
        }
    }
}

/// The family's reason to exist: FinePack wins decisively when messages
/// are fine (DMA pays per-message descriptor padding), and bulk DMA
/// edges ahead once messages are large and granule-aligned (FinePack
/// pays per-packet headers with nothing left to pack). Simulation is
/// deterministic, so even a slim bulk-side margin is a stable gate.
#[test]
fn message_size_crossover_holds() {
    let mut spec = RunSpec::paper(8);
    spec.iterations = 1;
    spec.scale_down = 4;
    let cfg = SystemConfig::paper(8);
    let mk = |msg| {
        collective(
            "ring-allreduce",
            &CollectiveTuning {
                msg,
                ..CollectiveTuning::default()
            },
        )
        .expect("registered")
    };

    let fine = PreparedWorkload::new(mk(MsgDist::Fixed(32)).as_ref(), &cfg, &spec);
    let fine_fp = fine.run(&cfg, Paradigm::FinePack).total_time;
    let fine_dma = fine.run(&cfg, Paradigm::BulkDma).total_time;
    assert!(
        fine_fp.as_secs_f64() * 5.0 < fine_dma.as_secs_f64(),
        "finepack must win >5x at 32B messages: fp {fine_fp} dma {fine_dma}"
    );

    let bulk = PreparedWorkload::new(mk(MsgDist::Fixed(65536)).as_ref(), &cfg, &spec);
    let bulk_fp = bulk.run(&cfg, Paradigm::FinePack).total_time;
    let bulk_dma = bulk.run(&cfg, Paradigm::BulkDma).total_time;
    assert!(
        bulk_dma < bulk_fp,
        "bulk DMA must win at 64KB messages: dma {bulk_dma} fp {bulk_fp}"
    );
}
