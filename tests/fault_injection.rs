//! End-to-end fault injection: FinePack's transparency must survive a
//! faulty data link layer. Bit errors force whole aggregated TLPs to
//! replay — costing wire bytes and time, never correctness — and a
//! permanently stuck link terminates with a diagnostic instead of
//! hanging the simulation.

use gpu_model::{AddressMap, Gpu, GpuId, KernelRun, MemoryImage};
use sim_engine::SimTime;
use system::{FaultProfile, Paradigm, RunError, Runner, SystemConfig};
use workloads::{Pagerank, RunSpec, Workload};

fn runs_for(app: &dyn Workload, cfg: &SystemConfig, spec: &RunSpec) -> Vec<KernelRun> {
    let map = AddressMap::new(cfg.num_gpus, 16 << 30);
    (0..cfg.num_gpus)
        .map(|g| {
            let gpu = Gpu::new(cfg.gpu, GpuId::new(g), map);
            gpu.execute_kernel(&app.trace(spec, 0, GpuId::new(g)))
        })
        .collect()
}

fn images_under(cfg: SystemConfig, runs: &[KernelRun]) -> Vec<MemoryImage> {
    let mut runner = Runner::new(cfg, Paradigm::FinePack, 0.0, true);
    runner
        .try_run_iteration(runs, &[])
        .expect("run must survive");
    runner.images().unwrap().to_vec()
}

/// A noisy link replays TLPs but the destination memory image is
/// byte-identical to the fault-free run: replays are transparent.
#[test]
fn transparency_survives_bit_errors() {
    let spec = RunSpec::tiny();
    let clean_cfg = SystemConfig::paper(2);
    let noisy_cfg = clean_cfg.with_faults(FaultProfile::new(1e-6));
    let app = Pagerank::default();
    let runs = runs_for(&app, &clean_cfg, &spec);

    let clean = images_under(clean_cfg, &runs);
    let noisy = images_under(noisy_cfg, &runs);
    for g in 0..2 {
        assert!(
            clean[g].same_contents(&noisy[g]),
            "fault injection changed GPU{g}'s memory image"
        );
    }
}

/// Replayed bytes appear as wire traffic (protocol overhead) without
/// inflating goodput, and the run takes longer than fault-free.
#[test]
fn replays_cost_wire_bytes_and_time_but_not_goodput() {
    let spec = RunSpec::tiny();
    let clean_cfg = SystemConfig::paper(2);
    let noisy_cfg = clean_cfg.with_faults(FaultProfile::new(1e-5));
    let app = Pagerank::default();
    let runs = runs_for(&app, &clean_cfg, &spec);

    let report_under = |cfg: SystemConfig| {
        let mut runner = Runner::new(cfg, Paradigm::FinePack, 0.0, false);
        runner.try_run_iteration(&runs, &[]).expect("survives");
        runner.finish("pagerank", 0.8)
    };
    let clean = report_under(clean_cfg);
    let noisy = report_under(noisy_cfg);

    assert_eq!(clean.replayed_bytes, 0);
    assert!(noisy.replayed_bytes > 0, "1e-6 BER produced no replays");
    // Replays are protocol overhead, not goodput.
    assert_eq!(noisy.traffic.useful, clean.traffic.useful);
    assert_eq!(
        noisy.traffic.protocol,
        clean.traffic.protocol + noisy.replayed_bytes
    );
    assert!(noisy.total_time > clean.total_time, "replays added no time");
    // Every replayed byte is attributed to some flush reason.
    assert_eq!(
        noisy.replay_amplification.total_replayed(),
        noisy.replayed_bytes
    );
    assert!(noisy.replay_amplification.packets_replayed() > 0);
}

/// A zero-BER fault profile is the identity: the data link layer runs
/// on every transfer but timing and traffic match the no-profile run.
#[test]
fn zero_ber_profile_changes_nothing() {
    let spec = RunSpec::tiny();
    let clean_cfg = SystemConfig::paper(2);
    let armed_cfg = clean_cfg.with_faults(FaultProfile::new(0.0));
    let app = Pagerank::default();
    let runs = runs_for(&app, &clean_cfg, &spec);

    let report_under = |cfg: SystemConfig| {
        let mut runner = Runner::new(cfg, Paradigm::FinePack, 0.0, false);
        runner.try_run_iteration(&runs, &[]).expect("survives");
        runner.finish("pagerank", 0.8)
    };
    let clean = report_under(clean_cfg);
    let armed = report_under(armed_cfg);
    assert_eq!(clean.total_time, armed.total_time);
    assert_eq!(clean.traffic, armed.traffic);
    assert_eq!(armed.replayed_bytes, 0);
}

/// Identical seeds draw identical faults; a different seed draws a
/// different replay pattern.
#[test]
fn fault_injection_is_deterministic_per_seed() {
    let spec = RunSpec::tiny();
    let base = SystemConfig::paper(2);
    let app = Pagerank::default();
    let runs = runs_for(&app, &base, &spec);

    let report_with_seed = |seed: u64| {
        let mut cfg = base.with_faults(FaultProfile::new(1e-6));
        cfg.seed = seed;
        let mut runner = Runner::new(cfg, Paradigm::FinePack, 0.0, false);
        runner.try_run_iteration(&runs, &[]).expect("survives");
        runner.finish("pagerank", 0.8)
    };
    let a = report_with_seed(1);
    let b = report_with_seed(1);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.replayed_bytes, b.replayed_bytes);
    assert_eq!(a.link_retrains, b.link_retrains);
    let c = report_with_seed(2);
    assert_ne!(
        (a.total_time, a.replayed_bytes),
        (c.total_time, c.replayed_bytes),
        "different seeds drew identical fault patterns"
    );
}

/// A permanently stuck link terminates with a LinkDown diagnostic that
/// names the dead link, instead of hanging or silently completing.
#[test]
fn stuck_link_fails_with_diagnostic() {
    let spec = RunSpec::tiny();
    let cfg =
        SystemConfig::paper(2).with_faults(FaultProfile::new(0.0).stuck_link(0, SimTime::ZERO));
    let app = Pagerank::default();
    let runs = runs_for(&app, &cfg, &spec);

    let mut runner = Runner::new(cfg, Paradigm::FinePack, 0.0, false);
    let err = runner
        .try_run_iteration(&runs, &[])
        .expect_err("stuck link must kill the run");
    match &err {
        RunError::LinkDown(fault) => {
            assert_eq!(fault.link, "egress0");
            assert!(fault.stats.retrains > 0, "link died without retrying");
        }
        other => panic!("expected LinkDown, got {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("no forward progress"), "{msg}");
    assert!(msg.contains("egress0"), "{msg}");
}

/// A transient outage inside the run delays delivery (the REPLAY_TIMER
/// recovers the lost TLPs) but the run completes correctly.
#[test]
fn transient_outage_recovers() {
    let spec = RunSpec::tiny();
    let clean_cfg = SystemConfig::paper(2);
    let outage_cfg = clean_cfg.with_faults(FaultProfile::new(0.0).with_outage(
        0,
        SimTime::ZERO,
        SimTime::from_us(30),
    ));
    let app = Pagerank::default();
    let runs = runs_for(&app, &clean_cfg, &spec);

    let clean = images_under(clean_cfg, &runs);
    let outage = images_under(outage_cfg, &runs);
    for g in 0..2 {
        assert!(
            clean[g].same_contents(&outage[g]),
            "outage recovery changed GPU{g}'s memory image"
        );
    }
}
