//! The telemetry observer contract: tracing observes, never perturbs.
//! A run's report must be byte-identical whether no collector, a
//! [`telemetry::NullCollector`], or a [`telemetry::RingCollector`] is
//! attached — and the trace's flush events must agree exactly with the
//! run's aggregate flush counters.

use std::sync::{Arc, Mutex};

use sim_engine::SimTime;
use system::{Paradigm, PreparedWorkload, SystemConfig};
use telemetry::{AuditCollector, EventKind, NullCollector, TraceHandle};
use workloads::{suite, RunSpec};

#[test]
fn tracing_never_perturbs_results() {
    let cfg = SystemConfig::paper(2);
    let spec = RunSpec::tiny();
    let every = Some(SimTime::from_ns(100));
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        for p in [Paradigm::BulkDma, Paradigm::P2pStores, Paradigm::FinePack] {
            let plain = prep.try_run(&cfg, p).expect("plain run");
            let null = prep
                .try_run_traced(
                    &cfg,
                    p,
                    TraceHandle::new(Arc::new(Mutex::new(NullCollector))),
                    every,
                )
                .expect("null-collector run");
            let (handle, ring) = TraceHandle::ring(1 << 20, 1 << 20);
            let ringed = prep
                .try_run_traced(&cfg, p, handle, every)
                .expect("ring run");
            let rendered = format!("{plain:?}");
            assert_eq!(
                rendered,
                format!("{null:?}"),
                "{} {p}: NullCollector changed the report",
                app.name()
            );
            assert_eq!(
                rendered,
                format!("{ringed:?}"),
                "{} {p}: RingCollector changed the report",
                app.name()
            );
            // The ring run actually recorded something for paradigms
            // with wire traffic — the null run was not a no-op trace.
            if p != Paradigm::InfiniteBw {
                assert!(
                    ring.lock().unwrap().event_count() > 0,
                    "{} {p}: traced run recorded nothing",
                    app.name()
                );
            }
        }
    }
}

/// The conservation auditor is an observer like any other collector: a
/// run with an [`AuditCollector`] attached (the whole `audit_run`
/// pipeline) must report byte-identically to an untraced run.
#[test]
fn auditing_never_perturbs_results() {
    let cfg = SystemConfig::paper(2);
    let spec = RunSpec::tiny();
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        for p in [Paradigm::BulkDma, Paradigm::P2pStores, Paradigm::FinePack] {
            let plain = prep.try_run(&cfg, p).expect("plain run");
            let handle = TraceHandle::new(Arc::new(Mutex::new(AuditCollector::new(
                system::audit_config_for(&cfg, p),
            ))));
            let audited = prep
                .try_run_traced(&cfg, p, handle, Some(SimTime::from_ns(100)))
                .expect("audited run");
            assert_eq!(
                format!("{plain:?}"),
                format!("{audited:?}"),
                "{} {p}: AuditCollector changed the report",
                app.name()
            );
            let outcome = system::audit_run(&prep, &cfg, p).expect("full audit");
            assert_eq!(
                format!("{plain:?}"),
                format!("{:?}", outcome.report),
                "{} {p}: audit_run changed the report",
                app.name()
            );
            outcome.assert_clean();
        }
    }
}

#[test]
fn flush_event_counts_match_aggregates() {
    let cfg = SystemConfig::paper(2);
    let spec = RunSpec::tiny();
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        let (handle, ring) = TraceHandle::ring(1 << 22, 16);
        let report = prep
            .try_run_traced(&cfg, Paradigm::FinePack, handle, None)
            .expect("traced run");
        let collector = ring.lock().unwrap();
        assert_eq!(
            collector.dropped_events(),
            0,
            "{}: ring too small for an exact count comparison",
            app.name()
        );
        for reason in finepack::FlushReason::ALL {
            let in_trace = collector
                .events()
                .filter(|e| matches!(e.kind, EventKind::Flush { reason: r } if r == reason.label()))
                .count() as u64;
            assert_eq!(
                in_trace,
                report.egress.flushes_for(reason),
                "{}: flush `{}` trace/aggregate mismatch",
                app.name(),
                reason.label()
            );
        }
        // Wire transmits match emitted packets one-to-one.
        let transmits = collector
            .events()
            .filter(|e| matches!(e.kind, EventKind::WireTransmit { .. }))
            .count() as u64;
        assert_eq!(transmits, report.egress.packets, "{}", app.name());
    }
}

/// Intra-run sharding must be invisible to every observer: across
/// `--intra-jobs` 1/2/4 the RunReport, the full ring-collected event
/// and sample streams, and the conservation-audit outcome are
/// byte-identical — for open and credited flow control alike.
#[test]
fn sharding_never_perturbs_reports_or_telemetry() {
    let mut spec = RunSpec::tiny();
    spec.num_gpus = 4;
    let every = Some(SimTime::from_ns(100));
    for open in [false, true] {
        let mut base = SystemConfig::paper(4);
        if open {
            base = base.open_loop();
        }
        for app in suite() {
            for p in [Paradigm::FinePack, Paradigm::P2pStores, Paradigm::Gps] {
                let mut rendered: Vec<(String, String, String)> = Vec::new();
                for intra in [1usize, 2, 4] {
                    let cfg = base.with_intra_jobs(intra);
                    let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
                    let (handle, ring) = TraceHandle::ring(1 << 22, 1 << 20);
                    let report = prep
                        .try_run_traced(&cfg, p, handle, every)
                        .expect("traced run");
                    let collector = ring.lock().unwrap();
                    assert_eq!(collector.dropped_events(), 0, "ring too small");
                    let events: Vec<String> =
                        collector.events().map(|e| format!("{e:?}")).collect();
                    let samples: Vec<String> =
                        collector.samples().map(|s| format!("{s:?}")).collect();
                    rendered.push((format!("{report:?}"), events.join("\n"), samples.join("\n")));
                }
                let (report1, events1, samples1) = &rendered[0];
                for (i, (report_n, events_n, samples_n)) in rendered.iter().enumerate().skip(1) {
                    let intra = [1, 2, 4][i];
                    assert_eq!(
                        report1,
                        report_n,
                        "{} {p} open={open}: report diverged at intra-jobs {intra}",
                        app.name()
                    );
                    assert_eq!(
                        events1,
                        events_n,
                        "{} {p} open={open}: event stream diverged at intra-jobs {intra}",
                        app.name()
                    );
                    assert_eq!(
                        samples1,
                        samples_n,
                        "{} {p} open={open}: sample stream diverged at intra-jobs {intra}",
                        app.name()
                    );
                }
            }
        }
    }
}

/// The conservation auditor reaches the same (clean) verdict over a
/// sharded run's telemetry as over the serial run's.
#[test]
fn sharded_audit_outcomes_match_serial() {
    let mut spec = RunSpec::tiny();
    spec.num_gpus = 4;
    let app = workloads::Jacobi::default();
    for p in [Paradigm::FinePack, Paradigm::P2pStores] {
        let serial_cfg = SystemConfig::paper(4);
        let serial_prep = PreparedWorkload::new(&app, &serial_cfg, &spec);
        let serial = system::audit_run(&serial_prep, &serial_cfg, p).expect("serial audit");
        serial.assert_clean();
        for intra in [2usize, 4] {
            let cfg = SystemConfig::paper(4).with_intra_jobs(intra);
            let prep = PreparedWorkload::new(&app, &cfg, &spec);
            let sharded = system::audit_run(&prep, &cfg, p).expect("sharded audit");
            sharded.assert_clean();
            assert_eq!(
                format!("{:?}", serial.report),
                format!("{:?}", sharded.report),
                "{p}: audited report diverged at intra-jobs {intra}"
            );
        }
    }
}

#[test]
fn iteration_rebase_yields_monotone_global_times() {
    let cfg = SystemConfig::paper(2);
    let mut spec = RunSpec::tiny();
    spec.iterations = 3;
    let app = workloads::Jacobi::default();
    let prep = PreparedWorkload::new(&app, &cfg, &spec);
    let (handle, ring) = TraceHandle::ring(1 << 22, 1 << 20);
    let report = prep
        .try_run_traced(&cfg, Paradigm::FinePack, handle, Some(SimTime::from_ns(50)))
        .expect("traced run");
    let collector = ring.lock().unwrap();
    // Events from later iterations must sit later on the run-global
    // timeline: every event lands within the run's total simulated time,
    // and kernel-end instants (one per GPU per iteration) are spread
    // beyond any single iteration's span.
    let max_t = collector.events().map(|e| e.time).max().expect("events");
    assert!(
        max_t <= report.total_time,
        "event at {max_t} beyond total {}",
        report.total_time
    );
    let kernel_ends: Vec<SimTime> = collector
        .events()
        .filter(|e| e.kind == EventKind::KernelEnd)
        .map(|e| e.time)
        .collect();
    assert_eq!(
        kernel_ends.len(),
        3 * 2,
        "one kernel-end per GPU per iteration"
    );
    let span = kernel_ends
        .iter()
        .max()
        .unwrap()
        .saturating_sub(*kernel_ends.iter().min().unwrap());
    assert!(
        span.as_ps() > 0,
        "kernel-end events collapsed onto one iteration"
    );
    // Samples are rebased too.
    let max_s = collector.samples().map(|s| s.time).max().expect("samples");
    assert!(max_s <= report.total_time);
}
