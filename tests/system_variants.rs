//! System-level integration of the extension variants: topologies,
//! allocation policies, timeout flushes, and framings all compose with
//! the full workload/runner stack.

use finepack::{AllocationPolicy, FinePackConfig};
use protocol::FramingModel;
use sim_engine::SimTime;
use system::{Paradigm, PreparedWorkload, SystemConfig, Topology};
use workloads::{suite, Pagerank, RunSpec, ScalingMode};

fn tiny4() -> (SystemConfig, RunSpec) {
    let mut spec = RunSpec::tiny();
    spec.num_gpus = 4;
    (SystemConfig::paper(4), spec)
}

#[test]
fn two_level_topology_never_beats_flat_switch() {
    let (base, spec) = tiny4();
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &base, &spec);
        let flat = prep.run(&base, Paradigm::FinePack).total_time;
        let tree_cfg = base.with_topology(Topology::TwoLevel { gpus_per_leaf: 2 });
        let tree = prep.run(&tree_cfg, Paradigm::FinePack).total_time;
        assert!(tree >= flat, "{}: tree {tree} < flat {flat}", app.name());
    }
}

#[test]
fn dynamic_allocation_is_transparent_and_competitive() {
    let (base, spec) = tiny4();
    let dyn_cfg = base
        .with_finepack(FinePackConfig::paper(4).with_allocation(AllocationPolicy::DynamicShared));
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &base, &spec);
        let stat = prep.run(&base, Paradigm::FinePack);
        let dynr = prep.run(&dyn_cfg, Paradigm::FinePack);
        // Same unique footprint, same-or-less wire (never worse than 5%).
        assert_eq!(stat.unique_bytes, dynr.unique_bytes, "{}", app.name());
        assert!(
            (dynr.traffic.total() as f64) < 1.05 * stat.traffic.total() as f64,
            "{}: dynamic wire ballooned",
            app.name()
        );
    }
}

#[test]
fn timeout_config_composes_with_runner() {
    let (base, spec) = tiny4();
    let cfg = base.with_finepack_timeout(SimTime::from_us(2));
    let app = Pagerank::default();
    let prep = PreparedWorkload::new(&app, &cfg, &spec);
    let with_timeout = prep.run(&cfg, Paradigm::FinePack);
    let without = prep.run(&base, Paradigm::FinePack);
    // Timeouts may fragment packets but never lose data.
    assert_eq!(with_timeout.unique_bytes, without.unique_bytes);
    assert!(with_timeout.egress.packets >= without.egress.packets);
    assert_eq!(with_timeout.egress.stores_in, without.egress.stores_in);
}

#[test]
fn alternate_framings_compose_with_runner() {
    let (base, spec) = tiny4();
    let app = Pagerank::default();
    for framing in [FramingModel::cxl(), FramingModel::nvlink_flit()] {
        let cfg = SystemConfig { framing, ..base };
        let prep = PreparedWorkload::new(&app, &cfg, &spec);
        let fp = prep.run(&cfg, Paradigm::FinePack);
        let p2p = prep.run(&cfg, Paradigm::P2pStores);
        assert!(fp.traffic.total() < p2p.traffic.total());
        assert!(fp.total_time <= p2p.total_time);
    }
}

#[test]
fn weak_scaling_mode_composes_and_outscales_strong() {
    let (base, mut spec) = tiny4();
    let app = Pagerank::default();
    spec.scaling = ScalingMode::Strong;
    let strong = PreparedWorkload::new(&app, &base, &spec);
    let strong_t = strong.run(&base, Paradigm::P2pStores).total_time;
    spec.scaling = ScalingMode::Weak;
    let weak = PreparedWorkload::new(&app, &base, &spec);
    let weak_t = weak.run(&base, Paradigm::P2pStores).total_time;
    // The weak-scaled problem is 4x larger per iteration, so its wall
    // time is longer; but per unit of work it is far more efficient.
    assert!(weak_t > strong_t);
    assert!(weak_t.as_secs_f64() < 3.0 * strong_t.as_secs_f64());
}

#[test]
fn time_attribution_sums_to_total() {
    let (base, spec) = tiny4();
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &base, &spec);
        for p in [Paradigm::BulkDma, Paradigm::P2pStores, Paradigm::FinePack] {
            let r = prep.run(&base, p);
            let sum = r.compute_time + r.drain_tail + r.barrier_time;
            assert_eq!(sum, r.total_time, "{} {p}", app.name());
            assert!(r.exposed_comm_fraction() >= 0.0);
            assert!(r.exposed_comm_fraction() <= 1.0);
        }
    }
}
