//! End-to-end integration of the full stack: workload generators ->
//! GPU trace replay -> egress paths -> fabric -> reports, for every
//! application and paradigm on a scaled-down system.

use system::{
    geomean_speedup, single_gpu_time, speedup_row, Paradigm, PreparedWorkload, Runner, SystemConfig,
};
use workloads::{suite, RunSpec, Workload};

fn tiny() -> (SystemConfig, RunSpec) {
    (SystemConfig::paper(2), RunSpec::tiny())
}

#[test]
fn every_app_runs_under_every_paradigm() {
    let (cfg, spec) = tiny();
    let paradigms = [
        Paradigm::BulkDma,
        Paradigm::P2pStores,
        Paradigm::FinePack,
        Paradigm::WriteCombining,
        Paradigm::Gps,
        Paradigm::InfiniteBw,
    ];
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        let mut unique = None;
        for p in paradigms {
            let report = prep.run(&cfg, p);
            assert!(
                report.total_time.as_ps() > 0,
                "{} under {p} took zero time",
                app.name()
            );
            // Unique bytes are a property of the program, not the paradigm.
            let u = unique.get_or_insert(report.unique_bytes);
            assert_eq!(*u, report.unique_bytes, "{} under {p}", app.name());
            if p.uses_stores() && p != Paradigm::Gps {
                assert!(report.egress.packets > 0, "{} under {p}", app.name());
                assert!(report.traffic.total() > 0);
            }
            if p == Paradigm::InfiniteBw {
                assert_eq!(report.traffic.total(), 0);
            }
        }
    }
}

#[test]
fn finepack_never_moves_more_bytes_than_raw_p2p() {
    let (cfg, spec) = tiny();
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        let fp = prep.run(&cfg, Paradigm::FinePack);
        let p2p = prep.run(&cfg, Paradigm::P2pStores);
        assert!(
            fp.traffic.total() <= p2p.traffic.total(),
            "{}: fp {} > p2p {}",
            app.name(),
            fp.traffic.total(),
            p2p.traffic.total()
        );
        // FinePack buffers stores until a window fills, so its final
        // flush can trail the kernel end by one packet time; on
        // compute-bound regular apps that leaves it within a whisker of
        // raw P2P rather than strictly faster.
        let fp_t = fp.total_time.as_secs_f64();
        let p2p_t = p2p.total_time.as_secs_f64();
        assert!(
            fp_t <= p2p_t * 1.05,
            "{}: fp {fp_t} vs p2p {p2p_t}",
            app.name()
        );
    }
}

#[test]
fn infinite_bandwidth_bounds_every_paradigm() {
    let (cfg, spec) = tiny();
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        let inf = prep.run(&cfg, Paradigm::InfiniteBw).total_time;
        for p in [Paradigm::BulkDma, Paradigm::P2pStores, Paradigm::FinePack] {
            let t = prep.run(&cfg, p).total_time;
            assert!(t >= inf, "{} under {p}: {t} < {inf}", app.name());
        }
    }
}

#[test]
fn speedups_are_positive_and_bounded_by_gpu_count() {
    let (cfg, spec) = tiny();
    let rows: Vec<_> = suite()
        .iter()
        .map(|a| speedup_row(a.as_ref(), &cfg, &spec, &Paradigm::FIG9))
        .collect();
    for row in &rows {
        for (p, s) in &row.speedups {
            assert!(*s > 0.0, "{} {p}", row.app);
            assert!(*s < f64::from(spec.num_gpus) + 0.5, "{} {p}: {s}", row.app);
        }
    }
    let inf = geomean_speedup(&rows, Paradigm::InfiniteBw).expect("rows");
    let fp = geomean_speedup(&rows, Paradigm::FinePack).expect("rows");
    assert!(inf >= fp);
}

#[test]
fn single_gpu_baseline_exceeds_per_iteration_multi_gpu_compute() {
    let (cfg, spec) = tiny();
    for app in suite() {
        let t1 = single_gpu_time(app.as_ref(), &cfg, &spec);
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        let kernel_max = prep.runs()[0]
            .iter()
            .map(|r| r.kernel_time)
            .max()
            .expect("gpus");
        assert!(t1 > kernel_max, "{}", app.name());
    }
}

#[test]
fn memory_images_match_between_finepack_and_p2p_for_full_suite() {
    let (cfg, spec) = tiny();
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        let image_for = |p: Paradigm| {
            let mut runner = Runner::new(cfg, p, 0.0, true);
            for iter_runs in prep.runs() {
                runner.run_iteration(iter_runs, &[]);
            }
            runner.images().expect("tracking").to_vec()
        };
        let fp = image_for(Paradigm::FinePack);
        let p2p = image_for(Paradigm::P2pStores);
        for g in 0..fp.len() {
            assert!(
                fp[g].same_contents(&p2p[g]),
                "{}: image mismatch on GPU{g}",
                app.name()
            );
        }
    }
}

#[test]
fn four_gpu_suite_matches_paper_orderings() {
    // A single, slightly larger smoke test at 4 GPUs with reduced scale:
    // the qualitative Fig 9 orderings must hold.
    let cfg = SystemConfig::paper(4);
    let mut spec = RunSpec::paper(4);
    spec.scale_down = 8;
    spec.iterations = 1;

    let apps = suite();
    let rows: Vec<_> = apps
        .iter()
        .map(|a| speedup_row(a.as_ref(), &cfg, &spec, &Paradigm::FIG9))
        .collect();
    let geo = |p| geomean_speedup(&rows, p).expect("rows");
    let (dma, p2p, fp, inf) = (
        geo(Paradigm::BulkDma),
        geo(Paradigm::P2pStores),
        geo(Paradigm::FinePack),
        geo(Paradigm::InfiniteBw),
    );
    assert!(fp > dma, "finepack {fp} must beat dma {dma}");
    assert!(fp > p2p, "finepack {fp} must beat p2p {p2p}");
    assert!(inf > fp, "infinite {inf} must bound finepack {fp}");

    // Regular apps: P2P does well; irregular: P2P trails FinePack badly.
    let by_name = |n: &str| rows.iter().find(|r| r.app == n).expect("present");
    let jac = by_name("jacobi");
    assert!(jac.speedup(Paradigm::P2pStores).expect("p2p") > 1.0);
    let pr = by_name("pagerank");
    let pr_fp = pr.speedup(Paradigm::FinePack).expect("fp");
    let pr_p2p = pr.speedup(Paradigm::P2pStores).expect("p2p");
    assert!(pr_fp > 1.5 * pr_p2p, "pagerank fp {pr_fp} vs p2p {pr_p2p}");
}

#[test]
fn workload_knobs_are_mutable_for_what_if_studies() {
    // The public workload structs expose their knobs so downstream users
    // can run their own sweeps.
    let (cfg, spec) = tiny();
    let mut app = workloads::Jacobi::default();
    app.halo_bytes_per_gpu *= 4;
    let big = PreparedWorkload::new(&app, &cfg, &spec);
    let small = PreparedWorkload::new(&workloads::Jacobi::default(), &cfg, &spec);
    let wire = |p: &PreparedWorkload| p.run(&cfg, Paradigm::P2pStores).traffic.total();
    assert!(wire(&big) > 2 * wire(&small));
    assert_eq!(app.pattern(), workloads::CommPattern::Neighbors);
}
