//! Decoder robustness: every wire/file decoder in the stack must reject
//! arbitrary and mutated inputs with an error — never panic, never loop.

use finepack::{FinePackPacket, SubheaderFormat};
use gpu_model::{read_trace, write_trace, AccessPattern, GpuId, KernelTrace, TraceOp};
use protocol::TlpHeader;
use sim_engine::DetRng;

fn random_bytes(rng: &mut DetRng, max_len: u64) -> Vec<u8> {
    (0..rng.next_u64_below(max_len))
        .map(|_| rng.next_u64() as u8)
        .collect()
}

/// Arbitrary bytes never panic the TLP header decoder.
#[test]
fn tlp_decode_total() {
    let mut rng = DetRng::new(0xF2_0001, "tlp-fuzz");
    for _ in 0..256 {
        let bytes = random_bytes(&mut rng, 64);
        let _ = TlpHeader::decode(&bytes);
    }
}

/// Arbitrary bytes never panic the FinePack packet decoder, under
/// every sub-header format.
#[test]
fn finepack_decode_total() {
    let mut rng = DetRng::new(0xF2_0002, "fp-fuzz");
    for _ in 0..256 {
        let bytes = random_bytes(&mut rng, 512);
        let sub = rng.next_in_range(2, 7) as u32;
        let f = SubheaderFormat::new(sub).expect("2..=6");
        let _ = FinePackPacket::decode(&bytes, f, GpuId::new(0), GpuId::new(1));
    }
}

/// Arbitrary bytes never panic the trace reader.
#[test]
fn trace_decode_total() {
    let mut rng = DetRng::new(0xF2_0003, "trace-fuzz");
    for _ in 0..256 {
        let bytes = random_bytes(&mut rng, 1024);
        let _ = read_trace(&bytes);
    }
}

/// Single-byte corruption of a valid packet either still decodes (to
/// something) or fails cleanly — it never panics.
#[test]
fn finepack_decode_survives_bitflips() {
    let pkt = FinePackPacket {
        src: GpuId::new(0),
        dst: GpuId::new(1),
        base_addr: 0x4000_0000,
        subheader: SubheaderFormat::paper(),
        subpackets: (0..8)
            .map(|i| finepack::SubPacket {
                offset: i * 64,
                data: vec![i as u8; 12],
            })
            .collect(),
    };
    let clean = pkt.encode();
    for flip_at in 0..clean.len() {
        for flip_bit in 0..8u8 {
            let mut wire = clean.clone();
            wire[flip_at] ^= 1 << flip_bit;
            let _ = FinePackPacket::decode(&wire, pkt.subheader, pkt.src, pkt.dst);
        }
    }
}

fn random_op(rng: &mut DetRng) -> TraceOp {
    match rng.next_u64_below(6) {
        0 => TraceOp::Compute {
            cycles: rng.next_in_range(1, 10_000) as u32,
        },
        1 => TraceOp::WarpStore {
            pattern: AccessPattern::Contiguous {
                base: rng.next_u64() & 0xFFFF_FFFF,
            },
            bytes_per_lane: rng.next_in_range(1, 9) as u32,
            active_mask: rng.next_u64() as u32,
            value_seed: rng.next_u64(),
        },
        2 => TraceOp::WarpStore {
            pattern: AccessPattern::Scattered {
                addrs: (0..32).map(|_| rng.next_u64()).collect(),
            },
            bytes_per_lane: 8,
            active_mask: u32::MAX,
            value_seed: 0,
        },
        3 => TraceOp::Fence,
        4 => TraceOp::RemoteLoad {
            addr: rng.next_u64(),
            bytes: rng.next_in_range(1, 9) as u32,
        },
        _ => TraceOp::RemoteAtomic {
            addr: rng.next_u64(),
            bytes: rng.next_in_range(1, 9) as u32,
            value_seed: rng.next_u64(),
        },
    }
}

/// Trace write/read is the identity for arbitrary generated traces.
#[test]
fn trace_roundtrip() {
    let mut rng = DetRng::new(0xF2_0004, "trace-roundtrip");
    for _ in 0..256 {
        let name_len = rng.next_u64_below(13);
        let name: String = (0..name_len)
            .map(|_| (b'a' + rng.next_u64_below(26) as u8) as char)
            .collect();
        let mut trace = KernelTrace::new(name);
        trace.ops = (0..rng.next_u64_below(64))
            .map(|_| random_op(&mut rng))
            .collect();
        let bytes = write_trace(&trace);
        assert_eq!(read_trace(&bytes).expect("own output decodes"), trace);
    }
}
