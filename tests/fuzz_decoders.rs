//! Decoder robustness: every wire/file decoder in the stack must reject
//! arbitrary and mutated inputs with an error — never panic, never loop.

use finepack::{FinePackPacket, SubheaderFormat};
use gpu_model::{read_trace, write_trace, AccessPattern, GpuId, KernelTrace, TraceOp};
use proptest::prelude::*;
use protocol::TlpHeader;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the TLP header decoder.
    #[test]
    fn tlp_decode_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = TlpHeader::decode(&bytes);
    }

    /// Arbitrary bytes never panic the FinePack packet decoder, under
    /// every sub-header format.
    #[test]
    fn finepack_decode_total(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        sub in 2u32..=6,
    ) {
        let f = SubheaderFormat::new(sub).expect("2..=6");
        let _ = FinePackPacket::decode(&bytes, f, GpuId::new(0), GpuId::new(1));
    }

    /// Arbitrary bytes never panic the trace reader.
    #[test]
    fn trace_decode_total(bytes in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = read_trace(&bytes);
    }

    /// Single-byte corruption of a valid packet either still decodes (to
    /// something) or fails cleanly — it never panics.
    #[test]
    fn finepack_decode_survives_bitflips(
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        let pkt = FinePackPacket {
            src: GpuId::new(0),
            dst: GpuId::new(1),
            base_addr: 0x4000_0000,
            subheader: SubheaderFormat::paper(),
            subpackets: (0..8)
                .map(|i| finepack::SubPacket {
                    offset: i * 64,
                    data: vec![i as u8; 12],
                })
                .collect(),
        };
        let mut wire = pkt.encode();
        let idx = flip_at % wire.len();
        wire[idx] ^= 1 << flip_bit;
        let _ = FinePackPacket::decode(&wire, pkt.subheader, pkt.src, pkt.dst);
    }

    /// Trace write/read is the identity for arbitrary generated traces.
    #[test]
    fn trace_roundtrip(
        ops in prop::collection::vec(
            prop_oneof![
                (1u32..10_000).prop_map(|c| TraceOp::Compute { cycles: c }),
                (any::<u64>(), 1u32..=8, any::<u32>(), any::<u64>()).prop_map(
                    |(base, b, m, s)| TraceOp::WarpStore {
                        pattern: AccessPattern::Contiguous { base: base & 0xFFFF_FFFF },
                        bytes_per_lane: b,
                        active_mask: m,
                        value_seed: s,
                    }
                ),
                prop::collection::vec(any::<u64>(), 32).prop_map(|addrs| TraceOp::WarpStore {
                    pattern: AccessPattern::Scattered { addrs },
                    bytes_per_lane: 8,
                    active_mask: u32::MAX,
                    value_seed: 0,
                }),
                Just(TraceOp::Fence),
                (any::<u64>(), 1u32..=8).prop_map(|(a, b)| TraceOp::RemoteLoad {
                    addr: a,
                    bytes: b,
                }),
                (any::<u64>(), 1u32..=8, any::<u64>()).prop_map(|(a, b, s)| {
                    TraceOp::RemoteAtomic {
                        addr: a,
                        bytes: b,
                        value_seed: s,
                    }
                }),
            ],
            0..64,
        ),
        name in "[a-z]{0,12}",
    ) {
        let mut trace = KernelTrace::new(name);
        trace.ops = ops;
        let bytes = write_trace(&trace);
        prop_assert_eq!(read_trace(&bytes).expect("own output decodes"), trace);
    }
}
