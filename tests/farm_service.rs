//! End-to-end sweep-farm pinning (ISSUE 9 acceptance): a daemon-served
//! report is byte-identical to the one-shot CLI output, and a repeated
//! submission is answered from cache without executing a single
//! simulation event.

use std::time::{Duration, Instant};

fn sock_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "finepack-farm-e2e-{}-{tag}.sock",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned()
}

/// Starts `finepack-sim serve` on a thread and blocks until the daemon
/// answers `status` (bind is synchronous, but the thread needs to get
/// there first).
fn start_daemon(socket: &str) -> std::thread::JoinHandle<String> {
    let argv: Vec<String> = [
        "serve",
        "--socket",
        socket,
        "--cache-entries",
        "8",
        "--jobs",
        "1",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let handle = std::thread::spawn(move || cli::execute(argv).expect("serve exits cleanly").text);
    let deadline = Instant::now() + Duration::from_secs(30);
    while farm::status(socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle
}

#[test]
fn served_reports_match_one_shot_output_and_repeats_hit_the_cache() {
    let socket = sock_path("identity");
    let daemon = start_daemon(&socket);

    // One-shot outputs, straight through the CLI.
    let small = ["--gpus", "2", "--scale-down", "16", "--iterations", "1"];
    let run_args: Vec<&str> = ["run", "--app", "jacobi"]
        .iter()
        .chain(&small)
        .copied()
        .collect();
    let one_shot_run = cli::execute(run_args).expect("one-shot run").text;
    let suite_args: Vec<&str> = ["suite", "--jobs", "1"]
        .iter()
        .chain(&small)
        .copied()
        .collect();
    let one_shot_suite = cli::execute(suite_args).expect("one-shot suite");

    // The same points served by the daemon must be byte-identical.
    let submit_run: Vec<&str> = [
        "submit", "--socket", &socket, "--kind", "run", "--app", "jacobi",
    ]
    .iter()
    .chain(&small)
    .copied()
    .collect();
    let served_run = cli::execute(submit_run.clone()).expect("served run");
    assert_eq!(
        served_run.text, one_shot_run,
        "daemon-served run must match one-shot bytes"
    );
    assert!(!served_run.partial);

    let submit_suite: Vec<&str> = ["submit", "--socket", &socket, "--kind", "suite"]
        .iter()
        .chain(&small)
        .copied()
        .collect();
    let served_suite = cli::execute(submit_suite).expect("served suite");
    assert_eq!(
        served_suite.text, one_shot_suite.text,
        "daemon-served suite must match one-shot bytes"
    );
    assert_eq!(served_suite.partial, one_shot_suite.partial);

    // Re-submitting the identical run is a cache hit: same bytes, no
    // new simulation events, hit counter up.
    let before = farm::status(&socket).expect("status");
    let repeat = cli::execute(submit_run).expect("repeat run");
    assert_eq!(repeat.text, one_shot_run);
    let after = farm::status(&socket).expect("status");
    assert_eq!(
        after.cache_hits,
        before.cache_hits + 1,
        "hit counter must increment"
    );
    assert_eq!(
        after.sim_events_total, before.sim_events_total,
        "a cache hit must execute zero simulation events"
    );

    cli::execute(["shutdown", "--socket", &socket]).expect("shutdown");
    let farewell = daemon.join().expect("daemon thread");
    assert!(farewell.contains("shut down cleanly"), "{farewell}");
}

#[test]
fn partial_suite_results_keep_exit_semantics_through_the_daemon() {
    let socket = sock_path("partial");
    let daemon = start_daemon(&socket);

    // A tiny run budget kills every point: partial one-shot and served
    // outputs must agree, including the exit-code epilogue.
    let args = [
        "submit",
        "--socket",
        &socket,
        "--kind",
        "suite",
        "--gpus",
        "2",
        "--scale-down",
        "16",
        "--iterations",
        "1",
        "--run-budget",
        "3",
    ];
    let served = cli::execute(args).expect("served partial suite");
    assert!(served.partial, "{}", served.text);
    assert!(
        served.text.contains("exiting with code 3"),
        "{}",
        served.text
    );
    assert_eq!(served.exit_code(), cli::EXIT_PARTIAL);

    let one_shot = cli::execute([
        "suite",
        "--gpus",
        "2",
        "--scale-down",
        "16",
        "--iterations",
        "1",
        "--run-budget",
        "3",
        "--jobs",
        "1",
    ])
    .expect("one-shot partial suite");
    assert_eq!(served.text, one_shot.text);

    cli::execute(["shutdown", "--socket", &socket]).expect("shutdown");
    daemon.join().expect("daemon thread");
}

#[test]
fn status_and_errors_surface_through_cli_exit_codes() {
    let socket = sock_path("status");

    // No daemon: socket errors are unrecoverable (exit 2), not panics.
    let err = cli::execute(["status", "--socket", &socket]).unwrap_err();
    assert_eq!(err.exit_code(), cli::EXIT_ERROR);
    assert!(err.to_string().contains(&socket), "{err}");

    let daemon = start_daemon(&socket);
    let status = cli::execute(["status", "--socket", &socket])
        .expect("status")
        .text;
    assert!(status.contains("jobs submitted: 0"), "{status}");
    assert!(status.contains("0 of 8 entries"), "{status}");

    // An invalid submitted job is a usage error, and the daemon
    // survives to serve the next request.
    let err = cli::execute(["submit", "--socket", &socket, "--gpus", "1"]).unwrap_err();
    assert_eq!(err.exit_code(), cli::EXIT_ERROR);
    assert!(cli::execute(["status", "--socket", &socket]).is_ok());

    cli::execute(["shutdown", "--socket", &socket]).expect("shutdown");
    daemon.join().expect("daemon thread");
}
