//! §IV-C "Effect of Small Accesses on Local Memory Bandwidth": "the
//! GPU's last-level cache and HBM/DRAM have enough bandwidth to match or
//! exceed the rate at which stores can arrive from the inter-GPU
//! interconnect." Verified across the suite: the de-packetizer's drain
//! time is a rounding error next to wire time at every PCIe generation.

use finepack::Depacketizer;
use gpu_model::GpuConfig;
use protocol::PcieGen;
use system::{Paradigm, PreparedWorkload, SystemConfig};
use workloads::{suite, RunSpec};

#[test]
fn hbm_drain_is_never_the_bottleneck() {
    // The ratio of drain rate to arrival rate: HBM at 900 GB/s vs even
    // PCIe 6.0 at 128 GB/s leaves 7x headroom.
    let cfg = GpuConfig::gv100();
    for gen in PcieGen::ALL {
        let headroom = cfg.hbm_bandwidth.as_gbps() / gen.bandwidth().as_gbps();
        assert!(headroom >= 7.0, "{gen}: headroom {headroom}");
    }
}

#[test]
fn depacketizer_drain_time_is_negligible_vs_wire_time() {
    let cfg = SystemConfig::paper(2);
    let spec = RunSpec::tiny();
    let wire_bw = cfg.pcie_gen.bandwidth();
    let hbm = cfg.gpu.hbm_bandwidth;
    for app in suite() {
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        let report = prep.run(&cfg, Paradigm::FinePack);
        let wire_time = wire_bw.transfer_time(report.traffic.total());
        let drain_time = hbm.transfer_time(report.egress.data_bytes);
        assert!(
            drain_time.as_secs_f64() < 0.1 * wire_time.as_secs_f64(),
            "{}: drain {} vs wire {}",
            app.name(),
            drain_time,
            wire_time
        );
    }
}

#[test]
fn depacketizer_buffer_covers_a_full_packet() {
    // The 64 x 128B ingress buffer (§IV-B) holds two maximum-payload
    // FinePack transactions' worth of disaggregated data.
    let d = Depacketizer::new();
    assert!(d.buffer_bytes() >= 2 * 4096);
}
