//! Wire-byte accounting invariants across the whole stack: every byte on
//! the wire is classified exactly once, and the remote write queue's
//! payload-budget register never over-commits a packet.

use finepack::{
    EgressPath, FinePackConfig, FinePackEgress, FlushReason, GpsEgress, RawP2pEgress,
    RemoteWriteQueue, WriteCombiningEgress,
};
use gpu_model::{GpuId, RemoteStore};
use protocol::FramingModel;
use sim_engine::{DetRng, SimTime};

fn random_stores(rng: &mut DetRng, max: u64) -> Vec<RemoteStore> {
    (0..rng.next_in_range(1, max))
        .map(|_| {
            let dst = rng.next_in_range(1, 4) as u8;
            let line = rng.next_u64_below(512);
            let off = (rng.next_u64_below(128) as u32).min(127);
            let len = (rng.next_in_range(1, 33) as u32).min(128 - off);
            let v = rng.next_u64() as u8;
            RemoteStore {
                src: GpuId::new(0),
                dst: GpuId::new(dst),
                addr: 0x1000_0000 + line * 128 + u64::from(off),
                data: vec![v; len as usize],
            }
        })
        .collect()
}

fn drain(path: &mut dyn EgressPath, stores: Vec<RemoteStore>) -> Vec<finepack::WirePacket> {
    let mut packets = Vec::new();
    for s in stores {
        packets.extend(path.push(&s, SimTime::ZERO).expect("valid store"));
    }
    packets.extend(path.release());
    packets
}

/// wire = data + protocol for every emitted packet, and the path's
/// cumulative metrics equal the sum over its packets.
#[test]
fn per_packet_and_cumulative_accounting_agree() {
    let mut rng = DetRng::new(0x3A_0001, "accounting");
    for _ in 0..48 {
        let stores = random_stores(&mut rng, 300);
        let framing = FramingModel::pcie_gen4();
        let paths: Vec<Box<dyn EgressPath>> = vec![
            Box::new(FinePackEgress::new(
                GpuId::new(0),
                FinePackConfig::paper(4),
                framing,
            )),
            Box::new(RawP2pEgress::new(framing)),
            Box::new(WriteCombiningEgress::new(GpuId::new(0), framing, 64)),
            Box::new(GpsEgress::new(GpuId::new(0), framing, 64, 0.3, 7)),
        ];
        for mut path in paths {
            let packets = drain(path.as_mut(), stores.clone());
            let mut wire = 0u64;
            let mut data = 0u64;
            for p in &packets {
                assert!(p.wire_bytes >= p.data_bytes, "{}", path.name());
                assert_eq!(p.wire_bytes, p.data_bytes + p.protocol_bytes());
                wire += p.wire_bytes;
                data += p.data_bytes;
            }
            let m = path.metrics();
            assert_eq!(m.wire_bytes, wire, "{} wire", path.name());
            assert_eq!(m.data_bytes, data, "{} data", path.name());
            assert_eq!(m.packets, packets.len() as u64, "{} packets", path.name());
        }
    }
}

/// No FinePack packet's payload exceeds the PCIe maximum, and data
/// conservation holds: bytes in = bytes on wire + bytes elided.
#[test]
fn finepack_payload_budget_and_conservation() {
    let mut rng = DetRng::new(0x3A_0002, "budget");
    for _ in 0..48 {
        let stores = random_stores(&mut rng, 400);
        let framing = FramingModel::pcie_gen4();
        let cfg = FinePackConfig::paper(4);
        let mut fp = FinePackEgress::new(GpuId::new(0), cfg, framing);
        let packets = drain(&mut fp, stores);
        let overhead = u64::from(framing.per_tlp_overhead());
        for p in &packets {
            // wire = overhead + DW-padded payload; payload <= max.
            let payload = p.wire_bytes - overhead;
            assert!(
                payload <= u64::from(cfg.max_payload) + 3,
                "payload {payload}"
            );
        }
        let m = fp.metrics();
        assert_eq!(m.bytes_in, m.data_bytes + m.overwritten_bytes);
    }
}

/// The queue's entry capacity is never exceeded, and the available-
/// payload-length register semantics hold: a released batch's
/// valid bytes plus per-entry sub-header costs fit the budget the
/// register tracked.
#[test]
fn rwq_capacity_and_budget() {
    let mut rng = DetRng::new(0x3A_0003, "capacity");
    for _ in 0..48 {
        let stores = random_stores(&mut rng, 400);
        let cfg = FinePackConfig::paper(4);
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        let mut batches = Vec::new();
        for s in stores {
            assert!(rwq.buffered_entries() <= 3 * cfg.entries_per_partition as usize);
            if let Some(b) = rwq.insert(&s).expect("valid") {
                batches.push(b);
            }
        }
        batches.extend(rwq.flush_all(FlushReason::Release));
        for b in &batches {
            assert!(b.entries.len() <= cfg.entries_per_partition as usize);
            // Budget as the register tracks it: merged bytes + one
            // sub-header per entry allocation.
            let budget =
                b.valid_bytes() + u64::from(cfg.subheader.bytes()) * b.entries.len() as u64;
            assert!(budget <= u64::from(cfg.max_payload), "budget {budget}");
            // Window containment: every entry's valid bytes lie inside
            // the batch window.
            for e in &b.entries {
                for (off, len) in e.runs() {
                    let start = e.line_addr + u64::from(off);
                    assert!(start >= b.window_base);
                    assert!(
                        start + u64::from(len) <= b.window_base + cfg.subheader.addressable_range()
                    );
                }
            }
        }
    }
}

#[test]
fn gps_filtering_reduces_wire_monotonically() {
    let framing = FramingModel::pcie_gen4();
    let stores: Vec<RemoteStore> = (0..500u64)
        .map(|i| RemoteStore {
            src: GpuId::new(0),
            dst: GpuId::new(1),
            addr: 0x2000_0000 + i * 192,
            data: vec![1; 8],
        })
        .collect();
    let mut last = u64::MAX;
    for unsub in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut gps = GpsEgress::new(GpuId::new(0), framing, 64, unsub, 11);
        for s in &stores {
            gps.push(s, SimTime::ZERO).expect("valid");
        }
        gps.release();
        let wire = gps.metrics().wire_bytes;
        assert!(wire <= last, "unsub={unsub}: {wire} > {last}");
        last = wire;
    }
    assert_eq!(last, 0, "full unsubscription sends nothing");
}
