//! FinePack's central claim, verified end-to-end: it is fully transparent
//! to software. For any stream of remote stores, transporting them
//! through FinePack (remote write queue -> packetizer -> wire encode ->
//! wire decode -> de-packetizer) produces exactly the same destination
//! memory image as issuing the raw stores in program order — as does
//! write combining.

use finepack::{
    Depacketizer, EgressPath, FinePackConfig, FinePackEgress, FinePackPacket, FlushReason,
    RawP2pEgress, RemoteWriteQueue, SubheaderFormat, WriteCombiningEgress,
};
use gpu_model::{GpuId, MemoryImage, RemoteStore};
use proptest::prelude::*;
use protocol::FramingModel;
use sim_engine::SimTime;

/// A generated store: (line index, offset in line, length, value seed).
fn store_strategy() -> impl Strategy<Value = (u64, u32, u32, u8)> {
    (0u64..256, 0u32..128, 1u32..=16, any::<u8>()).prop_map(|(line, off, len, v)| {
        let off = off.min(127);
        let len = len.min(128 - off);
        (line, off, len, v)
    })
}

fn build_store(line: u64, off: u32, len: u32, v: u8) -> RemoteStore {
    RemoteStore {
        src: GpuId::new(0),
        dst: GpuId::new(1),
        addr: 0x4000_0000 + line * 128 + u64::from(off),
        data: (0..len).map(|i| v.wrapping_add(i as u8)).collect(),
    }
}

fn image_of_program_order(stores: &[RemoteStore]) -> MemoryImage {
    let mut image = MemoryImage::new();
    for s in stores {
        image.write(s.addr, &s.data);
    }
    image
}

fn image_via_path(path: &mut dyn EgressPath, stores: &[RemoteStore]) -> MemoryImage {
    let mut image = MemoryImage::new();
    let deliver = |packets: Vec<finepack::WirePacket>, image: &mut MemoryImage| {
        for p in packets {
            for s in &p.stores {
                image.write(s.addr, &s.data);
            }
        }
    };
    for s in stores {
        let pkts = path.push(s.clone(), SimTime::ZERO).expect("valid store");
        deliver(pkts, &mut image);
    }
    deliver(path.release(), &mut image);
    image
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn finepack_is_transparent(raw in prop::collection::vec(store_strategy(), 1..200)) {
        let stores: Vec<RemoteStore> =
            raw.into_iter().map(|(l, o, n, v)| build_store(l, o, n, v)).collect();
        let reference = image_of_program_order(&stores);
        let mut fp = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        let via_fp = image_via_path(&mut fp, &stores);
        prop_assert!(reference.same_contents(&via_fp));
    }

    #[test]
    fn write_combining_is_transparent(raw in prop::collection::vec(store_strategy(), 1..200)) {
        let stores: Vec<RemoteStore> =
            raw.into_iter().map(|(l, o, n, v)| build_store(l, o, n, v)).collect();
        let reference = image_of_program_order(&stores);
        let mut wc =
            WriteCombiningEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 16);
        let via_wc = image_via_path(&mut wc, &stores);
        prop_assert!(reference.same_contents(&via_wc));
    }

    #[test]
    fn raw_p2p_is_transparent(raw in prop::collection::vec(store_strategy(), 1..100)) {
        let stores: Vec<RemoteStore> =
            raw.into_iter().map(|(l, o, n, v)| build_store(l, o, n, v)).collect();
        let reference = image_of_program_order(&stores);
        let mut p2p = RawP2pEgress::new(FramingModel::pcie_gen4());
        let via = image_via_path(&mut p2p, &stores);
        prop_assert!(reference.same_contents(&via));
    }

    /// The full wire path: queue -> packetize -> encode -> decode ->
    /// de-packetize -> memory, for every Table II sub-header format.
    #[test]
    fn wire_roundtrip_is_transparent(
        raw in prop::collection::vec(store_strategy(), 1..150),
        subheader_bytes in 2u32..=6,
    ) {
        let stores: Vec<RemoteStore> =
            raw.into_iter().map(|(l, o, n, v)| build_store(l, o, n, v)).collect();
        let reference = image_of_program_order(&stores);

        let cfg = FinePackConfig::paper(4)
            .with_subheader(SubheaderFormat::new(subheader_bytes).expect("2..=6"));
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        let mut depk = Depacketizer::new();
        let mut image = MemoryImage::new();
        let mut batches = Vec::new();
        for s in &stores {
            if let Some(b) = rwq.insert(s.clone()).expect("valid store") {
                batches.push(b);
            }
        }
        batches.extend(rwq.flush_all(FlushReason::Release));
        for b in &batches {
            for pkt in finepack::packetize(b, &cfg, GpuId::new(0)) {
                let wire = pkt.encode();
                let decoded = FinePackPacket::decode(&wire, cfg.subheader, pkt.src, pkt.dst)
                    .expect("well-formed wire");
                prop_assert_eq!(&decoded, &pkt);
                depk.deliver(&decoded, &mut image);
            }
        }
        prop_assert!(reference.same_contents(&image));
    }
}
