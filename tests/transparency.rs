//! FinePack's central claim, verified end-to-end: it is fully transparent
//! to software. For any stream of remote stores, transporting them
//! through FinePack (remote write queue -> packetizer -> wire encode ->
//! wire decode -> de-packetizer) produces exactly the same destination
//! memory image as issuing the raw stores in program order — as does
//! write combining.

use finepack::{
    Depacketizer, EgressPath, FinePackConfig, FinePackEgress, FinePackPacket, FlushReason,
    RawP2pEgress, RemoteWriteQueue, SubheaderFormat, WriteCombiningEgress,
};
use gpu_model::{GpuId, MemoryImage, RemoteStore};
use protocol::FramingModel;
use sim_engine::{DetRng, SimTime};

fn random_stores(rng: &mut DetRng, max: u64) -> Vec<RemoteStore> {
    (0..rng.next_in_range(1, max))
        .map(|_| {
            let line = rng.next_u64_below(256);
            let off = (rng.next_u64_below(128) as u32).min(127);
            let len = (rng.next_in_range(1, 17) as u32).min(128 - off);
            let v = rng.next_u64() as u8;
            RemoteStore {
                src: GpuId::new(0),
                dst: GpuId::new(1),
                addr: 0x4000_0000 + line * 128 + u64::from(off),
                data: (0..len).map(|i| v.wrapping_add(i as u8)).collect(),
            }
        })
        .collect()
}

fn image_of_program_order(stores: &[RemoteStore]) -> MemoryImage {
    let mut image = MemoryImage::new();
    for s in stores {
        image.write(s.addr, &s.data);
    }
    image
}

fn image_via_path(path: &mut dyn EgressPath, stores: &[RemoteStore]) -> MemoryImage {
    let mut image = MemoryImage::new();
    let deliver = |packets: Vec<finepack::WirePacket>, image: &mut MemoryImage| {
        for p in packets {
            let stores = p.stores.full().expect("paths default to full payloads");
            for s in stores {
                image.write(s.addr, &s.data);
            }
        }
    };
    for s in stores {
        let pkts = path.push(s, SimTime::ZERO).expect("valid store");
        deliver(pkts, &mut image);
    }
    deliver(path.release(), &mut image);
    image
}

#[test]
fn finepack_is_transparent() {
    let mut rng = DetRng::new(0x7A_0001, "fp-transparent");
    for _ in 0..64 {
        let stores = random_stores(&mut rng, 200);
        let reference = image_of_program_order(&stores);
        let mut fp = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        let via_fp = image_via_path(&mut fp, &stores);
        assert!(reference.same_contents(&via_fp));
    }
}

#[test]
fn write_combining_is_transparent() {
    let mut rng = DetRng::new(0x7A_0002, "wc-transparent");
    for _ in 0..64 {
        let stores = random_stores(&mut rng, 200);
        let reference = image_of_program_order(&stores);
        let mut wc = WriteCombiningEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 16);
        let via_wc = image_via_path(&mut wc, &stores);
        assert!(reference.same_contents(&via_wc));
    }
}

#[test]
fn raw_p2p_is_transparent() {
    let mut rng = DetRng::new(0x7A_0003, "p2p-transparent");
    for _ in 0..64 {
        let stores = random_stores(&mut rng, 100);
        let reference = image_of_program_order(&stores);
        let mut p2p = RawP2pEgress::new(FramingModel::pcie_gen4());
        let via = image_via_path(&mut p2p, &stores);
        assert!(reference.same_contents(&via));
    }
}

/// The full wire path: queue -> packetize -> encode -> decode ->
/// de-packetize -> memory, for every Table II sub-header format.
#[test]
fn wire_roundtrip_is_transparent() {
    let mut rng = DetRng::new(0x7A_0004, "wire-transparent");
    for _ in 0..64 {
        let stores = random_stores(&mut rng, 150);
        let subheader_bytes = rng.next_in_range(2, 7) as u32;
        let reference = image_of_program_order(&stores);

        let cfg = FinePackConfig::paper(4)
            .with_subheader(SubheaderFormat::new(subheader_bytes).expect("2..=6"));
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        let mut depk = Depacketizer::new();
        let mut image = MemoryImage::new();
        let mut batches = Vec::new();
        for s in &stores {
            if let Some(b) = rwq.insert(s).expect("valid store") {
                batches.push(b);
            }
        }
        batches.extend(rwq.flush_all(FlushReason::Release));
        for b in &batches {
            for pkt in finepack::packetize(b, &cfg, GpuId::new(0)) {
                let wire = pkt.encode();
                let decoded = FinePackPacket::decode(&wire, cfg.subheader, pkt.src, pkt.dst)
                    .expect("well-formed wire");
                assert_eq!(&decoded, &pkt);
                depk.deliver(&decoded, &mut image);
            }
        }
        assert!(reference.same_contents(&image));
    }
}
