//! Full-stack determinism: identical seeds must reproduce identical
//! simulations — times, wire bytes, packet counts — across independent
//! runs. This is what makes every number in EXPERIMENTS.md reproducible
//! with `cargo bench`.

use system::{speedup_row, Paradigm, PreparedWorkload, SystemConfig};
use workloads::{suite, RunSpec};

#[test]
fn identical_seeds_reproduce_reports_exactly() {
    let cfg = SystemConfig::paper(2);
    let spec = RunSpec::tiny();
    for app in suite() {
        let a = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        let b = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        for p in [Paradigm::BulkDma, Paradigm::P2pStores, Paradigm::FinePack] {
            let ra = a.run(&cfg, p);
            let rb = b.run(&cfg, p);
            assert_eq!(ra.total_time, rb.total_time, "{} {p} time", app.name());
            assert_eq!(
                ra.traffic.total(),
                rb.traffic.total(),
                "{} {p} wire",
                app.name()
            );
            assert_eq!(
                ra.egress.packets,
                rb.egress.packets,
                "{} {p} packets",
                app.name()
            );
            assert_eq!(ra.unique_bytes, rb.unique_bytes, "{} {p}", app.name());
        }
    }
}

#[test]
fn different_seeds_change_irregular_timings() {
    let cfg = SystemConfig::paper(2);
    let mut spec_a = RunSpec::tiny();
    let mut spec_b = RunSpec::tiny();
    spec_a.seed = 101;
    spec_b.seed = 202;
    let app = workloads::Sssp::default();
    let a = PreparedWorkload::new(&app, &cfg, &spec_a).run(&cfg, Paradigm::FinePack);
    let b = PreparedWorkload::new(&app, &cfg, &spec_b).run(&cfg, Paradigm::FinePack);
    // Different random scatters: byte-level results must differ while
    // staying in the same statistical regime.
    assert_ne!(a.traffic.total(), b.traffic.total());
    let ratio = a.total_time.as_secs_f64() / b.total_time.as_secs_f64();
    assert!(
        (0.8..1.25).contains(&ratio),
        "seed changed the regime: {ratio}"
    );
}

#[test]
fn gps_subscription_draws_are_seeded() {
    let cfg = SystemConfig::paper(2);
    let spec = RunSpec::tiny();
    let app = workloads::Pagerank::default();
    let prep = PreparedWorkload::new(&app, &cfg, &spec);
    let a = prep.run(&cfg, Paradigm::Gps);
    let b = prep.run(&cfg, Paradigm::Gps);
    assert_eq!(a.traffic.total(), b.traffic.total());
    assert_eq!(a.total_time, b.total_time);
}

#[test]
fn speedup_rows_are_reproducible() {
    let cfg = SystemConfig::paper(2);
    let spec = RunSpec::tiny();
    let app = workloads::Als::default();
    let a = speedup_row(&app, &cfg, &spec, &Paradigm::FIG9);
    let b = speedup_row(&app, &cfg, &spec, &Paradigm::FIG9);
    for (pa, pb) in a.speedups.iter().zip(b.speedups.iter()) {
        assert_eq!(pa.0, pb.0);
        assert!((pa.1 - pb.1).abs() < 1e-12, "{:?} vs {:?}", pa, pb);
    }
}

/// The determinism contract at the CLI boundary: for any worker count,
/// the rendered output must be byte-identical to `--jobs 1`.
fn assert_jobs_invariant(base: &[&str]) {
    let serial = {
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--jobs", "1"]);
        cli::run(argv).expect("serial run succeeds")
    };
    for jobs in ["2", "4"] {
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--jobs", jobs]);
        let parallel = cli::run(argv).expect("parallel run succeeds");
        assert_eq!(serial, parallel, "--jobs {jobs} diverged on {base:?}");
    }
}

#[test]
fn cli_suite_is_jobs_invariant() {
    for seed in ["7", "999"] {
        assert_jobs_invariant(&[
            "suite",
            "--gpus",
            "2",
            "--scale-down",
            "16",
            "--iterations",
            "1",
            "--seed",
            seed,
        ]);
    }
}

#[test]
fn cli_subheader_sweep_is_jobs_invariant() {
    for seed in ["7", "999"] {
        assert_jobs_invariant(&[
            "sweep-subheader",
            "--gpus",
            "2",
            "--scale-down",
            "16",
            "--iterations",
            "1",
            "--seed",
            seed,
        ]);
    }
}

/// The sharded event core must be invisible at the CLI boundary: for
/// any shard-worker count, the rendered output must be byte-identical
/// to `--intra-jobs 1` (which runs the untouched serial loop).
fn assert_intra_jobs_invariant(base: &[&str]) {
    let serial = {
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--intra-jobs", "1"]);
        cli::run(argv).expect("serial run succeeds")
    };
    for intra in ["2", "4"] {
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--intra-jobs", intra]);
        let sharded = cli::run(argv).expect("sharded run succeeds");
        assert_eq!(serial, sharded, "--intra-jobs {intra} diverged on {base:?}");
    }
}

#[test]
fn cli_run_is_intra_jobs_invariant_across_flow_control() {
    for seed in ["7", "999"] {
        for fc in ["open", "credited"] {
            assert_intra_jobs_invariant(&[
                "run",
                "--app",
                "jacobi",
                "--gpus",
                "4",
                "--scale-down",
                "16",
                "--iterations",
                "2",
                "--seed",
                seed,
                "--flow-control",
                fc,
            ]);
        }
    }
}

#[test]
fn cli_suite_is_intra_jobs_invariant() {
    for seed in ["7", "999"] {
        assert_intra_jobs_invariant(&[
            "suite",
            "--gpus",
            "4",
            "--scale-down",
            "16",
            "--iterations",
            "1",
            "--seed",
            seed,
        ]);
    }
}

#[test]
fn cli_fault_sweep_is_intra_jobs_invariant_under_degraded_profile() {
    assert_intra_jobs_invariant(&[
        "faults",
        "--app",
        "jacobi",
        "--gpus",
        "4",
        "--scale-down",
        "16",
        "--iterations",
        "1",
        "--fault-profile",
        "degraded",
    ]);
}

/// Chaos-supervised sweeps (panic injection, retries, partial results)
/// compose with intra-run sharding without perturbing a single byte.
#[test]
fn cli_chaos_suite_is_intra_jobs_invariant() {
    assert_intra_jobs_invariant(&[
        "suite",
        "--gpus",
        "4",
        "--scale-down",
        "16",
        "--iterations",
        "1",
        "--seed",
        "3735928559",
        "--chaos",
        "0.4",
        "--retries",
        "1",
    ]);
}

/// Hand-rolled property test over random topologies, hop latencies and
/// credit configurations: whenever the runner plans more than one
/// shard, the configuration must carry a strictly positive lookahead
/// horizon. A zero horizon (zero hop latency, or a zero credit-return
/// latency in credited mode) must always degrade to the serial loop.
#[test]
fn random_topologies_never_shard_with_zero_lookahead() {
    use sim_engine::{DetRng, SimTime};
    use system::{CreditConfig, FlowControlMode, Runner, Topology};

    let mut rng = DetRng::new(0x5AAD, "shard-lookahead-prop");
    for case in 0..512 {
        let gpus_per_leaf = [1u8, 2, 4][rng.next_u64_below(3) as usize];
        // At least two GPUs (a system needs a peer); leaf-aligned count.
        let num_gpus = (gpus_per_leaf * (1 + rng.next_u64_below(4) as u8)).max(2);
        let topology = if rng.chance(0.5) {
            Topology::SingleSwitch
        } else {
            Topology::TwoLevel { gpus_per_leaf }
        };
        let hop_ps = rng.next_u64_below(3) * rng.next_u64_below(2_000);
        let return_ps = rng.next_u64_below(3) * rng.next_u64_below(2_000);
        let mut cfg = SystemConfig::paper(num_gpus)
            .with_topology(topology)
            .with_intra_jobs(1 + rng.next_u64_below(8) as usize);
        cfg.hop_latency = SimTime::from_ps(hop_ps);
        if rng.chance(0.5) {
            let mut credits = CreditConfig::paper();
            credits.return_latency = SimTime::from_ps(return_ps);
            cfg.flow_control = FlowControlMode::Credited(credits);
        } else {
            cfg.flow_control = FlowControlMode::Open;
        }

        let horizon = cfg.shard_lookahead();
        let zero_horizon = hop_ps == 0
            || matches!(cfg.flow_control, FlowControlMode::Credited(_) if return_ps == 0);
        assert_eq!(
            horizon.is_none(),
            zero_horizon,
            "case {case}: lookahead {horizon:?} disagrees with latencies \
             (hop {hop_ps} ps, return {return_ps} ps, fc {:?})",
            cfg.flow_control
        );
        for paradigm in [Paradigm::FinePack, Paradigm::P2pStores, Paradigm::Gps] {
            let shards = Runner::planned_shards(&cfg, paradigm);
            assert!(
                shards == 1 || horizon.is_some(),
                "case {case}: {paradigm} planned {shards} shards with zero lookahead"
            );
            assert!(
                shards <= cfg.intra_jobs,
                "case {case}: {shards} shards exceeds --intra-jobs {}",
                cfg.intra_jobs
            );
        }
        // DMA-offload paradigms never shard: they issue no store events.
        assert_eq!(Runner::planned_shards(&cfg, Paradigm::BulkDma), 1);
    }
}

#[test]
fn cli_fault_sweep_is_jobs_invariant_under_fault_profile() {
    assert_jobs_invariant(&[
        "faults",
        "--app",
        "jacobi",
        "--gpus",
        "2",
        "--scale-down",
        "16",
        "--iterations",
        "1",
        "--fault-profile",
        "degraded",
    ]);
    assert_jobs_invariant(&[
        "faults",
        "--app",
        "pagerank",
        "--gpus",
        "2",
        "--scale-down",
        "16",
        "--iterations",
        "1",
        "--seed",
        "999",
    ]);
}
