//! Intra-warp L1 store coalescing.
//!
//! A warp store writes up to 32 lanes × 1–8 bytes. The L1 cache merges
//! lanes that touch the same 128B cache block into as few transactions as
//! possible; remote stores then leave the GPU at exactly this granularity,
//! because peer-GPU writes are not cached or combined in L2 (§III).
//! This module reproduces that behaviour and is the source of the
//! store-size distributions in Figure 4.

use std::collections::BTreeMap;

use crate::addr::{AddressMap, GpuId};
use crate::config::GpuConfig;
use crate::trace::{store_byte, AccessPattern, RemoteStore};

/// One post-coalescing store transaction (local or remote).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreTxn {
    /// First byte address (node-global physical).
    pub addr: u64,
    /// Payload bytes.
    pub data: Vec<u8>,
}

impl StoreTxn {
    /// Payload length in bytes.
    pub fn len(&self) -> u32 {
        self.data.len() as u32
    }

    /// True if empty (never produced by [`coalesce_warp_store`]).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Coalesces one warp store instruction into L1-egress transactions.
///
/// Lanes are grouped by cache block; within a block, contiguous runs of
/// written bytes become one transaction each (lanes writing the same byte
/// resolve to the highest-numbered lane, matching warp store semantics).
///
/// # Examples
///
/// ```
/// use gpu_model::{coalesce_warp_store, AccessPattern, GpuConfig};
///
/// let cfg = GpuConfig::gv100();
/// // 32 lanes × 4B contiguous: one 128B transaction.
/// let txns = coalesce_warp_store(
///     &cfg,
///     &AccessPattern::Contiguous { base: 0x1000 },
///     4,
///     u32::MAX,
///     0,
/// );
/// assert_eq!(txns.len(), 1);
/// assert_eq!(txns[0].len(), 128);
/// ```
pub fn coalesce_warp_store(
    cfg: &GpuConfig,
    pattern: &AccessPattern,
    bytes_per_lane: u32,
    active_mask: u32,
    value_seed: u64,
) -> Vec<StoreTxn> {
    let block = u64::from(cfg.cache_block_bytes);
    // block base -> (byte offset -> writing lane), BTreeMap for
    // deterministic ascending-address output.
    let mut blocks: BTreeMap<u64, BTreeMap<u64, u32>> = BTreeMap::new();
    for lane in 0..cfg.warp_size {
        if active_mask & (1 << lane) == 0 {
            continue;
        }
        let addr = pattern.lane_addr(lane, bytes_per_lane);
        for b in 0..u64::from(bytes_per_lane) {
            let byte_addr = addr + b;
            let base = byte_addr / block * block;
            // Later (higher) lanes win on overlap, as in warp store
            // semantics where lane order resolves conflicts.
            blocks.entry(base).or_default().insert(byte_addr, lane);
        }
    }
    let mut txns = Vec::new();
    for bytes in blocks.values() {
        let mut run_start: Option<u64> = None;
        let mut prev: u64 = 0;
        let mut data: Vec<u8> = Vec::new();
        for &byte_addr in bytes.keys() {
            match run_start {
                Some(_) if byte_addr == prev + 1 => {
                    data.push(store_byte(byte_addr, value_seed));
                    prev = byte_addr;
                }
                Some(start) => {
                    txns.push(StoreTxn {
                        addr: start,
                        data: std::mem::take(&mut data),
                    });
                    run_start = Some(byte_addr);
                    prev = byte_addr;
                    data.push(store_byte(byte_addr, value_seed));
                }
                None => {
                    run_start = Some(byte_addr);
                    prev = byte_addr;
                    data.push(store_byte(byte_addr, value_seed));
                }
            }
        }
        if let Some(start) = run_start {
            txns.push(StoreTxn { addr: start, data });
        }
    }
    txns
}

/// Classifies a coalesced transaction as local or remote and converts
/// remote ones into [`RemoteStore`]s.
pub fn route_txn(map: &AddressMap, src: GpuId, txn: StoreTxn) -> Result<RemoteStore, StoreTxn> {
    let dst = map.owner(txn.addr);
    if dst == src {
        Err(txn)
    } else {
        Ok(RemoteStore {
            src,
            dst,
            addr: txn.addr,
            data: txn.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::gv100()
    }

    #[test]
    fn contiguous_warp_coalesces_to_one_line() {
        let txns = coalesce_warp_store(
            &cfg(),
            &AccessPattern::Contiguous { base: 0x2000 },
            4,
            u32::MAX,
            7,
        );
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].addr, 0x2000);
        assert_eq!(txns[0].len(), 128);
    }

    #[test]
    fn contiguous_but_misaligned_splits_at_line_boundary() {
        // Base 0x2040: 128B of writes spanning two cache blocks.
        let txns = coalesce_warp_store(
            &cfg(),
            &AccessPattern::Contiguous { base: 0x2040 },
            4,
            u32::MAX,
            0,
        );
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].len(), 64);
        assert_eq!(txns[1].len(), 64);
        assert_eq!(txns[1].addr, 0x2080);
    }

    #[test]
    fn fully_scattered_yields_per_lane_txns() {
        // Each lane writes 8B to a distinct cache block.
        let addrs: Vec<u64> = (0..32).map(|i| 0x10_0000 + i * 4096).collect();
        let txns = coalesce_warp_store(&cfg(), &AccessPattern::Scattered { addrs }, 8, u32::MAX, 0);
        assert_eq!(txns.len(), 32);
        assert!(txns.iter().all(|t| t.len() == 8));
    }

    #[test]
    fn strided_by_32_produces_sector_sized_runs() {
        // 4B per lane, 32B stride: 4 lanes' worth of disjoint 4B runs per block.
        let txns = coalesce_warp_store(
            &cfg(),
            &AccessPattern::Strided {
                base: 0,
                stride: 32,
            },
            4,
            u32::MAX,
            0,
        );
        assert_eq!(txns.len(), 32);
        assert!(txns.iter().all(|t| t.len() == 4));
    }

    #[test]
    fn inactive_lanes_are_skipped() {
        let txns = coalesce_warp_store(
            &cfg(),
            &AccessPattern::Contiguous { base: 0 },
            4,
            0x0000_000F, // only lanes 0-3
            0,
        );
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].len(), 16);
    }

    #[test]
    fn no_active_lanes_is_empty() {
        let txns = coalesce_warp_store(&cfg(), &AccessPattern::Contiguous { base: 0 }, 4, 0, 0);
        assert!(txns.is_empty());
    }

    #[test]
    fn overlapping_lanes_merge() {
        // All lanes write the same 4 bytes.
        let addrs = vec![0x40; 32];
        let txns = coalesce_warp_store(&cfg(), &AccessPattern::Scattered { addrs }, 4, u32::MAX, 3);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].len(), 4);
    }

    #[test]
    fn payload_matches_store_byte() {
        let txns = coalesce_warp_store(
            &cfg(),
            &AccessPattern::Contiguous { base: 0x80 },
            4,
            0x1,
            99,
        );
        assert_eq!(txns.len(), 1);
        for (i, b) in txns[0].data.iter().enumerate() {
            assert_eq!(*b, store_byte(0x80 + i as u64, 99));
        }
    }

    #[test]
    fn routing_splits_local_and_remote() {
        let map = AddressMap::new(2, 1 << 20);
        let local = StoreTxn {
            addr: 0x100,
            data: vec![0; 4],
        };
        let remote = StoreTxn {
            addr: (1 << 20) + 0x100,
            data: vec![0; 4],
        };
        assert!(route_txn(&map, GpuId::new(0), local).is_err());
        let r = route_txn(&map, GpuId::new(0), remote).unwrap();
        assert_eq!(r.dst, GpuId::new(1));
    }
}
