//! Physical addressing across a multi-GPU node.
//!
//! Single-node multi-GPU systems map every GPU's memory into one shared
//! physical address space (§II-A). Each GPU owns a fixed-size contiguous
//! window; the owner of an address determines whether a store is local or
//! must egress onto the interconnect.

use std::fmt;

/// Identifies one GPU in the node.
///
/// Ids are bounded to `0..=255` *by construction*: the only constructor
/// takes a `u8`, so narrowing an id back to `u8` (or widening it into a
/// 16-bit wire field such as a PCIe requester id) is lossless. Wire
/// encoders should use [`GpuId::as_u8`] rather than re-narrowing
/// [`GpuId::index`] with `as`, which would silently truncate if the
/// representation ever widened.
///
/// # Examples
///
/// ```
/// use gpu_model::GpuId;
///
/// let g = GpuId::new(2);
/// assert_eq!(g.index(), 2);
/// assert_eq!(g.to_string(), "GPU2");
/// assert_eq!(GpuId::new(u8::MAX).as_u8(), 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(u8);

impl GpuId {
    /// Creates an id from a zero-based index.
    pub const fn new(index: u8) -> Self {
        GpuId(index)
    }

    /// The zero-based index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The id as the `u8` it was constructed from — infallible, unlike
    /// an `index() as u8` narrowing cast.
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

/// The node-wide physical address map: `num_gpus` windows of
/// `bytes_per_gpu` each, GPU *i* owning window *i*.
///
/// # Examples
///
/// ```
/// use gpu_model::{AddressMap, GpuId};
///
/// let map = AddressMap::new(4, 16 << 30);
/// let a = map.local_base(GpuId::new(1)) + 0x100;
/// assert_eq!(map.owner(a), GpuId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    num_gpus: u8,
    bytes_per_gpu: u64,
}

impl AddressMap {
    /// Creates a map for `num_gpus` GPUs with `bytes_per_gpu` memory each.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero or `bytes_per_gpu` is zero.
    pub fn new(num_gpus: u8, bytes_per_gpu: u64) -> Self {
        assert!(num_gpus > 0, "need at least one GPU");
        assert!(bytes_per_gpu > 0, "GPU memory must be non-empty");
        AddressMap {
            num_gpus,
            bytes_per_gpu,
        }
    }

    /// Number of GPUs in the node.
    pub fn num_gpus(&self) -> u8 {
        self.num_gpus
    }

    /// Bytes of physical memory per GPU.
    pub fn bytes_per_gpu(&self) -> u64 {
        self.bytes_per_gpu
    }

    /// The base physical address of `gpu`'s local window.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is outside the node.
    pub fn local_base(&self, gpu: GpuId) -> u64 {
        assert!(
            (gpu.index() as u8) < self.num_gpus,
            "{gpu} outside node of {} GPUs",
            self.num_gpus
        );
        gpu.index() as u64 * self.bytes_per_gpu
    }

    /// The GPU owning physical address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the last GPU's window.
    pub fn owner(&self, addr: u64) -> GpuId {
        let idx = addr / self.bytes_per_gpu;
        assert!(
            idx < u64::from(self.num_gpus),
            "address {addr:#x} outside the node"
        );
        GpuId::new(idx as u8)
    }

    /// Whether `addr` is local to `gpu`.
    pub fn is_local(&self, addr: u64, gpu: GpuId) -> bool {
        self.owner(addr) == gpu
    }

    /// Offset of `addr` within its owner's window.
    pub fn offset_in_window(&self, addr: u64) -> u64 {
        addr % self.bytes_per_gpu
    }

    /// Iterates all GPU ids in the node.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> {
        (0..self.num_gpus).map(GpuId::new)
    }

    /// All peers of `gpu` (every other GPU in the node).
    pub fn peers(&self, gpu: GpuId) -> impl Iterator<Item = GpuId> + '_ {
        let me = gpu;
        self.gpus().filter(move |g| *g != me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_boundaries() {
        let map = AddressMap::new(4, 1024);
        assert_eq!(map.owner(0), GpuId::new(0));
        assert_eq!(map.owner(1023), GpuId::new(0));
        assert_eq!(map.owner(1024), GpuId::new(1));
        assert_eq!(map.owner(4095), GpuId::new(3));
    }

    #[test]
    #[should_panic(expected = "outside the node")]
    fn out_of_range_address_panics() {
        let map = AddressMap::new(2, 1024);
        let _ = map.owner(2048);
    }

    #[test]
    fn local_base_and_offset() {
        let map = AddressMap::new(4, 4096);
        assert_eq!(map.local_base(GpuId::new(3)), 3 * 4096);
        assert_eq!(map.offset_in_window(3 * 4096 + 17), 17);
        assert!(map.is_local(3 * 4096, GpuId::new(3)));
        assert!(!map.is_local(3 * 4096, GpuId::new(0)));
    }

    #[test]
    fn gpu_id_boundary_is_lossless() {
        // The id space is closed under u8: the maximum id survives the
        // round trip through index() and back out as_u8(), so every
        // narrowing conversion in wire encoders is infallible.
        let top = GpuId::new(u8::MAX);
        assert_eq!(top.index(), 255);
        assert_eq!(top.as_u8(), u8::MAX);
        assert_eq!(GpuId::new(top.as_u8()), top);
        assert_eq!(u16::from(top.as_u8()), 255u16);
    }

    #[test]
    fn peers_excludes_self() {
        let map = AddressMap::new(4, 1);
        let peers: Vec<GpuId> = map.peers(GpuId::new(1)).collect();
        assert_eq!(peers, vec![GpuId::new(0), GpuId::new(2), GpuId::new(3)]);
    }

    #[test]
    #[should_panic]
    fn zero_gpus_panics() {
        let _ = AddressMap::new(0, 1024);
    }
}
