//! Trace analysis: the profile of a workload's remote-store stream that
//! determines how well FinePack will do — store sizes (Fig 4), temporal
//! redundancy (Fig 10's wasted bytes), and spatial locality relative to
//! an address window (Fig 11's stores per packet).

use std::collections::{HashMap, HashSet};

use sim_engine::Histogram;

use crate::gpu::KernelRun;

/// The communication profile extracted from one kernel replay.
#[derive(Debug, Clone)]
pub struct StoreProfile {
    /// Store-size distribution as it leaves L1.
    pub sizes: Histogram,
    /// Total remote payload bytes (counting rewrites).
    pub total_bytes: u64,
    /// Unique bytes (last-writer-wins footprint).
    pub unique_bytes: u64,
    /// Stores per destination GPU index.
    pub per_destination: HashMap<usize, u64>,
    /// Mean consecutive same-window run length, for the given window
    /// size: the upper bound on FinePack's stores-per-packet from
    /// spatial locality alone.
    pub window_run_length: f64,
    /// The window size (bytes) used for `window_run_length`.
    pub window_bytes: u64,
}

impl StoreProfile {
    /// Temporal redundancy: total bytes divided by unique bytes (1.0
    /// means every byte written once).
    pub fn rewrite_factor(&self) -> f64 {
        if self.unique_bytes == 0 {
            1.0
        } else {
            self.total_bytes as f64 / self.unique_bytes as f64
        }
    }

    /// Fraction of remote stores at or below 32 bytes (the paper's
    /// headline "fine-grained" threshold).
    pub fn fine_grained_fraction(&self) -> f64 {
        self.sizes.fraction_at_most(32).unwrap_or(0.0)
    }
}

/// Profiles the remote-store stream of `run` against FinePack windows of
/// `window_bytes` (1 GB for the paper's 5-byte sub-headers).
///
/// # Panics
///
/// Panics if `window_bytes` is not a power of two.
///
/// # Examples
///
/// ```
/// use gpu_model::{profile_run, AccessPattern, AddressMap, Gpu, GpuConfig, GpuId,
///                 KernelTrace, TraceOp};
///
/// let gpu = Gpu::new(GpuConfig::tiny(), GpuId::new(0), AddressMap::new(2, 1 << 30));
/// let mut t = KernelTrace::new("p");
/// t.push(TraceOp::WarpStore {
///     pattern: AccessPattern::Contiguous { base: 1 << 30 },
///     bytes_per_lane: 4,
///     active_mask: u32::MAX,
///     value_seed: 0,
/// });
/// let profile = profile_run(&gpu.execute_kernel(&t), 1 << 30);
/// assert_eq!(profile.total_bytes, 128);
/// assert_eq!(profile.unique_bytes, 128);
/// ```
pub fn profile_run(run: &KernelRun, window_bytes: u64) -> StoreProfile {
    assert!(
        window_bytes.is_power_of_two(),
        "window must be a power of two"
    );
    let mut sizes = Histogram::new("store_size");
    let mut per_destination: HashMap<usize, u64> = HashMap::new();
    let mut unique: HashSet<u64> = HashSet::new();
    let mut total_bytes = 0u64;

    // Window runs per destination stream (FinePack partitions per dst).
    let mut run_count = 0u64;
    let mut store_count = 0u64;
    let mut open_windows: HashMap<usize, u64> = HashMap::new();

    for t in &run.egress {
        let s = &t.store;
        sizes.record(u64::from(s.len()));
        *per_destination.entry(s.dst.index()).or_insert(0) += 1;
        total_bytes += u64::from(s.len());
        for b in 0..u64::from(s.len()) {
            unique.insert(s.addr + b);
        }
        store_count += 1;
        let window = s.addr / window_bytes;
        match open_windows.get(&s.dst.index()) {
            Some(w) if *w == window => {}
            _ => {
                open_windows.insert(s.dst.index(), window);
                run_count += 1;
            }
        }
    }

    StoreProfile {
        sizes,
        total_bytes,
        unique_bytes: unique.len() as u64,
        per_destination,
        window_run_length: if run_count == 0 {
            0.0
        } else {
            store_count as f64 / run_count as f64
        },
        window_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessPattern, AddressMap, Gpu, GpuConfig, GpuId, KernelTrace, TraceOp};

    fn run_with(ops: Vec<TraceOp>) -> KernelRun {
        let gpu = Gpu::new(
            GpuConfig::tiny(),
            GpuId::new(0),
            AddressMap::new(4, 16 << 30),
        );
        let mut t = KernelTrace::new("t");
        t.ops = ops;
        gpu.execute_kernel(&t)
    }

    fn scattered(base: u64, count: u64, stride: u64) -> Vec<TraceOp> {
        (0..count)
            .map(|i| TraceOp::WarpStore {
                pattern: AccessPattern::Scattered {
                    addrs: vec![base + i * stride; 32],
                },
                bytes_per_lane: 8,
                active_mask: 1, // one lane
                value_seed: i,
            })
            .collect()
    }

    #[test]
    fn rewrite_factor_counts_overwrites() {
        // Same 8B address written 4 times.
        let run = run_with(scattered(16 << 30, 4, 0));
        let p = profile_run(&run, 1 << 30);
        assert_eq!(p.total_bytes, 32);
        assert_eq!(p.unique_bytes, 8);
        assert!((p.rewrite_factor() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn window_runs_detect_locality() {
        // All stores within one 1GB window: one run.
        let local = run_with(scattered(16 << 30, 16, 256));
        let p = profile_run(&local, 1 << 30);
        assert!((p.window_run_length - 16.0).abs() < 1e-9);

        // Alternating between two windows: run length collapses to 1.
        let mut ops = Vec::new();
        for i in 0..16u64 {
            let base = (16u64 << 30) + (i % 2) * (2 << 30);
            ops.extend(scattered(base, 1, 0));
        }
        let thrash = run_with(ops);
        let p = profile_run(&thrash, 1 << 30);
        assert!((p.window_run_length - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fine_grained_fraction_matches_sizes() {
        let run = run_with(scattered(16 << 30, 8, 4096));
        let p = profile_run(&run, 1 << 30);
        assert_eq!(p.fine_grained_fraction(), 1.0); // 8B stores
        assert_eq!(p.sizes.quantile(0.5), Some(8));
    }

    #[test]
    fn per_destination_counts() {
        let mut ops = scattered(16 << 30, 4, 256); // GPU1
        ops.extend(scattered(32 << 30, 2, 256)); // GPU2
        let run = run_with(ops);
        let p = profile_run(&run, 1 << 30);
        assert_eq!(p.per_destination[&1], 4);
        assert_eq!(p.per_destination[&2], 2);
    }

    #[test]
    fn empty_run_is_neutral() {
        let run = run_with(vec![TraceOp::Compute { cycles: 10 }]);
        let p = profile_run(&run, 1 << 30);
        assert_eq!(p.total_bytes, 0);
        assert_eq!(p.rewrite_factor(), 1.0);
        assert_eq!(p.window_run_length, 0.0);
    }
}
