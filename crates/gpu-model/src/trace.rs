//! The kernel trace format replayed by the GPU model.
//!
//! The paper collects traces with NVBit and replays them in NVAS; we have
//! no CUDA binaries, so workload generators synthesize traces directly in
//! this format. A trace is a per-GPU sequence of warp-granularity
//! operations: compute chunks (in SM cycles) and warp store instructions
//! whose 32 per-lane addresses follow an [`AccessPattern`].

use crate::addr::GpuId;

/// How the 32 lanes of a warp store address memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPattern {
    /// Lane `i` writes `base + i * bytes_per_lane` — fully coalescable.
    Contiguous {
        /// Address written by lane 0.
        base: u64,
    },
    /// Lane `i` writes `base + i * stride` — partially coalescable when
    /// `stride` exceeds the element size.
    Strided {
        /// Address written by lane 0.
        base: u64,
        /// Per-lane address increment in bytes.
        stride: u64,
    },
    /// Each active lane writes an arbitrary address — the irregular case
    /// (graph algorithms, sparse linear algebra).
    Scattered {
        /// Per-lane addresses; entries beyond the active mask are ignored.
        addrs: Vec<u64>,
    },
}

impl AccessPattern {
    /// The address written by `lane`, given the per-lane element size.
    ///
    /// # Panics
    ///
    /// Panics for a [`AccessPattern::Scattered`] pattern if `lane` exceeds
    /// the address vector.
    pub fn lane_addr(&self, lane: u32, bytes_per_lane: u32) -> u64 {
        match self {
            AccessPattern::Contiguous { base } => {
                base + u64::from(lane) * u64::from(bytes_per_lane)
            }
            AccessPattern::Strided { base, stride } => base + u64::from(lane) * stride,
            AccessPattern::Scattered { addrs } => addrs[lane as usize],
        }
    }
}

/// One warp-granularity operation in a kernel trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// The warp computes for `cycles` SM cycles (covers ALU work and local
    /// memory traffic, which never reaches the interconnect).
    Compute {
        /// SM cycles consumed.
        cycles: u32,
    },
    /// A warp store instruction. Addresses are node-global physical
    /// addresses; those owned by a peer GPU egress onto the interconnect.
    WarpStore {
        /// Per-lane addressing.
        pattern: AccessPattern,
        /// Bytes written per active lane (1–8 on real GPUs).
        bytes_per_lane: u32,
        /// Active-lane mask (bit `i` = lane `i` executes).
        active_mask: u32,
        /// Seed for deterministic data generation (see `store_byte`).
        value_seed: u64,
    },
    /// A system-scoped release fence: all prior remote stores must be made
    /// visible (flushes the remote write queue, §IV-B).
    Fence,
    /// A scalar remote load. On-demand loads stall the issuing warp and
    /// must observe any same-address store still buffered in the remote
    /// write queue (§IV-B same-address load-store ordering).
    RemoteLoad {
        /// Node-global physical address.
        addr: u64,
        /// Bytes read.
        bytes: u32,
    },
    /// A scalar remote atomic (read-modify-write). Atomics are never
    /// coalesced; they flush any same-address queued store and travel as
    /// their own transaction (§IV-C).
    RemoteAtomic {
        /// Node-global physical address.
        addr: u64,
        /// Operand bytes (4 or 8 on real GPUs).
        bytes: u32,
        /// Seed for deterministic operand generation.
        value_seed: u64,
    },
}

/// A kernel launch: the op stream plus metadata.
///
/// Ops are distributed round-robin across the GPU's SMs by the replay
/// engine, which models the compute/communication interleaving that
/// FinePack's overlap benefit depends on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelTrace {
    /// Human-readable kernel name (for reports).
    pub name: String,
    /// The warp-granularity op stream.
    pub ops: Vec<TraceOp>,
}

impl KernelTrace {
    /// Creates an empty trace with a name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelTrace {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Appends an op.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total compute cycles across all ops (before SM parallelization).
    pub fn total_compute_cycles(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TraceOp::Compute { cycles } => u64::from(*cycles),
                _ => 0,
            })
            .sum()
    }

    /// Number of warp store instructions.
    pub fn store_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::WarpStore { .. }))
            .count()
    }

    /// Number of remote atomic operations.
    pub fn atomic_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::RemoteAtomic { .. }))
            .count()
    }

    /// Number of remote load operations.
    pub fn load_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::RemoteLoad { .. }))
            .count()
    }
}

/// Deterministic data byte for address `addr` under `seed`.
///
/// Store payloads are synthesized rather than traced; deriving each byte
/// from (address, seed) lets functional tests verify last-writer-wins
/// semantics without carrying payload buffers through the generators.
/// Different seeds model different values written to the same address over
/// time (the temporal-redundancy FinePack elides).
pub fn store_byte(addr: u64, seed: u64) -> u8 {
    let mut x = addr ^ seed.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    (x & 0xFF) as u8
}

/// A store transaction as it exits the L1 cache toward a peer GPU.
///
/// This is the unit the remote write queue ingests: post-coalescing,
/// sub-cache-line, carrying its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteStore {
    /// Issuing GPU.
    pub src: GpuId,
    /// Destination (owning) GPU.
    pub dst: GpuId,
    /// Node-global physical address of the first byte.
    pub addr: u64,
    /// Payload bytes.
    pub data: Vec<u8>,
}

impl RemoteStore {
    /// Payload length in bytes.
    pub fn len(&self) -> u32 {
        self.data.len() as u32
    }

    /// True if the payload is empty (never produced by the coalescer).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The exclusive end address.
    pub fn end(&self) -> u64 {
        self.addr + u64::from(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_addresses() {
        let c = AccessPattern::Contiguous { base: 100 };
        assert_eq!(c.lane_addr(0, 4), 100);
        assert_eq!(c.lane_addr(3, 4), 112);
        let s = AccessPattern::Strided {
            base: 0,
            stride: 128,
        };
        assert_eq!(s.lane_addr(2, 4), 256);
        let sc = AccessPattern::Scattered {
            addrs: vec![5, 17, 99],
        };
        assert_eq!(sc.lane_addr(1, 8), 17);
    }

    #[test]
    fn trace_counters() {
        let mut t = KernelTrace::new("k");
        t.push(TraceOp::Compute { cycles: 10 });
        t.push(TraceOp::WarpStore {
            pattern: AccessPattern::Contiguous { base: 0 },
            bytes_per_lane: 4,
            active_mask: u32::MAX,
            value_seed: 0,
        });
        t.push(TraceOp::Compute { cycles: 5 });
        t.push(TraceOp::Fence);
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_compute_cycles(), 15);
        assert_eq!(t.store_count(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn store_byte_is_deterministic_and_seed_sensitive() {
        assert_eq!(store_byte(0x1000, 1), store_byte(0x1000, 1));
        let differs = (0..64u64).filter(|a| store_byte(*a, 1) != store_byte(*a, 2));
        assert!(differs.count() > 32);
    }

    #[test]
    fn remote_store_geometry() {
        let s = RemoteStore {
            src: GpuId::new(0),
            dst: GpuId::new(1),
            addr: 0x100,
            data: vec![1, 2, 3, 4],
        };
        assert_eq!(s.len(), 4);
        assert_eq!(s.end(), 0x104);
        assert!(!s.is_empty());
    }
}
