//! A sparse functional memory image.
//!
//! Used to verify FinePack's transparency claim: replaying the same store
//! trace through raw P2P stores, write-combining, or FinePack must produce
//! the identical final memory image on the destination GPU.

use std::collections::HashMap;

/// Page size of the sparse image (an implementation detail, not the GPU's
/// virtual-memory page size).
const PAGE_BYTES: usize = 4096;

/// A sparse byte-addressable memory image.
///
/// # Examples
///
/// ```
/// use gpu_model::MemoryImage;
///
/// let mut m = MemoryImage::new();
/// m.write(0x1000, &[1, 2, 3]);
/// assert_eq!(m.read(0x1000, 3), vec![1, 2, 3]);
/// assert_eq!(m.read(0x2000, 1), vec![0]); // untouched reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
    bytes_written: u64,
}

impl MemoryImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Self {
        MemoryImage::default()
    }

    /// Writes `data` starting at `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut cur = addr;
        let mut remaining = data;
        while !remaining.is_empty() {
            let page = cur / PAGE_BYTES as u64;
            let off = (cur % PAGE_BYTES as u64) as usize;
            let n = remaining.len().min(PAGE_BYTES - off);
            let page_buf = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            page_buf[off..off + n].copy_from_slice(&remaining[..n]);
            cur += n as u64;
            remaining = &remaining[n..];
        }
        self.bytes_written += data.len() as u64;
    }

    /// Reads `len` bytes starting at `addr`; untouched bytes read as zero.
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        while out.len() < len {
            let page = cur / PAGE_BYTES as u64;
            let off = (cur % PAGE_BYTES as u64) as usize;
            let n = (len - out.len()).min(PAGE_BYTES - off);
            match self.pages.get(&page) {
                Some(buf) => out.extend_from_slice(&buf[off..off + n]),
                None => out.extend(std::iter::repeat_n(0, n)),
            }
            cur += n as u64;
        }
        out
    }

    /// Total bytes written over the image's lifetime (counts overwrites).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of touched pages.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// True if the two images hold identical contents (zero-filled pages
    /// compare equal to absent pages).
    pub fn same_contents(&self, other: &MemoryImage) -> bool {
        let zero = [0u8; PAGE_BYTES];
        let check = |a: &MemoryImage, b: &MemoryImage| {
            a.pages.iter().all(|(page, buf)| match b.pages.get(page) {
                Some(other_buf) => buf[..] == other_buf[..],
                None => buf[..] == zero[..],
            })
        };
        check(self, other) && check(other, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut m = MemoryImage::new();
        m.write(10, &[1, 2, 3, 4]);
        assert_eq!(m.read(10, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.read(9, 6), vec![0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn cross_page_write() {
        let mut m = MemoryImage::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write(4096 - 100, &data);
        assert_eq!(m.read(4096 - 100, 256), data);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn overwrites_take_last_value() {
        let mut m = MemoryImage::new();
        m.write(0, &[1, 1, 1, 1]);
        m.write(1, &[9, 9]);
        assert_eq!(m.read(0, 4), vec![1, 9, 9, 1]);
        assert_eq!(m.bytes_written(), 6);
    }

    #[test]
    fn same_contents_ignores_zero_pages() {
        let mut a = MemoryImage::new();
        let mut b = MemoryImage::new();
        a.write(0, &[0, 0, 0]); // touched but zero
        assert!(a.same_contents(&b));
        b.write(5000, &[1]);
        assert!(!a.same_contents(&b));
        a.write(5000, &[1]);
        assert!(a.same_contents(&b));
    }
}
