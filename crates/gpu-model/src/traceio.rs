//! Binary serialization for kernel traces.
//!
//! NVAS is "trace- and execution-driven": traces are collected once and
//! replayed many times. This module gives the reproduction the same
//! workflow — generators synthesize a trace, [`write_trace`] persists it,
//! and [`read_trace`] replays it later (or on another machine) without
//! regenerating. The format is a compact little-endian TLV stream with a
//! magic header and version byte.

use crate::trace::{AccessPattern, KernelTrace, TraceOp};

/// File magic: "FPKT" (FinePack trace).
const MAGIC: &[u8; 4] = b"FPKT";
/// Current format version.
const VERSION: u8 = 1;

const TAG_COMPUTE: u8 = 1;
const TAG_STORE_CONTIG: u8 = 2;
const TAG_STORE_STRIDED: u8 = 3;
const TAG_STORE_SCATTER: u8 = 4;
const TAG_FENCE: u8 = 5;
const TAG_LOAD: u8 = 6;
const TAG_ATOMIC: u8 = 7;

/// Errors produced when decoding a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIoError {
    /// The stream does not begin with the FPKT magic.
    BadMagic,
    /// The stream's version byte is not supported.
    UnsupportedVersion(u8),
    /// The stream ended inside a record.
    Truncated,
    /// An unknown op tag was encountered.
    UnknownTag(u8),
    /// A field held an out-of-range value.
    InvalidField(&'static str),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::BadMagic => write!(f, "not a FinePack trace (bad magic)"),
            TraceIoError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::Truncated => write!(f, "trace stream truncated"),
            TraceIoError::UnknownTag(t) => write!(f, "unknown trace op tag {t}"),
            TraceIoError::InvalidField(what) => write!(f, "invalid trace field: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

/// Serializes a kernel trace to its binary form.
///
/// # Examples
///
/// ```
/// use gpu_model::{read_trace, write_trace, KernelTrace, TraceOp};
///
/// let mut t = KernelTrace::new("demo");
/// t.push(TraceOp::Compute { cycles: 64 });
/// t.push(TraceOp::Fence);
/// let bytes = write_trace(&t);
/// assert_eq!(read_trace(&bytes)?, t);
/// # Ok::<(), gpu_model::TraceIoError>(())
/// ```
pub fn write_trace(trace: &KernelTrace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + trace.len() * 16);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    let name = trace.name.as_bytes();
    buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
    buf.extend_from_slice(name);
    buf.extend_from_slice(&(trace.len() as u32).to_le_bytes());
    for op in &trace.ops {
        match op {
            TraceOp::Compute { cycles } => {
                buf.push(TAG_COMPUTE);
                buf.extend_from_slice(&cycles.to_le_bytes());
            }
            TraceOp::WarpStore {
                pattern,
                bytes_per_lane,
                active_mask,
                value_seed,
            } => {
                match pattern {
                    AccessPattern::Contiguous { base } => {
                        buf.push(TAG_STORE_CONTIG);
                        buf.extend_from_slice(&base.to_le_bytes());
                    }
                    AccessPattern::Strided { base, stride } => {
                        buf.push(TAG_STORE_STRIDED);
                        buf.extend_from_slice(&base.to_le_bytes());
                        buf.extend_from_slice(&stride.to_le_bytes());
                    }
                    AccessPattern::Scattered { addrs } => {
                        buf.push(TAG_STORE_SCATTER);
                        buf.push(addrs.len() as u8);
                        for a in addrs {
                            buf.extend_from_slice(&a.to_le_bytes());
                        }
                    }
                }
                buf.push(*bytes_per_lane as u8);
                buf.extend_from_slice(&active_mask.to_le_bytes());
                buf.extend_from_slice(&value_seed.to_le_bytes());
            }
            TraceOp::Fence => buf.push(TAG_FENCE),
            TraceOp::RemoteLoad { addr, bytes } => {
                buf.push(TAG_LOAD);
                buf.extend_from_slice(&addr.to_le_bytes());
                buf.push(*bytes as u8);
            }
            TraceOp::RemoteAtomic {
                addr,
                bytes,
                value_seed,
            } => {
                buf.push(TAG_ATOMIC);
                buf.extend_from_slice(&addr.to_le_bytes());
                buf.push(*bytes as u8);
                buf.extend_from_slice(&value_seed.to_le_bytes());
            }
        }
    }
    buf
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn need(&self, n: usize) -> Result<(), TraceIoError> {
        if self.bytes.len() - self.pos < n {
            Err(TraceIoError::Truncated)
        } else {
            Ok(())
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceIoError> {
        self.need(n)?;
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn get_u8(&mut self) -> Result<u8, TraceIoError> {
        Ok(self.take(1)?[0])
    }

    fn get_u16_le(&mut self) -> Result<u16, TraceIoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn get_u32_le(&mut self) -> Result<u32, TraceIoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64_le(&mut self) -> Result<u64, TraceIoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Deserializes a kernel trace from its binary form.
///
/// # Errors
///
/// Returns a [`TraceIoError`] for malformed, truncated, or
/// version-incompatible streams. Never panics on arbitrary input.
pub fn read_trace(bytes: &[u8]) -> Result<KernelTrace, TraceIoError> {
    let buf = &mut Cursor::new(bytes);
    let magic = buf.take(4)?;
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = buf.get_u8()?;
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let name_len = buf.get_u16_le()? as usize;
    let name = String::from_utf8(buf.take(name_len)?.to_vec())
        .map_err(|_| TraceIoError::InvalidField("name utf-8"))?;
    let n_ops = buf.get_u32_le()? as usize;
    let mut trace = KernelTrace::new(name);
    trace.ops.reserve(n_ops.min(1 << 20));
    for _ in 0..n_ops {
        let tag = buf.get_u8()?;
        let op = match tag {
            TAG_COMPUTE => TraceOp::Compute {
                cycles: buf.get_u32_le()?,
            },
            TAG_STORE_CONTIG | TAG_STORE_STRIDED | TAG_STORE_SCATTER => {
                let pattern = match tag {
                    TAG_STORE_CONTIG => AccessPattern::Contiguous {
                        base: buf.get_u64_le()?,
                    },
                    TAG_STORE_STRIDED => AccessPattern::Strided {
                        base: buf.get_u64_le()?,
                        stride: buf.get_u64_le()?,
                    },
                    _ => {
                        let n = buf.get_u8()? as usize;
                        if n > 32 {
                            return Err(TraceIoError::InvalidField("lane count"));
                        }
                        let mut addrs = Vec::with_capacity(n);
                        for _ in 0..n {
                            addrs.push(buf.get_u64_le()?);
                        }
                        AccessPattern::Scattered { addrs }
                    }
                };
                buf.need(13)?;
                let bytes_per_lane = u32::from(buf.get_u8()?);
                if !(1..=8).contains(&bytes_per_lane) {
                    return Err(TraceIoError::InvalidField("bytes per lane"));
                }
                TraceOp::WarpStore {
                    pattern,
                    bytes_per_lane,
                    active_mask: buf.get_u32_le()?,
                    value_seed: buf.get_u64_le()?,
                }
            }
            TAG_FENCE => TraceOp::Fence,
            TAG_LOAD => TraceOp::RemoteLoad {
                addr: buf.get_u64_le()?,
                bytes: u32::from(buf.get_u8()?),
            },
            TAG_ATOMIC => TraceOp::RemoteAtomic {
                addr: buf.get_u64_le()?,
                bytes: u32::from(buf.get_u8()?),
                value_seed: buf.get_u64_le()?,
            },
            other => return Err(TraceIoError::UnknownTag(other)),
        };
        trace.push(op);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelTrace {
        let mut t = KernelTrace::new("roundtrip");
        t.push(TraceOp::Compute { cycles: 1234 });
        t.push(TraceOp::WarpStore {
            pattern: AccessPattern::Contiguous { base: 0xdead_be00 },
            bytes_per_lane: 4,
            active_mask: u32::MAX,
            value_seed: 42,
        });
        t.push(TraceOp::WarpStore {
            pattern: AccessPattern::Strided {
                base: 0x100,
                stride: 512,
            },
            bytes_per_lane: 8,
            active_mask: 0xFF,
            value_seed: 7,
        });
        t.push(TraceOp::WarpStore {
            pattern: AccessPattern::Scattered {
                addrs: (0..32).map(|i| i * 4096).collect(),
            },
            bytes_per_lane: 8,
            active_mask: 0xFFFF_0000,
            value_seed: 9,
        });
        t.push(TraceOp::Fence);
        t.push(TraceOp::RemoteLoad {
            addr: 0x8000,
            bytes: 8,
        });
        t.push(TraceOp::RemoteAtomic {
            addr: 0x9000,
            bytes: 4,
            value_seed: 3,
        });
        t
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let t = sample();
        let bytes = write_trace(&t);
        assert_eq!(read_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_trace(&sample());
        bytes[0] = b'X';
        assert_eq!(read_trace(&bytes), Err(TraceIoError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = write_trace(&sample());
        bytes[4] = 99;
        assert_eq!(
            read_trace(&bytes),
            Err(TraceIoError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = write_trace(&sample());
        for cut in 0..bytes.len() {
            let r = read_trace(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = KernelTrace::new("");
        let bytes = write_trace(&t);
        assert_eq!(read_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn error_display() {
        assert!(TraceIoError::BadMagic.to_string().contains("magic"));
        assert!(TraceIoError::UnknownTag(9).to_string().contains('9'));
    }
}
