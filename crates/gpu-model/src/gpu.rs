//! The GPU trace-replay engine.
//!
//! Replays a [`KernelTrace`] across the GPU's SMs, performing L1 store
//! coalescing, routing local stores to local memory and remote stores to
//! the egress port, and producing a time-ordered egress stream that the
//! interconnect simulation consumes.

use sim_engine::{Histogram, SimTime};

use crate::addr::{AddressMap, GpuId};
use crate::coalescer::{coalesce_warp_store, route_txn};
use crate::config::GpuConfig;
use crate::trace::{KernelTrace, RemoteStore, TraceOp};

/// A remote store stamped with its L1-egress time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedStore {
    /// Simulated time the store left L1 toward the egress port.
    pub time: SimTime,
    /// The store itself.
    pub store: RemoteStore,
}

/// A remote load probe: the issuing GPU must observe any same-address
/// store still buffered on the egress side before the load completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedProbe {
    /// Simulated time the load issued.
    pub time: SimTime,
    /// GPU owning the loaded address.
    pub dst: GpuId,
    /// Loaded address.
    pub addr: u64,
    /// Bytes read.
    pub len: u32,
}

/// Aggregate statistics from one kernel replay.
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// Histogram of remote store sizes exiting L1 (Fig 4's data).
    pub remote_size_hist: Histogram,
    /// Total remote payload bytes (counting rewrites).
    pub remote_bytes: u64,
    /// Number of remote store transactions.
    pub remote_stores: u64,
    /// Total local payload bytes.
    pub local_bytes: u64,
    /// Number of local store transactions.
    pub local_stores: u64,
    /// Total compute cycles in the trace (pre-parallelization).
    pub compute_cycles: u64,
    /// Remote atomic operations issued.
    pub remote_atomics: u64,
    /// Remote loads issued.
    pub remote_loads: u64,
}

impl KernelStats {
    fn new() -> Self {
        KernelStats {
            remote_size_hist: Histogram::new("remote_store_size"),
            remote_bytes: 0,
            remote_stores: 0,
            local_bytes: 0,
            local_stores: 0,
            compute_cycles: 0,
            remote_atomics: 0,
            remote_loads: 0,
        }
    }

    /// Mean remote store size in bytes, or `None` if no remote stores.
    pub fn mean_remote_size(&self) -> Option<f64> {
        self.remote_size_hist.mean()
    }

    /// Fraction of remote stores at or below `size` bytes, or `None` if
    /// no remote stores were issued.
    pub fn fraction_at_most(&self, size: u64) -> Option<f64> {
        self.remote_size_hist.fraction_at_most(size)
    }
}

/// The result of replaying one kernel on one GPU.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub name: String,
    /// Time the slowest SM finished (kernel wall time on this GPU).
    pub kernel_time: SimTime,
    /// Remote stores in non-decreasing time order.
    pub egress: Vec<TimedStore>,
    /// Remote atomics in non-decreasing time order (never coalesced).
    pub atomics: Vec<TimedStore>,
    /// Remote load probes in non-decreasing time order.
    pub probes: Vec<TimedProbe>,
    /// Times of explicit system-scope fences inside the kernel (the
    /// kernel end itself is an implicit release and is *not* listed).
    pub fences: Vec<SimTime>,
    /// Replay statistics.
    pub stats: KernelStats,
}

/// One simulated GPU: configuration + identity + the node address map.
///
/// # Examples
///
/// ```
/// use gpu_model::{AccessPattern, AddressMap, Gpu, GpuConfig, GpuId, KernelTrace, TraceOp};
///
/// let map = AddressMap::new(2, 1 << 30);
/// let gpu = Gpu::new(GpuConfig::tiny(), GpuId::new(0), map);
/// let mut trace = KernelTrace::new("demo");
/// trace.push(TraceOp::Compute { cycles: 100 });
/// trace.push(TraceOp::WarpStore {
///     // Write into GPU1's window: this egresses.
///     pattern: AccessPattern::Contiguous { base: 1 << 30 },
///     bytes_per_lane: 4,
///     active_mask: u32::MAX,
///     value_seed: 0,
/// });
/// let run = gpu.execute_kernel(&trace);
/// assert_eq!(run.egress.len(), 1);
/// assert_eq!(run.stats.remote_bytes, 128);
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    config: GpuConfig,
    id: GpuId,
    map: AddressMap,
}

impl Gpu {
    /// Creates a GPU.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`GpuConfig::validate`]).
    pub fn new(config: GpuConfig, id: GpuId, map: AddressMap) -> Self {
        config.validate();
        Gpu { config, id, map }
    }

    /// This GPU's id.
    pub fn id(&self) -> GpuId {
        self.id
    }

    /// This GPU's configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The node address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Replays `trace`, distributing ops round-robin across SMs.
    ///
    /// Each SM keeps a private cycle clock; compute ops advance it, store
    /// ops charge [`GpuConfig::store_issue_cycles`] per coalesced
    /// transaction and stamp remote transactions with the SM's clock.
    /// A [`TraceOp::Fence`] synchronizes all SMs (system-scope release).
    pub fn execute_kernel(&self, trace: &KernelTrace) -> KernelRun {
        let num_sms = self.config.num_sms as usize;
        let mut sm_clock = vec![0u64; num_sms];
        // Separate round-robin cursors per op kind: a strictly alternating
        // compute/store stream would otherwise park all compute on the
        // even SMs (pattern period dividing the SM count) and halve the
        // effective parallelism.
        let mut next_compute_sm = 0usize;
        let mut next_store_sm = 0usize;
        let mut egress: Vec<TimedStore> = Vec::new();
        let mut atomics: Vec<TimedStore> = Vec::new();
        let mut probes: Vec<TimedProbe> = Vec::new();
        let mut fences = Vec::new();
        let mut stats = KernelStats::new();

        for op in &trace.ops {
            match op {
                TraceOp::Compute { cycles } => {
                    sm_clock[next_compute_sm] += u64::from(*cycles);
                    stats.compute_cycles += u64::from(*cycles);
                    next_compute_sm = (next_compute_sm + 1) % num_sms;
                }
                TraceOp::WarpStore {
                    pattern,
                    bytes_per_lane,
                    active_mask,
                    value_seed,
                } => {
                    let txns = coalesce_warp_store(
                        &self.config,
                        pattern,
                        *bytes_per_lane,
                        *active_mask,
                        *value_seed,
                    );
                    for txn in txns {
                        sm_clock[next_store_sm] += u64::from(self.config.store_issue_cycles);
                        match route_txn(&self.map, self.id, txn) {
                            Ok(remote) => {
                                stats.remote_size_hist.record(u64::from(remote.len()));
                                stats.remote_bytes += u64::from(remote.len());
                                stats.remote_stores += 1;
                                egress.push(TimedStore {
                                    time: self.config.clock.cycles_to_time(sm_clock[next_store_sm]),
                                    store: remote,
                                });
                            }
                            Err(local) => {
                                stats.local_bytes += u64::from(local.len());
                                stats.local_stores += 1;
                            }
                        }
                    }
                    next_store_sm = (next_store_sm + 1) % num_sms;
                }
                TraceOp::Fence => {
                    let max = *sm_clock.iter().max().expect("at least one SM");
                    sm_clock.iter_mut().for_each(|c| *c = max);
                    fences.push(self.config.clock.cycles_to_time(max));
                }
                TraceOp::RemoteLoad { addr, bytes } => {
                    let dst = self.map.owner(*addr);
                    if dst == self.id {
                        // Local loads are folded into compute time.
                        continue;
                    }
                    // The issuing warp stalls for the round trip.
                    sm_clock[next_store_sm] += u64::from(self.config.remote_load_cycles);
                    stats.remote_loads += 1;
                    probes.push(TimedProbe {
                        time: self.config.clock.cycles_to_time(sm_clock[next_store_sm]),
                        dst,
                        addr: *addr,
                        len: *bytes,
                    });
                    next_store_sm = (next_store_sm + 1) % num_sms;
                }
                TraceOp::RemoteAtomic {
                    addr,
                    bytes,
                    value_seed,
                } => {
                    let dst = self.map.owner(*addr);
                    if dst == self.id {
                        continue; // local atomics stay on-chip
                    }
                    sm_clock[next_store_sm] += u64::from(self.config.store_issue_cycles);
                    stats.remote_atomics += 1;
                    let data: Vec<u8> = (0..*bytes)
                        .map(|i| crate::trace::store_byte(addr + u64::from(i), *value_seed))
                        .collect();
                    atomics.push(TimedStore {
                        time: self.config.clock.cycles_to_time(sm_clock[next_store_sm]),
                        store: RemoteStore {
                            src: self.id,
                            dst,
                            addr: *addr,
                            data,
                        },
                    });
                    next_store_sm = (next_store_sm + 1) % num_sms;
                }
            }
        }

        let end_cycles = *sm_clock.iter().max().expect("at least one SM");
        egress.sort_by_key(|t| t.time);
        atomics.sort_by_key(|t| t.time);
        probes.sort_by_key(|t| t.time);
        KernelRun {
            name: trace.name.clone(),
            kernel_time: self.config.clock.cycles_to_time(end_cycles),
            egress,
            atomics,
            probes,
            fences,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AccessPattern;

    fn small_gpu() -> Gpu {
        Gpu::new(
            GpuConfig::tiny(),
            GpuId::new(0),
            AddressMap::new(2, 1 << 30),
        )
    }

    fn remote_store_op(addr_in_gpu1: u64) -> TraceOp {
        TraceOp::WarpStore {
            pattern: AccessPattern::Contiguous {
                base: (1u64 << 30) + addr_in_gpu1,
            },
            bytes_per_lane: 4,
            active_mask: u32::MAX,
            value_seed: 1,
        }
    }

    #[test]
    fn compute_spreads_across_sms() {
        let gpu = small_gpu();
        let mut t = KernelTrace::new("c");
        // 4 SMs, 8 compute ops of 100 cycles: 2 per SM -> 200 cycles.
        for _ in 0..8 {
            t.push(TraceOp::Compute { cycles: 100 });
        }
        let run = gpu.execute_kernel(&t);
        assert_eq!(run.kernel_time, GpuConfig::tiny().clock.cycles_to_time(200));
        assert_eq!(run.stats.compute_cycles, 800);
    }

    #[test]
    fn local_stores_do_not_egress() {
        let gpu = small_gpu();
        let mut t = KernelTrace::new("l");
        t.push(TraceOp::WarpStore {
            pattern: AccessPattern::Contiguous { base: 0x1000 },
            bytes_per_lane: 4,
            active_mask: u32::MAX,
            value_seed: 0,
        });
        let run = gpu.execute_kernel(&t);
        assert!(run.egress.is_empty());
        assert_eq!(run.stats.local_bytes, 128);
        assert_eq!(run.stats.local_stores, 1);
    }

    #[test]
    fn remote_stores_egress_in_time_order() {
        let gpu = small_gpu();
        let mut t = KernelTrace::new("r");
        for i in 0..16 {
            t.push(TraceOp::Compute {
                cycles: 10 * (i % 5),
            });
            t.push(remote_store_op(u64::from(i) * 256));
        }
        let run = gpu.execute_kernel(&t);
        assert_eq!(run.egress.len(), 16);
        for pair in run.egress.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert_eq!(run.stats.remote_stores, 16);
        assert_eq!(run.stats.mean_remote_size(), Some(128.0));
    }

    #[test]
    fn fence_synchronizes_sms() {
        let gpu = small_gpu();
        let mut t = KernelTrace::new("f");
        t.push(TraceOp::Compute { cycles: 1000 }); // SM0
        t.push(TraceOp::Compute { cycles: 10 }); // SM1
        t.push(TraceOp::Fence);
        t.push(TraceOp::Compute { cycles: 5 }); // SM0 again (round-robin)
        let run = gpu.execute_kernel(&t);
        assert_eq!(run.fences.len(), 1);
        let clk = GpuConfig::tiny().clock;
        assert_eq!(run.fences[0], clk.cycles_to_time(1000));
        assert_eq!(run.kernel_time, clk.cycles_to_time(1005));
    }

    #[test]
    fn remote_loads_stall_and_probe() {
        let gpu = small_gpu();
        let mut t = KernelTrace::new("ld");
        t.push(TraceOp::RemoteLoad {
            addr: (1 << 30) + 0x40,
            bytes: 8,
        });
        t.push(TraceOp::RemoteLoad {
            addr: 0x40,
            bytes: 8,
        }); // local: free
        let run = gpu.execute_kernel(&t);
        assert_eq!(run.probes.len(), 1);
        assert_eq!(run.stats.remote_loads, 1);
        assert_eq!(run.probes[0].dst, GpuId::new(1));
        // The remote load stalled the SM for the configured round trip.
        let clk = GpuConfig::tiny().clock;
        assert_eq!(
            run.kernel_time,
            clk.cycles_to_time(u64::from(GpuConfig::tiny().remote_load_cycles))
        );
    }

    #[test]
    fn remote_atomics_are_listed_separately() {
        let gpu = small_gpu();
        let mut t = KernelTrace::new("at");
        t.push(TraceOp::RemoteAtomic {
            addr: (1 << 30) + 0x80,
            bytes: 8,
            value_seed: 5,
        });
        let run = gpu.execute_kernel(&t);
        assert!(run.egress.is_empty());
        assert_eq!(run.atomics.len(), 1);
        assert_eq!(run.stats.remote_atomics, 1);
        assert_eq!(run.atomics[0].store.len(), 8);
    }

    #[test]
    fn scattered_stores_produce_small_sizes() {
        let gpu = small_gpu();
        let mut t = KernelTrace::new("s");
        let addrs: Vec<u64> = (0..32).map(|i| (1u64 << 30) + i * 8192).collect();
        t.push(TraceOp::WarpStore {
            pattern: AccessPattern::Scattered { addrs },
            bytes_per_lane: 8,
            active_mask: u32::MAX,
            value_seed: 0,
        });
        let run = gpu.execute_kernel(&t);
        assert_eq!(run.stats.remote_stores, 32);
        assert_eq!(run.stats.mean_remote_size(), Some(8.0));
        assert_eq!(run.stats.fraction_at_most(32), Some(1.0));
    }
}
