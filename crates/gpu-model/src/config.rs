//! GPU hardware configuration — Table III of the paper.

use sim_engine::{Bandwidth, Frequency};

/// GPU hardware parameters, defaulting to the NVIDIA GV100 configuration
/// of Table III.
///
/// # Examples
///
/// ```
/// use gpu_model::GpuConfig;
///
/// let cfg = GpuConfig::gv100();
/// assert_eq!(cfg.num_sms, 80);
/// assert_eq!(cfg.cache_block_bytes, 128);
/// assert_eq!(cfg.global_memory_bytes, 16 << 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Cache block (line) size in bytes.
    pub cache_block_bytes: u32,
    /// L1/L2 sector size in bytes (granularity of partial-line traffic).
    pub sector_bytes: u32,
    /// Global (HBM) memory capacity in bytes.
    pub global_memory_bytes: u64,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per CTA.
    pub max_threads_per_cta: u32,
    /// Core clock.
    pub clock: Frequency,
    /// Local HBM bandwidth.
    pub hbm_bandwidth: Bandwidth,
    /// SM cycles charged per memory transaction issued to the network.
    pub store_issue_cycles: u32,
    /// SM cycles a warp stalls on an on-demand remote load (why the
    /// P2P-store paradigm keeps loads local, §IV-C).
    pub remote_load_cycles: u32,
}

impl GpuConfig {
    /// The GV100 configuration used in the paper's evaluation (Table III).
    pub fn gv100() -> Self {
        GpuConfig {
            cache_block_bytes: 128,
            sector_bytes: 32,
            global_memory_bytes: 16 << 30,
            num_sms: 80,
            cores_per_sm: 64,
            l2_bytes: 6 << 20,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_threads_per_cta: 1024,
            clock: Frequency::from_ghz(1.4),
            hbm_bandwidth: Bandwidth::from_gbps(900.0),
            store_issue_cycles: 1,
            remote_load_cycles: 1400, // ~1us round trip over the switch
        }
    }

    /// An NVIDIA GA100-class configuration (used by the §VI-B area
    /// discussion): 108 SMs, 40 MB L2, 192 KB combined L1 per SM.
    pub fn ga100() -> Self {
        GpuConfig {
            global_memory_bytes: 40 << 30,
            num_sms: 108,
            l2_bytes: 40 << 20,
            ..GpuConfig::gv100()
        }
    }

    /// A scaled-down configuration for fast unit tests: 4 SMs, small
    /// memory, same cache geometry.
    pub fn tiny() -> Self {
        GpuConfig {
            num_sms: 4,
            global_memory_bytes: 64 << 20,
            l2_bytes: 1 << 20,
            ..GpuConfig::gv100()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. sector size does
    /// not divide the cache block size).
    pub fn validate(&self) {
        assert!(self.cache_block_bytes.is_power_of_two());
        assert!(self.sector_bytes.is_power_of_two());
        assert_eq!(
            self.cache_block_bytes % self.sector_bytes,
            0,
            "sectors must tile the cache block"
        );
        assert!(self.warp_size > 0 && self.warp_size <= 64);
        assert!(self.num_sms > 0);
        assert!(self.max_threads_per_cta <= self.max_threads_per_sm);
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::gv100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::SimTime;

    #[test]
    fn gv100_matches_table3() {
        let c = GpuConfig::gv100();
        c.validate();
        assert_eq!(c.cache_block_bytes, 128);
        assert_eq!(c.global_memory_bytes, 16 << 30);
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.cores_per_sm, 64);
        assert_eq!(c.l2_bytes, 6 << 20);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.max_threads_per_sm, 2048);
        assert_eq!(c.max_threads_per_cta, 1024);
    }

    #[test]
    fn tiny_is_valid() {
        GpuConfig::tiny().validate();
    }

    #[test]
    fn clock_period() {
        let c = GpuConfig::gv100();
        // 1.4 GHz -> 714ps period (rounded).
        assert_eq!(c.clock.cycles_to_time(1), SimTime::from_ps(714));
    }

    #[test]
    #[should_panic(expected = "sectors must tile")]
    fn bad_sector_panics() {
        let mut c = GpuConfig::gv100();
        c.sector_bytes = 256; // larger than the cache block: cannot tile it
        c.validate();
    }
}
