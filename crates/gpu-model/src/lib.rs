//! # gpu-model
//!
//! A trace-driven GPU memory-system model, rebuilt from scratch to stand
//! in for the proprietary NVAS simulator the FinePack paper extends.
//!
//! The model covers exactly the mechanisms FinePack's results depend on:
//!
//! - [`GpuConfig`]: the GV100 configuration of Table III.
//! - [`AddressMap`] / [`GpuId`]: the node-wide shared physical address
//!   space of a single-node multi-GPU system (§II-A).
//! - [`KernelTrace`] / [`TraceOp`] / [`AccessPattern`]: the NVBit-like
//!   trace format workload generators synthesize.
//! - [`coalesce_warp_store`]: intra-warp L1 store coalescing — the reason
//!   regular apps emit 128B remote stores while irregular apps emit 4–32B
//!   ones (Fig 4).
//! - [`Gpu::execute_kernel`]: SM-parallel trace replay producing the
//!   time-ordered remote-store egress stream the interconnect consumes.
//! - [`MemoryImage`]: a functional memory image used to verify that
//!   FinePack is semantically transparent.
//!
//! Remote stores bypass L2 on real NVIDIA GPUs (it is a memory-side cache
//! with no inter-GPU coherence, §III), so this model routes them from the
//! L1 coalescer directly to the egress port — which is precisely the
//! interface where FinePack's remote write queue sits.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod analysis;
mod coalescer;
mod config;
mod gpu;
mod memory;
mod trace;
mod traceio;

pub use addr::{AddressMap, GpuId};
pub use analysis::{profile_run, StoreProfile};
pub use coalescer::{coalesce_warp_store, route_txn, StoreTxn};
pub use config::GpuConfig;
pub use gpu::{Gpu, KernelRun, KernelStats, TimedProbe, TimedStore};
pub use memory::MemoryImage;
pub use trace::{store_byte, AccessPattern, KernelTrace, RemoteStore, TraceOp};
pub use traceio::{read_trace, write_trace, TraceIoError};
