//! Replay-engine properties over randomly generated traces: determinism,
//! time ordering, conservation of bytes, and scale invariance.

use gpu_model::{
    profile_run, AccessPattern, AddressMap, Gpu, GpuConfig, GpuId, KernelTrace, TraceOp,
};
use sim_engine::DetRng;

fn random_op(rng: &mut DetRng) -> TraceOp {
    match rng.next_u64_below(4) {
        0 => TraceOp::Compute {
            cycles: rng.next_in_range(1, 5_000) as u32,
        },
        1 => {
            let base = rng.next_u64_below(1 << 20);
            TraceOp::WarpStore {
                pattern: AccessPattern::Contiguous {
                    base: (1u64 << 30) + base * 8,
                },
                bytes_per_lane: rng.next_in_range(1, 9) as u32,
                active_mask: rng.next_u64() as u32,
                value_seed: base,
            }
        }
        2 => TraceOp::WarpStore {
            pattern: AccessPattern::Scattered {
                addrs: (0..32)
                    .map(|_| (1u64 << 30) + rng.next_u64_below(1 << 20) * 8)
                    .collect(),
            },
            bytes_per_lane: 8,
            active_mask: u32::MAX,
            value_seed: 1,
        },
        _ => TraceOp::Fence,
    }
}

fn random_trace(rng: &mut DetRng, name: &str, max_ops: u64) -> KernelTrace {
    let mut t = KernelTrace::new(name);
    t.ops = (0..rng.next_u64_below(max_ops))
        .map(|_| random_op(rng))
        .collect();
    t
}

fn gpu() -> Gpu {
    Gpu::new(
        GpuConfig::tiny(),
        GpuId::new(0),
        AddressMap::new(2, 1 << 30),
    )
}

/// Replay is a pure function of the trace.
#[test]
fn replay_is_deterministic() {
    let mut rng = DetRng::new(0x4E_0001, "replay-det");
    for _ in 0..48 {
        let t = random_trace(&mut rng, "d", 64);
        let g = gpu();
        let a = g.execute_kernel(&t);
        let b = g.execute_kernel(&t);
        assert_eq!(a.kernel_time, b.kernel_time);
        assert_eq!(a.egress, b.egress);
        assert_eq!(a.fences, b.fences);
    }
}

/// Egress is time-sorted, times never exceed the kernel end, and
/// fence times are non-decreasing.
#[test]
fn replay_respects_time_order() {
    let mut rng = DetRng::new(0x4E_0002, "replay-order");
    for _ in 0..48 {
        let t = random_trace(&mut rng, "o", 64);
        let run = gpu().execute_kernel(&t);
        for pair in run.egress.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for ts in &run.egress {
            assert!(ts.time <= run.kernel_time);
        }
        for pair in run.fences.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }
}

/// Conservation: remote bytes in stats equal the sum over egress
/// stores, and every egress store targets a peer.
#[test]
fn replay_conserves_bytes() {
    let mut rng = DetRng::new(0x4E_0003, "replay-conserve");
    for _ in 0..48 {
        let t = random_trace(&mut rng, "c", 64);
        let run = gpu().execute_kernel(&t);
        let sum: u64 = run.egress.iter().map(|s| u64::from(s.store.len())).sum();
        assert_eq!(sum, run.stats.remote_bytes);
        assert_eq!(run.egress.len() as u64, run.stats.remote_stores);
        for s in &run.egress {
            assert_eq!(s.store.dst, GpuId::new(1));
            assert_eq!(s.store.src, GpuId::new(0));
        }
        // Profile totals agree with replay stats.
        let p = profile_run(&run, 1 << 30);
        assert_eq!(p.total_bytes, run.stats.remote_bytes);
    }
}

/// More compute never reduces kernel time.
#[test]
fn compute_is_monotone() {
    let mut rng = DetRng::new(0x4E_0004, "replay-monotone");
    for _ in 0..48 {
        let mut base = random_trace(&mut rng, "m", 32);
        let extra = rng.next_in_range(1, 10_000) as u32;
        let t0 = gpu().execute_kernel(&base).kernel_time;
        base.push(TraceOp::Compute { cycles: extra });
        let t1 = gpu().execute_kernel(&base).kernel_time;
        assert!(t1 >= t0);
    }
}
