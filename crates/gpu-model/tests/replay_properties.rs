//! Replay-engine properties over randomly generated traces: determinism,
//! time ordering, conservation of bytes, and scale invariance.

use gpu_model::{
    profile_run, AccessPattern, AddressMap, Gpu, GpuConfig, GpuId, KernelTrace, TraceOp,
};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        (1u32..5_000).prop_map(|c| TraceOp::Compute { cycles: c }),
        (0u64..(1 << 20), 1u32..=8, any::<u32>()).prop_map(|(base, b, m)| TraceOp::WarpStore {
            pattern: AccessPattern::Contiguous {
                base: (1u64 << 30) + base * 8,
            },
            bytes_per_lane: b,
            active_mask: m,
            value_seed: base,
        }),
        prop::collection::vec(0u64..(1 << 20), 32).prop_map(|slots| TraceOp::WarpStore {
            pattern: AccessPattern::Scattered {
                addrs: slots.into_iter().map(|s| (1u64 << 30) + s * 8).collect(),
            },
            bytes_per_lane: 8,
            active_mask: u32::MAX,
            value_seed: 1,
        }),
        Just(TraceOp::Fence),
    ]
}

fn gpu() -> Gpu {
    Gpu::new(GpuConfig::tiny(), GpuId::new(0), AddressMap::new(2, 1 << 30))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replay is a pure function of the trace.
    #[test]
    fn replay_is_deterministic(ops in prop::collection::vec(op_strategy(), 0..64)) {
        let mut t = KernelTrace::new("d");
        t.ops = ops;
        let g = gpu();
        let a = g.execute_kernel(&t);
        let b = g.execute_kernel(&t);
        prop_assert_eq!(a.kernel_time, b.kernel_time);
        prop_assert_eq!(a.egress, b.egress);
        prop_assert_eq!(a.fences, b.fences);
    }

    /// Egress is time-sorted, times never exceed the kernel end, and
    /// fence times are non-decreasing.
    #[test]
    fn replay_respects_time_order(ops in prop::collection::vec(op_strategy(), 0..64)) {
        let mut t = KernelTrace::new("o");
        t.ops = ops;
        let run = gpu().execute_kernel(&t);
        for pair in run.egress.windows(2) {
            prop_assert!(pair[0].time <= pair[1].time);
        }
        for ts in &run.egress {
            prop_assert!(ts.time <= run.kernel_time);
        }
        for pair in run.fences.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    /// Conservation: remote bytes in stats equal the sum over egress
    /// stores, and every egress store targets a peer.
    #[test]
    fn replay_conserves_bytes(ops in prop::collection::vec(op_strategy(), 0..64)) {
        let mut t = KernelTrace::new("c");
        t.ops = ops;
        let run = gpu().execute_kernel(&t);
        let sum: u64 = run.egress.iter().map(|s| u64::from(s.store.len())).sum();
        prop_assert_eq!(sum, run.stats.remote_bytes);
        prop_assert_eq!(run.egress.len() as u64, run.stats.remote_stores);
        for s in &run.egress {
            prop_assert_eq!(s.store.dst, GpuId::new(1));
            prop_assert_eq!(s.store.src, GpuId::new(0));
        }
        // Profile totals agree with replay stats.
        let p = profile_run(&run, 1 << 30);
        prop_assert_eq!(p.total_bytes, run.stats.remote_bytes);
    }

    /// More compute never reduces kernel time.
    #[test]
    fn compute_is_monotone(
        ops in prop::collection::vec(op_strategy(), 0..32),
        extra in 1u32..10_000,
    ) {
        let mut base = KernelTrace::new("m");
        base.ops = ops;
        let t0 = gpu().execute_kernel(&base).kernel_time;
        base.push(TraceOp::Compute { cycles: extra });
        let t1 = gpu().execute_kernel(&base).kernel_time;
        prop_assert!(t1 >= t0);
    }
}
