//! Property tests for the GPU model: the L1 coalescer must cover exactly
//! the bytes the warp wrote, with per-lane conflict resolution, and
//! routing must partition cleanly by address ownership.

use std::collections::HashMap;

use gpu_model::{
    coalesce_warp_store, route_txn, AccessPattern, AddressMap, GpuConfig, GpuId, MemoryImage,
    store_byte,
};
use proptest::prelude::*;

fn scattered_warp() -> impl Strategy<Value = (Vec<u64>, u32, u32)> {
    (
        prop::collection::vec(0u64..4096, 32),
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        any::<u32>(),
    )
        .prop_map(|(mut addrs, elem, mask)| {
            for a in &mut addrs {
                *a *= u64::from(elem); // element-aligned
            }
            (addrs, elem, mask)
        })
}

proptest! {
    /// The union of transaction byte ranges equals the union of active
    /// lanes' write ranges; transactions never overlap; data honors
    /// highest-lane-wins on conflicts.
    #[test]
    fn coalescer_covers_exactly_the_written_bytes(
        (addrs, elem, mask) in scattered_warp(),
        seed in any::<u64>(),
    ) {
        let cfg = GpuConfig::gv100();
        let txns = coalesce_warp_store(
            &cfg,
            &AccessPattern::Scattered { addrs: addrs.clone() },
            elem,
            mask,
            seed,
        );
        // Expected byte set with highest-lane-wins resolution.
        let mut expected: HashMap<u64, ()> = HashMap::new();
        for lane in 0..32u32 {
            if mask & (1 << lane) == 0 {
                continue;
            }
            for b in 0..u64::from(elem) {
                expected.insert(addrs[lane as usize] + b, ());
            }
        }
        let mut covered: HashMap<u64, ()> = HashMap::new();
        for t in &txns {
            prop_assert!(!t.is_empty());
            // A transaction never crosses a cache block.
            let first_block = t.addr / 128;
            let last_block = (t.addr + u64::from(t.len()) - 1) / 128;
            prop_assert_eq!(first_block, last_block);
            for i in 0..u64::from(t.len()) {
                let dup = covered.insert(t.addr + i, ());
                prop_assert!(dup.is_none(), "byte {:#x} covered twice", t.addr + i);
                // Every data byte is the deterministic store pattern.
                prop_assert_eq!(t.data[i as usize], store_byte(t.addr + i, seed));
            }
        }
        prop_assert_eq!(covered.len(), expected.len());
        for k in expected.keys() {
            prop_assert!(covered.contains_key(k));
        }
    }

    /// Routing partitions transactions: a store is remote iff its owner
    /// differs from the issuing GPU, and the destination is the owner.
    #[test]
    fn routing_partitions_by_ownership(
        line in 0u64..((4u64 << 30) / 128),
        src in 0u8..4,
    ) {
        let map = AddressMap::new(4, 1 << 30);
        let addr = line * 128;
        let txn = gpu_model::StoreTxn { addr, data: vec![7; 8] };
        // StoreTxn fields are public? constructed above; route it.
        match route_txn(&map, GpuId::new(src), txn) {
            Ok(remote) => {
                prop_assert_ne!(remote.dst, GpuId::new(src));
                prop_assert_eq!(remote.dst, map.owner(addr));
            }
            Err(_) => prop_assert_eq!(map.owner(addr), GpuId::new(src)),
        }
    }

    /// MemoryImage::same_contents is an equivalence on random write sets.
    #[test]
    fn memory_image_equivalence(
        writes in prop::collection::vec((0u64..65536, 1usize..32, any::<u8>()), 0..64),
    ) {
        let mut a = MemoryImage::new();
        let mut b = MemoryImage::new();
        for (addr, len, v) in &writes {
            a.write(*addr, &vec![*v; *len]);
        }
        // Apply in reverse order of groups with same result only if no
        // overlaps; instead, apply identically for the reflexivity check.
        for (addr, len, v) in &writes {
            b.write(*addr, &vec![*v; *len]);
        }
        prop_assert!(a.same_contents(&b));
        prop_assert!(b.same_contents(&a));
        if let Some((addr, _, _)) = writes.first() {
            // Flip one byte: the images must now differ.
            let cur = a.read(*addr, 1)[0];
            b.write(*addr, &[cur ^ 0xFF]);
            prop_assert!(!a.same_contents(&b));
        }
    }
}
