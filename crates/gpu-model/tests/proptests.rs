//! Randomized property tests for the GPU model: the L1 coalescer must
//! cover exactly the bytes the warp wrote, with per-lane conflict
//! resolution, and routing must partition cleanly by address ownership.

use std::collections::HashMap;

use gpu_model::{
    coalesce_warp_store, route_txn, store_byte, AccessPattern, AddressMap, GpuConfig, GpuId,
    MemoryImage,
};
use sim_engine::DetRng;

fn scattered_warp(rng: &mut DetRng) -> (Vec<u64>, u32, u32) {
    let elem = [1u32, 2, 4, 8][rng.next_u64_below(4) as usize];
    let addrs: Vec<u64> = (0..32)
        .map(|_| rng.next_u64_below(4096) * u64::from(elem))
        .collect();
    let mask = rng.next_u64() as u32;
    (addrs, elem, mask)
}

/// The union of transaction byte ranges equals the union of active
/// lanes' write ranges; transactions never overlap; data honors
/// highest-lane-wins on conflicts.
#[test]
fn coalescer_covers_exactly_the_written_bytes() {
    let cfg = GpuConfig::gv100();
    let mut rng = DetRng::new(0x69_0001, "coalescer");
    for _ in 0..256 {
        let (addrs, elem, mask) = scattered_warp(&mut rng);
        let seed = rng.next_u64();
        let txns = coalesce_warp_store(
            &cfg,
            &AccessPattern::Scattered {
                addrs: addrs.clone(),
            },
            elem,
            mask,
            seed,
        );
        // Expected byte set with highest-lane-wins resolution.
        let mut expected: HashMap<u64, ()> = HashMap::new();
        for lane in 0..32u32 {
            if mask & (1 << lane) == 0 {
                continue;
            }
            for b in 0..u64::from(elem) {
                expected.insert(addrs[lane as usize] + b, ());
            }
        }
        let mut covered: HashMap<u64, ()> = HashMap::new();
        for t in &txns {
            assert!(!t.is_empty());
            // A transaction never crosses a cache block.
            let first_block = t.addr / 128;
            let last_block = (t.addr + u64::from(t.len()) - 1) / 128;
            assert_eq!(first_block, last_block);
            for i in 0..u64::from(t.len()) {
                let dup = covered.insert(t.addr + i, ());
                assert!(dup.is_none(), "byte {:#x} covered twice", t.addr + i);
                // Every data byte is the deterministic store pattern.
                assert_eq!(t.data[i as usize], store_byte(t.addr + i, seed));
            }
        }
        assert_eq!(covered.len(), expected.len());
        for k in expected.keys() {
            assert!(covered.contains_key(k));
        }
    }
}

/// Routing partitions transactions: a store is remote iff its owner
/// differs from the issuing GPU, and the destination is the owner.
#[test]
fn routing_partitions_by_ownership() {
    let map = AddressMap::new(4, 1 << 30);
    let mut rng = DetRng::new(0x69_0002, "routing");
    for _ in 0..500 {
        let line = rng.next_u64_below((4u64 << 30) / 128);
        let src = rng.next_u64_below(4) as u8;
        let addr = line * 128;
        let txn = gpu_model::StoreTxn {
            addr,
            data: vec![7; 8],
        };
        match route_txn(&map, GpuId::new(src), txn) {
            Ok(remote) => {
                assert_ne!(remote.dst, GpuId::new(src));
                assert_eq!(remote.dst, map.owner(addr));
            }
            Err(_) => assert_eq!(map.owner(addr), GpuId::new(src)),
        }
    }
}

/// MemoryImage::same_contents is an equivalence on random write sets.
#[test]
fn memory_image_equivalence() {
    let mut rng = DetRng::new(0x69_0003, "memimage");
    for _ in 0..100 {
        let n = rng.next_u64_below(64) as usize;
        let writes: Vec<(u64, usize, u8)> = (0..n)
            .map(|_| {
                (
                    rng.next_u64_below(65536),
                    rng.next_in_range(1, 32) as usize,
                    rng.next_u64() as u8,
                )
            })
            .collect();
        let mut a = MemoryImage::new();
        let mut b = MemoryImage::new();
        for (addr, len, v) in &writes {
            a.write(*addr, &vec![*v; *len]);
        }
        for (addr, len, v) in &writes {
            b.write(*addr, &vec![*v; *len]);
        }
        assert!(a.same_contents(&b));
        assert!(b.same_contents(&a));
        if let Some((addr, _, _)) = writes.first() {
            // Flip one byte: the images must now differ.
            let cur = a.read(*addr, 1)[0];
            b.write(*addr, &[cur ^ 0xFF]);
            assert!(!a.same_contents(&b));
        }
    }
}
