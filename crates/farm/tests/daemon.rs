//! End-to-end daemon tests over a real unix socket: submit, cache hit,
//! status counters, error handling, and clean shutdown.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

use farm::{JobKind, JobRequest, ServeConfig, Server};

fn sock_path(tag: &str) -> String {
    let dir = std::env::temp_dir();
    dir.join(format!(
        "finepack-farm-test-{}-{tag}.sock",
        std::process::id()
    ))
    .to_string_lossy()
    .into_owned()
}

fn spawn_daemon(socket: &str, cache_entries: usize) -> std::thread::JoinHandle<()> {
    let server = Server::bind(ServeConfig {
        socket: socket.to_string(),
        cache_entries,
        jobs: 1,
        intra_jobs: 1,
        trace_out: None,
    })
    .expect("bind");
    std::thread::spawn(move || server.run().expect("daemon run"))
}

fn small_run() -> JobRequest {
    let mut req = JobRequest::new(JobKind::Run);
    req.app = Some("jacobi".into());
    req.gpus = 2;
    req.iterations = 1;
    req.scale_down = 16;
    req
}

#[test]
fn second_submission_is_a_byte_identical_cache_hit() {
    let socket = sock_path("hit");
    let daemon = spawn_daemon(&socket, 8);

    let first = farm::submit(&socket, &small_run(), |_| {}).expect("first submit");
    assert!(!first.cache_hit);
    assert!(first.sim_events > 0);
    assert_eq!(first.hits, 0);
    assert!(first.report.contains("jacobi on 2 GPUs"));

    let second = farm::submit(&socket, &small_run(), |_| {}).expect("second submit");
    assert!(second.cache_hit, "identical job must hit the cache");
    assert_eq!(second.sim_events, 0, "cache hits execute no events");
    assert_eq!(second.hits, 1, "entry hit counter must increment");
    assert_eq!(second.report, first.report, "served bytes must match");
    assert_eq!(second.fingerprint, first.fingerprint);
    assert_eq!(second.reports_json, first.reports_json);

    let status = farm::status(&socket).expect("status");
    assert_eq!(status.jobs_submitted, 2);
    assert_eq!(status.cache_hits, 1);
    assert_eq!(status.cache_misses, 1);
    assert_eq!(status.cache_entries, 1);
    assert_eq!(status.sim_events_total, first.sim_events);

    farm::shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon exits");
    assert!(
        !std::path::Path::new(&socket).exists(),
        "socket removed on shutdown"
    );
}

#[test]
fn perturbed_jobs_miss_and_evict_fifo() {
    let socket = sock_path("evict");
    let daemon = spawn_daemon(&socket, 1);

    let a = farm::submit(&socket, &small_run(), |_| {}).expect("a");
    let mut other = small_run();
    other.seed = 7;
    let b = farm::submit(&socket, &other, |_| {}).expect("b");
    assert!(!b.cache_hit, "a different seed must be a distinct entry");
    assert_ne!(a.fingerprint, b.fingerprint);

    // Capacity 1: job `a` was evicted, so resubmitting it misses again.
    let a2 = farm::submit(&socket, &small_run(), |_| {}).expect("a2");
    assert!(!a2.cache_hit);
    assert_eq!(a2.report, a.report, "recomputed result is still identical");

    let status = farm::status(&socket).expect("status");
    assert_eq!(status.cache_evictions, 2);
    assert_eq!(status.cache_entries, 1);

    farm::shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon exits");
}

#[test]
fn bad_requests_answer_errors_without_killing_the_daemon() {
    let socket = sock_path("errors");
    let daemon = spawn_daemon(&socket, 4);

    // Malformed JSON, unknown cmd, and invalid jobs each answer an
    // error line on a live connection.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    for (request, want_code) in [
        ("this is not json\n", "malformed"),
        ("{\"schema_version\":1,\"cmd\":\"dance\"}\n", "malformed"),
        ("{\"schema_version\":99,\"cmd\":\"status\"}\n", "malformed"),
        (
            "{\"schema_version\":1,\"cmd\":\"submit\",\"job\":{\"kind\":\"run\",\"gpus\":1}}\n",
            "invalid",
        ),
    ] {
        stream.write_all(request.as_bytes()).expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert!(
            line.contains("\"event\":\"error\"") && line.contains(want_code),
            "request {request:?} answered {line:?}"
        );
    }
    // A peer dropping mid-connection must not take the daemon down.
    drop(stream);
    drop(reader);

    let outcome = farm::submit(&socket, &small_run(), |_| {}).expect("daemon still alive");
    assert!(!outcome.cache_hit);

    // Client-side validation refuses bad jobs before dialing.
    let mut bad = small_run();
    bad.gpus = 1;
    assert!(farm::submit(&socket, &bad, |_| {}).is_err());

    farm::shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon exits");
}

#[test]
fn audit_flag_stamps_the_cached_entry() {
    let socket = sock_path("audit");
    let daemon = spawn_daemon(&socket, 4);

    let mut audited = small_run();
    audited.audit = true;
    let first = farm::submit(&socket, &audited, |_| {}).expect("audited submit");
    assert_eq!(first.audit_clean, Some(true), "default config audits clean");

    // The stamp rides the cache entry: an unaudited resubmission of the
    // same point still sees it.
    let second = farm::submit(&socket, &small_run(), |_| {}).expect("resubmit");
    assert!(second.cache_hit);
    assert_eq!(second.audit_clean, Some(true));

    farm::shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon exits");
}

#[test]
fn stale_socket_files_are_reclaimed_and_live_ones_refused() {
    let socket = sock_path("stale");
    // A dead daemon's leftover socket file must not block a new bind.
    drop(std::os::unix::net::UnixListener::bind(&socket).expect("plant stale socket"));
    let daemon = spawn_daemon(&socket, 2);
    assert!(farm::status(&socket).is_ok());

    // But a second daemon on a *live* socket is refused.
    let err = Server::bind(ServeConfig {
        socket: socket.clone(),
        ..ServeConfig::default()
    });
    assert!(matches!(err, Err(farm::FarmError::Bind { .. })));

    farm::shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon exits");
}
