//! Version and build identity.
//!
//! The build fingerprint is folded into every job's cache key
//! ([`crate::JobRequest::fingerprint`]) so a daemon can never serve a
//! cached entry produced by a different binary: a recompile with a new
//! crate version, wire schema, report schema, or target changes the
//! fingerprint, and every stale entry becomes an ordinary miss.

use system::{ConfigFingerprint, REPORT_SCHEMA_VERSION};
use telemetry::CHROME_TRACE_SCHEMA_VERSION;

/// Version of the farm's line-delimited JSON wire protocol; stamped as
/// `schema_version` on every request and response line. Bump on any
/// protocol change.
pub const WIRE_SCHEMA_VERSION: u32 = 1;

/// The crate version baked into this binary.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// A short hex fingerprint of this build's result-affecting identity:
/// crate version, every machine-readable schema version, debug/release
/// mode (debug assertions can change failure text), and the target
/// platform. Deterministic for a given build configuration — it must
/// be, because it keys the result cache.
pub fn build_fingerprint() -> String {
    let mut bytes = system::CanonicalBytes::new();
    bytes.push("crate", CRATE_VERSION);
    bytes.push("wire", &WIRE_SCHEMA_VERSION.to_string());
    bytes.push("report", &REPORT_SCHEMA_VERSION.to_string());
    bytes.push("trace", &CHROME_TRACE_SCHEMA_VERSION.to_string());
    bytes.push(
        "profile",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
    bytes.push("os", std::env::consts::OS);
    bytes.push("arch", std::env::consts::ARCH);
    let digest: ConfigFingerprint = bytes.digest();
    // 16 hex chars is plenty for a build stamp humans will read.
    digest.hex()[..16].to_string()
}

/// The `finepack-sim version` output line.
pub fn version_line() -> String {
    format!(
        "finepack-sim {CRATE_VERSION} (build {}, wire schema {WIRE_SCHEMA_VERSION}, \
         report schema {REPORT_SCHEMA_VERSION})\n",
        build_fingerprint()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_fingerprint_is_stable_within_a_build() {
        let a = build_fingerprint();
        assert_eq!(a, build_fingerprint());
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn version_line_names_the_build() {
        let line = version_line();
        assert!(line.starts_with("finepack-sim "));
        assert!(line.contains(&build_fingerprint()));
        assert!(line.contains("wire schema 1"));
        assert!(line.ends_with('\n'));
    }
}
