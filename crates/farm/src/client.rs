//! The farm client: connects to a daemon socket, submits jobs, and
//! streams their status lines back.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

use crate::error::FarmError;
use crate::job::JobRequest;
use crate::json::{parse, Json};
use crate::version::WIRE_SCHEMA_VERSION;

/// The outcome of one submitted job.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Daemon-assigned job sequence number.
    pub job: u64,
    /// The job's cache fingerprint (hex).
    pub fingerprint: String,
    /// Whether the result came from cache (no simulation executed).
    pub cache_hit: bool,
    /// Whether supervised sweep points failed (exit code 3).
    pub partial: bool,
    /// Audit stamp: `None` = never audited.
    pub audit_clean: Option<bool>,
    /// Events executed for this submission (0 on a cache hit).
    pub sim_events: u64,
    /// Times the entry has been served from cache.
    pub hits: u64,
    /// The rendered report, byte-identical to the one-shot CLI.
    pub report: String,
    /// Canonical per-report JSON objects, re-rendered.
    pub reports_json: Vec<String>,
}

/// A daemon `status` snapshot.
#[derive(Debug, Clone)]
pub struct StatusReport {
    /// Daemon crate version.
    pub version: String,
    /// Daemon build fingerprint.
    pub build: String,
    /// Jobs submitted since start.
    pub jobs_submitted: u64,
    /// Simulation events executed since start (cache hits add none).
    pub sim_events_total: u64,
    /// Entries resident in the cache.
    pub cache_entries: u64,
    /// Cache capacity.
    pub cache_capacity: u64,
    /// Lookups served from cache.
    pub cache_hits: u64,
    /// Lookups that had to simulate.
    pub cache_misses: u64,
    /// Entries evicted to stay within capacity.
    pub cache_evictions: u64,
}

struct Connection {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Connection {
    fn open(socket: &str) -> Result<Connection, FarmError> {
        let stream = UnixStream::connect(socket).map_err(|e| FarmError::Connect {
            path: socket.to_string(),
            detail: e.to_string(),
        })?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| FarmError::Io(e.to_string()))?,
        );
        Ok(Connection {
            writer: stream,
            reader,
        })
    }

    fn send(&mut self, cmd: &str, extra: Vec<(String, Json)>) -> Result<(), FarmError> {
        let mut fields = vec![
            ("schema_version".into(), Json::num(WIRE_SCHEMA_VERSION)),
            ("cmd".into(), Json::Str(cmd.into())),
        ];
        fields.extend(extra);
        let mut line = Json::Obj(fields).render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| FarmError::PeerDisconnected(format!("write failed: {e}")))
    }

    /// Reads the next non-empty response line; `Err(PeerDisconnected)`
    /// on EOF (the daemon died mid-exchange).
    fn next_event(&mut self) -> Result<Json, FarmError> {
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| FarmError::Io(format!("read failed: {e}")))?;
            if n == 0 {
                return Err(FarmError::PeerDisconnected(
                    "daemon closed the connection before answering".into(),
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            let v = parse(line.trim()).map_err(FarmError::Malformed)?;
            if v.get("event").and_then(Json::as_str) == Some("error") {
                let detail = v
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string();
                return Err(match v.get("code").and_then(Json::as_str) {
                    Some("invalid") => FarmError::Invalid(detail),
                    Some("malformed") => FarmError::Malformed(detail),
                    _ => FarmError::Failed(detail),
                });
            }
            return Ok(v);
        }
    }
}

fn num_field(v: &Json, key: &str) -> Result<u64, FarmError> {
    v.get(key)
        .and_then(Json::as_num::<u64>)
        .ok_or_else(|| FarmError::Malformed(format!("response missing numeric `{key}`")))
}

/// Submits one job and blocks until the daemon answers `done`,
/// invoking `on_start` if the job missed the cache and started
/// simulating.
///
/// # Errors
///
/// Daemon-side request errors come back typed ([`FarmError::Invalid`]
/// etc.); a daemon that dies mid-job is [`FarmError::PeerDisconnected`].
pub fn submit(
    socket: &str,
    job: &JobRequest,
    mut on_start: impl FnMut(u64),
) -> Result<SubmitOutcome, FarmError> {
    job.validate()?;
    let mut conn = Connection::open(socket)?;
    conn.send("submit", vec![("job".into(), job.to_json())])?;
    let accepted = conn.next_event()?;
    if accepted.get("event").and_then(Json::as_str) != Some("accepted") {
        return Err(FarmError::Malformed(format!(
            "expected accepted, got {}",
            accepted.render()
        )));
    }
    let seq = num_field(&accepted, "job")?;
    let fingerprint = accepted
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| FarmError::Malformed("accepted line missing fingerprint".into()))?
        .to_string();
    loop {
        let event = conn.next_event()?;
        match event.get("event").and_then(Json::as_str) {
            Some("start") => on_start(seq),
            Some("done") => {
                return Ok(SubmitOutcome {
                    job: seq,
                    fingerprint,
                    cache_hit: event
                        .get("cache_hit")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    partial: event
                        .get("partial")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    audit_clean: event.get("audit_clean").and_then(Json::as_bool),
                    sim_events: num_field(&event, "sim_events")?,
                    hits: num_field(&event, "hits")?,
                    report: event
                        .get("report")
                        .and_then(Json::as_str)
                        .ok_or_else(|| FarmError::Malformed("done line missing report".into()))?
                        .to_string(),
                    reports_json: event
                        .get("reports")
                        .and_then(Json::as_arr)
                        .map(|items| items.iter().map(Json::render).collect())
                        .unwrap_or_default(),
                });
            }
            other => {
                return Err(FarmError::Malformed(format!(
                    "unexpected event {other:?} while waiting for done"
                )))
            }
        }
    }
}

/// Fetches a daemon status snapshot.
///
/// # Errors
///
/// [`FarmError::Connect`] when no daemon answers on `socket`.
pub fn status(socket: &str) -> Result<StatusReport, FarmError> {
    let mut conn = Connection::open(socket)?;
    conn.send("status", vec![])?;
    let v = conn.next_event()?;
    if v.get("event").and_then(Json::as_str) != Some("status") {
        return Err(FarmError::Malformed(format!(
            "expected status, got {}",
            v.render()
        )));
    }
    let cache = v
        .get("cache")
        .ok_or_else(|| FarmError::Malformed("status missing cache".into()))?
        .clone();
    Ok(StatusReport {
        version: v
            .get("version")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        build: v
            .get("build")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        jobs_submitted: num_field(&v, "jobs_submitted")?,
        sim_events_total: num_field(&v, "sim_events_total")?,
        cache_entries: num_field(&cache, "entries")?,
        cache_capacity: num_field(&cache, "capacity")?,
        cache_hits: num_field(&cache, "hits")?,
        cache_misses: num_field(&cache, "misses")?,
        cache_evictions: num_field(&cache, "evictions")?,
    })
}

/// Asks the daemon to shut down cleanly; returns once it acknowledges.
///
/// # Errors
///
/// [`FarmError::Connect`] when no daemon answers on `socket`.
pub fn shutdown(socket: &str) -> Result<(), FarmError> {
    let mut conn = Connection::open(socket)?;
    conn.send("shutdown", vec![])?;
    let v = conn.next_event()?;
    if v.get("event").and_then(Json::as_str) != Some("bye") {
        return Err(FarmError::Malformed(format!(
            "expected bye, got {}",
            v.render()
        )));
    }
    Ok(())
}
