//! The sweep-farm daemon: a unix-socket server feeding jobs through
//! the supervised worker pool, fronted by the content-addressed
//! [`ResultCache`].
//!
//! Wire protocol (line-delimited JSON, one request line per command,
//! one or more response lines back; see DESIGN.md §14):
//!
//! ```text
//! -> {"schema_version":1,"cmd":"submit","job":{"kind":"run",...}}
//! <- {"schema_version":1,"event":"accepted","job":3,"fingerprint":"..."}
//! <- {"schema_version":1,"event":"start","job":3}            (miss only)
//! <- {"schema_version":1,"event":"done","job":3,"cache_hit":false,...}
//! ```
//!
//! A malformed line or an invalid job answers with an `error` event and
//! keeps the connection; a peer that disconnects mid-job loses only its
//! own connection — the daemon (and the job's freshly-cached result)
//! survive.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Instant;

use sim_engine::{SimTime, WorkerPool};
use telemetry::{chrome_trace, EventKind, TraceEvent, TraceHandle};

use crate::cache::{CacheEntry, ResultCache};
use crate::error::FarmError;
use crate::exec::execute_job;
use crate::job::JobRequest;
use crate::json::{parse, Json};
use crate::version::{build_fingerprint, CRATE_VERSION, WIRE_SCHEMA_VERSION};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to bind.
    pub socket: String,
    /// Result-cache capacity (entries; oldest evicted beyond this).
    pub cache_entries: usize,
    /// Worker threads for suite sweeps.
    pub jobs: usize,
    /// Intra-run shard workers per simulation.
    pub intra_jobs: usize,
    /// Optional path: on shutdown, write the farm lifecycle events as a
    /// Chrome trace (`job-submitted` / `job-start` / `job-cache-hit` /
    /// `job-done` on the "farm (serving)" track).
    pub trace_out: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: "finepack-farm.sock".into(),
            cache_entries: 64,
            jobs: 1,
            intra_jobs: 1,
            trace_out: None,
        }
    }
}

/// Aggregate serving counters, reported by `status`.
#[derive(Debug, Clone, Copy, Default)]
struct ServeStats {
    jobs_submitted: u64,
    sim_events_total: u64,
}

/// The daemon.
pub struct Server {
    config: ServeConfig,
    listener: UnixListener,
    pool: WorkerPool,
    cache: ResultCache,
    stats: ServeStats,
    trace: TraceHandle,
    ring: Option<std::sync::Arc<std::sync::Mutex<telemetry::RingCollector>>>,
    started: Instant,
}

impl Server {
    /// Binds the daemon socket. A leftover socket file from a dead
    /// daemon is removed and rebound; a socket another live daemon
    /// answers on is refused.
    ///
    /// # Errors
    ///
    /// [`FarmError::Bind`] when the path is unusable or already served.
    pub fn bind(config: ServeConfig) -> Result<Server, FarmError> {
        let path = std::path::Path::new(&config.socket);
        if path.exists() {
            if UnixStream::connect(path).is_ok() {
                return Err(FarmError::Bind {
                    path: config.socket.clone(),
                    detail: "another daemon is already serving on this socket".into(),
                });
            }
            // Stale socket from an unclean shutdown: reclaim it.
            std::fs::remove_file(path).map_err(|e| FarmError::Bind {
                path: config.socket.clone(),
                detail: format!("cannot remove stale socket: {e}"),
            })?;
        }
        let listener = UnixListener::bind(path).map_err(|e| FarmError::Bind {
            path: config.socket.clone(),
            detail: e.to_string(),
        })?;
        let (trace, ring) = if config.trace_out.is_some() {
            let (handle, ring) = TraceHandle::ring(4096, 16);
            (handle, Some(ring))
        } else {
            (TraceHandle::off(), None)
        };
        Ok(Server {
            pool: WorkerPool::new(config.jobs.max(1)),
            cache: ResultCache::new(config.cache_entries),
            stats: ServeStats::default(),
            trace,
            ring,
            started: Instant::now(),
            listener,
            config,
        })
    }

    /// Serves connections until a `shutdown` command arrives, then
    /// writes the optional serving trace and removes the socket file.
    ///
    /// # Errors
    ///
    /// [`FarmError::Io`] when the accept loop itself fails (per-peer
    /// errors only drop that peer).
    pub fn run(mut self) -> Result<(), FarmError> {
        loop {
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| FarmError::Io(format!("accept failed: {e}")))?;
            match self.serve_peer(stream) {
                Ok(true) => break,
                Ok(false) => {}
                // A broken peer must not take the daemon down.
                Err(e) => eprintln!("farm: peer error: {e}"),
            }
        }
        self.finish()
    }

    /// Handles one connection; returns `Ok(true)` on `shutdown`.
    fn serve_peer(&mut self, stream: UnixStream) -> Result<bool, FarmError> {
        let reader = stream
            .try_clone()
            .map_err(|e| FarmError::Io(format!("cannot clone stream: {e}")))?;
        let mut writer = stream;
        for line in BufReader::new(reader).lines() {
            let line = match line {
                Ok(l) => l,
                // EOF mid-read or reset: this peer is gone, daemon stays.
                Err(e) => return Err(FarmError::PeerDisconnected(e.to_string())),
            };
            if line.trim().is_empty() {
                continue;
            }
            match self.dispatch(&line, &mut writer) {
                Ok(true) => return Ok(true),
                Ok(false) => {}
                Err(err @ (FarmError::PeerDisconnected(_) | FarmError::Io(_))) => {
                    return Err(err);
                }
                // Request-level errors answer on the wire and keep the
                // connection.
                Err(err) => {
                    let code = match err {
                        FarmError::Invalid(_) => "invalid",
                        FarmError::Malformed(_) => "malformed",
                        _ => "failed",
                    };
                    send_line(
                        &mut writer,
                        &response(
                            "error",
                            vec![
                                ("code".into(), Json::Str(code.into())),
                                ("detail".into(), Json::Str(err.to_string())),
                            ],
                        ),
                    )?;
                }
            }
        }
        Ok(false)
    }

    /// Parses and executes one request line; returns `Ok(true)` on
    /// `shutdown`.
    fn dispatch(&mut self, line: &str, writer: &mut UnixStream) -> Result<bool, FarmError> {
        let req = parse(line).map_err(FarmError::Malformed)?;
        if let Some(v) = req.get("schema_version") {
            if v.as_num::<u32>() != Some(WIRE_SCHEMA_VERSION) {
                return Err(FarmError::Malformed(format!(
                    "unsupported wire schema {} (this daemon speaks {WIRE_SCHEMA_VERSION})",
                    v.render()
                )));
            }
        }
        match req.get("cmd").and_then(Json::as_str) {
            Some("submit") => {
                let job = req
                    .get("job")
                    .ok_or_else(|| FarmError::Malformed("submit needs a job object".into()))?;
                let job = JobRequest::from_json(job)?;
                self.submit(&job, writer)?;
                Ok(false)
            }
            Some("status") => {
                send_line(writer, &self.status_response())?;
                Ok(false)
            }
            Some("shutdown") => {
                send_line(writer, &response("bye", vec![]))?;
                Ok(true)
            }
            other => Err(FarmError::Malformed(format!(
                "unknown cmd {:?} (expected submit, status, or shutdown)",
                other.unwrap_or("<missing>")
            ))),
        }
    }

    /// Runs one submitted job: cache hit serves instantly; a miss
    /// executes, optionally audits, and caches.
    fn submit(&mut self, job: &JobRequest, writer: &mut UnixStream) -> Result<(), FarmError> {
        job.validate()?;
        let seq = self.stats.jobs_submitted;
        self.stats.jobs_submitted += 1;
        self.record(seq, EventKind::JobSubmitted { job: seq });
        let fp = job.fingerprint();
        send_line(
            writer,
            &response(
                "accepted",
                vec![
                    ("job".into(), Json::num(seq)),
                    ("fingerprint".into(), Json::Str(fp.hex())),
                ],
            ),
        )?;

        if let Some(entry) = self.cache.lookup(fp) {
            // Served from cache: zero simulation events executed.
            let line = done_response(seq, true, entry);
            self.record(seq, EventKind::JobCacheHit { job: seq });
            self.record(
                seq,
                EventKind::JobDone {
                    job: seq,
                    cache_hit: true,
                },
            );
            return send_line(writer, &line);
        }

        self.record(seq, EventKind::JobStart { job: seq });
        send_line(
            writer,
            &response("start", vec![("job".into(), Json::num(seq))]),
        )?;
        let out = execute_job(job, &self.pool, self.config.intra_jobs)?;
        self.stats.sim_events_total += out.sim_events;
        let audit_clean = if job.audit {
            Some(crate::exec::audit_job(job)?)
        } else {
            None
        };
        let entry = CacheEntry {
            fingerprint: fp,
            text: out.text,
            partial: out.partial,
            sim_events: out.sim_events,
            reports_json: out.reports_json,
            audit_clean,
            hits: 0,
        };
        let line = done_response(seq, false, &entry);
        self.cache.insert(entry);
        self.record(
            seq,
            EventKind::JobDone {
                job: seq,
                cache_hit: false,
            },
        );
        send_line(writer, &line)
    }

    fn status_response(&self) -> Json {
        let s = self.cache.stats();
        response(
            "status",
            vec![
                ("version".into(), Json::Str(CRATE_VERSION.into())),
                ("build".into(), Json::Str(build_fingerprint())),
                (
                    "jobs_submitted".into(),
                    Json::num(self.stats.jobs_submitted),
                ),
                (
                    "sim_events_total".into(),
                    Json::num(self.stats.sim_events_total),
                ),
                (
                    "cache".into(),
                    Json::Obj(vec![
                        ("entries".into(), Json::num(self.cache.len())),
                        ("capacity".into(), Json::num(self.config.cache_entries)),
                        ("hits".into(), Json::num(s.hits)),
                        ("misses".into(), Json::num(s.misses)),
                        ("insertions".into(), Json::num(s.insertions)),
                        ("evictions".into(), Json::num(s.evictions)),
                    ]),
                ),
            ],
        )
    }

    /// Records a farm lifecycle event on the serving track, stamped
    /// with daemon wall-clock time (these live outside any simulated
    /// run).
    fn record(&self, seq: u64, kind: EventKind) {
        if self.trace.is_on() {
            let elapsed = self.started.elapsed();
            self.trace.record(TraceEvent {
                time: SimTime::from_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)),
                gpu: (seq % 256) as u8,
                kind,
            });
        }
    }

    /// Shutdown epilogue: export the serving trace, remove the socket.
    fn finish(self) -> Result<(), FarmError> {
        if let (Some(path), Some(ring)) = (&self.config.trace_out, &self.ring) {
            let ring = ring.lock().expect("trace ring lock");
            let events: Vec<_> = ring.events().cloned().collect();
            let samples: Vec<_> = ring.samples().cloned().collect();
            std::fs::write(path, chrome_trace(&events, &samples))
                .map_err(|e| FarmError::Io(format!("cannot write trace {path}: {e}")))?;
        }
        let _ = std::fs::remove_file(&self.config.socket);
        Ok(())
    }
}

/// A response line: `{"schema_version":1,"event":...,<fields>}`.
fn response(event: &str, fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("schema_version".into(), Json::num(WIRE_SCHEMA_VERSION)),
        ("event".into(), Json::Str(event.into())),
    ];
    obj.extend(fields);
    Json::Obj(obj)
}

fn done_response(seq: u64, cache_hit: bool, entry: &CacheEntry) -> Json {
    response(
        "done",
        vec![
            ("job".into(), Json::num(seq)),
            ("cache_hit".into(), Json::Bool(cache_hit)),
            ("partial".into(), Json::Bool(entry.partial)),
            (
                "audit_clean".into(),
                match entry.audit_clean {
                    Some(clean) => Json::Bool(clean),
                    None => Json::Null,
                },
            ),
            (
                "sim_events".into(),
                Json::num(if cache_hit { 0 } else { entry.sim_events }),
            ),
            ("hits".into(), Json::num(entry.hits)),
            (
                "reports".into(),
                Json::Arr(
                    entry
                        .reports_json
                        .iter()
                        .map(|r| parse(r).expect("canonical report json parses"))
                        .collect(),
                ),
            ),
            ("report".into(), Json::Str(entry.text.clone())),
        ],
    )
}

fn send_line(writer: &mut UnixStream, line: &Json) -> Result<(), FarmError> {
    let mut text = line.render();
    text.push('\n');
    writer
        .write_all(text.as_bytes())
        .map_err(|e| FarmError::PeerDisconnected(format!("write failed: {e}")))
}
