//! The content-addressed result cache.
//!
//! Entries are keyed by [`system::ConfigFingerprint`] and follow the
//! telemetry `RingCollector` discipline: a bounded store where, at
//! capacity, the oldest entry is evicted and an explicit counter
//! records the loss — nothing disappears silently.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use system::ConfigFingerprint;

/// One cached sweep-point result.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The fingerprint this entry is stored under.
    pub fingerprint: ConfigFingerprint,
    /// The rendered report text (byte-identical to the one-shot CLI).
    pub text: String,
    /// Whether the run was partial (some sweep points failed).
    pub partial: bool,
    /// Simulation events executed to produce this entry.
    pub sim_events: u64,
    /// Canonical per-report JSON objects (already-rendered strings).
    pub reports_json: Vec<String>,
    /// Conservation-audit stamp: `None` = never audited, `Some(clean)`
    /// otherwise.
    pub audit_clean: Option<bool>,
    /// Times this entry has been served from cache.
    pub hits: u64,
}

/// Cache counters, for `status` reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

/// A bounded FIFO content-addressed cache of sweep results.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<ConfigFingerprint, CacheEntry>,
    /// Insertion order, oldest first (the eviction queue).
    order: VecDeque<ConfigFingerprint>,
    stats: CacheStats,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (`capacity` 0 caches
    /// nothing but still counts misses).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            entries: HashMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up `fp`, bumping hit/miss counters and the entry's own
    /// hit count.
    pub fn lookup(&mut self, fp: ConfigFingerprint) -> Option<&CacheEntry> {
        match self.entries.entry(fp) {
            Entry::Occupied(e) => {
                self.stats.hits += 1;
                let entry = e.into_mut();
                entry.hits += 1;
                Some(entry)
            }
            Entry::Vacant(_) => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts an entry, evicting the oldest if at capacity. Replacing
    /// an existing fingerprint refreshes the entry in place (no
    /// eviction, no reorder).
    pub fn insert(&mut self, entry: CacheEntry) {
        let fp = entry.fingerprint;
        if let Some(slot) = self.entries.get_mut(&fp) {
            *slot = entry;
            return;
        }
        if self.capacity == 0 {
            return;
        }
        while self.entries.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
        self.entries.insert(fp, entry);
        self.order.push_back(fp);
        self.stats.insertions += 1;
    }

    /// Stamps an existing entry's audit verdict.
    pub fn stamp_audit(&mut self, fp: ConfigFingerprint, clean: bool) {
        if let Some(entry) = self.entries.get_mut(&fp) {
            entry.audit_clean = Some(clean);
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: u64) -> CacheEntry {
        CacheEntry {
            fingerprint: ConfigFingerprint::of(&tag.to_le_bytes()),
            text: format!("report {tag}"),
            partial: false,
            sim_events: tag,
            reports_json: vec![],
            audit_clean: None,
            hits: 0,
        }
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let mut cache = ResultCache::new(4);
        let fp = entry(1).fingerprint;
        assert!(cache.lookup(fp).is_none());
        cache.insert(entry(1));
        assert_eq!(cache.lookup(fp).unwrap().text, "report 1");
        assert_eq!(cache.lookup(fp).unwrap().hits, 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (2, 1, 1, 0));
    }

    #[test]
    fn oldest_entry_is_evicted_at_capacity() {
        let mut cache = ResultCache::new(2);
        cache.insert(entry(1));
        cache.insert(entry(2));
        cache.insert(entry(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(entry(1).fingerprint).is_none());
        assert!(cache.lookup(entry(2).fingerprint).is_some());
        assert!(cache.lookup(entry(3).fingerprint).is_some());
    }

    #[test]
    fn reinsert_refreshes_in_place_without_eviction() {
        let mut cache = ResultCache::new(2);
        cache.insert(entry(1));
        cache.insert(entry(2));
        let mut fresh = entry(1);
        fresh.text = "updated".into();
        cache.insert(fresh);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.lookup(entry(1).fingerprint).unwrap().text, "updated");
    }

    #[test]
    fn audit_stamp_persists() {
        let mut cache = ResultCache::new(2);
        cache.insert(entry(1));
        cache.stamp_audit(entry(1).fingerprint, true);
        assert_eq!(
            cache.lookup(entry(1).fingerprint).unwrap().audit_clean,
            Some(true)
        );
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = ResultCache::new(0);
        cache.insert(entry(1));
        assert!(cache.is_empty());
        assert!(cache.lookup(entry(1).fingerprint).is_none());
        assert_eq!(cache.stats().misses, 1);
    }
}
