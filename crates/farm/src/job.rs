//! Job requests: the wire-level description of one sweep point, its
//! validation, and its canonical cache fingerprint.

use finepack::FinePackConfig;
use protocol::PcieGen;
use sim_engine::SimTime;
use system::{
    CreditConfig, FaultProfile, FingerprintBuilder, FlowControlMode, Paradigm, RunBudget,
    SystemConfig,
};
use workloads::{CollectiveTuning, MsgDist, RunSpec, COLLECTIVE_REGISTRY};

use crate::error::FarmError;
use crate::json::Json;
use crate::version::{build_fingerprint, WIRE_SCHEMA_VERSION};

/// What a job simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One app across every paradigm (the CLI `run` table).
    Run,
    /// The whole application suite under the supervisor (the CLI
    /// `suite` table).
    Suite,
}

impl JobKind {
    fn as_str(self) -> &'static str {
        match self {
            JobKind::Run => "run",
            JobKind::Suite => "suite",
        }
    }
}

/// Paradigm order of the `run` table (matches the one-shot CLI).
pub const RUN_PARADIGMS: [Paradigm; 6] = [
    Paradigm::BulkDma,
    Paradigm::P2pStores,
    Paradigm::WriteCombining,
    Paradigm::Gps,
    Paradigm::FinePack,
    Paradigm::InfiniteBw,
];

/// A run-budget specification (mirrors the CLI `--run-budget` parts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSpec {
    /// Event ceiling.
    pub events: Option<u64>,
    /// Simulated-time ceiling, milliseconds.
    pub sim_ms: Option<u64>,
    /// Progress watchdog: events without forward progress.
    pub stall: Option<u64>,
}

impl BudgetSpec {
    fn is_empty(&self) -> bool {
        self.events.is_none() && self.sim_ms.is_none() && self.stall.is_none()
    }

    fn to_run_budget(self) -> RunBudget {
        let mut budget = RunBudget::unlimited();
        if let Some(n) = self.events {
            budget = budget.with_max_events(n);
        }
        if let Some(n) = self.sim_ms {
            budget = budget.with_max_sim_time(SimTime::from_ms(n));
        }
        if let Some(n) = self.stall {
            budget = budget.with_progress_watchdog(n);
        }
        budget
    }
}

/// One sweep-point request, with the same knobs and defaults as the
/// one-shot CLI `run` / `suite` commands.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Run one app, or the supervised suite.
    pub kind: JobKind,
    /// App name (`run` kind only; default `pagerank`).
    pub app: Option<String>,
    /// GPUs in the node.
    pub gpus: u8,
    /// PCIe generation: 4, 5, or 6.
    pub pcie: u8,
    /// Iterations to simulate.
    pub iterations: u32,
    /// Problem-size divisor.
    pub scale_down: u32,
    /// Experiment seed.
    pub seed: u64,
    /// FinePack address windows per RWQ partition.
    pub windows: u32,
    /// `true` = open-loop flow control; `false` = the paper's credited
    /// pool (the default).
    pub open_loop: bool,
    /// Collective payload bytes per GPU (`run` kind, collective apps
    /// only; default [`CollectiveTuning::default`]'s).
    pub payload: Option<u64>,
    /// Collective message-size distribution in canonical string form
    /// (`fixed:N` / `uniform:MIN:MAX` / `bimodal:FINE:BULK:PCT`;
    /// `run` kind, collective apps only).
    pub msg_dist: Option<String>,
    /// Optional link bit-error rate (`run` kind only).
    pub ber: Option<f64>,
    /// Optional fault profile name (`run` kind only).
    pub fault_profile: Option<String>,
    /// Supervision: retry budget per sweep point (`suite` kind only).
    pub retries: u32,
    /// Supervision: chaos injection rate (`suite` kind only).
    pub chaos: Option<f64>,
    /// Optional run budget.
    pub budget: Option<BudgetSpec>,
    /// Run the conservation auditor on cache misses and stamp the
    /// cached entry. Not part of the fingerprint: an audited and an
    /// unaudited submission of the same point share one cache slot.
    pub audit: bool,
}

impl JobRequest {
    /// A request with the CLI's defaults for `kind`.
    pub fn new(kind: JobKind) -> Self {
        let spec = RunSpec::paper(4);
        JobRequest {
            kind,
            app: None,
            gpus: spec.num_gpus,
            pcie: 4,
            iterations: spec.iterations,
            scale_down: spec.scale_down,
            seed: spec.seed,
            windows: 1,
            open_loop: false,
            payload: None,
            msg_dist: None,
            ber: None,
            fault_profile: None,
            retries: 0,
            chaos: None,
            budget: None,
            audit: false,
        }
    }

    /// The app name this job runs (`run` kind), after defaulting.
    pub fn app_name(&self) -> &str {
        self.app.as_deref().unwrap_or("pagerank")
    }

    /// Whether this job's app is one of the collective workloads.
    pub fn is_collective(&self) -> bool {
        COLLECTIVE_REGISTRY
            .iter()
            .any(|(n, _)| *n == self.app_name())
    }

    /// The resolved collective tuning: CLI defaults overridden by the
    /// request's `payload` / `msg_dist` knobs. The fingerprint absorbs
    /// this *resolved* form, so a sparse request and an
    /// explicit-defaults request share one cache slot.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unparseable distribution
    /// or an out-of-range payload.
    pub fn collective_tuning(&self) -> Result<CollectiveTuning, String> {
        let mut tuning = CollectiveTuning::default();
        if let Some(p) = self.payload {
            tuning.payload_bytes = p;
        }
        if let Some(d) = &self.msg_dist {
            tuning.msg = MsgDist::parse(d)?;
        }
        tuning.validate()?;
        Ok(tuning)
    }

    /// Checks every field range so [`JobRequest::build`] can never
    /// panic inside the daemon.
    ///
    /// # Errors
    ///
    /// Returns [`FarmError::Invalid`] naming the offending field.
    pub fn validate(&self) -> Result<(), FarmError> {
        let invalid = |msg: String| Err(FarmError::Invalid(msg));
        if !(2..=64).contains(&self.gpus) {
            return invalid(format!("gpus must be 2-64, got {}", self.gpus));
        }
        if !matches!(self.pcie, 4..=6) {
            return invalid(format!("pcie must be 4, 5, or 6, got {}", self.pcie));
        }
        if self.iterations == 0 {
            return invalid("iterations must be positive".into());
        }
        if self.scale_down == 0 {
            return invalid("scale_down must be positive".into());
        }
        if !(1..=64).contains(&self.windows) {
            return invalid(format!("windows must be 1-64, got {}", self.windows));
        }
        if let Some(ber) = self.ber {
            if !(0.0..=1.0).contains(&ber) {
                return invalid(format!("ber must be in [0, 1], got {ber}"));
            }
        }
        if let Some(rate) = self.chaos {
            if !(0.0..=1.0).contains(&rate) {
                return invalid(format!("chaos must be in [0, 1], got {rate}"));
            }
        }
        if let Some(name) = &self.fault_profile {
            if !matches!(
                name.as_str(),
                "clean" | "noisy" | "outage" | "degraded" | "stuck"
            ) {
                return invalid(format!(
                    "fault_profile must be clean, noisy, outage, degraded, or stuck, got `{name}`"
                ));
            }
        }
        if let Some(b) = &self.budget {
            if b.is_empty() {
                return invalid("budget must set events, sim_ms, or stall".into());
            }
            for (name, v) in [
                ("events", b.events),
                ("sim_ms", b.sim_ms),
                ("stall", b.stall),
            ] {
                if v == Some(0) {
                    return invalid(format!("budget.{name} must be positive"));
                }
            }
        }
        match self.kind {
            JobKind::Run => {
                if self.retries != 0 || self.chaos.is_some() {
                    return invalid(
                        "run jobs take no retries/chaos (supervision is suite-only)".into(),
                    );
                }
                if (self.payload.is_some() || self.msg_dist.is_some()) && !self.is_collective() {
                    return invalid(format!(
                        "payload/msg_dist apply to collective apps only, and `{}` is not one",
                        self.app_name()
                    ));
                }
                if let Err(e) = self.collective_tuning() {
                    return invalid(e);
                }
            }
            JobKind::Suite => {
                if self.app.is_some() {
                    return invalid("suite jobs take no app (the whole suite runs)".into());
                }
                if self.ber.is_some() || self.fault_profile.is_some() {
                    return invalid("suite jobs take no ber/fault_profile".into());
                }
                if self.payload.is_some() || self.msg_dist.is_some() {
                    return invalid(
                        "suite jobs take no payload/msg_dist (collectives are run-only)".into(),
                    );
                }
            }
        }
        Ok(())
    }

    /// Builds the [`RunSpec`] and [`SystemConfig`] this job simulates,
    /// exactly as the one-shot CLI would. Call [`JobRequest::validate`]
    /// first; this constructor trusts the ranges.
    pub fn build(&self) -> (RunSpec, SystemConfig) {
        let mut spec = RunSpec::paper(self.gpus);
        spec.iterations = self.iterations;
        spec.scale_down = self.scale_down;
        spec.seed = self.seed;
        spec.validate();
        let gen = match self.pcie {
            5 => PcieGen::Gen5,
            6 => PcieGen::Gen6,
            _ => PcieGen::Gen4,
        };
        let fp = FinePackConfig::paper(u32::from(self.gpus)).with_windows(self.windows);
        let flow = if self.open_loop {
            FlowControlMode::Open
        } else {
            FlowControlMode::Credited(CreditConfig::paper())
        };
        let mut cfg = SystemConfig::paper(self.gpus)
            .with_pcie_gen(gen)
            .with_finepack(fp)
            .with_flow_control(flow);
        if let Some(profile) =
            fault_profile_for(self.ber, self.fault_profile.as_deref()).expect("validated")
        {
            cfg = cfg.with_faults(profile);
        }
        if let Some(budget) = self.budget {
            cfg = cfg.with_run_budget(budget.to_run_budget());
        }
        (spec, cfg)
    }

    /// The paradigm set this job compares.
    pub fn paradigms(&self) -> &'static [Paradigm] {
        match self.kind {
            JobKind::Run => &RUN_PARADIGMS,
            JobKind::Suite => &Paradigm::FIG9,
        }
    }

    /// The canonical cache fingerprint of this request.
    ///
    /// Covers the full simulated system (via the normalized
    /// [`SystemConfig`]), the workload identity, the paradigm set, the
    /// supervision knobs that shape the rendered report, the wire
    /// schema, and the build fingerprint — so a recompiled binary or a
    /// changed protocol can never serve a stale entry. Excluded:
    /// harness parallelism (`jobs` / `intra_jobs`; results are proven
    /// bit-identical across them) and the `audit` flag (auditing stamps
    /// an entry, it does not change the simulated result).
    pub fn fingerprint(&self) -> system::ConfigFingerprint {
        let (spec, cfg) = self.build();
        let app = match self.kind {
            JobKind::Run => self.app_name(),
            JobKind::Suite => "<suite>",
        };
        let mut builder = FingerprintBuilder::new()
            .field("build", &build_fingerprint())
            .u64("wire", u64::from(WIRE_SCHEMA_VERSION))
            .field("kind", self.kind.as_str())
            .system(&cfg)
            .workload(app, &spec)
            .paradigms(self.paradigms())
            .u64("retries", u64::from(self.retries))
            .field("chaos", &format!("{:?}", self.chaos));
        if self.kind == JobKind::Run && self.is_collective() {
            // The resolved (not raw) tuning, so sparse and
            // explicit-default requests share a slot while any real
            // parameter change misses the cache.
            let tuning = self.collective_tuning().expect("validated");
            builder = builder
                .u64("payload", tuning.payload_bytes)
                .field("msg_dist", &tuning.msg.to_string());
        }
        builder.finish()
    }

    /// Serializes the request as a JSON object (all fields explicit).
    pub fn to_json(&self) -> Json {
        let opt_f64 = |v: Option<f64>| match v {
            Some(x) => Json::Num(format!("{x:?}")),
            None => Json::Null,
        };
        let opt_u64 = |v: Option<u64>| match v {
            Some(x) => Json::num(x),
            None => Json::Null,
        };
        let budget = match &self.budget {
            None => Json::Null,
            Some(b) => Json::Obj(vec![
                ("events".into(), opt_u64(b.events)),
                ("sim_ms".into(), opt_u64(b.sim_ms)),
                ("stall".into(), opt_u64(b.stall)),
            ]),
        };
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            (
                "app".into(),
                match &self.app {
                    Some(a) => Json::Str(a.clone()),
                    None => Json::Null,
                },
            ),
            ("gpus".into(), Json::num(self.gpus)),
            ("pcie".into(), Json::num(self.pcie)),
            ("iterations".into(), Json::num(self.iterations)),
            ("scale_down".into(), Json::num(self.scale_down)),
            ("seed".into(), Json::num(self.seed)),
            ("windows".into(), Json::num(self.windows)),
            (
                "flow_control".into(),
                Json::Str(if self.open_loop { "open" } else { "credited" }.into()),
            ),
            ("payload".into(), opt_u64(self.payload)),
            (
                "msg_dist".into(),
                match &self.msg_dist {
                    Some(d) => Json::Str(d.clone()),
                    None => Json::Null,
                },
            ),
            ("ber".into(), opt_f64(self.ber)),
            (
                "fault_profile".into(),
                match &self.fault_profile {
                    Some(p) => Json::Str(p.clone()),
                    None => Json::Null,
                },
            ),
            ("retries".into(), Json::num(self.retries)),
            ("chaos".into(), opt_f64(self.chaos)),
            ("budget".into(), budget),
            ("audit".into(), Json::Bool(self.audit)),
        ])
    }

    /// Deserializes a request from a JSON object. Absent fields take
    /// the CLI defaults; unknown fields are rejected (a typoed knob
    /// must not silently fingerprint as the default).
    ///
    /// # Errors
    ///
    /// Returns [`FarmError::Malformed`] for structural problems and
    /// [`FarmError::Invalid`] for out-of-range values.
    pub fn from_json(v: &Json) -> Result<Self, FarmError> {
        let Json::Obj(fields) = v else {
            return Err(FarmError::Malformed("job must be an object".into()));
        };
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some("run") => JobKind::Run,
            Some("suite") => JobKind::Suite,
            _ => {
                return Err(FarmError::Malformed(
                    "job.kind must be \"run\" or \"suite\"".into(),
                ))
            }
        };
        let mut req = JobRequest::new(kind);
        let num = |field: &str, val: &Json| -> Result<u64, FarmError> {
            val.as_num::<u64>()
                .ok_or_else(|| FarmError::Malformed(format!("job.{field} must be an integer")))
        };
        for (key, val) in fields {
            if *val == Json::Null {
                continue;
            }
            match key.as_str() {
                "kind" => {}
                "app" => {
                    req.app = Some(
                        val.as_str()
                            .ok_or_else(|| FarmError::Malformed("job.app must be a string".into()))?
                            .to_string(),
                    );
                }
                "gpus" => req.gpus = num(key, val)? as u8,
                "pcie" => req.pcie = num(key, val)? as u8,
                "iterations" => req.iterations = num(key, val)? as u32,
                "scale_down" => req.scale_down = num(key, val)? as u32,
                "seed" => req.seed = num(key, val)?,
                "windows" => req.windows = num(key, val)? as u32,
                "payload" => req.payload = Some(num(key, val)?),
                "msg_dist" => {
                    req.msg_dist = Some(
                        val.as_str()
                            .ok_or_else(|| {
                                FarmError::Malformed("job.msg_dist must be a string".into())
                            })?
                            .to_string(),
                    );
                }
                "flow_control" => {
                    req.open_loop = match val.as_str() {
                        Some("open") => true,
                        Some("credited") => false,
                        _ => {
                            return Err(FarmError::Malformed(
                                "job.flow_control must be \"open\" or \"credited\"".into(),
                            ))
                        }
                    };
                }
                "ber" => {
                    req.ber =
                        Some(val.as_num::<f64>().ok_or_else(|| {
                            FarmError::Malformed("job.ber must be a number".into())
                        })?);
                }
                "fault_profile" => {
                    req.fault_profile = Some(
                        val.as_str()
                            .ok_or_else(|| {
                                FarmError::Malformed("job.fault_profile must be a string".into())
                            })?
                            .to_string(),
                    );
                }
                "retries" => req.retries = num(key, val)? as u32,
                "chaos" => {
                    req.chaos = Some(val.as_num::<f64>().ok_or_else(|| {
                        FarmError::Malformed("job.chaos must be a number".into())
                    })?);
                }
                "budget" => {
                    let Json::Obj(parts) = val else {
                        return Err(FarmError::Malformed("job.budget must be an object".into()));
                    };
                    let mut b = BudgetSpec::default();
                    for (bk, bv) in parts {
                        if *bv == Json::Null {
                            continue;
                        }
                        match bk.as_str() {
                            "events" => b.events = Some(num("budget.events", bv)?),
                            "sim_ms" => b.sim_ms = Some(num("budget.sim_ms", bv)?),
                            "stall" => b.stall = Some(num("budget.stall", bv)?),
                            other => {
                                return Err(FarmError::Malformed(format!(
                                    "unknown job.budget field `{other}`"
                                )))
                            }
                        }
                    }
                    req.budget = Some(b);
                }
                "audit" => {
                    req.audit = val
                        .as_bool()
                        .ok_or_else(|| FarmError::Malformed("job.audit must be a bool".into()))?;
                }
                other => return Err(FarmError::Malformed(format!("unknown job field `{other}`"))),
            }
        }
        req.validate()?;
        Ok(req)
    }
}

/// Builds a [`FaultProfile`] from a bit-error rate and/or a named
/// profile — the single definition of the CLI's `--ber` /
/// `--fault-profile` semantics, shared by the daemon and the one-shot
/// commands.
///
/// # Errors
///
/// Returns a human-readable message for an unknown profile name or an
/// out-of-range BER.
pub fn fault_profile_for(
    ber: Option<f64>,
    name: Option<&str>,
) -> Result<Option<FaultProfile>, String> {
    let profile = match name {
        None => ber.map(FaultProfile::new),
        Some(name) => {
            let base = FaultProfile::new(ber.unwrap_or(match name {
                "clean" | "outage" | "stuck" => 0.0,
                _ => 1e-7,
            }));
            Some(match name {
                "clean" | "noisy" => base,
                "outage" => base.with_outage(0, SimTime::from_us(5), SimTime::from_us(60)),
                "degraded" => base
                    .with_outage(0, SimTime::from_us(5), SimTime::from_us(60))
                    .with_degrade(0.5),
                "stuck" => base.stuck_link(0, SimTime::ZERO),
                other => {
                    return Err(format!(
                        "unknown fault profile `{other}` (expected clean, noisy, outage, \
                         degraded, or stuck)"
                    ))
                }
            })
        }
    };
    if let Some(p) = &profile {
        if !(0.0..=1.0).contains(&p.ber) {
            return Err(format!("bit-error rate must be in [0, 1], got {}", p.ber));
        }
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn collective_requests_roundtrip_and_validate() {
        let mut req = JobRequest::new(JobKind::Run);
        req.app = Some("ring-allreduce".into());
        req.payload = Some(1 << 20);
        req.msg_dist = Some("fixed:256".into());
        req.validate().unwrap();
        let back = JobRequest::from_json(&parse(&req.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, req);

        // Collective knobs are rejected on non-collective apps and on
        // suite jobs, and malformed distributions never reach build().
        let mut wrong_app = JobRequest::new(JobKind::Run);
        wrong_app.app = Some("jacobi".into());
        wrong_app.payload = Some(1 << 20);
        assert!(wrong_app.validate().is_err());
        let mut suite = JobRequest::new(JobKind::Suite);
        suite.payload = Some(1 << 20);
        assert!(suite.validate().is_err());
        let mut bad_dist = JobRequest::new(JobKind::Run);
        bad_dist.app = Some("alltoall".into());
        bad_dist.msg_dist = Some("poisson:9".into());
        assert!(bad_dist.validate().is_err());
        let mut bad_payload = JobRequest::new(JobKind::Run);
        bad_payload.app = Some("alltoall".into());
        bad_payload.payload = Some(7);
        assert!(bad_payload.validate().is_err());
    }

    #[test]
    fn collective_parameters_reach_the_fingerprint() {
        let mut base = JobRequest::new(JobKind::Run);
        base.app = Some("ring-allreduce".into());

        // Sparse and explicit-default forms share one cache slot.
        let tuning = CollectiveTuning::default();
        let mut explicit = base.clone();
        explicit.payload = Some(tuning.payload_bytes);
        explicit.msg_dist = Some(tuning.msg.to_string());
        assert_eq!(base.fingerprint(), explicit.fingerprint());

        // Perturbing either knob must miss the cache.
        let mut payload = base.clone();
        payload.payload = Some(tuning.payload_bytes / 2);
        assert_ne!(base.fingerprint(), payload.fingerprint());
        let mut dist = base.clone();
        dist.msg_dist = Some("fixed:64".into());
        assert_ne!(base.fingerprint(), dist.fingerprint());

        // Different collectives never share a slot.
        let mut other = base.clone();
        other.app = Some("tree-allreduce".into());
        assert_ne!(base.fingerprint(), other.fingerprint());
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let mut req = JobRequest::new(JobKind::Run);
        req.app = Some("jacobi".into());
        req.gpus = 2;
        req.pcie = 6;
        req.iterations = 1;
        req.scale_down = 16;
        req.seed = u64::MAX - 7;
        req.windows = 4;
        req.open_loop = true;
        req.ber = Some(1e-8);
        req.fault_profile = Some("noisy".into());
        req.budget = Some(BudgetSpec {
            events: Some(10),
            sim_ms: Some(20),
            stall: Some(30),
        });
        req.audit = true;
        let back = JobRequest::from_json(&parse(&req.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, req);

        let mut suite = JobRequest::new(JobKind::Suite);
        suite.retries = 2;
        suite.chaos = Some(0.05);
        let back = JobRequest::from_json(&parse(&suite.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, suite);
    }

    #[test]
    fn sparse_requests_take_cli_defaults() {
        let req = JobRequest::from_json(&parse(r#"{"kind":"suite"}"#).unwrap()).unwrap();
        assert_eq!(req.gpus, 4);
        assert_eq!(req.iterations, 2);
        assert_eq!(req.seed, 0xF14E_9ACC);
        assert!(!req.open_loop);
        // A sparse and an explicit-defaults form fingerprint the same.
        assert_eq!(
            req.fingerprint(),
            JobRequest::new(JobKind::Suite).fingerprint()
        );
    }

    #[test]
    fn unknown_fields_are_rejected() {
        for bad in [
            r#"{"kind":"run","gpsu":4}"#,
            r#"{"kind":"warp"}"#,
            r#"{"kind":"run","budget":{"cycles":5}}"#,
            r#"[]"#,
        ] {
            assert!(
                JobRequest::from_json(&parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn validation_enforces_kind_specific_knobs() {
        let mut run = JobRequest::new(JobKind::Run);
        run.chaos = Some(0.1);
        assert!(run.validate().is_err());
        let mut suite = JobRequest::new(JobKind::Suite);
        suite.app = Some("jacobi".into());
        assert!(suite.validate().is_err());
        let mut suite = JobRequest::new(JobKind::Suite);
        suite.ber = Some(1e-8);
        assert!(suite.validate().is_err());
        let mut bad_gpus = JobRequest::new(JobKind::Run);
        bad_gpus.gpus = 1;
        assert!(bad_gpus.validate().is_err());
        let mut bad_budget = JobRequest::new(JobKind::Run);
        bad_budget.budget = Some(BudgetSpec::default());
        assert!(bad_budget.validate().is_err());
    }

    #[test]
    fn fingerprint_separates_kinds_and_knobs() {
        let run = JobRequest::new(JobKind::Run);
        let suite = JobRequest::new(JobKind::Suite);
        assert_ne!(run.fingerprint(), suite.fingerprint());

        let mut seeded = JobRequest::new(JobKind::Run);
        seeded.seed = 1;
        assert_ne!(run.fingerprint(), seeded.fingerprint());

        let mut retried = JobRequest::new(JobKind::Suite);
        retried.retries = 1;
        assert_ne!(suite.fingerprint(), retried.fingerprint());

        // The audit flag shares a cache slot by design.
        let mut audited = JobRequest::new(JobKind::Run);
        audited.audit = true;
        assert_eq!(run.fingerprint(), audited.fingerprint());
    }

    #[test]
    fn fault_profile_semantics_match_the_cli() {
        assert!(fault_profile_for(None, None).unwrap().is_none());
        assert_eq!(
            fault_profile_for(Some(1e-8), None).unwrap().unwrap().ber,
            1e-8
        );
        // Named profiles default their BER by name.
        assert_eq!(
            fault_profile_for(None, Some("noisy")).unwrap().unwrap().ber,
            1e-7
        );
        assert_eq!(
            fault_profile_for(None, Some("outage"))
                .unwrap()
                .unwrap()
                .ber,
            0.0
        );
        assert!(fault_profile_for(None, Some("gremlins")).is_err());
        assert!(fault_profile_for(Some(2.0), None).is_err());
    }
}
