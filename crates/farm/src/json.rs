//! A minimal hand-rolled JSON value, parser, and writer for the farm's
//! line-delimited wire protocol.
//!
//! The repo's chrome-trace exporter already hand-writes JSON; this
//! module adds the read side without pulling in an external dependency.
//! Numbers are kept as their literal source text (`Json::Num(String)`)
//! so 64-bit seeds and fingerprints survive round trips that `f64`
//! storage would silently corrupt above 2^53.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text (lossless for any u64).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved (no map, so writes are
    /// deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a number from any displayable integer/float.
    pub fn num(n: impl std::fmt::Display) -> Json {
        Json::Num(n.to_string())
    }

    /// The value under `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `T` (from its literal text).
    pub fn as_num<T: std::str::FromStr>(&self) -> Option<T> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value compactly (no whitespace, stable field
    /// order = insertion order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document from `input` (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by this
                            // protocol; map them to the replacement
                            // character rather than rejecting the line.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let text = r#"{"a":1,"b":[true,null,"x"],"c":{"d":-2.5e3},"e":"q\"\\\n"}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_num::<u64>(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("e").unwrap().as_str(), Some("q\"\\\n"));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = u64::MAX - 1;
        let v = Json::Obj(vec![("seed".into(), Json::num(seed))]);
        let back = parse(&v.render()).unwrap();
        assert_eq!(back.get("seed").unwrap().as_num::<u64>(), Some(seed));
    }

    #[test]
    fn control_chars_are_escaped_on_write() {
        let v = Json::Str("a\u{1}b".into());
        assert_eq!(v.render(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "{}x",
            "01x",
            "nul",
            "--1",
            "{\"a\":}",
            "[,]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
