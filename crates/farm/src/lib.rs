//! The FinePack sweep farm: a long-running daemon that serves sweep
//! jobs over a unix socket from a content-addressed result cache.
//!
//! The simulator's determinism contract (byte-identical reports at any
//! `--jobs` / `--intra-jobs`) is what makes results cacheable at all:
//! a sweep point's output is a pure function of its
//! ([`system::SystemConfig`], seed, workload identity) fingerprint plus
//! the binary that produced it. The farm exploits that:
//!
//! - [`JobRequest::fingerprint`] canonicalizes a job into a 128-bit
//!   [`system::ConfigFingerprint`], folding in the
//!   [`build_fingerprint`] so a recompiled binary can never serve a
//!   stale entry.
//! - [`ResultCache`] stores rendered reports under that key with the
//!   telemetry ring discipline: bounded entries, oldest evicted,
//!   explicit eviction counters.
//! - [`Server`] binds a [`std::os::unix::net::UnixListener`], speaks a
//!   hand-rolled line-delimited JSON protocol ([`json`]), and feeds
//!   cache misses through the supervised worker pool via
//!   [`execute_job`] — whose rendering is the same code path the
//!   one-shot CLI uses, so served reports are byte-identical by
//!   construction.
//! - The [`client`] functions ([`submit`], [`status`], [`shutdown`])
//!   back the `finepack-sim submit` / `status` / `shutdown` commands.
//!
//! See DESIGN.md §14 for the wire protocol and fingerprint definition.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod error;
pub mod exec;
pub mod job;
pub mod json;
pub mod server;
pub mod version;

pub use cache::{CacheEntry, CacheStats, ResultCache};
pub use client::{shutdown, status, submit, StatusReport, SubmitOutcome};
pub use error::FarmError;
pub use exec::{
    audit_job, available_parallelism, execute_job, find_app, single_core_warning, JobOutput,
};
pub use job::{fault_profile_for, BudgetSpec, JobKind, JobRequest, RUN_PARADIGMS};
pub use server::{ServeConfig, Server};
pub use version::{build_fingerprint, version_line, CRATE_VERSION, WIRE_SCHEMA_VERSION};
