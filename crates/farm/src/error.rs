//! Farm error taxonomy, shared by daemon and client.

use std::fmt;

/// Why a farm operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// The daemon could not bind its socket.
    Bind {
        /// Socket path.
        path: String,
        /// Underlying error, rendered.
        detail: String,
    },
    /// The client could not connect to the daemon socket.
    Connect {
        /// Socket path.
        path: String,
        /// Underlying error, rendered.
        detail: String,
    },
    /// A request or response line failed to parse, or carried an
    /// incompatible wire schema.
    Malformed(String),
    /// The peer closed the connection before the exchange completed
    /// (e.g. mid-job).
    PeerDisconnected(String),
    /// A socket read/write failed.
    Io(String),
    /// A job request carried invalid field values.
    Invalid(String),
    /// The simulation (or an audit) failed.
    Failed(String),
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::Bind { path, detail } => write!(f, "cannot bind {path}: {detail}"),
            FarmError::Connect { path, detail } => write!(f, "cannot connect to {path}: {detail}"),
            FarmError::Malformed(msg) => write!(f, "malformed message: {msg}"),
            FarmError::PeerDisconnected(msg) => write!(f, "peer disconnected: {msg}"),
            FarmError::Io(msg) => write!(f, "socket i/o failed: {msg}"),
            FarmError::Invalid(msg) => write!(f, "invalid job: {msg}"),
            FarmError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for FarmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_path() {
        let e = FarmError::Bind {
            path: "/run/farm.sock".into(),
            detail: "permission denied".into(),
        };
        assert_eq!(
            e.to_string(),
            "cannot bind /run/farm.sock: permission denied"
        );
        assert!(FarmError::Malformed("x".into())
            .to_string()
            .contains("malformed"));
    }
}
