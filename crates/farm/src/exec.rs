//! Job execution: turns a validated [`JobRequest`] into the exact
//! report the one-shot CLI would print.
//!
//! The table rendering here is the single definition used by both the
//! daemon and the `finepack-sim run` / `suite` commands (the CLI
//! delegates to [`run_table`] / [`suite_report`]), so a daemon-served
//! report is byte-identical to the one-shot output by construction —
//! which is what makes cached entries trustworthy.

use std::fmt::Write as _;

use sim_engine::{QuietPanicGuard, RetryPolicy, SimTime, Table, WorkerPool};
use system::{
    audit_run, run_suite_supervised, single_gpu_time, Paradigm, PreparedWorkload, RunReport,
    Supervision, SystemConfig,
};
use telemetry::TraceHandle;
use workloads::{suite, RunSpec, Workload};

use crate::error::FarmError;
use crate::job::{JobKind, JobRequest, RUN_PARADIGMS};

/// The result of executing one job: the rendered report plus the
/// machine-readable pieces the cache stores alongside it.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Rendered report, byte-identical to the one-shot CLI output.
    pub text: String,
    /// Whether supervised sweep points failed (maps to exit code 3).
    pub partial: bool,
    /// Discrete events executed (0 when served from cache).
    pub sim_events: u64,
    /// Canonical JSON per successful run report, in paradigm order
    /// (`run` jobs only; `suite` jobs report speedup rows, not raw
    /// reports).
    pub reports_json: Vec<String>,
}

/// Looks up a suite app by name.
///
/// # Errors
///
/// [`FarmError::Invalid`] when the name matches no suite app.
pub fn find_app(name: &str) -> Result<Box<dyn Workload>, FarmError> {
    find_app_tuned(name, &workloads::CollectiveTuning::default())
}

/// Looks up an app by name across the suite and the collectives
/// registry, building collectives with the given tuning.
///
/// # Errors
///
/// [`FarmError::Invalid`] when the name matches neither registry.
pub fn find_app_tuned(
    name: &str,
    tuning: &workloads::CollectiveTuning,
) -> Result<Box<dyn Workload>, FarmError> {
    suite()
        .into_iter()
        .find(|a| a.name() == name)
        .or_else(|| workloads::collective(name, tuning))
        .ok_or_else(|| FarmError::Invalid(format!("unknown app `{name}`")))
}

/// The machine's available parallelism (1 when undetectable).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The single-core caveat `suite` and `bench` print when thread knobs
/// cannot buy wall-clock time on this machine. Independent of the
/// `--jobs`/`--intra-jobs` values so output stays byte-identical across
/// them.
pub fn single_core_warning(out: &mut String) {
    if available_parallelism() == 1 {
        let _ = writeln!(
            out,
            "warning: this machine reports a single available core; \
             --jobs/--intra-jobs cannot reduce wall-clock time here"
        );
    }
}

/// Executes a job against the supervised worker pool, producing the
/// same bytes the one-shot CLI would.
///
/// `intra_jobs` shards each run's event core (a harness knob: results
/// are bit-identical for every value, so it is not part of the cache
/// fingerprint).
///
/// # Errors
///
/// [`FarmError::Invalid`] for bad requests (including unknown apps).
pub fn execute_job(
    req: &JobRequest,
    pool: &WorkerPool,
    intra_jobs: usize,
) -> Result<JobOutput, FarmError> {
    req.validate()?;
    let (spec, cfg) = req.build();
    let cfg = cfg.with_intra_jobs(intra_jobs);
    match req.kind {
        JobKind::Run => {
            let tuning = req.collective_tuning().map_err(FarmError::Invalid)?;
            let app = find_app_tuned(req.app_name(), &tuning)?;
            Ok(run_table(app.as_ref(), &spec, &cfg))
        }
        JobKind::Suite => {
            let supervision = Supervision {
                policy: RetryPolicy::retries(req.retries),
                chaos: req.chaos.map(sim_engine::ChaosConfig::uniform),
            };
            Ok(suite_report(&spec, &cfg, pool, supervision))
        }
    }
}

/// Renders the `run` table: one app across every paradigm.
pub fn run_table(app: &dyn Workload, spec: &RunSpec, cfg: &SystemConfig) -> JobOutput {
    let t1 = single_gpu_time(app, cfg, spec);
    let prep = PreparedWorkload::new(app, cfg, spec);
    let mut t = Table::new(
        format!(
            "{} on {} GPUs, {} ({} pattern)",
            app.name(),
            spec.num_gpus,
            cfg.pcie_gen,
            app.pattern()
        ),
        &[
            "paradigm",
            "speedup",
            "wire bytes",
            "stores/packet",
            "stall",
        ],
    );
    let mut sim_events = 0u64;
    let mut reports_json = Vec::new();
    for p in RUN_PARADIGMS {
        match prep.try_run(cfg, p) {
            Ok(report) => {
                t.row(&[
                    p.to_string(),
                    format!("{:.2}x", t1.as_secs_f64() / report.total_time.as_secs_f64()),
                    report.traffic.total().to_string(),
                    report
                        .mean_stores_per_packet()
                        .map(|v| format!("{v:.1}"))
                        .unwrap_or_else(|| "-".into()),
                    if report.stall_time == SimTime::ZERO {
                        "-".into()
                    } else {
                        report.stall_time.to_string()
                    },
                ]);
                sim_events += report.sim_events;
                reports_json.push(RunReport::canonical_json(&report));
            }
            Err(e) => t.row(&[
                p.to_string(),
                "dead".into(),
                "-".into(),
                "-".into(),
                e.to_string(),
            ]),
        }
    }
    JobOutput {
        text: t.render(),
        partial: false,
        sim_events,
        reports_json,
    }
}

/// Renders the supervised `suite` table, including the retried/failed
/// sections and the partial-results epilogue.
pub fn suite_report(
    spec: &RunSpec,
    cfg: &SystemConfig,
    pool: &WorkerPool,
    supervision: Supervision,
) -> JobOutput {
    // Chaos panics are expected noise: silence the default panic hook's
    // stderr chatter while the supervisor catches them.
    let _quiet = supervision
        .chaos
        .as_ref()
        .map(|_| QuietPanicGuard::engage());
    let sup = run_suite_supervised(
        &suite(),
        cfg,
        spec,
        &Paradigm::FIG9,
        pool,
        supervision,
        &TraceHandle::off(),
    );
    let mut t = Table::new(
        format!("suite speedups on {} GPUs, {}", spec.num_gpus, cfg.pcie_gen),
        &["app", "bulk-dma", "p2p-stores", "finepack", "infinite-bw"],
    );
    for row in sup.points.iter().filter_map(|p| p.row.as_ref()) {
        let cell = |p| format!("{:.2}x", row.speedup(p).expect("measured"));
        t.row(&[
            row.app.clone(),
            cell(Paradigm::BulkDma),
            cell(Paradigm::P2pStores),
            cell(Paradigm::FinePack),
            cell(Paradigm::InfiniteBw),
        ]);
    }
    let mut out = t.render();
    if sup.retried().next().is_some() {
        let _ = writeln!(out, "\nretried points:");
        for p in sup.retried() {
            let verdict = if p.is_ok() {
                format!("succeeded after {} attempts", p.attempts)
            } else {
                format!("failed after {} attempts", p.attempts)
            };
            let _ = writeln!(out, "  {}: {verdict}", p.app);
            for (i, failure) in p.failures.iter().enumerate() {
                let _ = writeln!(out, "    attempt {}: {failure}", i + 1);
            }
        }
    }
    let partial = !sup.all_ok();
    if partial {
        let failed = sup.failed().count();
        let _ = writeln!(
            out,
            "\nfailed points ({failed} of {} apps):",
            sup.points.len()
        );
        for p in sup.failed() {
            let _ = writeln!(
                out,
                "  {}: {} (after {} attempts)",
                p.app,
                p.final_failure().expect("failed point has a failure"),
                p.attempts
            );
        }
        let _ = writeln!(out, "partial results: exiting with code 3");
    }
    single_core_warning(&mut out);
    JobOutput {
        text: out,
        partial,
        sim_events: sup.sim_events,
        reports_json: Vec::new(),
    }
}

/// Runs the PR 5 conservation auditor over every (app, paradigm) pair
/// the job covers and reports whether all completed audits were clean.
/// Runs the fabric kills outright ("dead" rows in the table) have
/// nothing to audit and are skipped, matching the report.
///
/// # Errors
///
/// [`FarmError::Invalid`] for bad requests.
pub fn audit_job(req: &JobRequest) -> Result<bool, FarmError> {
    req.validate()?;
    let (spec, cfg) = req.build();
    let apps: Vec<Box<dyn Workload>> = match req.kind {
        JobKind::Run => {
            let tuning = req.collective_tuning().map_err(FarmError::Invalid)?;
            vec![find_app_tuned(req.app_name(), &tuning)?]
        }
        JobKind::Suite => suite(),
    };
    let mut clean = true;
    for app in &apps {
        let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
        for p in req.paradigms() {
            if let Ok(outcome) = audit_run(&prep, &cfg, *p) {
                clean &= outcome.is_clean();
            }
        }
    }
    Ok(clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn small_run() -> JobRequest {
        let mut req = JobRequest::new(JobKind::Run);
        req.app = Some("jacobi".into());
        req.gpus = 2;
        req.iterations = 1;
        req.scale_down = 16;
        req
    }

    #[test]
    fn run_jobs_render_a_table_and_collect_reports() {
        let pool = WorkerPool::new(1);
        let out = execute_job(&small_run(), &pool, 1).unwrap();
        assert!(out.text.contains("jacobi on 2 GPUs"));
        assert!(out.text.contains("finepack"));
        assert!(!out.partial);
        assert!(out.sim_events > 0);
        assert_eq!(out.reports_json.len(), RUN_PARADIGMS.len());
        assert!(out.reports_json[0].contains("\"schema_version\":1"));
    }

    #[test]
    fn execution_is_deterministic_across_pool_sizes() {
        let mut req = JobRequest::new(JobKind::Suite);
        req.gpus = 2;
        req.iterations = 1;
        req.scale_down = 16;
        let serial = execute_job(&req, &WorkerPool::new(1), 1).unwrap();
        let parallel = execute_job(&req, &WorkerPool::new(4), 2).unwrap();
        assert_eq!(serial.text, parallel.text);
        assert_eq!(serial.sim_events, parallel.sim_events);
        assert!(serial.text.contains("suite speedups on 2 GPUs"));
    }

    #[test]
    fn unknown_app_is_invalid_not_a_panic() {
        let mut req = small_run();
        req.app = Some("does-not-exist".into());
        assert!(matches!(
            execute_job(&req, &WorkerPool::new(1), 1),
            Err(FarmError::Invalid(_))
        ));
    }

    #[test]
    fn audit_stamps_a_clean_default_config() {
        assert!(audit_job(&small_run()).unwrap());
    }
}
