//! The system-level conservation audit: runs a prepared workload with a
//! [`telemetry::AuditCollector`] attached, feeds it the run's aggregate
//! counters, and adds the one law the event stream cannot carry — the
//! transparency oracle, a byte-level diff of the destination memory
//! images against a program-order write-through baseline.
//!
//! See the `telemetry::audit` module docs for the laws themselves. This
//! module supplies the facts they are checked against: the protocol
//! framing math (copied out of the [`SystemConfig`]'s `FramingModel`),
//! the fabric's credit ledger, the `RunReport` aggregates, and the
//! functional memory images.

use std::sync::{Arc, Mutex};

use finepack::FlushReason;
use gpu_model::MemoryImage;
use sim_engine::SimTime;
use telemetry::{
    AuditCollector, AuditConfig, CreditLedger, Law, RunTotals, TraceCollector, TraceHandle,
    Violation, WireMath,
};

use crate::config::SystemConfig;
use crate::experiment::PreparedWorkload;
use crate::fault::RunError;
use crate::paradigm::Paradigm;
use crate::report::RunReport;
use crate::runner::Runner;

/// Sampling period for the audited run's time-series checks.
const SAMPLE_EVERY: SimTime = SimTime::from_ns(200);

/// The outcome of one audited run: the ordinary report plus everything
/// the auditor found.
#[derive(Debug)]
pub struct AuditOutcome {
    /// The run's report (identical to an un-audited run's).
    pub report: RunReport,
    /// Total violations per law, in [`Law::ALL`] order.
    pub law_counts: [u64; 5],
    /// Retained violation details, in detection order.
    pub violations: Vec<Violation>,
    /// The rendered per-law report.
    pub rendered: String,
}

impl AuditOutcome {
    /// True if every law held.
    pub fn is_clean(&self) -> bool {
        self.law_counts.iter().all(|c| *c == 0)
    }

    /// Panics with the rendered report if any law was violated — the
    /// debug hook for sprinkling audits into existing tests.
    ///
    /// # Panics
    ///
    /// Panics if the audit found any violation.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "conservation audit failed for {} under {}\n{}",
            self.report.workload,
            self.report.paradigm,
            self.rendered
        );
    }
}

/// The auditor configuration matching `cfg` and `paradigm`: the framing
/// math for wire recomputation, the credit pool bounds when the system
/// runs credited, and the byte-conservation mode (GPS legitimately
/// drops unsubscribed stores, so it only gets the inequality).
pub fn audit_config_for(cfg: &SystemConfig, paradigm: Paradigm) -> AuditConfig {
    let mut acfg = AuditConfig::new().with_wire_math(WireMath {
        per_tlp_overhead: u64::from(cfg.framing.per_tlp_overhead()),
        pad_granularity: u64::from(cfg.framing.pad_granularity),
        max_payload: u64::from(cfg.framing.max_payload),
    });
    if let Some(credits) = cfg.flow_control.credits() {
        acfg = acfg.with_credit_limits(u64::from(credits.ph), u64::from(credits.pd));
    }
    if paradigm == Paradigm::Gps {
        acfg = acfg.inexact_byte_conservation();
    }
    acfg
}

/// Runs `prep` under `paradigm` with the conservation auditor attached
/// and every cross-check enabled: stream-vs-report accounting, the
/// fabric's credit ledger, and (for transparent paradigms) the memory
/// image diff against a program-order write-through baseline.
///
/// GPS is audited without the transparency oracle (its subscription
/// filter drops stores by design) and `InfiniteBw` without wire or
/// image checks (it elides transfers analytically).
///
/// # Errors
///
/// Propagates [`RunError`] from the first failing iteration — a run the
/// fabric kills cannot be audited to completion.
pub fn audit_run(
    prep: &PreparedWorkload,
    cfg: &SystemConfig,
    paradigm: Paradigm,
) -> Result<AuditOutcome, RunError> {
    let audit = Arc::new(Mutex::new(AuditCollector::new(audit_config_for(
        cfg, paradigm,
    ))));
    // The transparency oracle needs functional payloads; InfiniteBw
    // never transfers (empty images would trivially mismatch) and GPS
    // drops stores by design, so neither diffs images.
    let diff_images = !matches!(paradigm, Paradigm::InfiniteBw | Paradigm::Gps);
    let mut runner = Runner::new(*cfg, paradigm, prep.gps_unsubscribed(), diff_images);
    runner.attach_trace(
        TraceHandle::new(audit.clone() as Arc<Mutex<dyn TraceCollector>>),
        Some(SAMPLE_EVERY),
    );
    for iter_runs in prep.runs() {
        runner.try_run_iteration(iter_runs, prep.dma_plan())?;
    }
    // The ledger and images must be read before `finish` consumes the
    // runner.
    let fc_totals = runner.fc_totals();
    let fc_in_flight = runner.fc_in_flight();
    let images = runner.images().map(<[MemoryImage]>::to_vec);
    let report = runner.finish(prep.name(), prep.read_fraction());

    let totals = run_totals(&report, fc_totals, fc_in_flight);
    let mut audit = Arc::into_inner(audit)
        .expect("runner dropped its trace handles")
        .into_inner()
        .expect("audit collector lock");
    audit.finalize(&totals);

    if let Some(images) = images {
        let baseline = write_through_images(prep, cfg.num_gpus);
        for (g, (got, want)) in images.iter().zip(&baseline).enumerate() {
            if !got.same_contents(want) {
                audit.flag(
                    Law::Transparency,
                    format!(
                        "gpu {g}: final memory image differs from the program-order \
                         write-through baseline"
                    ),
                );
            }
        }
    }

    Ok(AuditOutcome {
        report,
        law_counts: audit.law_counts(),
        violations: audit.violations().to_vec(),
        rendered: audit.render_report(),
    })
}

/// The program-order write-through baseline: every remote store and
/// atomic of every iteration applied directly to its destination's
/// image, in trace order — what a system with no write queue, no
/// packetizer, and no fabric would leave in memory.
fn write_through_images(prep: &PreparedWorkload, num_gpus: u8) -> Vec<MemoryImage> {
    let mut images: Vec<MemoryImage> = (0..num_gpus).map(|_| MemoryImage::new()).collect();
    for iter_runs in prep.runs() {
        for run in iter_runs {
            for t in run.egress.iter().chain(run.atomics.iter()) {
                images[t.store.dst.index()].write(t.store.addr, &t.store.data);
            }
        }
    }
    images
}

/// Copies the report's aggregates (and the fabric ledger) into the
/// plain-number [`RunTotals`] the telemetry-layer auditor cross-checks
/// the stream against.
fn run_totals(
    report: &RunReport,
    fc_totals: Option<protocol::CreditTotals>,
    fc_in_flight: (u64, u64),
) -> RunTotals {
    // The BulkDma report folds the DMA legs into the traffic breakdown:
    // data = useful + wasted, and protocol = (wire - data) + replays.
    // Invert that here so the auditor can check each piece; store
    // paradigms carry their wire/data split in the egress metrics.
    let (dma_wire, dma_data) = if report.paradigm == Paradigm::BulkDma {
        let data = report.traffic.useful + report.traffic.wasted;
        (report.traffic.protocol - report.replayed_bytes + data, data)
    } else {
        (0, 0)
    };
    RunTotals {
        egress_wire_bytes: report.egress.wire_bytes,
        egress_data_bytes: report.egress.data_bytes,
        egress_packets: report.egress.packets,
        overwritten_bytes: report.egress.overwritten_bytes,
        dma_wire_bytes: dma_wire,
        dma_data_bytes: dma_data,
        replayed_bytes: if report.paradigm == Paradigm::InfiniteBw {
            0
        } else {
            report.replayed_bytes
        },
        traffic_useful: report.traffic.useful,
        traffic_wasted: report.traffic.wasted,
        traffic_protocol: report.traffic.protocol,
        flushes: FlushReason::ALL
            .iter()
            .enumerate()
            .map(|(i, r)| (r.label(), report.egress.flushes_by_reason[i]))
            .collect(),
        credits: fc_totals.map(|t| CreditLedger {
            ph_consumed: t.ph_consumed,
            pd_consumed: t.pd_consumed,
            ph_returned: t.ph_returned,
            pd_returned: t.pd_returned,
            ph_in_flight: fc_in_flight.0,
            pd_in_flight: fc_in_flight.1,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Jacobi, Pagerank, RunSpec, Workload};

    fn audit(app: &dyn Workload, cfg: &SystemConfig, paradigm: Paradigm) -> AuditOutcome {
        let spec = RunSpec::tiny();
        let prep = PreparedWorkload::new(app, cfg, &spec);
        audit_run(&prep, cfg, paradigm).expect("audited run")
    }

    #[test]
    fn every_paradigm_is_clean_on_the_default_config() {
        let cfg = SystemConfig::paper(2);
        for paradigm in [
            Paradigm::FinePack,
            Paradigm::P2pStores,
            Paradigm::WriteCombining,
            Paradigm::Gps,
            Paradigm::BulkDma,
            Paradigm::InfiniteBw,
        ] {
            audit(&Pagerank::default(), &cfg, paradigm).assert_clean();
        }
    }

    #[test]
    fn open_loop_and_faulty_runs_are_clean() {
        let open = SystemConfig::paper(2).open_loop();
        audit(&Jacobi::default(), &open, Paradigm::FinePack).assert_clean();
        let faulty = SystemConfig::paper(2).with_faults(crate::FaultProfile::new(1e-6));
        audit(&Jacobi::default(), &faulty, Paradigm::FinePack).assert_clean();
    }

    #[test]
    fn audited_report_matches_unaudited_run() {
        let cfg = SystemConfig::paper(2);
        let spec = RunSpec::tiny();
        let prep = PreparedWorkload::new(&Pagerank::default(), &cfg, &spec);
        let plain = prep.try_run(&cfg, Paradigm::FinePack).expect("plain run");
        let audited = audit_run(&prep, &cfg, Paradigm::FinePack).expect("audited run");
        assert_eq!(format!("{plain:?}"), format!("{:?}", audited.report));
    }

    #[test]
    fn gps_gets_the_inequality_not_the_oracle() {
        let cfg = SystemConfig::paper(2);
        assert!(!audit_config_for(&cfg, Paradigm::Gps).exact_byte_conservation);
        assert!(audit_config_for(&cfg, Paradigm::FinePack).exact_byte_conservation);
    }

    #[test]
    fn credit_limits_track_the_flow_control_mode() {
        let cfg = SystemConfig::paper(2);
        let credits = cfg.flow_control.credits().expect("credited by default");
        assert_eq!(
            audit_config_for(&cfg, Paradigm::FinePack).credit_limits,
            Some((u64::from(credits.ph), u64::from(credits.pd)))
        );
        assert_eq!(
            audit_config_for(&cfg.open_loop(), Paradigm::FinePack).credit_limits,
            None
        );
    }
}
