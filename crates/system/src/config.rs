//! System-level configuration: interconnect generation, per-iteration
//! overheads, and the FinePack hardware parameters in force.

use finepack::FinePackConfig;
use gpu_model::GpuConfig;
use protocol::{FramingModel, PcieGen};
use sim_engine::SimTime;

use protocol::{CreditAccount, MAX_PAYLOAD_BYTES};

use crate::budget::RunBudget;
use crate::fault::FaultProfile;
use crate::topology::Topology;

/// Posted-write credit provisioning for one link direction under
/// [`FlowControlMode::Credited`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditConfig {
    /// Posted-header credits (TLPs in flight per link direction).
    pub ph: u32,
    /// Posted-data credits, 16-byte units.
    pub pd: u32,
    /// Modeled `UpdateFC` round trip: time from the receiver draining a
    /// TLP to the sender seeing its credits again.
    pub return_latency: SimTime,
    /// Egress output-buffer admission threshold, packets: the SM stalls
    /// while a path has this many packets waiting for link credits.
    pub buffer_packets: usize,
}

impl CreditConfig {
    /// A realistically provisioned PCIe switch ingress port for the
    /// paper's Gen4 system: the pool must cover the credit round trip's
    /// bandwidth-delay product (~500ns hop + serialization + UpdateFC
    /// return at 32GB/s ≈ 30KB) or steady-state streams throttle on
    /// credits rather than wire bandwidth. 256 headers / 32KB of data
    /// (2048 × 16B units) clears that bar for both FinePack's 4KB TLPs
    /// and raw P2P's 128B TLPs, so sustained flows run at link rate
    /// while bursts beyond the receiver's buffering still backpressure.
    pub fn paper() -> Self {
        CreditConfig {
            ph: 256,
            pd: 2048,
            return_latency: SimTime::from_ns(250),
            buffer_packets: 8,
        }
    }

    /// A pool large enough that no realistic workload ever blocks —
    /// the provisioning under which credited mode must reproduce
    /// open-loop timing bit-for-bit.
    pub fn generous() -> Self {
        CreditConfig {
            ph: 1 << 20,
            pd: 1 << 26,
            return_latency: SimTime::from_ns(500),
            buffer_packets: 1 << 20,
        }
    }

    /// The sender-side account this pool advertises.
    pub fn account(&self) -> CreditAccount {
        CreditAccount::new(self.ph, self.pd)
    }
}

/// Whether the fabric applies credit-based flow control to peer-to-peer
/// store traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowControlMode {
    /// Open-loop analytic delivery: every packet lands regardless of
    /// link occupancy (the original model; reproduces the paper's
    /// figure numbers exactly).
    Open,
    /// Closed-loop: each link direction holds a finite credit pool;
    /// exhaustion backpressures the egress path and ultimately stalls
    /// the issuing GPU's store stream.
    Credited(CreditConfig),
}

impl FlowControlMode {
    /// The credit pool, when credited.
    pub fn credits(&self) -> Option<CreditConfig> {
        match self {
            FlowControlMode::Open => None,
            FlowControlMode::Credited(c) => Some(*c),
        }
    }
}

/// Complete configuration of a simulated multi-GPU node.
///
/// # Examples
///
/// ```
/// use system::SystemConfig;
/// use protocol::PcieGen;
///
/// let cfg = SystemConfig::paper(4);
/// assert_eq!(cfg.pcie_gen, PcieGen::Gen4);
/// assert_eq!(cfg.num_gpus, 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Number of GPUs in the node.
    pub num_gpus: u8,
    /// Interconnect generation (fixes per-direction link bandwidth).
    pub pcie_gen: PcieGen,
    /// Switch arrangement (single switch in the paper's evaluation).
    pub topology: Topology,
    /// Link framing model.
    pub framing: FramingModel,
    /// GPU hardware configuration.
    pub gpu: GpuConfig,
    /// FinePack structure configuration.
    pub finepack: FinePackConfig,
    /// Per-iteration synchronization cost: barrier + kernel relaunch.
    pub barrier_overhead: SimTime,
    /// Extra software cost per DMA transfer window (runtime/driver
    /// layers, §II-B).
    pub dma_sw_overhead: SimTime,
    /// Switch traversal latency per hop.
    pub hop_latency: SimTime,
    /// Write-combining / GPS line-buffer entries per destination.
    pub combining_entries: usize,
    /// Optional FinePack inactivity-timeout flush (§IV-B); `None`
    /// matches the paper's evaluated configuration.
    pub finepack_flush_timeout: Option<SimTime>,
    /// Experiment seed (drives GPS subscription draws and the fault
    /// layer's per-link RNG streams).
    pub seed: u64,
    /// Optional link fault injection; `None` runs the fabric without a
    /// data link layer (the paper's idealized evaluation).
    pub fault: Option<FaultProfile>,
    /// Flow-control regime for peer-to-peer store traffic.
    pub flow_control: FlowControlMode,
    /// Optional run budget (event ceiling, sim-time ceiling, progress
    /// watchdog); `None` runs unbounded. A run that never trips its
    /// budget is byte-identical to the same run without one.
    pub run_budget: Option<RunBudget>,
    /// Worker threads *inside* a single run (intra-run sharding; see
    /// DESIGN.md §12). This is a harness knob, not a property of the
    /// simulated system: results are bit-identical for every value.
    /// `1` (the default) runs the classic serial event loop; higher
    /// values shard the per-GPU elaboration across threads under the
    /// conservative lookahead of [`SystemConfig::shard_lookahead`],
    /// degrading back to serial whenever no safe horizon exists.
    pub intra_jobs: usize,
}

impl SystemConfig {
    /// The paper's evaluated system: `num_gpus` GV100s on switched
    /// PCIe 4.0 with Table III FinePack structures.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus < 2`.
    pub fn paper(num_gpus: u8) -> Self {
        SystemConfig {
            num_gpus,
            pcie_gen: PcieGen::Gen4,
            topology: Topology::SingleSwitch,
            framing: FramingModel::pcie_gen4(),
            gpu: GpuConfig::gv100(),
            finepack: FinePackConfig::paper(u32::from(num_gpus)),
            barrier_overhead: SimTime::from_ns(1_500),
            dma_sw_overhead: SimTime::from_ns(1_500),
            hop_latency: SimTime::from_ns(500),
            combining_entries: 64,
            finepack_flush_timeout: None,
            seed: 0xF14E_9ACC,
            fault: None,
            flow_control: FlowControlMode::Credited(CreditConfig::paper()),
            run_budget: None,
            intra_jobs: 1,
        }
    }

    /// Injects link faults (bit errors, outages, degradation).
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.fault = Some(profile);
        self
    }

    /// Enables FinePack's inactivity-timeout flush (§IV-B option).
    pub fn with_finepack_timeout(mut self, timeout: SimTime) -> Self {
        self.finepack_flush_timeout = Some(timeout);
        self
    }

    /// Same system on a different switch topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Same system at a different interconnect generation (Fig 13).
    pub fn with_pcie_gen(mut self, gen: PcieGen) -> Self {
        self.pcie_gen = gen;
        self
    }

    /// Replaces the FinePack configuration (Fig 12 sub-header sweep).
    pub fn with_finepack(mut self, fp: FinePackConfig) -> Self {
        self.finepack = fp;
        self
    }

    /// Selects the flow-control regime for store traffic.
    pub fn with_flow_control(mut self, mode: FlowControlMode) -> Self {
        self.flow_control = mode;
        self
    }

    /// Bounds runs with `budget`: a tripped ceiling terminates the run
    /// with a structured [`RunError::BudgetExceeded`] diagnostic
    /// instead of churning or livelocking.
    ///
    /// [`RunError::BudgetExceeded`]: crate::RunError::BudgetExceeded
    pub fn with_run_budget(mut self, budget: RunBudget) -> Self {
        self.run_budget = Some(budget);
        self
    }

    /// Convenience: the original open-loop analytic timing model.
    pub fn open_loop(self) -> Self {
        self.with_flow_control(FlowControlMode::Open)
    }

    /// Sets the intra-run worker count (see the `intra_jobs` field).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn with_intra_jobs(mut self, jobs: usize) -> Self {
        assert!(jobs >= 1, "intra-run sharding needs at least one worker");
        self.intra_jobs = jobs;
        self
    }

    /// The conservative lookahead for intra-run sharding: the minimum
    /// simulated latency by which one GPU's actions can affect another.
    ///
    /// Under open-loop flow control every cross-GPU interaction rides a
    /// link, so the horizon is the hop latency. Under credited flow
    /// control the sender additionally reacts to the receiver through
    /// the `UpdateFC` return path, so the horizon shrinks to the
    /// smaller of hop latency and credit-return latency. A zero horizon
    /// (`None`) means no safe parallel window exists and the runner
    /// must degrade to its serial loop.
    pub fn shard_lookahead(&self) -> Option<SimTime> {
        let horizon = match self.flow_control.credits() {
            None => self.hop_latency,
            Some(credits) => self.hop_latency.min(credits.return_latency),
        };
        (horizon.as_ps() > 0).then_some(horizon)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any sub-configuration is invalid.
    pub fn validate(&self) {
        assert!(self.num_gpus >= 2, "a node needs at least 2 GPUs");
        assert!(self.intra_jobs >= 1, "intra_jobs must be at least 1");
        self.gpu.validate();
        self.finepack.validate();
        assert!(self.combining_entries > 0);
        if let Some(fault) = &self.fault {
            fault.validate();
        }
        if let Some(budget) = &self.run_budget {
            budget.validate();
        }
        if let Topology::TwoLevel { gpus_per_leaf } = self.topology {
            assert!(
                gpus_per_leaf > 0 && self.num_gpus.is_multiple_of(gpus_per_leaf),
                "leaf size must divide GPU count"
            );
        }
        if let FlowControlMode::Credited(credits) = self.flow_control {
            assert!(credits.buffer_packets > 0, "output buffer needs capacity");
            // The pool must cover the largest single TLP the system can
            // emit, or that TLP would retry forever.
            let largest = self.finepack.max_payload.max(MAX_PAYLOAD_BYTES);
            let (ph, pd) = CreditAccount::cost(largest);
            assert!(
                credits.ph >= ph && credits.pd >= pd,
                "credit pool smaller than one maximum-size TLP ({largest}B)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::PD_UNIT_BYTES;

    #[test]
    fn paper_config_is_valid() {
        SystemConfig::paper(4).validate();
        SystemConfig::paper(16).validate();
    }

    #[test]
    fn builders_compose() {
        let cfg = SystemConfig::paper(4)
            .with_pcie_gen(PcieGen::Gen6)
            .with_finepack(FinePackConfig::paper(4));
        assert_eq!(cfg.pcie_gen, PcieGen::Gen6);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_gpu_node_invalid() {
        let mut cfg = SystemConfig::paper(4);
        cfg.num_gpus = 1;
        cfg.validate();
    }

    #[test]
    fn default_flow_control_is_credited_paper_pool() {
        let cfg = SystemConfig::paper(4);
        let credits = cfg.flow_control.credits().expect("credited by default");
        assert_eq!(credits, CreditConfig::paper());
        // Pool covers the credit round trip's bandwidth-delay product.
        assert!(u64::from(credits.pd) * PD_UNIT_BYTES as u64 >= 30 << 10);
        cfg.validate();
        cfg.open_loop().validate();
        cfg.with_flow_control(FlowControlMode::Credited(CreditConfig::generous()))
            .validate();
    }

    #[test]
    #[should_panic(expected = "smaller than one maximum-size TLP")]
    fn credit_pool_below_one_tlp_invalid() {
        let tiny = CreditConfig {
            ph: 1,
            pd: 4, // 64B: cannot carry a 4096B TLP
            return_latency: SimTime::ZERO,
            buffer_packets: 1,
        };
        SystemConfig::paper(4)
            .with_flow_control(FlowControlMode::Credited(tiny))
            .validate();
    }
}
