//! System-level configuration: interconnect generation, per-iteration
//! overheads, and the FinePack hardware parameters in force.

use finepack::FinePackConfig;
use gpu_model::GpuConfig;
use protocol::{FramingModel, PcieGen};
use sim_engine::SimTime;

use crate::fault::FaultProfile;
use crate::topology::Topology;

/// Complete configuration of a simulated multi-GPU node.
///
/// # Examples
///
/// ```
/// use system::SystemConfig;
/// use protocol::PcieGen;
///
/// let cfg = SystemConfig::paper(4);
/// assert_eq!(cfg.pcie_gen, PcieGen::Gen4);
/// assert_eq!(cfg.num_gpus, 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Number of GPUs in the node.
    pub num_gpus: u8,
    /// Interconnect generation (fixes per-direction link bandwidth).
    pub pcie_gen: PcieGen,
    /// Switch arrangement (single switch in the paper's evaluation).
    pub topology: Topology,
    /// Link framing model.
    pub framing: FramingModel,
    /// GPU hardware configuration.
    pub gpu: GpuConfig,
    /// FinePack structure configuration.
    pub finepack: FinePackConfig,
    /// Per-iteration synchronization cost: barrier + kernel relaunch.
    pub barrier_overhead: SimTime,
    /// Extra software cost per DMA transfer window (runtime/driver
    /// layers, §II-B).
    pub dma_sw_overhead: SimTime,
    /// Switch traversal latency per hop.
    pub hop_latency: SimTime,
    /// Write-combining / GPS line-buffer entries per destination.
    pub combining_entries: usize,
    /// Optional FinePack inactivity-timeout flush (§IV-B); `None`
    /// matches the paper's evaluated configuration.
    pub finepack_flush_timeout: Option<SimTime>,
    /// Experiment seed (drives GPS subscription draws and the fault
    /// layer's per-link RNG streams).
    pub seed: u64,
    /// Optional link fault injection; `None` runs the fabric without a
    /// data link layer (the paper's idealized evaluation).
    pub fault: Option<FaultProfile>,
}

impl SystemConfig {
    /// The paper's evaluated system: `num_gpus` GV100s on switched
    /// PCIe 4.0 with Table III FinePack structures.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus < 2`.
    pub fn paper(num_gpus: u8) -> Self {
        SystemConfig {
            num_gpus,
            pcie_gen: PcieGen::Gen4,
            topology: Topology::SingleSwitch,
            framing: FramingModel::pcie_gen4(),
            gpu: GpuConfig::gv100(),
            finepack: FinePackConfig::paper(u32::from(num_gpus)),
            barrier_overhead: SimTime::from_ns(1_500),
            dma_sw_overhead: SimTime::from_ns(1_500),
            hop_latency: SimTime::from_ns(500),
            combining_entries: 64,
            finepack_flush_timeout: None,
            seed: 0xF14E_9ACC,
            fault: None,
        }
    }

    /// Injects link faults (bit errors, outages, degradation).
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.fault = Some(profile);
        self
    }

    /// Enables FinePack's inactivity-timeout flush (§IV-B option).
    pub fn with_finepack_timeout(mut self, timeout: SimTime) -> Self {
        self.finepack_flush_timeout = Some(timeout);
        self
    }

    /// Same system on a different switch topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Same system at a different interconnect generation (Fig 13).
    pub fn with_pcie_gen(mut self, gen: PcieGen) -> Self {
        self.pcie_gen = gen;
        self
    }

    /// Replaces the FinePack configuration (Fig 12 sub-header sweep).
    pub fn with_finepack(mut self, fp: FinePackConfig) -> Self {
        self.finepack = fp;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any sub-configuration is invalid.
    pub fn validate(&self) {
        assert!(self.num_gpus >= 2, "a node needs at least 2 GPUs");
        self.gpu.validate();
        self.finepack.validate();
        assert!(self.combining_entries > 0);
        if let Some(fault) = &self.fault {
            fault.validate();
        }
        if let Topology::TwoLevel { gpus_per_leaf } = self.topology {
            assert!(
                gpus_per_leaf > 0 && self.num_gpus.is_multiple_of(gpus_per_leaf),
                "leaf size must divide GPU count"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        SystemConfig::paper(4).validate();
        SystemConfig::paper(16).validate();
    }

    #[test]
    fn builders_compose() {
        let cfg = SystemConfig::paper(4)
            .with_pcie_gen(PcieGen::Gen6)
            .with_finepack(FinePackConfig::paper(4));
        assert_eq!(cfg.pcie_gen, PcieGen::Gen6);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_gpu_node_invalid() {
        let mut cfg = SystemConfig::paper(4);
        cfg.num_gpus = 1;
        cfg.validate();
    }
}
