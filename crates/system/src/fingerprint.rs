//! Content-addressed fingerprints for simulation inputs.
//!
//! The sweep farm (ROADMAP item 4) caches [`crate::RunReport`]s keyed
//! on *what was simulated*: the full [`SystemConfig`], the workload
//! identity and its [`RunSpec`], and the paradigm set. Because the
//! simulator is deterministic — byte-identical reports at any harness
//! parallelism — two submissions with equal fingerprints are guaranteed
//! to produce equal outputs, which is what makes serving a cached
//! result sound.
//!
//! Canonicalization rules:
//!
//! - Every absorbed value is framed as `tag ':' value ';'` with a
//!   length prefix, so adjacent fields can never alias (`"ab","c"` vs
//!   `"a","bc"` digest differently).
//! - Harness knobs that provably do not affect results are *excluded*:
//!   [`SystemConfig::intra_jobs`] is normalized to 1 before hashing
//!   (DESIGN.md §12 pins bit-identity across intra-run worker counts),
//!   and sweep-level `--jobs` never reaches the config at all.
//! - The [`SystemConfig`] is absorbed through its `Debug` rendering.
//!   Every field of the config tree is `Copy` data rendered by derived
//!   `Debug` impls (no maps, no addresses), and Rust renders `f64` with
//!   shortest-roundtrip formatting, which is injective — so the
//!   rendering is a canonical byte encoding that automatically covers
//!   every current *and future* config field. A new knob added to
//!   `SystemConfig` changes the rendering and therefore the
//!   fingerprint, which fails safe (a spurious cache miss, never a
//!   stale hit).

use std::fmt::Write as _;

use workloads::RunSpec;

use crate::config::SystemConfig;
use crate::paradigm::Paradigm;

/// A canonical, unambiguous byte stream being fingerprinted.
///
/// Values are framed as `<tag>:<len>:<bytes>;` so no concatenation of
/// distinct field sequences can collide structurally.
#[derive(Debug, Default, Clone)]
pub struct CanonicalBytes {
    buf: Vec<u8>,
}

impl CanonicalBytes {
    /// Creates an empty stream.
    pub fn new() -> Self {
        CanonicalBytes::default()
    }

    /// Appends one tagged, length-prefixed value.
    pub fn push(&mut self, tag: &str, value: &str) {
        self.buf.extend_from_slice(tag.as_bytes());
        self.buf.push(b':');
        let mut len = String::new();
        let _ = write!(len, "{}", value.len());
        self.buf.extend_from_slice(len.as_bytes());
        self.buf.push(b':');
        self.buf.extend_from_slice(value.as_bytes());
        self.buf.push(b';');
    }

    /// The accumulated canonical bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Digests the accumulated stream.
    pub fn digest(&self) -> ConfigFingerprint {
        ConfigFingerprint::of(&self.buf)
    }
}

/// A 128-bit content fingerprint of canonical input bytes.
///
/// Two independent 64-bit FNV-1a lanes (distinct offset bases, the
/// second lane salted per byte position) are finalized through a
/// splitmix64 avalanche. This is not a cryptographic hash — cache keys
/// here defend against *accidental* collision across sweep points, and
/// 128 bits of well-mixed state makes that probability negligible for
/// any realistic cache population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigFingerprint {
    hi: u64,
    lo: u64,
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ConfigFingerprint {
    /// Digests `bytes`.
    pub fn of(bytes: &[u8]) -> Self {
        let mut a = FNV_OFFSET_A;
        let mut b = FNV_OFFSET_B;
        for (i, &byte) in bytes.iter().enumerate() {
            a = (a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            b = (b ^ u64::from(byte) ^ (i as u64).rotate_left(17)).wrapping_mul(FNV_PRIME);
        }
        // Cross-feed the lanes through an avalanche so a difference in
        // either lane perturbs all 128 output bits.
        let hi = splitmix(a ^ b.rotate_left(32));
        let lo = splitmix(b ^ a.rotate_left(32) ^ hi);
        ConfigFingerprint { hi, lo }
    }

    /// The fingerprint as 32 lowercase hex characters.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl std::fmt::Display for ConfigFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Builds the canonical fingerprint of one simulation request.
///
/// # Examples
///
/// ```
/// use system::{FingerprintBuilder, Paradigm, SystemConfig};
/// use workloads::RunSpec;
///
/// let cfg = SystemConfig::paper(4);
/// let spec = RunSpec::paper(4);
/// let a = FingerprintBuilder::new()
///     .system(&cfg)
///     .workload("pagerank", &spec)
///     .paradigms(&Paradigm::FIG9)
///     .finish();
/// // Harness parallelism is excluded: the same system sharded across
/// // four intra-run workers produces bit-identical results, so it
/// // fingerprints identically.
/// let b = FingerprintBuilder::new()
///     .system(&cfg.with_intra_jobs(4))
///     .workload("pagerank", &spec)
///     .paradigms(&Paradigm::FIG9)
///     .finish();
/// assert_eq!(a, b);
/// // Any simulated-system knob is covered.
/// let c = FingerprintBuilder::new()
///     .system(&cfg.open_loop())
///     .workload("pagerank", &spec)
///     .paradigms(&Paradigm::FIG9)
///     .finish();
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Default)]
pub struct FingerprintBuilder {
    bytes: CanonicalBytes,
}

impl FingerprintBuilder {
    /// Starts an empty fingerprint.
    pub fn new() -> Self {
        FingerprintBuilder::default()
    }

    /// Absorbs an arbitrary tagged field (build stamps, wire schema
    /// versions, supervision knobs that change *output text*).
    pub fn field(mut self, tag: &str, value: &str) -> Self {
        self.bytes.push(tag, value);
        self
    }

    /// Absorbs a tagged integer.
    pub fn u64(self, tag: &str, value: u64) -> Self {
        let mut s = String::new();
        let _ = write!(s, "{value}");
        self.field(tag, &s)
    }

    /// Absorbs the complete simulated-system configuration.
    ///
    /// The config is first normalized — `intra_jobs` forced to 1, the
    /// one field that is a harness knob rather than a property of the
    /// simulated machine — then rendered via `Debug` (see the module
    /// docs for why that rendering is canonical) and absorbed.
    pub fn system(mut self, cfg: &SystemConfig) -> Self {
        let mut normalized = *cfg;
        normalized.intra_jobs = 1;
        let mut rendered = String::new();
        let _ = write!(rendered, "{normalized:?}");
        self.bytes.push("system", &rendered);
        self
    }

    /// Absorbs the workload identity: app name plus the full
    /// [`RunSpec`] (GPU count, iterations, seed, scale-down, scaling).
    pub fn workload(mut self, app: &str, spec: &RunSpec) -> Self {
        self.bytes.push("app", app);
        let mut rendered = String::new();
        let _ = write!(rendered, "{spec:?}");
        self.bytes.push("spec", &rendered);
        self
    }

    /// Absorbs the ordered paradigm set under comparison.
    pub fn paradigms(mut self, paradigms: &[Paradigm]) -> Self {
        let mut rendered = String::new();
        for p in paradigms {
            let _ = write!(rendered, "{p:?},");
        }
        self.bytes.push("paradigms", &rendered);
        self
    }

    /// Finalizes the digest.
    pub fn finish(self) -> ConfigFingerprint {
        self.bytes.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::RunBudget;
    use crate::config::{CreditConfig, FlowControlMode};
    use crate::fault::FaultProfile;
    use crate::topology::Topology;
    use protocol::PcieGen;
    use sim_engine::SimTime;
    use std::collections::HashSet;

    fn fp(cfg: &SystemConfig) -> ConfigFingerprint {
        FingerprintBuilder::new()
            .system(cfg)
            .workload("pagerank", &RunSpec::paper(cfg.num_gpus))
            .paradigms(&Paradigm::FIG9)
            .finish()
    }

    #[test]
    fn framing_prevents_field_aliasing() {
        let a = CanonicalBytes::new();
        let mut ab = a.clone();
        ab.push("t", "ab");
        ab.push("t", "c");
        let mut cd = CanonicalBytes::new();
        cd.push("t", "a");
        cd.push("t", "bc");
        assert_ne!(ab.as_bytes(), cd.as_bytes());
        assert_ne!(ab.digest(), cd.digest());
    }

    #[test]
    fn digest_is_stable_and_hex_is_32_chars() {
        let d = ConfigFingerprint::of(b"finepack");
        assert_eq!(d, ConfigFingerprint::of(b"finepack"));
        assert_eq!(d.hex().len(), 32);
        assert_eq!(d.hex(), format!("{d}"));
        assert_ne!(d, ConfigFingerprint::of(b"finepacl"));
    }

    #[test]
    fn position_salt_distinguishes_permutations() {
        assert_ne!(ConfigFingerprint::of(b"ab"), ConfigFingerprint::of(b"ba"));
    }

    /// The cache-correctness property test the ISSUE asks for: every
    /// single-field perturbation of [`SystemConfig`] must yield a
    /// distinct fingerprint (no two sweep points can collide on a
    /// stale cached result), while harness knobs must *not* perturb it.
    #[test]
    fn every_config_knob_perturbs_the_fingerprint() {
        let base = SystemConfig::paper(4);
        let mut variants: Vec<SystemConfig> = vec![base];

        variants.push(SystemConfig::paper(8));
        variants.push(base.with_pcie_gen(PcieGen::Gen5));
        variants.push(base.with_pcie_gen(PcieGen::Gen6));
        variants.push(base.with_topology(Topology::TwoLevel { gpus_per_leaf: 2 }));
        variants.push({
            let mut c = base;
            c.barrier_overhead = SimTime::from_ns(2_000);
            c
        });
        variants.push({
            let mut c = base;
            c.dma_sw_overhead = SimTime::from_ns(2_000);
            c
        });
        variants.push({
            let mut c = base;
            c.hop_latency = SimTime::from_ns(750);
            c
        });
        variants.push({
            let mut c = base;
            c.combining_entries = 128;
            c
        });
        variants.push(base.with_finepack_timeout(SimTime::from_us(1)));
        variants.push({
            let mut c = base;
            c.seed = 0xDEAD_BEEF;
            c
        });
        variants.push(base.with_faults(FaultProfile::new(1e-9)));
        variants.push(base.open_loop());
        variants.push(base.with_flow_control(FlowControlMode::Credited(CreditConfig::generous())));
        variants.push(base.with_run_budget(RunBudget::unlimited().with_max_events(1 << 20)));
        variants.push({
            let mut c = base;
            c.finepack.max_payload = 2048;
            c
        });
        variants.push({
            let mut c = base;
            c.gpu.num_sms = 40;
            c
        });

        let digests: HashSet<_> = variants.iter().map(fp).collect();
        assert_eq!(
            digests.len(),
            variants.len(),
            "two distinct configs collided on one fingerprint"
        );
    }

    #[test]
    fn harness_knobs_are_excluded() {
        let base = SystemConfig::paper(4);
        assert_eq!(fp(&base), fp(&base.with_intra_jobs(4)));
        assert_eq!(fp(&base), fp(&base.with_intra_jobs(16)));
    }

    #[test]
    fn workload_identity_is_covered() {
        let cfg = SystemConfig::paper(4);
        let spec = RunSpec::paper(4);
        let base = FingerprintBuilder::new()
            .system(&cfg)
            .workload("pagerank", &spec)
            .paradigms(&Paradigm::FIG9)
            .finish();

        let other_app = FingerprintBuilder::new()
            .system(&cfg)
            .workload("jacobi", &spec)
            .paradigms(&Paradigm::FIG9)
            .finish();
        assert_ne!(base, other_app);

        let mut scaled = spec;
        scaled.scale_down = 16;
        let other_spec = FingerprintBuilder::new()
            .system(&cfg)
            .workload("pagerank", &scaled)
            .paradigms(&Paradigm::FIG9)
            .finish();
        assert_ne!(base, other_spec);

        let fewer_paradigms = FingerprintBuilder::new()
            .system(&cfg)
            .workload("pagerank", &spec)
            .paradigms(&[Paradigm::FinePack])
            .finish();
        assert_ne!(base, fewer_paradigms);
    }

    #[test]
    fn free_form_fields_are_covered() {
        let a = FingerprintBuilder::new().field("build", "abc").finish();
        let b = FingerprintBuilder::new().field("build", "abd").finish();
        let c = FingerprintBuilder::new().u64("retries", 2).finish();
        let d = FingerprintBuilder::new().u64("retries", 3).finish();
        assert_ne!(a, b);
        assert_ne!(c, d);
    }
}
