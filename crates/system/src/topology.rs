//! Switch topologies. The paper's 4-GPU system hangs off a single PCIe
//! switch; larger nodes (its §VI-B 16-GPU projection) realistically use a
//! two-level switch tree, where leaf-to-spine uplinks carry all
//! inter-leaf traffic and become the contended resource for all-to-all
//! patterns.

use gpu_model::GpuId;
use sim_engine::{Bandwidth, SimTime};

use protocol::{CreditTimeline, DataLinkEndpoint};

use crate::config::CreditConfig;
use crate::link::{FcStats, Link};

/// The outcome of a credited send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Credits were available on every traversed link; the TLP lands at
    /// this time (identical to what [`RoutedFabric::try_send`] returns).
    Delivered(SimTime),
    /// Some traversed link is out of posted credits; nothing was
    /// consumed or transmitted. Retry at `until`, when the earliest
    /// sufficient `UpdateFC` returns are scheduled to land.
    Blocked {
        /// Earliest time every traversed link can admit the TLP.
        until: SimTime,
    },
}

/// Per-segment completion times of one routed transfer: when each
/// traversed link's receiver drained the TLP (replay penalties
/// included), which is what schedules that link's credit return.
struct RouteDone {
    delivered: SimTime,
    egress_done: SimTime,
    up_done: Option<SimTime>,
    down_done: Option<SimTime>,
}

/// The switch arrangement connecting the GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every GPU on one switch: uniform single-hop connectivity (the
    /// paper's evaluated 4-GPU system).
    SingleSwitch,
    /// Two-level tree: GPUs attach to leaf switches of `gpus_per_leaf`;
    /// leaves connect to one spine by a single uplink per direction.
    /// Intra-leaf traffic takes one hop; inter-leaf traffic additionally
    /// crosses two (shared) uplinks.
    TwoLevel {
        /// GPUs per leaf switch (must divide the GPU count).
        gpus_per_leaf: u8,
    },
}

impl Topology {
    /// The GPU group an intra-run shard boundary must not split: leaf
    /// switch domains stay whole so a shard owns complete link domains.
    /// Single-switch fabrics place no constraint (group of one).
    pub fn shard_group(&self) -> usize {
        match self {
            Topology::SingleSwitch => 1,
            Topology::TwoLevel { gpus_per_leaf } => usize::from(*gpus_per_leaf),
        }
    }

    /// Number of switch hops between two GPUs.
    pub fn hops(&self, a: GpuId, b: GpuId) -> u32 {
        match self {
            Topology::SingleSwitch => 1,
            Topology::TwoLevel { gpus_per_leaf } => {
                if a.index() / usize::from(*gpus_per_leaf)
                    == b.index() / usize::from(*gpus_per_leaf)
                {
                    1
                } else {
                    3 // leaf -> spine -> leaf
                }
            }
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Topology::SingleSwitch => write!(f, "single-switch"),
            Topology::TwoLevel { gpus_per_leaf } => {
                write!(f, "two-level ({gpus_per_leaf} GPUs/leaf)")
            }
        }
    }
}

/// The routed fabric: per-GPU access links plus (for two-level
/// topologies) shared per-leaf uplinks in both directions.
#[derive(Debug, Clone)]
pub struct RoutedFabric {
    topology: Topology,
    egress: Vec<Link>,
    ingress: Vec<Link>,
    /// Per-leaf uplink toward the spine.
    up: Vec<Link>,
    /// Per-leaf downlink from the spine.
    down: Vec<Link>,
    gpus_per_leaf: usize,
    hop_latency: SimTime,
}

impl RoutedFabric {
    /// Builds the fabric. All links (access and uplinks) run at
    /// `bandwidth` per direction, as with real PCIe switch trees built
    /// from the same generation of links.
    ///
    /// # Panics
    ///
    /// Panics if a two-level topology's leaf size does not divide
    /// `num_gpus`.
    pub fn new(
        topology: Topology,
        num_gpus: u8,
        bandwidth: Bandwidth,
        hop_latency: SimTime,
    ) -> Self {
        let gpus_per_leaf = match topology {
            Topology::SingleSwitch => usize::from(num_gpus),
            Topology::TwoLevel { gpus_per_leaf } => {
                assert!(
                    gpus_per_leaf > 0 && num_gpus.is_multiple_of(gpus_per_leaf),
                    "leaf size {gpus_per_leaf} must divide GPU count {num_gpus}"
                );
                usize::from(gpus_per_leaf)
            }
        };
        let leaves = usize::from(num_gpus).div_ceil(gpus_per_leaf);
        RoutedFabric {
            topology,
            egress: (0..num_gpus).map(|_| Link::new(bandwidth)).collect(),
            ingress: (0..num_gpus).map(|_| Link::new(bandwidth)).collect(),
            up: (0..leaves).map(|_| Link::new(bandwidth)).collect(),
            down: (0..leaves).map(|_| Link::new(bandwidth)).collect(),
            gpus_per_leaf,
            hop_latency,
        }
    }

    /// Attaches fault injection to every link direction — access links
    /// and (for two-level topologies) leaf uplinks/downlinks — each
    /// with an independent deterministic RNG stream derived from
    /// `seed`. An outage in the profile lands on the nominated GPU's
    /// egress link.
    pub fn with_faults(mut self, profile: crate::FaultProfile, seed: u64) -> Self {
        profile.validate();
        let ber = protocol::BitErrorModel::new(profile.ber);
        for (dir, links) in [
            ("egress", &mut self.egress),
            ("ingress", &mut self.ingress),
            ("up", &mut self.up),
            ("down", &mut self.down),
        ] {
            for (i, link) in links.iter_mut().enumerate() {
                let rng = sim_engine::DetRng::new(seed, &format!("dll-{dir}{i}"));
                link.attach_dll(
                    DataLinkEndpoint::new(profile.replay, ber, rng),
                    profile.degrade,
                );
            }
        }
        if let Some(o) = profile.outage {
            self.egress[usize::from(o.gpu)].set_outage(o.from, o.until);
        }
        self
    }

    fn leaf_of(&self, gpu: GpuId) -> usize {
        gpu.index() / self.gpus_per_leaf
    }

    /// Sends `bytes` from `src` to `dst`; returns the delivery time.
    /// Cut-through at every stage: each link adds its own serialization
    /// under contention but an uncontended transfer is serialized once.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn send(&mut self, at: SimTime, src: GpuId, dst: GpuId, bytes: u64) -> SimTime {
        assert_ne!(src, dst, "local traffic must not enter the fabric");
        let start = at.max(self.egress[src.index()].busy_until());
        self.egress[src.index()].transmit(at, bytes);
        let mut head = start + self.hop_latency;
        let (src_leaf, dst_leaf) = (self.leaf_of(src), self.leaf_of(dst));
        if matches!(self.topology, Topology::TwoLevel { .. }) && src_leaf != dst_leaf {
            let up = &mut self.up[src_leaf];
            let up_start = head.max(up.busy_until());
            up.transmit(head, bytes);
            head = up_start + self.hop_latency;
            let down = &mut self.down[dst_leaf];
            let down_start = head.max(down.busy_until());
            down.transmit(head, bytes);
            head = down_start + self.hop_latency;
        }
        self.ingress[dst.index()].transmit(head, bytes)
    }

    /// [`RoutedFabric::send`] through the data link layer: replayed
    /// TLPs cost wire bytes and delay at every stage; a stuck link
    /// surfaces as an error naming the dead direction.
    ///
    /// # Errors
    ///
    /// [`crate::FabricFault`] when any traversed link declares itself
    /// down.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn try_send(
        &mut self,
        at: SimTime,
        src: GpuId,
        dst: GpuId,
        bytes: u64,
    ) -> Result<SimTime, Box<crate::FabricFault>> {
        self.route_transmit(at, src, dst, bytes)
            .map(|r| r.delivered)
    }

    /// The timed traversal shared by open and credited sends, reporting
    /// per-segment completion times for credit-return scheduling.
    fn route_transmit(
        &mut self,
        at: SimTime,
        src: GpuId,
        dst: GpuId,
        bytes: u64,
    ) -> Result<RouteDone, Box<crate::FabricFault>> {
        assert_ne!(src, dst, "local traffic must not enter the fabric");
        let fault = |link: &Link, name: String, error| {
            Box::new(crate::FabricFault {
                link: name,
                at,
                error,
                stats: link.dll_stats().unwrap_or_default(),
            })
        };
        let start = at.max(self.egress[src.index()].busy_until());
        let out = match self.egress[src.index()].try_transmit(at, bytes) {
            Ok(d) => d,
            Err(e) => {
                let l = &self.egress[src.index()];
                return Err(fault(l, format!("egress{}", src.index()), e));
            }
        };
        let mut head = start + self.hop_latency + out.penalty;
        // The last byte cannot land before it has cleared every
        // upstream link (matters when a degraded link is slower than
        // the ones after it).
        let mut floor = out.done + self.hop_latency;
        let (src_leaf, dst_leaf) = (self.leaf_of(src), self.leaf_of(dst));
        let mut up_done = None;
        let mut down_done = None;
        if matches!(self.topology, Topology::TwoLevel { .. }) && src_leaf != dst_leaf {
            let up_start = head.max(self.up[src_leaf].busy_until());
            let up_out = match self.up[src_leaf].try_transmit(head, bytes) {
                Ok(d) => d,
                Err(e) => return Err(fault(&self.up[src_leaf], format!("up{src_leaf}"), e)),
            };
            head = up_start + self.hop_latency + up_out.penalty;
            floor = floor.max(up_out.done) + self.hop_latency;
            up_done = Some(up_out.done);
            let down_start = head.max(self.down[dst_leaf].busy_until());
            let down_out = match self.down[dst_leaf].try_transmit(head, bytes) {
                Ok(d) => d,
                Err(e) => return Err(fault(&self.down[dst_leaf], format!("down{dst_leaf}"), e)),
            };
            head = down_start + self.hop_latency + down_out.penalty;
            floor = floor.max(down_out.done) + self.hop_latency;
            down_done = Some(down_out.done);
        }
        match self.ingress[dst.index()].try_transmit(head, bytes) {
            Ok(d) => {
                let delivered = d.done.max(floor);
                Ok(RouteDone {
                    delivered,
                    egress_done: out.done,
                    up_done,
                    down_done,
                })
            }
            Err(e) => {
                let l = &self.ingress[dst.index()];
                Err(fault(l, format!("ingress{}", dst.index()), e))
            }
        }
    }

    /// Attaches posted-write credit flow control to every link
    /// direction; subsequent [`RoutedFabric::try_send_credited`] calls
    /// consume from the per-direction pools.
    pub fn with_flow_control(mut self, credits: CreditConfig) -> Self {
        for link in self
            .egress
            .iter_mut()
            .chain(self.ingress.iter_mut())
            .chain(self.up.iter_mut())
            .chain(self.down.iter_mut())
        {
            link.attach_flow_control(CreditTimeline::new(
                credits.account(),
                credits.return_latency,
            ));
        }
        self
    }

    /// Credit-gated [`RoutedFabric::try_send`]: the TLP is admitted
    /// only when *every* traversed link direction has credits for its
    /// `payload` data bytes. On exhaustion nothing is consumed and the
    /// caller gets the earliest retry time; on admission the delivery
    /// time is exactly what `try_send` would return, and each link
    /// schedules its credit return one `UpdateFC` round trip after the
    /// TLP cleared it — so replayed TLPs hold credits until acked.
    ///
    /// # Errors
    ///
    /// [`crate::FabricFault`] when any traversed link declares itself
    /// down.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn try_send_credited(
        &mut self,
        at: SimTime,
        src: GpuId,
        dst: GpuId,
        bytes: u64,
        payload: u32,
    ) -> Result<SendOutcome, Box<crate::FabricFault>> {
        assert_ne!(src, dst, "local traffic must not enter the fabric");
        let (src_leaf, dst_leaf) = (self.leaf_of(src), self.leaf_of(dst));
        let crosses_spine =
            matches!(self.topology, Topology::TwoLevel { .. }) && src_leaf != dst_leaf;
        // Phase 1: admission on every traversed direction. Nothing is
        // consumed yet, so a partial route never strands credits.
        let mut until = self.egress[src.index()].fc_earliest(at, payload);
        if crosses_spine {
            until = until.max(self.up[src_leaf].fc_earliest(at, payload));
            until = until.max(self.down[dst_leaf].fc_earliest(at, payload));
        }
        until = until.max(self.ingress[dst.index()].fc_earliest(at, payload));
        if until > at {
            return Ok(SendOutcome::Blocked { until });
        }
        // Phase 2: consume everywhere, then run the shared traversal.
        self.egress[src.index()].fc_consume(at, payload);
        if crosses_spine {
            self.up[src_leaf].fc_consume(at, payload);
            self.down[dst_leaf].fc_consume(at, payload);
        }
        self.ingress[dst.index()].fc_consume(at, payload);
        let route = self.route_transmit(at, src, dst, bytes)?;
        self.egress[src.index()].fc_complete(payload, route.egress_done);
        if let Some(done) = route.up_done {
            self.up[src_leaf].fc_complete(payload, done);
        }
        if let Some(done) = route.down_done {
            self.down[dst_leaf].fc_complete(payload, done);
        }
        self.ingress[dst.index()].fc_complete(payload, route.delivered);
        Ok(SendOutcome::Delivered(route.delivered))
    }

    /// Aggregate flow-control statistics across all link directions
    /// (zeroed when flow control is not attached).
    pub fn fc_stats_total(&self) -> FcStats {
        let mut total = FcStats::default();
        for s in self.all_links().filter_map(Link::fc_stats) {
            total.update_dllps += s.update_dllps;
            total.dllp_bytes += s.dllp_bytes;
            total.blocked_attempts += s.blocked_attempts;
        }
        total
    }

    /// The cumulative credit ledger summed over every link direction,
    /// or `None` when flow control is not attached. Observational.
    pub fn fc_totals_total(&self) -> Option<protocol::CreditTotals> {
        let mut any = false;
        let mut total = protocol::CreditTotals::default();
        for t in self.all_links().filter_map(Link::fc_totals) {
            any = true;
            total.merge(&t);
        }
        any.then_some(total)
    }

    /// `(header, data)` credit units in flight summed over every link
    /// direction; `(0, 0)` when flow control is not attached.
    pub fn fc_in_flight_total(&self) -> (u64, u64) {
        self.all_links()
            .filter_map(Link::fc_in_flight)
            .fold((0, 0), |(h, d), (lh, ld)| (h + lh, d + ld))
    }

    fn all_links(&self) -> impl Iterator<Item = &Link> {
        self.egress
            .iter()
            .chain(self.ingress.iter())
            .chain(self.up.iter())
            .chain(self.down.iter())
    }

    /// Total bytes retransmitted across all link directions.
    pub fn replayed_bytes_total(&self) -> u64 {
        self.all_links()
            .filter_map(Link::dll_stats)
            .map(|s| s.replayed_bytes)
            .sum()
    }

    /// Total link retrains across all link directions.
    pub fn retrains_total(&self) -> u64 {
        self.all_links()
            .filter_map(Link::dll_stats)
            .map(|s| s.retrains)
            .sum()
    }

    /// Quiesces link timing at an iteration barrier.
    pub fn reset_time(&mut self) {
        for l in self
            .egress
            .iter_mut()
            .chain(self.ingress.iter_mut())
            .chain(self.up.iter_mut())
            .chain(self.down.iter_mut())
        {
            l.reset_time();
        }
    }

    /// Total bytes carried by `leaf`'s uplink (diagnostics).
    pub fn uplink_bytes(&self, leaf: usize) -> u64 {
        self.up[leaf].bytes_carried()
    }

    /// Cumulative bytes carried by `gpu`'s egress link, first
    /// transmissions plus replays (the link-utilization integral the
    /// telemetry sampler reads).
    pub fn egress_bytes(&self, gpu: GpuId) -> u64 {
        self.egress[gpu.index()].bytes_carried()
    }

    /// `(header, data)` credit units in flight on `gpu`'s egress link;
    /// `(0, 0)` when flow control is not attached.
    pub fn egress_fc_in_flight(&self, gpu: GpuId) -> (u64, u64) {
        self.egress[gpu.index()].fc_in_flight().unwrap_or((0, 0))
    }

    /// The topology in force.
    pub fn topology(&self) -> Topology {
        self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> Bandwidth {
        Bandwidth::from_gbps(32.0)
    }

    #[test]
    fn hop_counts() {
        let t = Topology::TwoLevel { gpus_per_leaf: 4 };
        assert_eq!(t.hops(GpuId::new(0), GpuId::new(3)), 1);
        assert_eq!(t.hops(GpuId::new(0), GpuId::new(4)), 3);
        assert_eq!(Topology::SingleSwitch.hops(GpuId::new(0), GpuId::new(7)), 1);
    }

    #[test]
    fn intra_leaf_matches_single_switch() {
        let mut single = RoutedFabric::new(Topology::SingleSwitch, 8, bw(), SimTime::ZERO);
        let mut two = RoutedFabric::new(
            Topology::TwoLevel { gpus_per_leaf: 4 },
            8,
            bw(),
            SimTime::ZERO,
        );
        let a = single.send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000);
        let b = two.send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000);
        assert_eq!(a, b);
    }

    #[test]
    fn uplink_contention_slows_inter_leaf_all_to_all() {
        // Four GPUs on leaf 0 all send to distinct GPUs on leaf 1: their
        // access links are disjoint but the single uplink serializes.
        let mut f = RoutedFabric::new(
            Topology::TwoLevel { gpus_per_leaf: 4 },
            8,
            bw(),
            SimTime::ZERO,
        );
        let mut last = SimTime::ZERO;
        for i in 0..4u8 {
            let done = f.send(SimTime::ZERO, GpuId::new(i), GpuId::new(4 + i), 32_000);
            last = last.max(done);
        }
        // One transfer takes 1us; four through one uplink take ~4us.
        assert!(last >= SimTime::from_us(4), "last={last}");
        assert_eq!(f.uplink_bytes(0), 4 * 32_000);
    }

    #[test]
    fn inter_leaf_pays_extra_hops() {
        let hop = SimTime::from_ns(500);
        let mut f = RoutedFabric::new(Topology::TwoLevel { gpus_per_leaf: 2 }, 4, bw(), hop);
        let intra = f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000);
        f.reset_time();
        let inter = f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(2), 32_000);
        assert_eq!(inter - intra, SimTime::from_ns(1000)); // two extra hops
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_leaf_size_panics() {
        let _ = RoutedFabric::new(
            Topology::TwoLevel { gpus_per_leaf: 3 },
            8,
            bw(),
            SimTime::ZERO,
        );
    }

    #[test]
    fn credited_send_with_generous_pool_matches_open_send() {
        let mut open = RoutedFabric::new(Topology::SingleSwitch, 4, bw(), SimTime::from_ns(500));
        let mut credited =
            RoutedFabric::new(Topology::SingleSwitch, 4, bw(), SimTime::from_ns(500))
                .with_flow_control(CreditConfig::generous());
        for i in 0..8u64 {
            let at = SimTime::from_ns(i * 40);
            let a = open
                .try_send(at, GpuId::new(0), GpuId::new(1), 4120)
                .unwrap();
            let b = credited
                .try_send_credited(at, GpuId::new(0), GpuId::new(1), 4120, 4096)
                .unwrap();
            assert_eq!(b, SendOutcome::Delivered(a), "transfer {i}");
        }
        assert_eq!(credited.fc_stats_total().blocked_attempts, 0);
        // Quiescing (the iteration barrier) applies the in-flight
        // UpdateFC DLLPs the eight TLPs generated.
        credited.reset_time();
        assert!(credited.fc_stats_total().update_dllps > 0);
    }

    #[test]
    fn exhausted_pool_blocks_then_admits_after_credit_return() {
        // One header credit: the second TLP must wait for the first's
        // UpdateFC, which arrives at (delivery + return latency).
        let pool = CreditConfig {
            ph: 1,
            pd: 256,
            return_latency: SimTime::from_ns(100),
            buffer_packets: 8,
        };
        let mut f = RoutedFabric::new(Topology::SingleSwitch, 2, bw(), SimTime::ZERO)
            .with_flow_control(pool);
        let first = match f
            .try_send_credited(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000, 4096)
            .unwrap()
        {
            SendOutcome::Delivered(t) => t,
            SendOutcome::Blocked { .. } => panic!("first TLP must be admitted"),
        };
        let blocked = f
            .try_send_credited(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000, 4096)
            .unwrap();
        // The egress link drained at 1us, the ingress at the delivery
        // time; the pinch is the ingress credit returning at +100ns.
        assert_eq!(
            blocked,
            SendOutcome::Blocked {
                until: first + SimTime::from_ns(100)
            }
        );
        let retry_at = first + SimTime::from_ns(100);
        assert!(matches!(
            f.try_send_credited(retry_at, GpuId::new(0), GpuId::new(1), 32_000, 4096)
                .unwrap(),
            SendOutcome::Delivered(_)
        ));
        assert!(f.fc_stats_total().blocked_attempts > 0);
    }

    #[test]
    fn display() {
        assert_eq!(Topology::SingleSwitch.to_string(), "single-switch");
        assert_eq!(
            Topology::TwoLevel { gpus_per_leaf: 4 }.to_string(),
            "two-level (4 GPUs/leaf)"
        );
    }
}
