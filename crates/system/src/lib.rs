//! # system
//!
//! Multi-GPU system assembly for the FinePack reproduction: the switched
//! PCIe fabric, the communication paradigms under comparison, the
//! event-driven iteration runner, and the experiment drivers behind every
//! figure of the paper's evaluation.
//!
//! The flow mirrors §V: workload generators produce per-GPU kernel
//! traces; [`gpu_model`] replays them into timed remote-store egress
//! streams; a [`Runner`] pushes those streams through a [`Paradigm`]'s
//! egress path (FinePack, raw P2P, write-combining, GPS) or through the
//! DMA model, over a [`Fabric`] of per-GPU full-duplex links; iteration
//! barriers enforce the bulk-synchronous release semantics.
//!
//! # Examples
//!
//! ```
//! use system::{speedup_row, Paradigm, SystemConfig};
//! use workloads::{Pagerank, RunSpec};
//!
//! let cfg = SystemConfig::paper(2);
//! let row = speedup_row(&Pagerank::default(), &cfg, &RunSpec::tiny(), &Paradigm::FIG9);
//! // FinePack recovers most of the infinite-bandwidth opportunity.
//! let fp = row.speedup(Paradigm::FinePack).unwrap();
//! let p2p = row.speedup(Paradigm::P2pStores).unwrap();
//! assert!(fp > p2p);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod budget;
mod config;
mod experiment;
mod fault;
mod fingerprint;
mod link;
mod paradigm;
mod report;
mod runner;
mod topology;

pub use audit::{audit_config_for, audit_run, AuditOutcome};
pub use budget::{BudgetKind, BudgetTrip, RunBudget, RunnerDiag};
pub use config::{CreditConfig, FlowControlMode, SystemConfig};
pub use experiment::{
    bandwidth_sweep, dma_plan, fault_sweep, geomean_speedup, prepare_apps, run_suite,
    run_suite_prepared, run_suite_supervised, scaling_curve, single_gpu_time, speedup_row,
    speedup_row_prepared, subheader_sweep, FaultSweepPoint, PreparedApp, PreparedWorkload,
    ScalingPoint, SpeedupRow, SuitePoint, SuiteResult, SupervisedSuite, Supervision,
};
pub use fault::{FabricFault, FaultProfile, Outage, RunError, RunnerError};
pub use fingerprint::{CanonicalBytes, ConfigFingerprint, FingerprintBuilder};
pub use link::{Fabric, FcStats, Link, LinkDelivery};
pub use paradigm::Paradigm;
pub use report::{RunReport, TrafficBreakdown, UniqueTracker, REPORT_SCHEMA_VERSION};
pub use runner::{DmaPlan, Runner};
pub use topology::{RoutedFabric, SendOutcome, Topology};
