//! The switched interconnect fabric: one full-duplex link per GPU to the
//! switch, modeled with per-direction serialization and a fixed hop
//! latency. Ingress links are shared by all sources targeting the same
//! GPU, which is where all-to-all patterns contend.

use gpu_model::GpuId;
use sim_engine::{Bandwidth, SimTime};

/// One link direction: serializes transfers in arrival order.
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth: Bandwidth,
    busy_until: SimTime,
    bytes_carried: u64,
}

impl Link {
    /// Creates an idle link.
    pub fn new(bandwidth: Bandwidth) -> Self {
        Link {
            bandwidth,
            busy_until: SimTime::ZERO,
            bytes_carried: 0,
        }
    }

    /// Transmits `bytes` arriving at time `at`; returns the completion
    /// time. Transfers queue behind earlier ones (store-and-forward).
    pub fn transmit(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let start = at.max(self.busy_until);
        let done = start + self.bandwidth.transfer_time(bytes);
        self.busy_until = done;
        self.bytes_carried += bytes;
        done
    }

    /// When the link next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Resets the busy horizon (used at iteration barriers, when the
    /// fabric is quiescent) without clearing byte counters.
    pub fn reset_time(&mut self) {
        self.busy_until = SimTime::ZERO;
    }
}

/// The full fabric: per-GPU egress and ingress links plus the switch hop.
#[derive(Debug, Clone)]
pub struct Fabric {
    egress: Vec<Link>,
    ingress: Vec<Link>,
    hop_latency: SimTime,
}

impl Fabric {
    /// Creates a fabric for `num_gpus` GPUs with `bandwidth` per link
    /// direction and `hop_latency` through the switch.
    pub fn new(num_gpus: u8, bandwidth: Bandwidth, hop_latency: SimTime) -> Self {
        Fabric {
            egress: (0..num_gpus).map(|_| Link::new(bandwidth)).collect(),
            ingress: (0..num_gpus).map(|_| Link::new(bandwidth)).collect(),
            hop_latency,
        }
    }

    /// Sends `bytes` from `src` to `dst` starting no earlier than `at`;
    /// returns the time the last byte lands at the destination.
    ///
    /// The switch is cut-through: the ingress link starts receiving one
    /// hop latency after the egress link starts sending, so an
    /// uncontended transfer is serialized once, not twice. Contention on
    /// the destination's ingress link still queues.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (local traffic never enters the fabric).
    pub fn send(&mut self, at: SimTime, src: GpuId, dst: GpuId, bytes: u64) -> SimTime {
        assert_ne!(src, dst, "local traffic must not enter the fabric");
        let start = at.max(self.egress[src.index()].busy_until());
        self.egress[src.index()].transmit(at, bytes);
        self.ingress[dst.index()].transmit(start + self.hop_latency, bytes)
    }

    /// Total bytes each GPU sent.
    pub fn egress_bytes(&self, gpu: GpuId) -> u64 {
        self.egress[gpu.index()].bytes_carried()
    }

    /// Total bytes each GPU received.
    pub fn ingress_bytes(&self, gpu: GpuId) -> u64 {
        self.ingress[gpu.index()].bytes_carried()
    }

    /// Quiesces all link timing at an iteration barrier.
    pub fn reset_time(&mut self) {
        for l in self.egress.iter_mut().chain(self.ingress.iter_mut()) {
            l.reset_time();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> Bandwidth {
        Bandwidth::from_gbps(32.0)
    }

    #[test]
    fn link_serializes_back_to_back() {
        let mut l = Link::new(bw());
        let t1 = l.transmit(SimTime::ZERO, 32_000); // 1us at 32GB/s
        assert_eq!(t1, SimTime::from_us(1));
        let t2 = l.transmit(SimTime::ZERO, 32_000); // queues behind
        assert_eq!(t2, SimTime::from_us(2));
        assert_eq!(l.bytes_carried(), 64_000);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut l = Link::new(bw());
        l.transmit(SimTime::ZERO, 32_000);
        let t = l.transmit(SimTime::from_us(10), 32_000);
        assert_eq!(t, SimTime::from_us(11));
    }

    #[test]
    fn fabric_couples_ingress() {
        let mut f = Fabric::new(4, bw(), SimTime::ZERO);
        // Two sources target GPU3 simultaneously; ingress serializes.
        let a = f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(3), 32_000);
        let b = f.send(SimTime::ZERO, GpuId::new(1), GpuId::new(3), 32_000);
        assert_eq!(a, SimTime::from_us(1));
        assert_eq!(b, SimTime::from_us(2));
        assert_eq!(f.ingress_bytes(GpuId::new(3)), 64_000);
    }

    #[test]
    fn hop_latency_added_once() {
        let mut f = Fabric::new(2, bw(), SimTime::from_ns(500));
        let done = f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000);
        assert_eq!(done, SimTime::from_us(1) + SimTime::from_ns(500));
    }

    #[test]
    #[should_panic(expected = "local traffic")]
    fn self_send_panics() {
        let mut f = Fabric::new(2, bw(), SimTime::ZERO);
        f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(0), 1);
    }

    #[test]
    fn reset_clears_time_not_counters() {
        let mut f = Fabric::new(2, bw(), SimTime::ZERO);
        f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000);
        f.reset_time();
        let done = f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000);
        assert_eq!(done, SimTime::from_us(1));
        assert_eq!(f.egress_bytes(GpuId::new(0)), 64_000);
    }
}
