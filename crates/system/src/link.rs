//! The switched interconnect fabric: one full-duplex link per GPU to the
//! switch, modeled with per-direction serialization and a fixed hop
//! latency. Ingress links are shared by all sources targeting the same
//! GPU, which is where all-to-all patterns contend.

use gpu_model::GpuId;
use protocol::{CreditTimeline, DataLinkEndpoint, ReplayError, ReplayStats};
use sim_engine::{Bandwidth, SimTime};

/// Cumulative flow-control statistics for one link direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FcStats {
    /// `UpdateFC` DLLPs received (one per drained TLP).
    pub update_dllps: u64,
    /// Wire bytes of those DLLPs. Kept separate from TLP traffic so the
    /// paper's wire-byte accounting is unchanged by flow control.
    pub dllp_bytes: u64,
    /// Admission attempts that found the pool exhausted.
    pub blocked_attempts: u64,
}

/// The outcome of one delivery on a (possibly fault-injected) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDelivery {
    /// When the last (good) byte cleared this link.
    pub done: SimTime,
    /// Time added by replays, timer recoveries, and retrains — zero for
    /// a clean first-pass delivery, so fault-free timing is unchanged.
    pub penalty: SimTime,
}

/// One link direction: serializes transfers in arrival order. With a
/// [`DataLinkEndpoint`] attached, every transfer additionally runs the
/// Ack/Nak replay loop: corrupted TLPs retransmit (costing wire bytes
/// and latency), retrains may degrade the link, and a permanently stuck
/// link surfaces [`ReplayError::LinkDown`] instead of hanging.
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth: Bandwidth,
    busy_until: SimTime,
    bytes_carried: u64,
    /// Data link layer, when fault injection is active.
    dll: Option<DataLinkEndpoint>,
    /// Post-retrain bandwidth factor (applied once, on first retrain).
    degrade: Option<f64>,
    degraded: bool,
    /// Posted-write credit flow control, when the system runs credited.
    fc: Option<CreditTimeline>,
}

impl Link {
    /// Creates an idle link.
    pub fn new(bandwidth: Bandwidth) -> Self {
        Link {
            bandwidth,
            busy_until: SimTime::ZERO,
            bytes_carried: 0,
            dll: None,
            degrade: None,
            degraded: false,
            fc: None,
        }
    }

    /// Attaches posted-write credit flow control; subsequent credited
    /// sends consume from this pool and block on exhaustion.
    pub fn attach_flow_control(&mut self, timeline: CreditTimeline) {
        self.fc = Some(timeline);
    }

    /// Earliest time at or after `at` when a TLP with `payload` data
    /// bytes has credits, honoring scheduled `UpdateFC` returns. `at`
    /// itself when no flow control is attached.
    pub fn fc_earliest(&mut self, at: SimTime, payload: u32) -> SimTime {
        match &mut self.fc {
            Some(fc) => fc.earliest_admission(at, payload),
            None => at,
        }
    }

    /// Consumes credits for a TLP admitted at `at`.
    ///
    /// # Panics
    ///
    /// Panics if credits are insufficient — callers must check
    /// [`Link::fc_earliest`] first.
    pub fn fc_consume(&mut self, at: SimTime, payload: u32) {
        if let Some(fc) = &mut self.fc {
            fc.admit(at, payload)
                .expect("caller checked fc_earliest before consuming");
        }
    }

    /// Schedules this TLP's credit return: the receiver drained it at
    /// `drained_at` (replay penalties included), so its `UpdateFC`
    /// arrives one return latency later. Replayed TLPs therefore hold
    /// their credits until acked.
    pub fn fc_complete(&mut self, payload: u32, drained_at: SimTime) {
        if let Some(fc) = &mut self.fc {
            fc.complete(payload, drained_at);
        }
    }

    /// `(header, data)` credit units currently in flight — consumed but
    /// with the `UpdateFC` not yet returned — when credit flow control
    /// is attached. A telemetry probe; does not advance the timeline.
    pub fn fc_in_flight(&self) -> Option<(u64, u64)> {
        self.fc.as_ref().map(|fc| {
            let a = fc.account();
            (
                u64::from(a.headers_in_flight()),
                u64::from(a.data_units_in_flight()),
            )
        })
    }

    /// The cumulative credit ledger — units consumed and returned over
    /// the link's lifetime — when credit flow control is attached.
    /// Observational, like [`Link::fc_in_flight`].
    pub fn fc_totals(&self) -> Option<protocol::CreditTotals> {
        self.fc.as_ref().map(|fc| *fc.totals())
    }

    /// Flow-control statistics, when credit flow control is attached.
    pub fn fc_stats(&self) -> Option<FcStats> {
        self.fc.as_ref().map(|fc| FcStats {
            update_dllps: fc.updates_received(),
            dllp_bytes: fc.dllp_bytes_received(),
            blocked_attempts: fc.blocked_attempts(),
        })
    }

    /// Attaches a data link layer; subsequent [`Link::try_transmit`]
    /// calls run the replay loop. `degrade` scales bandwidth after the
    /// link's first retrain (a link renegotiating at reduced width).
    pub fn attach_dll(&mut self, dll: DataLinkEndpoint, degrade: Option<f64>) {
        self.dll = Some(dll);
        self.degrade = degrade;
    }

    /// Forces an outage window on the attached data link layer (no-op
    /// on a fault-free link).
    pub fn set_outage(&mut self, from: SimTime, until: SimTime) {
        if let Some(dll) = &mut self.dll {
            dll.set_outage(from, until);
        }
    }

    /// Transmits `bytes` arriving at time `at`; returns the completion
    /// time. Transfers queue behind earlier ones (store-and-forward).
    ///
    /// # Panics
    ///
    /// Panics if a data link layer is attached — fault-injected links
    /// must use [`Link::try_transmit`], which can report link death.
    pub fn transmit(&mut self, at: SimTime, bytes: u64) -> SimTime {
        assert!(
            self.dll.is_none(),
            "fault-injected link requires try_transmit"
        );
        let start = at.max(self.busy_until);
        let done = start + self.bandwidth.transfer_time(bytes);
        self.busy_until = done;
        self.bytes_carried += bytes;
        done
    }

    /// Transmits `bytes` through the data link layer (when attached),
    /// charging replayed bytes as wire traffic and replay/retrain
    /// latency as delay. With no faults injected this is exactly
    /// [`Link::transmit`] with a zero penalty.
    ///
    /// # Errors
    ///
    /// [`ReplayError::LinkDown`] when the link exhausts its retrain
    /// budget without delivering (a stuck link).
    pub fn try_transmit(&mut self, at: SimTime, bytes: u64) -> Result<LinkDelivery, ReplayError> {
        let Some(dll) = &mut self.dll else {
            return Ok(LinkDelivery {
                done: self.transmit(at, bytes),
                penalty: SimTime::ZERO,
            });
        };
        let start = at.max(self.busy_until);
        let xfer = dll.transmit(start, bytes)?;
        // Replays occupy the wire again; retrains and Ack round-trips
        // add pure latency on top.
        let clean = self.bandwidth.transfer_time(bytes);
        let total = self.bandwidth.transfer_time(bytes + xfer.replayed_bytes) + xfer.extra_delay;
        let done = start + total;
        self.busy_until = done;
        self.bytes_carried += bytes + xfer.replayed_bytes;
        if xfer.retrains > 0 && !self.degraded {
            if let Some(factor) = self.degrade {
                self.bandwidth = self.bandwidth.scale(factor);
                self.degraded = true;
            }
        }
        Ok(LinkDelivery {
            done,
            penalty: total.saturating_sub(clean),
        })
    }

    /// When the link next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes carried (first transmissions plus replays).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Data link layer statistics, when fault injection is active.
    pub fn dll_stats(&self) -> Option<ReplayStats> {
        self.dll.as_ref().map(|d| *d.stats())
    }

    /// Whether the link renegotiated down after a retrain.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Resets the busy horizon (used at iteration barriers, when the
    /// fabric is quiescent) without clearing byte counters. A quiescent
    /// fabric has drained every buffer, so all in-flight credits return.
    pub fn reset_time(&mut self) {
        self.busy_until = SimTime::ZERO;
        if let Some(fc) = &mut self.fc {
            fc.quiesce();
        }
    }
}

/// The full fabric: per-GPU egress and ingress links plus the switch hop.
#[derive(Debug, Clone)]
pub struct Fabric {
    egress: Vec<Link>,
    ingress: Vec<Link>,
    hop_latency: SimTime,
}

impl Fabric {
    /// Creates a fabric for `num_gpus` GPUs with `bandwidth` per link
    /// direction and `hop_latency` through the switch.
    pub fn new(num_gpus: u8, bandwidth: Bandwidth, hop_latency: SimTime) -> Self {
        Fabric {
            egress: (0..num_gpus).map(|_| Link::new(bandwidth)).collect(),
            ingress: (0..num_gpus).map(|_| Link::new(bandwidth)).collect(),
            hop_latency,
        }
    }

    /// Attaches fault injection to every link direction, each with an
    /// independent deterministic RNG stream derived from `seed`. An
    /// outage in the profile lands on the nominated GPU's egress link.
    pub fn with_faults(mut self, profile: crate::FaultProfile, seed: u64) -> Self {
        profile.validate();
        let ber = protocol::BitErrorModel::new(profile.ber);
        for (dir, links) in [("egress", &mut self.egress), ("ingress", &mut self.ingress)] {
            for (i, link) in links.iter_mut().enumerate() {
                let rng = sim_engine::DetRng::new(seed, &format!("dll-{dir}{i}"));
                link.attach_dll(
                    DataLinkEndpoint::new(profile.replay, ber, rng),
                    profile.degrade,
                );
            }
        }
        if let Some(o) = profile.outage {
            self.egress[usize::from(o.gpu)].set_outage(o.from, o.until);
        }
        self
    }

    /// Sends `bytes` from `src` to `dst` starting no earlier than `at`;
    /// returns the time the last byte lands at the destination.
    ///
    /// The switch is cut-through: the ingress link starts receiving one
    /// hop latency after the egress link starts sending, so an
    /// uncontended transfer is serialized once, not twice. Contention on
    /// the destination's ingress link still queues.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (local traffic never enters the fabric),
    /// or if fault injection is attached (use [`Fabric::try_send`]).
    pub fn send(&mut self, at: SimTime, src: GpuId, dst: GpuId, bytes: u64) -> SimTime {
        assert_ne!(src, dst, "local traffic must not enter the fabric");
        let start = at.max(self.egress[src.index()].busy_until());
        self.egress[src.index()].transmit(at, bytes);
        self.ingress[dst.index()].transmit(start + self.hop_latency, bytes)
    }

    /// [`Fabric::send`] through the data link layer: replayed TLPs cost
    /// wire bytes and delay; a stuck link surfaces as an error.
    ///
    /// # Errors
    ///
    /// [`crate::FabricFault`] naming the dead link direction.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn try_send(
        &mut self,
        at: SimTime,
        src: GpuId,
        dst: GpuId,
        bytes: u64,
    ) -> Result<SimTime, Box<crate::FabricFault>> {
        assert_ne!(src, dst, "local traffic must not enter the fabric");
        let start = at.max(self.egress[src.index()].busy_until());
        let out = self.egress[src.index()]
            .try_transmit(at, bytes)
            .map_err(|error| {
                Box::new(crate::FabricFault {
                    link: format!("egress{}", src.index()),
                    at,
                    error,
                    stats: self.egress[src.index()].dll_stats().unwrap_or_default(),
                })
            })?;
        let head = start + self.hop_latency + out.penalty;
        // The last byte cannot land before it has left the egress link
        // (matters when a degraded egress is slower than the ingress).
        let floor = out.done + self.hop_latency;
        self.ingress[dst.index()]
            .try_transmit(head, bytes)
            .map(|d| d.done.max(floor))
            .map_err(|error| {
                Box::new(crate::FabricFault {
                    link: format!("ingress{}", dst.index()),
                    at,
                    error,
                    stats: self.ingress[dst.index()].dll_stats().unwrap_or_default(),
                })
            })
    }

    /// Total bytes retransmitted across all link directions.
    pub fn replayed_bytes_total(&self) -> u64 {
        self.egress
            .iter()
            .chain(self.ingress.iter())
            .filter_map(Link::dll_stats)
            .map(|s| s.replayed_bytes)
            .sum()
    }

    /// Total link retrains across all link directions.
    pub fn retrains_total(&self) -> u64 {
        self.egress
            .iter()
            .chain(self.ingress.iter())
            .filter_map(Link::dll_stats)
            .map(|s| s.retrains)
            .sum()
    }

    /// Total bytes each GPU sent.
    pub fn egress_bytes(&self, gpu: GpuId) -> u64 {
        self.egress[gpu.index()].bytes_carried()
    }

    /// Total bytes each GPU received.
    pub fn ingress_bytes(&self, gpu: GpuId) -> u64 {
        self.ingress[gpu.index()].bytes_carried()
    }

    /// Quiesces all link timing at an iteration barrier.
    pub fn reset_time(&mut self) {
        for l in self.egress.iter_mut().chain(self.ingress.iter_mut()) {
            l.reset_time();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> Bandwidth {
        Bandwidth::from_gbps(32.0)
    }

    #[test]
    fn link_serializes_back_to_back() {
        let mut l = Link::new(bw());
        let t1 = l.transmit(SimTime::ZERO, 32_000); // 1us at 32GB/s
        assert_eq!(t1, SimTime::from_us(1));
        let t2 = l.transmit(SimTime::ZERO, 32_000); // queues behind
        assert_eq!(t2, SimTime::from_us(2));
        assert_eq!(l.bytes_carried(), 64_000);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut l = Link::new(bw());
        l.transmit(SimTime::ZERO, 32_000);
        let t = l.transmit(SimTime::from_us(10), 32_000);
        assert_eq!(t, SimTime::from_us(11));
    }

    #[test]
    fn fabric_couples_ingress() {
        let mut f = Fabric::new(4, bw(), SimTime::ZERO);
        // Two sources target GPU3 simultaneously; ingress serializes.
        let a = f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(3), 32_000);
        let b = f.send(SimTime::ZERO, GpuId::new(1), GpuId::new(3), 32_000);
        assert_eq!(a, SimTime::from_us(1));
        assert_eq!(b, SimTime::from_us(2));
        assert_eq!(f.ingress_bytes(GpuId::new(3)), 64_000);
    }

    #[test]
    fn hop_latency_added_once() {
        let mut f = Fabric::new(2, bw(), SimTime::from_ns(500));
        let done = f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000);
        assert_eq!(done, SimTime::from_us(1) + SimTime::from_ns(500));
    }

    #[test]
    #[should_panic(expected = "local traffic")]
    fn self_send_panics() {
        let mut f = Fabric::new(2, bw(), SimTime::ZERO);
        f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(0), 1);
    }

    #[test]
    fn fault_free_dll_is_transparent() {
        use crate::FaultProfile;
        let mut plain = Fabric::new(2, bw(), SimTime::from_ns(500));
        let mut faulty =
            Fabric::new(2, bw(), SimTime::from_ns(500)).with_faults(FaultProfile::new(0.0), 42);
        for i in 0..4u64 {
            let at = SimTime::from_us(i);
            let a = plain.send(at, GpuId::new(0), GpuId::new(1), 32_000);
            let b = faulty
                .try_send(at, GpuId::new(0), GpuId::new(1), 32_000)
                .unwrap();
            assert_eq!(a, b, "transfer {i} diverged");
        }
        assert_eq!(faulty.replayed_bytes_total(), 0);
        assert_eq!(
            plain.egress_bytes(GpuId::new(0)),
            faulty.egress_bytes(GpuId::new(0))
        );
    }

    #[test]
    fn bit_errors_add_wire_bytes_and_delay() {
        use crate::FaultProfile;
        let mut faulty =
            Fabric::new(2, bw(), SimTime::ZERO).with_faults(FaultProfile::new(1e-6), 7);
        let mut clean_total = SimTime::ZERO;
        let mut landed = SimTime::ZERO;
        for _ in 0..50 {
            let at = landed;
            landed = faulty
                .try_send(at, GpuId::new(0), GpuId::new(1), 32_000)
                .unwrap();
            clean_total += bw().transfer_time(32_000);
        }
        assert!(faulty.replayed_bytes_total() > 0, "no replays at 1e-6 BER");
        assert!(landed > clean_total, "replays added no time");
        assert_eq!(
            faulty.egress_bytes(GpuId::new(0)),
            50 * 32_000
                + faulty.egress[0]
                    .dll_stats()
                    .map(|s| s.replayed_bytes)
                    .unwrap_or(0)
        );
    }

    #[test]
    fn stuck_link_reports_link_down() {
        use crate::FaultProfile;
        let mut faulty = Fabric::new(2, bw(), SimTime::ZERO)
            .with_faults(FaultProfile::new(0.0).stuck_link(0, SimTime::ZERO), 7);
        let err = faulty
            .try_send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 4096)
            .unwrap_err();
        assert_eq!(err.link, "egress0");
        assert!(matches!(err.error, protocol::ReplayError::LinkDown { .. }));
        // The reverse direction still works.
        assert!(faulty
            .try_send(SimTime::ZERO, GpuId::new(1), GpuId::new(0), 4096)
            .is_ok());
    }

    #[test]
    fn degraded_link_slows_after_retrain() {
        use crate::FaultProfile;
        let profile = FaultProfile::new(0.0)
            .with_outage(0, SimTime::ZERO, SimTime::from_us(100))
            .with_degrade(0.25);
        let mut faulty = Fabric::new(2, bw(), SimTime::ZERO).with_faults(profile, 7);
        // The outage forces timer recoveries and eventually a retrain;
        // the link comes back at quarter width.
        let first = faulty
            .try_send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000)
            .unwrap();
        assert!(faulty.egress[0].is_degraded());
        let second = faulty
            .try_send(first, GpuId::new(0), GpuId::new(1), 32_000)
            .unwrap();
        // Post-retrain: 32KB at 8 GB/s is 4us of egress serialization.
        assert!(
            second - first >= SimTime::from_us(4),
            "second={second} first={first}"
        );
    }

    #[test]
    fn reset_clears_time_not_counters() {
        let mut f = Fabric::new(2, bw(), SimTime::ZERO);
        f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000);
        f.reset_time();
        let done = f.send(SimTime::ZERO, GpuId::new(0), GpuId::new(1), 32_000);
        assert_eq!(done, SimTime::from_us(1));
        assert_eq!(f.egress_bytes(GpuId::new(0)), 64_000);
    }
}
