//! Run reports: execution time plus the wire-traffic breakdown of Fig 10.

use std::collections::HashMap;

use finepack::{EgressMetrics, ReplayAmplification};
use sim_engine::SimTime;

use crate::paradigm::Paradigm;

/// A multiply-xor hasher for line addresses (splitmix64 finalizer).
///
/// The tracker hashes one `u64` per 128B line of every traced store;
/// SipHash's per-call setup dominates that workload, while map behavior
/// (lookup/insert only, no iteration) never observes hash order — so a
/// fast deterministic mix is both safe and measurably faster.
#[derive(Debug, Default, Clone)]
struct LineHasher(u64);

impl std::hash::Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

type LineMap = HashMap<u64, u128, std::hash::BuildHasherDefault<LineHasher>>;

/// Tracks unique bytes written per iteration (128B-line byte masks), to
/// separate "useful" from "redundant" transfers in Fig 10's sense.
#[derive(Debug, Default, Clone)]
pub struct UniqueTracker {
    lines: LineMap,
    unique_total: u64,
}

impl UniqueTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        UniqueTracker::default()
    }

    /// Records a store of `len` bytes at `addr`.
    pub fn add(&mut self, addr: u64, len: u32) {
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let line = cur & !127;
            let off = (cur - line) as u32;
            let n = remaining.min(128 - off);
            let mask = if n == 128 {
                u128::MAX
            } else {
                ((1u128 << n) - 1) << off
            };
            let slot = self.lines.entry(line).or_insert(0);
            self.unique_total += u64::from((mask & !*slot).count_ones());
            *slot |= mask;
            cur += u64::from(n);
            remaining -= n;
        }
    }

    /// Credits `bytes` already known to be unique — computed once at
    /// workload-preparation time from the same (paradigm-independent)
    /// store stream — without touching the line map. This is the fast
    /// path the runner takes when the caller pre-aggregated an
    /// iteration; results are identical to replaying the stream through
    /// [`UniqueTracker::add`].
    pub fn add_precomputed(&mut self, bytes: u64) {
        self.unique_total += bytes;
    }

    /// Unique bytes recorded since the last [`UniqueTracker::barrier`].
    pub fn unique_bytes(&self) -> u64 {
        self.unique_total
    }

    /// Iteration barrier: values become final; subsequent writes to the
    /// same addresses count as unique again (they are next iteration's
    /// values, which consumers do read).
    pub fn barrier(&mut self) {
        self.lines.clear();
    }
}

/// The wire-byte classification of Fig 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficBreakdown {
    /// Bytes the destination GPU actually reads.
    pub useful: u64,
    /// Header/framing/padding bytes needed to perform the transfers.
    pub protocol: u64,
    /// Bytes transferred but never read, or overwritten by the source.
    pub wasted: u64,
}

impl TrafficBreakdown {
    /// Total bytes on the wire.
    pub fn total(&self) -> u64 {
        self.useful + self.protocol + self.wasted
    }
}

/// The result of simulating one (workload, paradigm, system) combination.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Paradigm simulated.
    pub paradigm: Paradigm,
    /// GPUs used.
    pub num_gpus: u8,
    /// Total simulated execution time (all iterations + barriers).
    pub total_time: SimTime,
    /// Time the slowest kernel was still computing (summed over
    /// iterations) — communication under this is fully overlapped.
    pub compute_time: SimTime,
    /// Drain tail: time spent finishing transfers after every kernel had
    /// ended (summed over iterations) — the exposed communication cost.
    pub drain_tail: SimTime,
    /// Barrier/launch overhead (summed over iterations).
    pub barrier_time: SimTime,
    /// Time GPU store streams spent stalled on egress backpressure
    /// (summed over GPUs and iterations); always zero under
    /// [`crate::FlowControlMode::Open`].
    pub stall_time: SimTime,
    /// Flow-control `UpdateFC` DLLPs received by senders across all
    /// link directions (zero in open-loop mode).
    pub fc_update_dllps: u64,
    /// Admission attempts that found a link out of credits.
    pub fc_blocked_attempts: u64,
    /// Wire-traffic classification (zero for the infinite-BW oracle).
    pub traffic: TrafficBreakdown,
    /// Merged egress metrics (empty for DMA / infinite-BW).
    pub egress: EgressMetrics,
    /// Unique bytes written across all GPUs and iterations.
    pub unique_bytes: u64,
    /// TLP bytes retransmitted by the data link layer (zero without
    /// fault injection); counted in `traffic.protocol`, never goodput.
    pub replayed_bytes: u64,
    /// Link retrains triggered by REPLAY_NUM escalation.
    pub link_retrains: u64,
    /// Replayed-byte attribution by flush reason and packet size.
    pub replay_amplification: ReplayAmplification,
    /// Discrete events the runner processed (event-queue pops plus DMA
    /// legs) — the numerator of harness-throughput reporting.
    pub sim_events: u64,
}

/// Schema version stamped into [`RunReport::canonical_json`]; bump on
/// any field addition, removal, or semantic change so downstream
/// tooling (and the farm's result cache) can detect format drift.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

impl RunReport {
    /// Mean stores aggregated per packet (Fig 11), when applicable.
    pub fn mean_stores_per_packet(&self) -> Option<f64> {
        self.egress.mean_stores_per_packet()
    }

    /// A canonical machine-readable JSON rendering: fixed key order,
    /// integer times in picoseconds, `schema_version` first. Two equal
    /// reports always serialize byte-identically, which is what lets
    /// the sweep farm diff a cached report against a fresh run.
    pub fn canonical_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(640);
        let _ = write!(
            s,
            "{{\"schema_version\":{REPORT_SCHEMA_VERSION},\"workload\":\"{}\",\"paradigm\":\"{:?}\",\"num_gpus\":{}",
            self.workload, self.paradigm, self.num_gpus
        );
        let _ = write!(
            s,
            ",\"total_time_ps\":{},\"compute_time_ps\":{},\"drain_tail_ps\":{},\"barrier_time_ps\":{},\"stall_time_ps\":{}",
            self.total_time.as_ps(),
            self.compute_time.as_ps(),
            self.drain_tail.as_ps(),
            self.barrier_time.as_ps(),
            self.stall_time.as_ps()
        );
        let _ = write!(
            s,
            ",\"fc_update_dllps\":{},\"fc_blocked_attempts\":{}",
            self.fc_update_dllps, self.fc_blocked_attempts
        );
        let _ = write!(
            s,
            ",\"traffic\":{{\"useful\":{},\"protocol\":{},\"wasted\":{}}}",
            self.traffic.useful, self.traffic.protocol, self.traffic.wasted
        );
        let _ = write!(
            s,
            ",\"wire_packets\":{},\"wire_bytes\":{},\"stores_in\":{}",
            self.egress.packets, self.egress.wire_bytes, self.egress.stores_in
        );
        match self.mean_stores_per_packet() {
            // f64 Debug is shortest-roundtrip and always includes a
            // decimal point or exponent, so it is valid, stable JSON.
            Some(m) => {
                let _ = write!(s, ",\"mean_stores_per_packet\":{m:?}");
            }
            None => s.push_str(",\"mean_stores_per_packet\":null"),
        }
        let _ = write!(
            s,
            ",\"unique_bytes\":{},\"replayed_bytes\":{},\"link_retrains\":{},\"sim_events\":{}}}",
            self.unique_bytes, self.replayed_bytes, self.link_retrains, self.sim_events
        );
        s
    }

    /// Fraction of total time spent in the exposed communication tail —
    /// zero when transfers hide fully under compute.
    pub fn exposed_comm_fraction(&self) -> f64 {
        self.drain_tail.as_secs_f64() / self.total_time.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_tracker_dedups_within_iteration() {
        let mut t = UniqueTracker::new();
        t.add(0x100, 8);
        t.add(0x100, 8); // rewrite: not unique
        t.add(0x104, 8); // half-overlapping
        assert_eq!(t.unique_bytes(), 12);
    }

    #[test]
    fn unique_tracker_resets_at_barrier() {
        let mut t = UniqueTracker::new();
        t.add(0x100, 8);
        t.barrier();
        t.add(0x100, 8); // next iteration's value: unique again
        assert_eq!(t.unique_bytes(), 16);
    }

    #[test]
    fn unique_tracker_handles_line_crossing() {
        let mut t = UniqueTracker::new();
        t.add(120, 16); // spans two 128B lines
        assert_eq!(t.unique_bytes(), 16);
    }

    #[test]
    fn breakdown_total() {
        let b = TrafficBreakdown {
            useful: 10,
            protocol: 5,
            wasted: 3,
        };
        assert_eq!(b.total(), 18);
    }
}
