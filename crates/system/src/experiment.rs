//! High-level experiment drivers: everything the paper's figures need,
//! expressed as reusable functions over (workload, system, paradigm).
//!
//! Every sweep point — one (workload, paradigm, parameter) simulation —
//! is an independent deterministic computation, so the drivers here fan
//! out over a [`WorkerPool`] and return results in input order: output
//! is byte-identical for any worker count. Kernel traces are replayed
//! once per app into a [`PreparedWorkload`] and shared (by `Arc` in
//! [`PreparedApp`]) across paradigms and sweep points.

use std::sync::Arc;

use finepack::{FinePackConfig, SubheaderFormat};
use gpu_model::{AddressMap, Gpu, GpuId, KernelRun, KernelStats};
use protocol::PcieGen;
use sim_engine::{geomean, ChaosConfig, RetryPolicy, SimTime, TaskFailure, WorkerPool};
use telemetry::{EventKind, TraceEvent, TraceHandle};
use workloads::{CommPattern, RunSpec, Workload};

use crate::config::SystemConfig;
use crate::fault::RunError;
use crate::paradigm::Paradigm;
use crate::report::RunReport;
use crate::runner::{DmaPlan, Runner};

/// Bytes of physical memory per GPU in the node address map (Table III).
const GPU_MEMORY: u64 = 16 << 30;

/// A workload with its kernel traces replayed once, reusable across all
/// paradigms (the egress stream is paradigm-independent).
#[derive(Debug)]
pub struct PreparedWorkload {
    name: String,
    read_fraction: f64,
    gps_unsubscribed: f64,
    /// `[iteration][gpu]`.
    runs: Vec<Vec<KernelRun>>,
    dma_plan: DmaPlan,
    /// Stats merged across GPUs and iterations, computed once at
    /// preparation time (sweeps used to re-merge on every call).
    merged: KernelStats,
    /// Unique bytes written per iteration, computed once at preparation
    /// time. The store stream is paradigm-independent, so every run of
    /// this workload would otherwise replay the same line-map
    /// aggregation.
    unique_per_iter: Vec<u64>,
}

impl PreparedWorkload {
    /// Replays `app`'s traces on the configured GPUs for every iteration
    /// of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.num_gpus != cfg.num_gpus`.
    pub fn new(app: &dyn Workload, cfg: &SystemConfig, spec: &RunSpec) -> Self {
        assert_eq!(
            spec.num_gpus, cfg.num_gpus,
            "spec/system GPU count mismatch"
        );
        let map = AddressMap::new(cfg.num_gpus, GPU_MEMORY);
        let gpus: Vec<Gpu> = (0..cfg.num_gpus)
            .map(|g| Gpu::new(cfg.gpu, GpuId::new(g), map))
            .collect();
        let runs: Vec<Vec<KernelRun>> = (0..spec.iterations)
            .map(|iter| {
                gpus.iter()
                    .map(|gpu| gpu.execute_kernel(&app.trace(spec, iter, gpu.id())))
                    .collect()
            })
            .collect();
        let merged = merge_stats(&runs);
        let unique_per_iter = runs
            .iter()
            .map(|iter_runs| {
                let mut tracker = crate::report::UniqueTracker::new();
                for run in iter_runs {
                    for t in run.egress.iter().chain(run.atomics.iter()) {
                        tracker.add(t.store.addr, t.store.len());
                    }
                }
                tracker.unique_bytes()
            })
            .collect();
        PreparedWorkload {
            name: app.name().to_string(),
            read_fraction: app.read_fraction(),
            gps_unsubscribed: app.gps_unsubscribed_fraction(),
            runs,
            dma_plan: dma_plan(app, spec),
            merged,
            unique_per_iter,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-iteration, per-GPU kernel replays.
    pub fn runs(&self) -> &[Vec<KernelRun>] {
        &self.runs
    }

    /// The workload's read fraction (drives the useful/wasted split).
    pub fn read_fraction(&self) -> f64 {
        self.read_fraction
    }

    /// The workload's fraction of stores GPS's subscription filter drops.
    pub fn gps_unsubscribed(&self) -> f64 {
        self.gps_unsubscribed
    }

    /// The memcpy paradigm's per-iteration transfer legs.
    pub fn dma_plan(&self) -> &DmaPlan {
        &self.dma_plan
    }

    /// Merged replay statistics across GPUs and iterations (Fig 4 data),
    /// cached at preparation time.
    pub fn merged_stats(&self) -> &KernelStats {
        &self.merged
    }

    /// Simulates this workload under `paradigm` on `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if injected faults kill the run; fault experiments should
    /// use [`PreparedWorkload::try_run`].
    pub fn run(&self, cfg: &SystemConfig, paradigm: Paradigm) -> RunReport {
        self.try_run(cfg, paradigm)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`PreparedWorkload::run`], surfacing link death and watchdog
    /// trips as diagnostics instead of panicking.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the first failing iteration.
    pub fn try_run(&self, cfg: &SystemConfig, paradigm: Paradigm) -> Result<RunReport, RunError> {
        let mut runner = Runner::new(*cfg, paradigm, self.gps_unsubscribed, false);
        for (iter_runs, &unique) in self.runs.iter().zip(&self.unique_per_iter) {
            runner.try_run_iteration_precomputed(iter_runs, &self.dma_plan, unique)?;
        }
        Ok(runner.finish(&self.name, self.read_fraction))
    }

    /// [`PreparedWorkload::try_run`] with a trace attached: lifecycle
    /// events (and, with `sample_every` set, periodic occupancy/credit
    /// samples) are recorded through `trace` for the whole run.
    ///
    /// Tracing is observational: the returned report is byte-identical
    /// to [`PreparedWorkload::try_run`]'s.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the first failing iteration.
    pub fn try_run_traced(
        &self,
        cfg: &SystemConfig,
        paradigm: Paradigm,
        trace: telemetry::TraceHandle,
        sample_every: Option<sim_engine::SimTime>,
    ) -> Result<RunReport, RunError> {
        let mut runner = Runner::new(*cfg, paradigm, self.gps_unsubscribed, false);
        runner.attach_trace(trace, sample_every);
        for (iter_runs, &unique) in self.runs.iter().zip(&self.unique_per_iter) {
            runner.try_run_iteration_precomputed(iter_runs, &self.dma_plan, unique)?;
        }
        Ok(runner.finish(&self.name, self.read_fraction))
    }
}

/// Merges replay statistics across `[iteration][gpu]` kernel runs.
fn merge_stats(runs: &[Vec<KernelRun>]) -> KernelStats {
    let mut merged: Option<KernelStats> = None;
    for iter in runs {
        for run in iter {
            match &mut merged {
                None => merged = Some(run.stats.clone()),
                Some(m) => {
                    m.remote_size_hist.merge(&run.stats.remote_size_hist);
                    m.remote_bytes += run.stats.remote_bytes;
                    m.remote_stores += run.stats.remote_stores;
                    m.local_bytes += run.stats.local_bytes;
                    m.local_stores += run.stats.local_stores;
                    m.compute_cycles += run.stats.compute_cycles;
                }
            }
        }
    }
    merged.expect("at least one kernel run")
}

/// One point of a bit-error-rate sweep: how fault injection at `ber`
/// changed the run relative to the fault-free baseline.
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// Injected bit-error rate.
    pub ber: f64,
    /// The run's outcome: a report, or the diagnostic that killed it.
    pub outcome: Result<RunReport, RunError>,
    /// Slowdown relative to the fault-free run (1.0 = no impact);
    /// `None` when the run died.
    pub slowdown: Option<f64>,
}

/// Sweeps bit-error rates for one workload under `paradigm`, reusing
/// the fault-free run at index 0 as the slowdown baseline. Replay
/// parameters beyond BER (outages, degradation) come from `base_cfg`'s
/// profile when set, else [`crate::FaultProfile::new`] defaults.
///
/// The traces replay once; the per-BER runs fan out over `pool` (each
/// run's fault RNG is seeded from its own config, so results are
/// identical for any worker count).
pub fn fault_sweep(
    app: &dyn Workload,
    base_cfg: &SystemConfig,
    spec: &RunSpec,
    paradigm: Paradigm,
    bers: &[f64],
    pool: &WorkerPool,
) -> Vec<FaultSweepPoint> {
    let prepared = PreparedWorkload::new(app, base_cfg, spec);
    let mut clean_cfg = *base_cfg;
    clean_cfg.fault = None;
    let baseline = prepared.run(&clean_cfg, paradigm).total_time.as_secs_f64();
    pool.map(bers.to_vec(), |ber| {
        let mut profile = base_cfg
            .fault
            .unwrap_or_else(|| crate::FaultProfile::new(ber));
        profile.ber = ber;
        let cfg = base_cfg.with_faults(profile);
        let outcome = prepared.try_run(&cfg, paradigm);
        let slowdown = outcome
            .as_ref()
            .ok()
            .map(|r| r.total_time.as_secs_f64() / baseline.max(f64::MIN_POSITIVE));
        FaultSweepPoint {
            ber,
            outcome,
            slowdown,
        }
    })
}

/// The memcpy paradigm's transfer legs for one iteration: each GPU ships
/// its replica updates to every communication target.
pub fn dma_plan(app: &dyn Workload, spec: &RunSpec) -> DmaPlan {
    let mut plan = Vec::new();
    if spec.num_gpus < 2 {
        return plan;
    }
    for g in 0..spec.num_gpus {
        let src = GpuId::new(g);
        let dsts: Vec<GpuId> = match app.pattern() {
            CommPattern::Neighbors => [i32::from(g) - 1, i32::from(g) + 1]
                .into_iter()
                .filter(|j| *j >= 0 && *j < i32::from(spec.num_gpus))
                .map(|j| GpuId::new(j as u8))
                .collect(),
            CommPattern::ManyToMany | CommPattern::AllToAll => (0..spec.num_gpus)
                .map(GpuId::new)
                .filter(|d| *d != src)
                .collect(),
            CommPattern::Ring => vec![workloads::collectives::ring_next(src, spec.num_gpus)],
            CommPattern::Grid2d => workloads::collectives::grid_neighbors(src, spec.num_gpus),
            CommPattern::Tree => workloads::collectives::tree_parent(src)
                .into_iter()
                .chain(workloads::collectives::tree_children(src, spec.num_gpus))
                .collect(),
        };
        // For halo patterns the knob names an interior GPU's outbound
        // total (two boundaries); each leg carries one boundary's worth.
        let per_dst = match app.pattern() {
            CommPattern::Neighbors => app.dma_bytes_per_gpu(spec) / 2,
            _ => app.dma_bytes_per_gpu(spec) / dsts.len().max(1) as u64,
        };
        for dst in dsts {
            plan.push((src, dst, per_dst));
        }
    }
    plan
}

/// Simulated wall time of the single-GPU baseline: the whole problem on
/// one GPU, no inter-GPU communication.
pub fn single_gpu_time(app: &dyn Workload, cfg: &SystemConfig, spec: &RunSpec) -> SimTime {
    let mut one = *spec;
    one.num_gpus = 1;
    let map = AddressMap::new(1, GPU_MEMORY);
    let gpu = Gpu::new(cfg.gpu, GpuId::new(0), map);
    let mut total = SimTime::ZERO;
    for iter in 0..one.iterations {
        let run = gpu.execute_kernel(&app.trace(&one, iter, GpuId::new(0)));
        debug_assert!(run.egress.is_empty(), "single-GPU run must be local-only");
        total += run.kernel_time + cfg.barrier_overhead;
    }
    total
}

/// One application's Fig 9 row: speedups over the single-GPU baseline.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Application name.
    pub app: String,
    /// `(paradigm, speedup)` pairs in [`Paradigm::FIG9`] order.
    pub speedups: Vec<(Paradigm, f64)>,
}

impl SpeedupRow {
    /// The speedup for `paradigm`, if measured.
    pub fn speedup(&self, paradigm: Paradigm) -> Option<f64> {
        self.speedups
            .iter()
            .find(|(p, _)| *p == paradigm)
            .map(|(_, s)| *s)
    }
}

/// Computes one application's speedups for the given paradigms.
pub fn speedup_row(
    app: &dyn Workload,
    cfg: &SystemConfig,
    spec: &RunSpec,
    paradigms: &[Paradigm],
) -> SpeedupRow {
    let t1 = single_gpu_time(app, cfg, spec);
    let prepared = PreparedWorkload::new(app, cfg, spec);
    let speedups = paradigms
        .iter()
        .map(|p| {
            let tn = prepared.run(cfg, *p).total_time;
            (*p, t1.as_secs_f64() / tn.as_secs_f64())
        })
        .collect();
    SpeedupRow {
        app: app.name().to_string(),
        speedups,
    }
}

/// A workload prepared for sweeping: its traces (shared, replayed once)
/// plus its single-GPU baseline time. Both are independent of the
/// sweep parameters — sub-header format, PCIe generation, paradigm —
/// so one `PreparedApp` serves every point of a sweep.
#[derive(Debug, Clone)]
pub struct PreparedApp {
    /// The replayed traces, shared across sweep points.
    pub prepared: Arc<PreparedWorkload>,
    /// Simulated single-GPU baseline time (speedup denominator).
    pub single_gpu: SimTime,
}

/// Prepares every app exactly once (trace replay + single-GPU baseline),
/// fanning the preparation itself out over `pool`.
pub fn prepare_apps(
    apps: &[Box<dyn Workload>],
    cfg: &SystemConfig,
    spec: &RunSpec,
    pool: &WorkerPool,
) -> Vec<PreparedApp> {
    pool.map((0..apps.len()).collect(), |i| {
        let app = apps[i].as_ref();
        PreparedApp {
            prepared: Arc::new(PreparedWorkload::new(app, cfg, spec)),
            single_gpu: single_gpu_time(app, cfg, spec),
        }
    })
}

/// [`speedup_row`] over an already-prepared app: no trace replay, no
/// baseline re-simulation.
pub fn speedup_row_prepared(
    app: &PreparedApp,
    cfg: &SystemConfig,
    paradigms: &[Paradigm],
) -> SpeedupRow {
    let t1 = app.single_gpu;
    let speedups = paradigms
        .iter()
        .map(|p| {
            let tn = app.prepared.run(cfg, *p).total_time;
            (*p, t1.as_secs_f64() / tn.as_secs_f64())
        })
        .collect();
    SpeedupRow {
        app: app.prepared.name().to_string(),
        speedups,
    }
}

/// The Fig 9 suite's result: per-app speedup rows plus harness
/// self-measurement inputs (total events processed, total simulated
/// time) for throughput reporting.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// One speedup row per app, in input order.
    pub rows: Vec<SpeedupRow>,
    /// Discrete events processed across every run of the suite.
    pub sim_events: u64,
    /// Simulated time covered across every run of the suite.
    pub sim_time: SimTime,
}

/// Runs the Fig 9 suite — every app under every paradigm — fanning one
/// task per app (preparation + baseline + all paradigm runs) over
/// `pool`. Rows come back in app order regardless of worker count.
pub fn run_suite(
    apps: &[Box<dyn Workload>],
    cfg: &SystemConfig,
    spec: &RunSpec,
    paradigms: &[Paradigm],
    pool: &WorkerPool,
) -> SuiteResult {
    let results = pool.map((0..apps.len()).collect(), |i| {
        let app = apps[i].as_ref();
        let t1 = single_gpu_time(app, cfg, spec);
        let prepared = PreparedWorkload::new(app, cfg, spec);
        let mut events = 0u64;
        let mut sim_time = SimTime::ZERO;
        let speedups = paradigms
            .iter()
            .map(|p| {
                let report = prepared.run(cfg, *p);
                events += report.sim_events;
                sim_time += report.total_time;
                (*p, t1.as_secs_f64() / report.total_time.as_secs_f64())
            })
            .collect();
        let row = SpeedupRow {
            app: app.name().to_string(),
            speedups,
        };
        (row, events, sim_time)
    });
    let mut suite = SuiteResult {
        rows: Vec::with_capacity(results.len()),
        sim_events: 0,
        sim_time: SimTime::ZERO,
    };
    for (row, events, sim_time) in results {
        suite.rows.push(row);
        suite.sim_events += events;
        suite.sim_time += sim_time;
    }
    suite
}

/// [`run_suite`] over already-prepared apps: no trace replay and no
/// single-GPU baseline re-simulation inside the measured region, so a
/// timed pass over this function measures the event core alone. Rows
/// are byte-identical to [`run_suite`]'s on the same inputs.
pub fn run_suite_prepared(
    apps: &[PreparedApp],
    cfg: &SystemConfig,
    paradigms: &[Paradigm],
    pool: &WorkerPool,
) -> SuiteResult {
    let results = pool.map((0..apps.len()).collect(), |i| {
        let app = &apps[i];
        let t1 = app.single_gpu;
        let mut events = 0u64;
        let mut sim_time = SimTime::ZERO;
        let speedups = paradigms
            .iter()
            .map(|p| {
                let report = app.prepared.run(cfg, *p);
                events += report.sim_events;
                sim_time += report.total_time;
                (*p, t1.as_secs_f64() / report.total_time.as_secs_f64())
            })
            .collect();
        let row = SpeedupRow {
            app: app.prepared.name().to_string(),
            speedups,
        };
        (row, events, sim_time)
    });
    let mut suite = SuiteResult {
        rows: Vec::with_capacity(results.len()),
        sim_events: 0,
        sim_time: SimTime::ZERO,
    };
    for (row, events, sim_time) in results {
        suite.rows.push(row);
        suite.sim_events += events;
        suite.sim_time += sim_time;
    }
    suite
}

/// One GPU-count point of a scaling curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// GPUs at this point.
    pub num_gpus: u8,
    /// Per-app speedup rows at this count, in input order.
    pub rows: Vec<SpeedupRow>,
    /// Discrete events processed across the point's runs.
    pub sim_events: u64,
    /// Simulated time covered across the point's runs.
    pub sim_time: SimTime,
}

/// Sweeps the given apps across GPU counts — the weak-scaling curves of
/// the collectives study, or strong-scaling curves when `base_spec`
/// says so. `make_cfg` maps each GPU count to its system configuration
/// (the topology grows with the cluster). Each point goes through the
/// prepared path, so rows are pool-invariant and byte-stable.
pub fn scaling_curve(
    apps: &[Box<dyn Workload>],
    base_spec: &RunSpec,
    gpu_counts: &[u8],
    make_cfg: &dyn Fn(u8) -> SystemConfig,
    paradigms: &[Paradigm],
    pool: &WorkerPool,
) -> Vec<ScalingPoint> {
    gpu_counts
        .iter()
        .map(|&n| {
            let mut spec = *base_spec;
            spec.num_gpus = n;
            let cfg = make_cfg(n);
            let prepared = prepare_apps(apps, &cfg, &spec, pool);
            let res = run_suite_prepared(&prepared, &cfg, paradigms, pool);
            ScalingPoint {
                num_gpus: n,
                rows: res.rows,
                sim_events: res.sim_events,
                sim_time: res.sim_time,
            }
        })
        .collect()
}

/// Converts a runner error into the supervised harness's failure
/// taxonomy: budget trips keep their structured identity, everything
/// else (link death, stall watchdog) collapses to a generic failure
/// carrying the full rendered diagnostic.
fn task_failure_from(err: RunError) -> TaskFailure {
    match err {
        RunError::BudgetExceeded(trip) => TaskFailure::BudgetExceeded {
            detail: trip.to_string(),
        },
        other => TaskFailure::Failed {
            detail: other.to_string(),
        },
    }
}

/// One app's outcome under [`run_suite_supervised`]: its speedup row,
/// or the per-attempt failures that exhausted its retry budget.
#[derive(Debug, Clone)]
pub struct SuitePoint {
    /// Application name.
    pub app: String,
    /// Attempts executed (1 = first try succeeded).
    pub attempts: u32,
    /// Failures from attempts that produced no row, in attempt order.
    /// When the point ultimately failed, the last entry is terminal.
    pub failures: Vec<TaskFailure>,
    /// The speedup row, when some attempt succeeded.
    pub row: Option<SpeedupRow>,
}

impl SuitePoint {
    /// Whether some attempt produced a row.
    pub fn is_ok(&self) -> bool {
        self.row.is_some()
    }

    /// Whether the point ran more than one attempt.
    pub fn retried(&self) -> bool {
        self.attempts > 1
    }

    /// The terminal failure, when every attempt failed.
    pub fn final_failure(&self) -> Option<&TaskFailure> {
        if self.row.is_some() {
            None
        } else {
            self.failures.last()
        }
    }
}

/// The Fig 9 suite under supervision: per-app outcomes (some possibly
/// failed) plus harness self-measurement totals over the runs that
/// completed.
#[derive(Debug, Clone)]
pub struct SupervisedSuite {
    /// One outcome per app, in input order.
    pub points: Vec<SuitePoint>,
    /// Discrete events processed across every *successful* point.
    pub sim_events: u64,
    /// Simulated time covered across every *successful* point.
    pub sim_time: SimTime,
}

impl SupervisedSuite {
    /// True when every app produced a row.
    pub fn all_ok(&self) -> bool {
        self.points.iter().all(SuitePoint::is_ok)
    }

    /// The successful rows, in app order.
    pub fn rows(&self) -> Vec<SpeedupRow> {
        self.points.iter().filter_map(|p| p.row.clone()).collect()
    }

    /// Points whose every attempt failed, in app order.
    pub fn failed(&self) -> impl Iterator<Item = &SuitePoint> {
        self.points.iter().filter(|p| !p.is_ok())
    }

    /// Points that needed more than one attempt (successful or not).
    pub fn retried(&self) -> impl Iterator<Item = &SuitePoint> {
        self.points.iter().filter(|p| p.retried())
    }

    /// Collapses to the unsupervised [`SuiteResult`] when every point
    /// succeeded — byte-identical to [`run_suite`] on the same inputs.
    pub fn to_result(&self) -> Option<SuiteResult> {
        if !self.all_ok() {
            return None;
        }
        Some(SuiteResult {
            rows: self.rows(),
            sim_events: self.sim_events,
            sim_time: self.sim_time,
        })
    }
}

/// How a supervised sweep handles failure: the retry budget plus
/// optional deterministic chaos injection. [`Supervision::default`] is
/// "no retries, no chaos" — supervision then only adds panic isolation
/// and structured failure capture.
#[derive(Debug, Clone, Copy, Default)]
pub struct Supervision {
    /// Bounded deterministic retry budget per point.
    pub policy: RetryPolicy,
    /// Deterministic fault injection, for testing the harness itself.
    pub chaos: Option<ChaosConfig>,
}

impl Supervision {
    /// Supervision with a retry budget and no chaos.
    pub fn with_retries(retries: u32) -> Self {
        Supervision {
            policy: RetryPolicy::retries(retries),
            chaos: None,
        }
    }

    /// Adds chaos injection.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// [`run_suite`] under supervision: each app's task runs behind panic
/// isolation with bounded deterministic retries and optional chaos
/// injection, and runner errors (link death, stall watchdog,
/// [`RunError::BudgetExceeded`]) surface as structured per-point
/// failures instead of killing the whole sweep.
///
/// Determinism: per-task supervision seeds derive from `cfg.seed` and
/// the app *index*, retries reuse the seed with only the attempt index
/// bumped, and chaos strikes are keyed by `(seed, attempt)` — so the
/// full result, including which points failed and after how many
/// retries, is byte-identical at every `pool` size. With no failures
/// the rows and totals match [`run_suite`] exactly.
///
/// Harness lifecycle telemetry (`TaskStart`, `TaskRetry`, `TaskFailed`)
/// is recorded through `trace` post-hoc in input order, timestamped at
/// [`SimTime::ZERO`] with the task index in the `gpu` field (truncated
/// to `u8` for display grouping); pass [`TraceHandle::off`] to skip it.
pub fn run_suite_supervised(
    apps: &[Box<dyn Workload>],
    cfg: &SystemConfig,
    spec: &RunSpec,
    paradigms: &[Paradigm],
    pool: &WorkerPool,
    sup: Supervision,
    trace: &TraceHandle,
) -> SupervisedSuite {
    let reports = pool.map_supervised(
        cfg.seed,
        (0..apps.len()).collect(),
        sup.policy,
        sup.chaos,
        |_ctx, &i| {
            let app = apps[i].as_ref();
            let t1 = single_gpu_time(app, cfg, spec);
            let prepared = PreparedWorkload::new(app, cfg, spec);
            let mut events = 0u64;
            let mut sim_time = SimTime::ZERO;
            let mut speedups = Vec::with_capacity(paradigms.len());
            for p in paradigms {
                let report = prepared.try_run(cfg, *p).map_err(task_failure_from)?;
                events += report.sim_events;
                sim_time += report.total_time;
                speedups.push((*p, t1.as_secs_f64() / report.total_time.as_secs_f64()));
            }
            let row = SpeedupRow {
                app: app.name().to_string(),
                speedups,
            };
            Ok((row, events, sim_time))
        },
    );
    let mut suite = SupervisedSuite {
        points: Vec::with_capacity(reports.len()),
        sim_events: 0,
        sim_time: SimTime::ZERO,
    };
    for (i, report) in reports.into_iter().enumerate() {
        let attempts = report.attempts();
        if trace.is_on() {
            let task = i as u32;
            let gpu = i as u8;
            let at = |kind| TraceEvent {
                time: SimTime::ZERO,
                gpu,
                kind,
            };
            trace.record(at(EventKind::TaskStart { task }));
            for attempt in 1..attempts {
                trace.record(at(EventKind::TaskRetry { task, attempt }));
            }
            if !report.is_ok() {
                trace.record(at(EventKind::TaskFailed { task, attempts }));
            }
        }
        let row = match report.result {
            Some((row, events, sim_time)) => {
                suite.sim_events += events;
                suite.sim_time += sim_time;
                Some(row)
            }
            None => None,
        };
        suite.points.push(SuitePoint {
            app: apps[i].name().to_string(),
            attempts,
            failures: report.failures,
            row,
        });
    }
    suite
}

/// Geometric-mean speedup across rows for `paradigm`.
pub fn geomean_speedup(rows: &[SpeedupRow], paradigm: Paradigm) -> Option<f64> {
    let vals: Vec<f64> = rows.iter().filter_map(|r| r.speedup(paradigm)).collect();
    geomean(&vals)
}

/// Fig 12: geomean FinePack speedup for each sub-header size (2–6 bytes).
///
/// Trace replay is sub-header-independent, so each app is prepared once
/// and every (sub-header, app) run fans out over `pool`.
///
/// # Panics
///
/// Panics if `apps` is empty.
pub fn subheader_sweep(
    apps: &[Box<dyn Workload>],
    base_cfg: &SystemConfig,
    spec: &RunSpec,
    pool: &WorkerPool,
) -> Vec<(u32, f64)> {
    assert!(!apps.is_empty(), "subheader sweep needs at least one app");
    let prepared = prepare_apps(apps, base_cfg, spec, pool);
    let sizes: Vec<u32> = (2..=6).collect();
    let tasks: Vec<(u32, usize)> = sizes
        .iter()
        .flat_map(|b| (0..prepared.len()).map(move |i| (*b, i)))
        .collect();
    let rows = pool.map(tasks, |(bytes, i)| {
        let sub = SubheaderFormat::new(bytes).expect("2..=6 valid");
        let fp = FinePackConfig::paper(u32::from(base_cfg.num_gpus)).with_subheader(sub);
        let cfg = base_cfg.with_finepack(fp);
        speedup_row_prepared(&prepared[i], &cfg, &[Paradigm::FinePack])
    });
    rows.chunks(prepared.len())
        .zip(sizes)
        .map(|(rows, bytes)| {
            (
                bytes,
                geomean_speedup(rows, Paradigm::FinePack).expect("non-empty"),
            )
        })
        .collect()
}

/// Fig 13: geomean speedups per interconnect generation for the given
/// paradigms.
///
/// Trace replay and the single-GPU baseline are PCIe-generation-
/// independent, so each app is prepared once and every (generation,
/// app) run fans out over `pool`.
///
/// # Panics
///
/// Panics if `apps` is empty.
pub fn bandwidth_sweep(
    apps: &[Box<dyn Workload>],
    base_cfg: &SystemConfig,
    spec: &RunSpec,
    paradigms: &[Paradigm],
    pool: &WorkerPool,
) -> Vec<(PcieGen, Vec<(Paradigm, f64)>)> {
    assert!(!apps.is_empty(), "bandwidth sweep needs at least one app");
    let prepared = prepare_apps(apps, base_cfg, spec, pool);
    let tasks: Vec<(PcieGen, usize)> = PcieGen::ALL
        .into_iter()
        .flat_map(|gen| (0..prepared.len()).map(move |i| (gen, i)))
        .collect();
    let rows = pool.map(tasks, |(gen, i)| {
        let cfg = base_cfg.with_pcie_gen(gen);
        speedup_row_prepared(&prepared[i], &cfg, paradigms)
    });
    rows.chunks(prepared.len())
        .zip(PcieGen::ALL)
        .map(|(rows, gen)| {
            let means = paradigms
                .iter()
                .map(|p| (*p, geomean_speedup(rows, *p).expect("non-empty")))
                .collect();
            (gen, means)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Jacobi, Pagerank};

    fn tiny_cfg() -> (SystemConfig, RunSpec) {
        (SystemConfig::paper(2), RunSpec::tiny())
    }

    #[test]
    fn prepared_workload_reuses_traces_across_paradigms() {
        let (cfg, spec) = tiny_cfg();
        let app = Pagerank::default();
        let prep = PreparedWorkload::new(&app, &cfg, &spec);
        let a = prep.run(&cfg, Paradigm::FinePack);
        let b = prep.run(&cfg, Paradigm::P2pStores);
        assert_eq!(a.unique_bytes, b.unique_bytes);
        assert!(a.total_time < b.total_time);
    }

    #[test]
    fn speedup_ordering_matches_paper_for_irregular_app() {
        let (cfg, spec) = tiny_cfg();
        let row = speedup_row(&Pagerank::default(), &cfg, &spec, &Paradigm::FIG9);
        let inf = row.speedup(Paradigm::InfiniteBw).unwrap();
        let fp = row.speedup(Paradigm::FinePack).unwrap();
        let p2p = row.speedup(Paradigm::P2pStores).unwrap();
        assert!(inf >= fp, "inf {inf} >= fp {fp}");
        assert!(fp > p2p, "fp {fp} > p2p {p2p}");
    }

    #[test]
    fn dma_plan_respects_pattern() {
        let spec = RunSpec::paper(4);
        let halo = dma_plan(&Jacobi::default(), &spec);
        // Ring without wraparound: GPUs 0 and 3 have one leg, 1 and 2 two.
        assert_eq!(halo.len(), 6);
        let a2a = dma_plan(&Pagerank::default(), &spec); // neighbors too
        assert_eq!(a2a.len(), 6);
    }

    #[test]
    fn dma_plan_covers_collective_topologies() {
        use workloads::{Halo2d, RingAllReduce, TreeAllReduce};
        let spec = RunSpec::paper(4);
        // Ring: exactly one leg per GPU, to its successor, carrying the
        // app's full per-GPU DMA budget.
        let ring_app = RingAllReduce::default();
        let ring = dma_plan(&ring_app, &spec);
        assert_eq!(ring.len(), 4);
        assert!(ring.contains(&(
            GpuId::new(3),
            GpuId::new(0),
            ring_app.dma_bytes_per_gpu(&spec)
        )));
        // 2x2 grid: every GPU has two neighbors.
        assert_eq!(dma_plan(&Halo2d::default(), &spec).len(), 8);
        // Binomial tree over 4 GPUs: 3 edges, each walked twice
        // (parent link + child link per GPU) = 6 legs.
        assert_eq!(dma_plan(&TreeAllReduce::default(), &spec).len(), 6);
    }

    #[test]
    fn scaling_curve_is_pool_invariant_and_ordered() {
        use workloads::collectives::{CollectiveTuning, MsgDist};
        use workloads::{RingAllReduce, ScalingMode};
        let tuning = CollectiveTuning {
            payload_bytes: 1 << 20,
            msg: MsgDist::Fixed(512),
            compute_wall_us: 8.0,
        };
        let apps: Vec<Box<dyn Workload>> = vec![Box::new(RingAllReduce::new(tuning))];
        let mut spec = RunSpec::tiny();
        spec.scaling = ScalingMode::Weak;
        let counts = [2u8, 4, 8];
        let paradigms = [Paradigm::FinePack, Paradigm::BulkDma];
        let make_cfg = SystemConfig::paper;
        let serial = scaling_curve(
            &apps,
            &spec,
            &counts,
            &make_cfg,
            &paradigms,
            &WorkerPool::serial(),
        );
        let par = scaling_curve(
            &apps,
            &spec,
            &counts,
            &make_cfg,
            &paradigms,
            &WorkerPool::new(4),
        );
        assert_eq!(serial.len(), 3);
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.num_gpus, b.num_gpus);
            assert_eq!(a.sim_events, b.sim_events);
            for (ra, rb) in a.rows.iter().zip(&b.rows) {
                assert_eq!(ra.speedups, rb.speedups);
            }
        }
        // Weak scaling to more GPUs means more aggregate traffic: the
        // curve's simulated event count must grow monotonically.
        assert!(serial[2].sim_events > serial[1].sim_events);
    }

    #[test]
    fn single_gpu_time_scales_with_iterations() {
        let (cfg, mut spec) = tiny_cfg();
        let app = Jacobi::default();
        spec.iterations = 1;
        let t1 = single_gpu_time(&app, &cfg, &spec);
        spec.iterations = 2;
        let t2 = single_gpu_time(&app, &cfg, &spec);
        assert!(t2 > t1);
        assert!(t2 <= t1 * 3);
    }

    #[test]
    fn merged_stats_accumulate() {
        let (cfg, spec) = tiny_cfg();
        let prep = PreparedWorkload::new(&Jacobi::default(), &cfg, &spec);
        let stats = prep.merged_stats();
        assert!(stats.remote_stores > 0);
        assert_eq!(stats.mean_remote_size(), Some(128.0));
    }

    fn two_apps() -> Vec<Box<dyn Workload>> {
        vec![Box::new(Jacobi::default()), Box::new(Pagerank::default())]
    }

    #[test]
    fn run_suite_is_pool_invariant() {
        let (cfg, spec) = tiny_cfg();
        let paradigms = [Paradigm::FinePack, Paradigm::P2pStores];
        let serial = run_suite(&two_apps(), &cfg, &spec, &paradigms, &WorkerPool::serial());
        let par = run_suite(&two_apps(), &cfg, &spec, &paradigms, &WorkerPool::new(4));
        assert_eq!(serial.sim_events, par.sim_events);
        assert_eq!(serial.sim_time, par.sim_time);
        for (a, b) in serial.rows.iter().zip(&par.rows) {
            assert_eq!(a.app, b.app);
            assert_eq!(a.speedups, b.speedups);
        }
        assert!(serial.sim_events > 0);
    }

    #[test]
    fn subheader_sweep_is_pool_invariant() {
        let (cfg, spec) = tiny_cfg();
        let serial = subheader_sweep(&two_apps(), &cfg, &spec, &WorkerPool::serial());
        let par = subheader_sweep(&two_apps(), &cfg, &spec, &WorkerPool::new(4));
        assert_eq!(serial, par);
        assert_eq!(serial.len(), 5);
    }

    #[test]
    fn fault_sweep_is_pool_invariant() {
        let (mut cfg, spec) = tiny_cfg();
        cfg = cfg.with_faults(crate::FaultProfile::new(1e-9));
        let bers = [0.0, 1e-10, 1e-9];
        let sweep = |pool: &WorkerPool| {
            fault_sweep(
                &Jacobi::default(),
                &cfg,
                &spec,
                Paradigm::FinePack,
                &bers,
                pool,
            )
        };
        let serial = sweep(&WorkerPool::serial());
        let par = sweep(&WorkerPool::new(4));
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.ber, b.ber);
            assert_eq!(a.slowdown, b.slowdown);
            assert_eq!(a.outcome.is_ok(), b.outcome.is_ok());
        }
    }

    #[test]
    fn supervised_suite_matches_unsupervised_when_clean() {
        let (cfg, spec) = tiny_cfg();
        let paradigms = [Paradigm::FinePack, Paradigm::P2pStores];
        let plain = run_suite(&two_apps(), &cfg, &spec, &paradigms, &WorkerPool::new(2));
        let sup = run_suite_supervised(
            &two_apps(),
            &cfg,
            &spec,
            &paradigms,
            &WorkerPool::new(2),
            Supervision::with_retries(2),
            &TraceHandle::off(),
        );
        assert!(sup.all_ok());
        assert!(sup.failed().next().is_none());
        assert!(sup.retried().next().is_none());
        let collapsed = sup.to_result().expect("all ok collapses");
        assert_eq!(collapsed.sim_events, plain.sim_events);
        assert_eq!(collapsed.sim_time, plain.sim_time);
        for (a, b) in collapsed.rows.iter().zip(&plain.rows) {
            assert_eq!(a.app, b.app);
            assert_eq!(a.speedups, b.speedups);
        }
        for p in &sup.points {
            assert_eq!(p.attempts, 1);
        }
    }

    #[test]
    fn supervised_suite_chaos_is_pool_invariant() {
        let (mut cfg, spec) = tiny_cfg();
        cfg.seed = 0x5EED_CAFE;
        let paradigms = [Paradigm::FinePack];
        let chaos = ChaosConfig::uniform(0.4);
        let run = |jobs| {
            run_suite_supervised(
                &two_apps(),
                &cfg,
                &spec,
                &paradigms,
                &WorkerPool::new(jobs),
                Supervision::with_retries(1).with_chaos(chaos),
                &TraceHandle::off(),
            )
        };
        let serial = run(1);
        let (par2, par4) = (run(2), run(4));
        for other in [&par2, &par4] {
            assert_eq!(serial.sim_events, other.sim_events);
            assert_eq!(serial.sim_time, other.sim_time);
            assert_eq!(serial.points.len(), other.points.len());
            for (a, b) in serial.points.iter().zip(&other.points) {
                assert_eq!(a.app, b.app);
                assert_eq!(a.attempts, b.attempts);
                assert_eq!(a.failures, b.failures);
                assert_eq!(a.row.is_some(), b.row.is_some());
                if let (Some(ra), Some(rb)) = (&a.row, &b.row) {
                    assert_eq!(ra.speedups, rb.speedups);
                }
            }
        }
    }

    #[test]
    fn budget_trip_surfaces_as_structured_point_failure() {
        let (cfg, spec) = tiny_cfg();
        let cfg = cfg.with_run_budget(crate::RunBudget::unlimited().with_max_events(3));
        let sup = run_suite_supervised(
            &two_apps(),
            &cfg,
            &spec,
            &[Paradigm::FinePack],
            &WorkerPool::serial(),
            Supervision::default(),
            &TraceHandle::off(),
        );
        assert!(!sup.all_ok());
        assert!(sup.to_result().is_none());
        for p in &sup.points {
            let failure = p.final_failure().expect("budget must trip");
            assert_eq!(failure.kind(), "budget");
            let msg = failure.to_string();
            assert!(msg.contains("event ceiling"), "{msg}");
        }
        assert_eq!(sup.sim_events, 0);
    }

    #[test]
    fn supervised_suite_records_harness_lifecycle_events() {
        let (mut cfg, spec) = tiny_cfg();
        cfg.seed = 0x5EED_CAFE;
        let (trace, ring) = TraceHandle::ring(256, 8);
        let sup = run_suite_supervised(
            &two_apps(),
            &cfg,
            &spec,
            &[Paradigm::FinePack],
            &WorkerPool::new(2),
            Supervision::with_retries(1).with_chaos(ChaosConfig::uniform(0.4)),
            &trace,
        );
        let ring = ring.lock().unwrap();
        let events: Vec<_> = ring.events().cloned().collect();
        let starts = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TaskStart { .. }))
            .count();
        assert_eq!(starts, sup.points.len());
        let retries = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TaskRetry { .. }))
            .count();
        let expected: usize = sup
            .points
            .iter()
            .map(|p| p.attempts.saturating_sub(1) as usize)
            .sum();
        assert_eq!(retries, expected);
        let failed = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TaskFailed { .. }))
            .count();
        assert_eq!(failed, sup.failed().count());
    }

    #[test]
    fn prepared_apps_share_traces_across_sweep_points() {
        let (cfg, spec) = tiny_cfg();
        let apps = two_apps();
        let prepared = prepare_apps(&apps, &cfg, &spec, &WorkerPool::serial());
        let direct = speedup_row(apps[0].as_ref(), &cfg, &spec, &[Paradigm::FinePack]);
        let shared = speedup_row_prepared(&prepared[0], &cfg, &[Paradigm::FinePack]);
        assert_eq!(direct.app, shared.app);
        assert_eq!(direct.speedups, shared.speedups);
        // The Arc really is shared, not recloned per use.
        assert_eq!(Arc::strong_count(&prepared[0].prepared), 1);
    }
}
