//! High-level experiment drivers: everything the paper's figures need,
//! expressed as reusable functions over (workload, system, paradigm).

use finepack::{FinePackConfig, SubheaderFormat};
use gpu_model::{AddressMap, Gpu, GpuId, KernelRun, KernelStats};
use protocol::PcieGen;
use sim_engine::{geomean, SimTime};
use workloads::{CommPattern, RunSpec, Workload};

use crate::config::SystemConfig;
use crate::fault::RunError;
use crate::paradigm::Paradigm;
use crate::report::RunReport;
use crate::runner::{DmaPlan, Runner};

/// Bytes of physical memory per GPU in the node address map (Table III).
const GPU_MEMORY: u64 = 16 << 30;

/// A workload with its kernel traces replayed once, reusable across all
/// paradigms (the egress stream is paradigm-independent).
#[derive(Debug)]
pub struct PreparedWorkload {
    name: String,
    read_fraction: f64,
    gps_unsubscribed: f64,
    /// `[iteration][gpu]`.
    runs: Vec<Vec<KernelRun>>,
    dma_plan: DmaPlan,
}

impl PreparedWorkload {
    /// Replays `app`'s traces on the configured GPUs for every iteration
    /// of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.num_gpus != cfg.num_gpus`.
    pub fn new(app: &dyn Workload, cfg: &SystemConfig, spec: &RunSpec) -> Self {
        assert_eq!(spec.num_gpus, cfg.num_gpus, "spec/system GPU count mismatch");
        let map = AddressMap::new(cfg.num_gpus, GPU_MEMORY);
        let gpus: Vec<Gpu> = (0..cfg.num_gpus)
            .map(|g| Gpu::new(cfg.gpu, GpuId::new(g), map))
            .collect();
        let runs = (0..spec.iterations)
            .map(|iter| {
                gpus.iter()
                    .map(|gpu| gpu.execute_kernel(&app.trace(spec, iter, gpu.id())))
                    .collect()
            })
            .collect();
        PreparedWorkload {
            name: app.name().to_string(),
            read_fraction: app.read_fraction(),
            gps_unsubscribed: app.gps_unsubscribed_fraction(),
            runs,
            dma_plan: dma_plan(app, spec),
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-iteration, per-GPU kernel replays.
    pub fn runs(&self) -> &[Vec<KernelRun>] {
        &self.runs
    }

    /// Merged replay statistics across GPUs and iterations (Fig 4 data).
    pub fn merged_stats(&self) -> KernelStats {
        let mut merged: Option<KernelStats> = None;
        for iter in &self.runs {
            for run in iter {
                match &mut merged {
                    None => merged = Some(run.stats.clone()),
                    Some(m) => {
                        m.remote_size_hist.merge(&run.stats.remote_size_hist);
                        m.remote_bytes += run.stats.remote_bytes;
                        m.remote_stores += run.stats.remote_stores;
                        m.local_bytes += run.stats.local_bytes;
                        m.local_stores += run.stats.local_stores;
                        m.compute_cycles += run.stats.compute_cycles;
                    }
                }
            }
        }
        merged.expect("at least one kernel run")
    }

    /// Simulates this workload under `paradigm` on `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if injected faults kill the run; fault experiments should
    /// use [`PreparedWorkload::try_run`].
    pub fn run(&self, cfg: &SystemConfig, paradigm: Paradigm) -> RunReport {
        self.try_run(cfg, paradigm)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`PreparedWorkload::run`], surfacing link death and watchdog
    /// trips as diagnostics instead of panicking.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from the first failing iteration.
    pub fn try_run(&self, cfg: &SystemConfig, paradigm: Paradigm) -> Result<RunReport, RunError> {
        let mut runner = Runner::new(*cfg, paradigm, self.gps_unsubscribed, false);
        for iter_runs in &self.runs {
            runner.try_run_iteration(iter_runs, &self.dma_plan)?;
        }
        Ok(runner.finish(&self.name, self.read_fraction))
    }
}

/// One point of a bit-error-rate sweep: how fault injection at `ber`
/// changed the run relative to the fault-free baseline.
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// Injected bit-error rate.
    pub ber: f64,
    /// The run's outcome: a report, or the diagnostic that killed it.
    pub outcome: Result<RunReport, RunError>,
    /// Slowdown relative to the fault-free run (1.0 = no impact);
    /// `None` when the run died.
    pub slowdown: Option<f64>,
}

/// Sweeps bit-error rates for one workload under `paradigm`, reusing
/// the fault-free run at index 0 as the slowdown baseline. Replay
/// parameters beyond BER (outages, degradation) come from `base_cfg`'s
/// profile when set, else [`crate::FaultProfile::new`] defaults.
pub fn fault_sweep(
    app: &dyn Workload,
    base_cfg: &SystemConfig,
    spec: &RunSpec,
    paradigm: Paradigm,
    bers: &[f64],
) -> Vec<FaultSweepPoint> {
    let prepared = PreparedWorkload::new(app, base_cfg, spec);
    let mut clean_cfg = *base_cfg;
    clean_cfg.fault = None;
    let baseline = prepared
        .run(&clean_cfg, paradigm)
        .total_time
        .as_secs_f64();
    bers.iter()
        .map(|&ber| {
            let mut profile = base_cfg.fault.unwrap_or_else(|| crate::FaultProfile::new(ber));
            profile.ber = ber;
            let cfg = base_cfg.with_faults(profile);
            let outcome = prepared.try_run(&cfg, paradigm);
            let slowdown = outcome
                .as_ref()
                .ok()
                .map(|r| r.total_time.as_secs_f64() / baseline.max(f64::MIN_POSITIVE));
            FaultSweepPoint {
                ber,
                outcome,
                slowdown,
            }
        })
        .collect()
}

/// The memcpy paradigm's transfer legs for one iteration: each GPU ships
/// its replica updates to every communication target.
pub fn dma_plan(app: &dyn Workload, spec: &RunSpec) -> DmaPlan {
    let mut plan = Vec::new();
    if spec.num_gpus < 2 {
        return plan;
    }
    for g in 0..spec.num_gpus {
        let src = GpuId::new(g);
        let dsts: Vec<GpuId> = match app.pattern() {
            CommPattern::Neighbors => [i32::from(g) - 1, i32::from(g) + 1]
                .into_iter()
                .filter(|j| *j >= 0 && *j < i32::from(spec.num_gpus))
                .map(|j| GpuId::new(j as u8))
                .collect(),
            CommPattern::ManyToMany | CommPattern::AllToAll => (0..spec.num_gpus)
                .map(GpuId::new)
                .filter(|d| *d != src)
                .collect(),
        };
        // For halo patterns the knob names an interior GPU's outbound
        // total (two boundaries); each leg carries one boundary's worth.
        let per_dst = match app.pattern() {
            CommPattern::Neighbors => app.dma_bytes_per_gpu(spec) / 2,
            _ => app.dma_bytes_per_gpu(spec) / dsts.len().max(1) as u64,
        };
        for dst in dsts {
            plan.push((src, dst, per_dst));
        }
    }
    plan
}

/// Simulated wall time of the single-GPU baseline: the whole problem on
/// one GPU, no inter-GPU communication.
pub fn single_gpu_time(app: &dyn Workload, cfg: &SystemConfig, spec: &RunSpec) -> SimTime {
    let mut one = *spec;
    one.num_gpus = 1;
    let map = AddressMap::new(1, GPU_MEMORY);
    let gpu = Gpu::new(cfg.gpu, GpuId::new(0), map);
    let mut total = SimTime::ZERO;
    for iter in 0..one.iterations {
        let run = gpu.execute_kernel(&app.trace(&one, iter, GpuId::new(0)));
        debug_assert!(run.egress.is_empty(), "single-GPU run must be local-only");
        total += run.kernel_time + cfg.barrier_overhead;
    }
    total
}

/// One application's Fig 9 row: speedups over the single-GPU baseline.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Application name.
    pub app: String,
    /// `(paradigm, speedup)` pairs in [`Paradigm::FIG9`] order.
    pub speedups: Vec<(Paradigm, f64)>,
}

impl SpeedupRow {
    /// The speedup for `paradigm`, if measured.
    pub fn speedup(&self, paradigm: Paradigm) -> Option<f64> {
        self.speedups
            .iter()
            .find(|(p, _)| *p == paradigm)
            .map(|(_, s)| *s)
    }
}

/// Computes one application's speedups for the given paradigms.
pub fn speedup_row(
    app: &dyn Workload,
    cfg: &SystemConfig,
    spec: &RunSpec,
    paradigms: &[Paradigm],
) -> SpeedupRow {
    let t1 = single_gpu_time(app, cfg, spec);
    let prepared = PreparedWorkload::new(app, cfg, spec);
    let speedups = paradigms
        .iter()
        .map(|p| {
            let tn = prepared.run(cfg, *p).total_time;
            (*p, t1.as_secs_f64() / tn.as_secs_f64())
        })
        .collect();
    SpeedupRow {
        app: app.name().to_string(),
        speedups,
    }
}

/// Geometric-mean speedup across rows for `paradigm`.
pub fn geomean_speedup(rows: &[SpeedupRow], paradigm: Paradigm) -> Option<f64> {
    let vals: Vec<f64> = rows.iter().filter_map(|r| r.speedup(paradigm)).collect();
    geomean(&vals)
}

/// Fig 12: geomean FinePack speedup for each sub-header size (2–6 bytes).
pub fn subheader_sweep(
    apps: &[Box<dyn Workload>],
    base_cfg: &SystemConfig,
    spec: &RunSpec,
) -> Vec<(u32, f64)> {
    (2..=6u32)
        .map(|bytes| {
            let sub = SubheaderFormat::new(bytes).expect("2..=6 valid");
            let fp = FinePackConfig::paper(u32::from(base_cfg.num_gpus)).with_subheader(sub);
            let cfg = base_cfg.with_finepack(fp);
            let rows: Vec<SpeedupRow> = apps
                .iter()
                .map(|a| speedup_row(a.as_ref(), &cfg, spec, &[Paradigm::FinePack]))
                .collect();
            (
                bytes,
                geomean_speedup(&rows, Paradigm::FinePack).expect("non-empty"),
            )
        })
        .collect()
}

/// Fig 13: geomean speedups per interconnect generation for the given
/// paradigms.
pub fn bandwidth_sweep(
    apps: &[Box<dyn Workload>],
    base_cfg: &SystemConfig,
    spec: &RunSpec,
    paradigms: &[Paradigm],
) -> Vec<(PcieGen, Vec<(Paradigm, f64)>)> {
    PcieGen::ALL
        .into_iter()
        .map(|gen| {
            let cfg = base_cfg.with_pcie_gen(gen);
            let rows: Vec<SpeedupRow> = apps
                .iter()
                .map(|a| speedup_row(a.as_ref(), &cfg, spec, paradigms))
                .collect();
            let means = paradigms
                .iter()
                .map(|p| (*p, geomean_speedup(&rows, *p).expect("non-empty")))
                .collect();
            (gen, means)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Jacobi, Pagerank};

    fn tiny_cfg() -> (SystemConfig, RunSpec) {
        (SystemConfig::paper(2), RunSpec::tiny())
    }

    #[test]
    fn prepared_workload_reuses_traces_across_paradigms() {
        let (cfg, spec) = tiny_cfg();
        let app = Pagerank::default();
        let prep = PreparedWorkload::new(&app, &cfg, &spec);
        let a = prep.run(&cfg, Paradigm::FinePack);
        let b = prep.run(&cfg, Paradigm::P2pStores);
        assert_eq!(a.unique_bytes, b.unique_bytes);
        assert!(a.total_time < b.total_time);
    }

    #[test]
    fn speedup_ordering_matches_paper_for_irregular_app() {
        let (cfg, spec) = tiny_cfg();
        let row = speedup_row(&Pagerank::default(), &cfg, &spec, &Paradigm::FIG9);
        let inf = row.speedup(Paradigm::InfiniteBw).unwrap();
        let fp = row.speedup(Paradigm::FinePack).unwrap();
        let p2p = row.speedup(Paradigm::P2pStores).unwrap();
        assert!(inf >= fp, "inf {inf} >= fp {fp}");
        assert!(fp > p2p, "fp {fp} > p2p {p2p}");
    }

    #[test]
    fn dma_plan_respects_pattern() {
        let spec = RunSpec::paper(4);
        let halo = dma_plan(&Jacobi::default(), &spec);
        // Ring without wraparound: GPUs 0 and 3 have one leg, 1 and 2 two.
        assert_eq!(halo.len(), 6);
        let a2a = dma_plan(&Pagerank::default(), &spec); // neighbors too
        assert_eq!(a2a.len(), 6);
    }

    #[test]
    fn single_gpu_time_scales_with_iterations() {
        let (cfg, mut spec) = tiny_cfg();
        let app = Jacobi::default();
        spec.iterations = 1;
        let t1 = single_gpu_time(&app, &cfg, &spec);
        spec.iterations = 2;
        let t2 = single_gpu_time(&app, &cfg, &spec);
        assert!(t2 > t1);
        assert!(t2 <= t1 * 3);
    }

    #[test]
    fn merged_stats_accumulate() {
        let (cfg, spec) = tiny_cfg();
        let prep = PreparedWorkload::new(&Jacobi::default(), &cfg, &spec);
        let stats = prep.merged_stats();
        assert!(stats.remote_stores > 0);
        assert_eq!(stats.mean_remote_size(), Some(128.0));
    }
}
