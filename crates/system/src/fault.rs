//! Fault injection for the switched fabric: per-link bit-error rates
//! driving the data link layer's Ack/Nak replay machinery, transient
//! outage windows recovered by the REPLAY_TIMER, and post-retrain link
//! degradation. FinePack's transparency claim must survive all of it —
//! a replayed TLP costs wire bytes and latency but never changes the
//! bytes that land in destination memory.

use protocol::{ReplayConfig, ReplayError, ReplayStats};
use sim_engine::SimTime;

use crate::budget::BudgetTrip;

/// A transient (or permanent) outage on one GPU's egress link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The GPU whose egress link fails.
    pub gpu: u8,
    /// Outage start.
    pub from: SimTime,
    /// Outage end; [`SimTime::MAX`] models a stuck link that never
    /// recovers (the watchdog's diagnostic case).
    pub until: SimTime,
}

/// Fault-injection profile applied uniformly to every link of a fabric.
///
/// The profile is [`Copy`] so it can ride inside
/// [`SystemConfig`](crate::SystemConfig) without breaking its `Copy`
/// bound. A `ber` of zero with no outage is the identity: the data link
/// layer is exercised but every transfer succeeds on the first attempt
/// with zero added latency, so fault-free results are bit-identical to
/// a fabric with no profile at all.
///
/// # Examples
///
/// ```
/// use system::FaultProfile;
///
/// let profile = FaultProfile::new(1e-9).with_degrade(0.5);
/// profile.validate();
/// assert_eq!(profile.ber, 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FaultProfile {
    /// Raw bit-error rate per transmitted bit (post-FEC residual).
    pub ber: f64,
    /// Data link layer retry parameters.
    pub replay: ReplayConfig,
    /// Optional outage window on one GPU's egress link.
    pub outage: Option<Outage>,
    /// Bandwidth factor applied after a link's first retrain (models a
    /// link renegotiating at reduced width/speed); `None` retrains back
    /// to full rate.
    pub degrade: Option<f64>,
    /// Watchdog bound: a single delivery stalled longer than this is
    /// reported as no-forward-progress instead of silently inflating
    /// the simulated time.
    pub max_stall: SimTime,
}

impl FaultProfile {
    /// A profile with the given bit-error rate and PCIe 4.0 replay
    /// parameters, no outage, no degradation, and a 50 ms stall bound.
    pub fn new(ber: f64) -> Self {
        FaultProfile {
            ber,
            replay: ReplayConfig::pcie_gen4(),
            outage: None,
            degrade: None,
            max_stall: SimTime::from_ms(50),
        }
    }

    /// Adds a transient outage window on `gpu`'s egress link.
    pub fn with_outage(mut self, gpu: u8, from: SimTime, until: SimTime) -> Self {
        self.outage = Some(Outage { gpu, from, until });
        self
    }

    /// Sticks `gpu`'s egress link permanently down from `from` onward —
    /// the watchdog / LinkDown diagnostic scenario.
    pub fn stuck_link(mut self, gpu: u8, from: SimTime) -> Self {
        self.outage = Some(Outage {
            gpu,
            from,
            until: SimTime::MAX,
        });
        self
    }

    /// Degrades retrained links to `factor` of their bandwidth.
    pub fn with_degrade(mut self, factor: f64) -> Self {
        self.degrade = Some(factor);
        self
    }

    /// Replaces the replay parameters.
    pub fn with_replay(mut self, replay: ReplayConfig) -> Self {
        self.replay = replay;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]`, a degradation factor is
    /// outside `(0, 1]`, or an outage window is inverted.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.ber),
            "ber {} outside [0, 1]",
            self.ber
        );
        if let Some(d) = self.degrade {
            assert!(d > 0.0 && d <= 1.0, "degrade factor {d} outside (0, 1]");
        }
        if let Some(o) = self.outage {
            assert!(o.from <= o.until, "outage window inverted");
        }
        assert!(!self.max_stall.is_zero(), "stall bound must be positive");
    }
}

/// A link-level failure surfaced through the fabric, with enough
/// context to diagnose which link died and what it was doing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricFault {
    /// Which link direction failed (e.g. `"egress0"`, `"up1"`).
    pub link: String,
    /// Simulated time of the failing transfer.
    pub at: SimTime,
    /// The data link layer's verdict.
    pub error: ReplayError,
    /// The failing link's cumulative statistics at the time of death.
    pub stats: ReplayStats,
}

impl std::fmt::Display for FabricFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "link {} failed at {}: {} ({} TLPs delivered, {} replayed bytes, {} retrains)",
            self.link,
            self.at,
            self.error,
            self.stats.tlps_delivered,
            self.stats.replayed_bytes,
            self.stats.retrains
        )
    }
}

impl std::error::Error for FabricFault {}

/// Why a fault-injected run terminated instead of completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A link declared itself down (REPLAY_NUM escalation exhausted its
    /// retrain budget) — the run cannot make forward progress. Boxed so
    /// the hot `Result` stays register-sized on the `Ok` path.
    LinkDown(Box<FabricFault>),
    /// The watchdog tripped: one delivery stalled past the profile's
    /// `max_stall` bound without the link dying outright (e.g. a
    /// pathologically degraded link crawling under contention).
    Stalled {
        /// The GPU whose delivery stalled.
        gpu: u8,
        /// When the packet entered the fabric.
        at: SimTime,
        /// When it would have landed.
        landed: SimTime,
        /// The bound it exceeded.
        limit: SimTime,
    },
    /// A [`RunBudget`](crate::RunBudget) ceiling tripped — the run was
    /// terminated with a diagnostic snapshot instead of churning or
    /// livelocking forever. Boxed like `LinkDown` so the hot `Result`
    /// stays register-sized on the `Ok` path.
    BudgetExceeded(Box<BudgetTrip>),
}

/// The supervised harness's name for the runner's error type: every way
/// a run can terminate without completing (link death, stall watchdog,
/// budget trip).
pub type RunnerError = RunError;

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::LinkDown(fault) => write!(f, "no forward progress: {fault}"),
            RunError::Stalled {
                gpu,
                at,
                landed,
                limit,
            } => write!(
                f,
                "no forward progress: delivery from GPU{gpu} entering at {at} \
                 would land at {landed}, past the {limit} stall bound"
            ),
            RunError::BudgetExceeded(trip) => write!(f, "run budget exceeded: {trip}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::LinkDown(fault) => Some(fault.as_ref()),
            RunError::Stalled { .. } | RunError::BudgetExceeded(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = FaultProfile::new(1e-10).with_degrade(0.5).with_outage(
            2,
            SimTime::from_us(5),
            SimTime::from_us(9),
        );
        p.validate();
        assert_eq!(p.outage.unwrap().gpu, 2);
        assert_eq!(p.degrade, Some(0.5));
    }

    #[test]
    fn stuck_link_never_recovers() {
        let p = FaultProfile::new(0.0).stuck_link(1, SimTime::from_us(3));
        p.validate();
        assert_eq!(p.outage.unwrap().until, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_ber_rejected() {
        FaultProfile::new(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_degrade_rejected() {
        FaultProfile::new(0.0).with_degrade(0.0).validate();
    }

    #[test]
    fn errors_render_diagnostics() {
        let fault = FabricFault {
            link: "egress0".to_string(),
            at: SimTime::from_us(7),
            error: ReplayError::LinkDown {
                seq: 42,
                retrains: 16,
            },
            stats: ReplayStats::default(),
        };
        let msg = RunError::LinkDown(Box::new(fault)).to_string();
        assert!(msg.contains("egress0"), "{msg}");
        assert!(msg.contains("seq 42"), "{msg}");
        let stalled = RunError::Stalled {
            gpu: 3,
            at: SimTime::from_us(1),
            landed: SimTime::from_ms(90),
            limit: SimTime::from_ms(50),
        };
        assert!(stalled.to_string().contains("GPU3"));
    }
}
