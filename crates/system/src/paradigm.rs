//! The inter-GPU communication paradigms compared in the evaluation.

use std::fmt;

use finepack::{EgressPath, FinePackEgress, GpsEgress, RawP2pEgress, WriteCombiningEgress};
use gpu_model::GpuId;

use crate::config::SystemConfig;

/// A communication paradigm from the paper's evaluation (§V, §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Bulk-synchronous memcpy/DMA at kernel boundaries.
    BulkDma,
    /// Proactive peer-to-peer stores on today's hardware.
    P2pStores,
    /// Peer-to-peer stores through FinePack (the contribution).
    FinePack,
    /// Cacheline write-combining without repacketization (§VI-A's
    /// "write combining alone" ablation).
    WriteCombining,
    /// GPS-like publish–subscribe proactive stores (§VI-B comparison).
    Gps,
    /// Infinite inter-GPU bandwidth: transfer time analytically elided
    /// from the memcpy paradigm (the Fig 9 opportunity bound).
    InfiniteBw,
}

impl Paradigm {
    /// The four paradigms plotted in Fig 9, in plot order.
    pub const FIG9: [Paradigm; 4] = [
        Paradigm::BulkDma,
        Paradigm::P2pStores,
        Paradigm::FinePack,
        Paradigm::InfiniteBw,
    ];

    /// True if this paradigm transports stores through an egress path.
    pub fn uses_stores(self) -> bool {
        !matches!(self, Paradigm::BulkDma | Paradigm::InfiniteBw)
    }

    /// Builds the egress path this paradigm uses on GPU `gpu`, or `None`
    /// for the DMA / infinite-bandwidth paradigms.
    ///
    /// `gps_unsubscribed` is the workload's fraction of stores GPS's
    /// subscription mechanism would filter.
    pub fn make_egress(
        self,
        cfg: &SystemConfig,
        gpu: GpuId,
        gps_unsubscribed: f64,
    ) -> Option<Box<dyn EgressPath>> {
        match self {
            Paradigm::BulkDma | Paradigm::InfiniteBw => None,
            Paradigm::P2pStores => Some(Box::new(RawP2pEgress::new(cfg.framing))),
            Paradigm::FinePack => {
                let mut egress = FinePackEgress::new(gpu, cfg.finepack, cfg.framing);
                if let Some(timeout) = cfg.finepack_flush_timeout {
                    egress = egress.with_flush_timeout(timeout);
                }
                Some(Box::new(egress))
            }
            Paradigm::WriteCombining => Some(Box::new(WriteCombiningEgress::new(
                gpu,
                cfg.framing,
                cfg.combining_entries,
            ))),
            Paradigm::Gps => Some(Box::new(GpsEgress::new(
                gpu,
                cfg.framing,
                cfg.combining_entries,
                gps_unsubscribed,
                cfg.seed,
            ))),
        }
    }
}

impl fmt::Display for Paradigm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Paradigm::BulkDma => write!(f, "bulk-dma"),
            Paradigm::P2pStores => write!(f, "p2p-stores"),
            Paradigm::FinePack => write!(f, "finepack"),
            Paradigm::WriteCombining => write!(f, "write-combining"),
            Paradigm::Gps => write!(f, "gps"),
            Paradigm::InfiniteBw => write!(f, "infinite-bw"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn egress_factories() {
        let cfg = SystemConfig::paper(4);
        let g = GpuId::new(0);
        assert!(Paradigm::BulkDma.make_egress(&cfg, g, 0.0).is_none());
        assert!(Paradigm::InfiniteBw.make_egress(&cfg, g, 0.0).is_none());
        for p in [
            Paradigm::P2pStores,
            Paradigm::FinePack,
            Paradigm::WriteCombining,
            Paradigm::Gps,
        ] {
            let e = p.make_egress(&cfg, g, 0.1).unwrap();
            assert!(!e.name().is_empty());
            assert!(p.uses_stores());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Paradigm::FinePack.to_string(), "finepack");
        assert_eq!(Paradigm::BulkDma.to_string(), "bulk-dma");
        assert_eq!(Paradigm::InfiniteBw.to_string(), "infinite-bw");
    }
}
