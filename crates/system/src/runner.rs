//! The event-driven iteration runner: replays per-GPU kernel egress
//! streams through a paradigm's egress paths and the switched fabric,
//! producing execution times and wire-traffic accounting.

use finepack::{
    EgressMetrics, EgressPath, FlushReason, PayloadMode, ReplayAmplification, WirePacket,
};
use gpu_model::{GpuId, KernelRun, MemoryImage};
use sim_engine::{Bandwidth, EventQueue, SimTime};
use telemetry::{EventKind, Sample, TraceEvent, TraceHandle};

use crate::budget::{BudgetKind, BudgetTrip, RunnerDiag};
use crate::config::SystemConfig;
use crate::fault::RunError;
use crate::paradigm::Paradigm;
use crate::report::{RunReport, TrafficBreakdown, UniqueTracker};
use crate::topology::{RoutedFabric, SendOutcome};

/// One DMA transfer leg: (source, destination, payload bytes).
pub type DmaPlan = Vec<(GpuId, GpuId, u64)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Store {
        gpu: usize,
        idx: usize,
    },
    Atomic {
        gpu: usize,
        idx: usize,
    },
    Probe {
        gpu: usize,
        idx: usize,
    },
    Fence {
        gpu: usize,
    },
    KernelEnd {
        gpu: usize,
    },
    /// Credited mode only: the GPU's output buffer was blocked on link
    /// credits; retry draining when the earliest `UpdateFC` lands.
    Retry {
        gpu: usize,
    },
}

/// What one output-buffer drain pass achieved.
struct PumpOutcome {
    /// Latest local-memory drain time among delivered packets
    /// (`SimTime::ZERO` when nothing was delivered).
    last_drained: SimTime,
    /// Set when the head packet found a link out of credits: the
    /// earliest time it can be admitted.
    blocked_until: Option<SimTime>,
}

/// Simulates a (workload, paradigm) combination iteration by iteration.
///
/// # Examples
///
/// ```
/// use system::{Paradigm, Runner, SystemConfig};
/// use workloads::{Jacobi, RunSpec, Workload};
/// use gpu_model::{AddressMap, Gpu, GpuId};
///
/// let cfg = SystemConfig::paper(2);
/// let spec = RunSpec::tiny();
/// let mut runner = Runner::new(cfg, Paradigm::FinePack, 0.0, false);
/// let map = AddressMap::new(2, 16 << 30);
/// let app = Jacobi::default();
/// let runs: Vec<_> = (0..2)
///     .map(|g| {
///         let gpu = Gpu::new(cfg.gpu, GpuId::new(g), map);
///         gpu.execute_kernel(&app.trace(&spec, 0, GpuId::new(g)))
///     })
///     .collect();
/// runner.run_iteration(&runs, &[]);
/// let report = runner.finish("jacobi", 1.0);
/// assert!(report.total_time.as_ps() > 0);
/// ```
#[derive(Debug)]
pub struct Runner {
    cfg: SystemConfig,
    paradigm: Paradigm,
    paths: Vec<Option<Box<dyn EgressPath>>>,
    fabric: RoutedFabric,
    unique: UniqueTracker,
    images: Option<Vec<MemoryImage>>,
    hbm: Bandwidth,
    dma_wire_bytes: u64,
    dma_data_bytes: u64,
    total_time: SimTime,
    compute_time: SimTime,
    drain_tail: SimTime,
    barrier_time: SimTime,
    iterations: u32,
    replay_amp: ReplayAmplification,
    sim_events: u64,
    /// Events processed since the last commit/flush advance — the
    /// progress-watchdog clock (see [`crate::RunBudget`]).
    events_since_progress: u64,
    trace: TraceHandle,
    sample_every: Option<SimTime>,
}

impl Runner {
    /// Creates a runner. `gps_unsubscribed` parameterizes the GPS
    /// paradigm; `track_memory` enables functional memory images for
    /// transparency verification (slower).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(
        cfg: SystemConfig,
        paradigm: Paradigm,
        gps_unsubscribed: f64,
        track_memory: bool,
    ) -> Self {
        cfg.validate();
        let paths = (0..cfg.num_gpus)
            .map(|g| paradigm.make_egress(&cfg, GpuId::new(g), gps_unsubscribed))
            .collect();
        let mut fabric = RoutedFabric::new(
            cfg.topology,
            cfg.num_gpus,
            cfg.pcie_gen.bandwidth(),
            cfg.hop_latency,
        );
        if let Some(profile) = cfg.fault {
            fabric = fabric.with_faults(profile, cfg.seed);
        }
        let mut paths: Vec<Option<Box<dyn EgressPath>>> = paths;
        let mode = if track_memory {
            PayloadMode::Full
        } else {
            // Without memory images nothing reads the payloads: carry
            // (addr, len) extents only and skip the data clones.
            PayloadMode::Extents
        };
        for path in paths.iter_mut().flatten() {
            path.set_payload_mode(mode);
        }
        if let Some(credits) = cfg.flow_control.credits() {
            fabric = fabric.with_flow_control(credits);
            for path in paths.iter_mut().flatten() {
                path.output().set_capacity(credits.buffer_packets);
            }
        }
        Runner {
            cfg,
            paradigm,
            paths,
            fabric,
            unique: UniqueTracker::new(),
            images: track_memory.then(|| (0..cfg.num_gpus).map(|_| MemoryImage::new()).collect()),
            hbm: cfg.gpu.hbm_bandwidth,
            dma_wire_bytes: 0,
            dma_data_bytes: 0,
            total_time: SimTime::ZERO,
            compute_time: SimTime::ZERO,
            drain_tail: SimTime::ZERO,
            barrier_time: SimTime::ZERO,
            iterations: 0,
            replay_amp: ReplayAmplification::new(),
            sim_events: 0,
            events_since_progress: 0,
            trace: TraceHandle::off(),
            sample_every: None,
        }
    }

    /// Checks every configured [`crate::RunBudget`] ceiling at
    /// iteration-local time `now` with `pending` events still queued,
    /// returning a structured trip with a diagnostic snapshot when one
    /// is exceeded. `stall` carries the iteration's per-GPU SM stall
    /// clocks (empty outside the store-paradigm loop).
    fn check_budget(
        &self,
        now: SimTime,
        pending: usize,
        stall: &[SimTime],
    ) -> Result<(), RunError> {
        let Some(budget) = self.cfg.run_budget else {
            return Ok(());
        };
        let kind = if let Some(limit) = budget.max_events.filter(|l| self.sim_events > *l) {
            BudgetKind::Events { limit }
        } else if let Some(limit) = budget.max_sim_time.filter(|l| self.total_time + now > *l) {
            BudgetKind::SimTime { limit }
        } else if let Some(limit) = budget
            .max_events_since_progress
            .filter(|l| self.events_since_progress > *l)
        {
            BudgetKind::Watchdog { limit }
        } else {
            return Ok(());
        };
        Err(RunError::BudgetExceeded(Box::new(BudgetTrip {
            kind,
            diag: RunnerDiag {
                now: self.total_time + now,
                sim_events: self.sim_events,
                pending_events: pending as u64,
                events_since_progress: self.events_since_progress,
                stall: stall.to_vec(),
                fc_in_flight: self.fabric.fc_in_flight_total(),
            },
        })))
    }

    /// Attaches a trace handle; subsequent iterations record lifecycle
    /// events through it. With `sample_every` set (and non-zero),
    /// per-GPU occupancy/credit/stall samples are additionally taken at
    /// that simulated-time interval. Tracing observes only: attaching
    /// any collector leaves the run's report byte-identical.
    pub fn attach_trace(&mut self, trace: TraceHandle, sample_every: Option<SimTime>) {
        self.trace = trace;
        self.sample_every = sample_every.filter(|t| t.as_ps() > 0);
    }

    /// Records one occupancy/credit/stall sample per store-paradigm GPU
    /// at iteration-local time `at`.
    fn take_samples(&self, at: SimTime) {
        for (g, path) in self.paths.iter().enumerate() {
            let Some(path) = path else { continue };
            let gid = GpuId::new(g as u8);
            let (hdrs, data) = self.fabric.egress_fc_in_flight(gid);
            self.trace.sample(Sample {
                time: at,
                gpu: g as u8,
                rwq_entries: path.queue_depth() as u64,
                egress_queue: path.occupancy() as u64,
                egress_wire_bytes: self.fabric.egress_bytes(gid),
                credit_hdrs_in_flight: hdrs,
                credit_data_in_flight: data,
                stall_ps: path.metrics().stall_time.as_ps(),
            });
        }
    }

    /// Emits one `Flush` event per flush the just-run path operation
    /// added, by diffing the per-reason counters around it. Counting
    /// from the aggregates keeps trace flush counts equal to
    /// `flushes_by_reason` by construction.
    fn record_flush_delta(&self, gpu: usize, at: SimTime, before: [u64; FlushReason::ALL.len()]) {
        let after = self.paths[gpu]
            .as_ref()
            .expect("store paradigm")
            .metrics()
            .flushes_by_reason;
        for (i, reason) in FlushReason::ALL.iter().enumerate() {
            for _ in before[i]..after[i] {
                self.trace.record(TraceEvent {
                    time: at,
                    gpu: gpu as u8,
                    kind: EventKind::Flush {
                        reason: reason.label(),
                    },
                });
            }
        }
    }

    /// The destination memory images, when `track_memory` was requested.
    pub fn images(&self) -> Option<&[MemoryImage]> {
        self.images.as_deref()
    }

    /// The fabric's cumulative credit ledger (consumed/returned units
    /// summed over every link direction), or `None` under open-loop
    /// flow control. Observational — read it before [`Runner::finish`].
    pub fn fc_totals(&self) -> Option<protocol::CreditTotals> {
        self.fabric.fc_totals_total()
    }

    /// `(header, data)` credit units currently in flight across the
    /// fabric; `(0, 0)` under open-loop flow control.
    pub fn fc_in_flight(&self) -> (u64, u64) {
        self.fabric.fc_in_flight_total()
    }

    fn deliver(
        &mut self,
        at: SimTime,
        src: GpuId,
        packets: Vec<WirePacket>,
    ) -> Result<SimTime, RunError> {
        let mut last = SimTime::ZERO;
        let stall_limit = self.cfg.fault.map(|f| f.max_stall);
        for p in packets {
            let replayed_before = self.fabric.replayed_bytes_total();
            let landed = self
                .fabric
                .try_send(at, src, p.dst, p.wire_bytes)
                .map_err(RunError::LinkDown)?;
            // A replayed aggregated TLP retransmits whole: attribute
            // the amplification to the flush that produced the packet.
            let replayed = self.fabric.replayed_bytes_total() - replayed_before;
            self.replay_amp.record(p.reason, p.wire_bytes, replayed);
            // No-forward-progress watchdog: a delivery that stalls past
            // the bound (crawling degraded link, replay storm) is a
            // diagnostic failure, not a silently absurd timeline.
            if let Some(limit) = stall_limit {
                if landed.saturating_sub(at) > limit {
                    return Err(RunError::Stalled {
                        gpu: src.index() as u8,
                        at,
                        landed,
                        limit,
                    });
                }
            }
            // The de-packetizer / L2 drains disaggregated stores at local
            // memory bandwidth (§IV-B); this is never the bottleneck but
            // is modeled for completeness.
            let drained = landed + self.hbm.transfer_time(p.data_bytes);
            last = last.max(drained);
            if self.trace.is_on() {
                self.record_transfer(at, src, &p, replayed, landed, drained);
            }
            if let Some(images) = &mut self.images {
                let stores = p.stores.full().expect("track_memory runs carry payloads");
                for s in stores {
                    images[p.dst.index()].write(s.addr, &s.data);
                }
            }
        }
        Ok(last)
    }

    /// Records the wire/replay/commit events for one delivered packet.
    fn record_transfer(
        &self,
        at: SimTime,
        src: GpuId,
        p: &WirePacket,
        replayed: u64,
        landed: SimTime,
        drained: SimTime,
    ) {
        self.trace.record(TraceEvent {
            time: at,
            gpu: src.index() as u8,
            kind: EventKind::WireTransmit {
                dst: p.dst.index() as u8,
                wire_bytes: p.wire_bytes,
                payload_bytes: u64::from(p.payload_bytes),
                stores: p.stores.len() as u32,
                reason: p.reason.map(|r| r.label()),
                done: landed,
            },
        });
        if replayed > 0 {
            self.trace.record(TraceEvent {
                time: at,
                gpu: src.index() as u8,
                kind: EventKind::DllReplay { bytes: replayed },
            });
        }
        self.trace.record(TraceEvent {
            time: landed,
            gpu: p.dst.index() as u8,
            kind: EventKind::Commit {
                data_bytes: p.data_bytes,
                done: drained,
            },
        });
    }

    /// Drains `gpu`'s output buffer head-first through the credited
    /// fabric, stopping at the first packet blocked on link credits.
    fn pump(&mut self, gpu: usize, at: SimTime) -> Result<PumpOutcome, RunError> {
        let src = GpuId::new(gpu as u8);
        let stall_limit = self.cfg.fault.map(|f| f.max_stall);
        let mut last = SimTime::ZERO;
        let mut blocked_until = None;
        loop {
            let path = self.paths[gpu].as_ref().expect("store paradigm");
            let Some(head) = path.output_ref().front() else {
                break;
            };
            let (dst, wire_bytes, payload_bytes) = (head.dst, head.wire_bytes, head.payload_bytes);
            let replayed_before = self.fabric.replayed_bytes_total();
            let outcome = self
                .fabric
                .try_send_credited(at, src, dst, wire_bytes, payload_bytes)
                .map_err(RunError::LinkDown)?;
            let landed = match outcome {
                SendOutcome::Delivered(landed) => landed,
                SendOutcome::Blocked { until } => {
                    debug_assert!(until > at, "blocked admission must make progress");
                    self.trace.record(TraceEvent {
                        time: at,
                        gpu: gpu as u8,
                        kind: EventKind::CreditBlocked { until },
                    });
                    blocked_until = Some(until);
                    break;
                }
            };
            let p = self.paths[gpu]
                .as_mut()
                .expect("store paradigm")
                .output()
                .pop_front()
                .expect("head just observed");
            let replayed = self.fabric.replayed_bytes_total() - replayed_before;
            self.replay_amp.record(p.reason, p.wire_bytes, replayed);
            if let Some(limit) = stall_limit {
                if landed.saturating_sub(at) > limit {
                    return Err(RunError::Stalled {
                        gpu: src.index() as u8,
                        at,
                        landed,
                        limit,
                    });
                }
            }
            let drained = landed + self.hbm.transfer_time(p.data_bytes);
            last = last.max(drained);
            if self.trace.is_on() {
                self.record_transfer(at, src, &p, replayed, landed, drained);
            }
            if let Some(images) = &mut self.images {
                let stores = p.stores.full().expect("track_memory runs carry payloads");
                for s in stores {
                    images[p.dst.index()].write(s.addr, &s.data);
                }
            }
        }
        Ok(PumpOutcome {
            last_drained: last,
            blocked_until,
        })
    }

    /// Simulates one bulk-synchronous iteration. `runs` holds each GPU's
    /// kernel replay; `dma_plan` the DMA legs (used only by
    /// [`Paradigm::BulkDma`]).
    ///
    /// # Panics
    ///
    /// Panics if `runs.len()` differs from the configured GPU count, or
    /// if injected faults kill the run — fault experiments should use
    /// [`Runner::try_run_iteration`] and inspect the diagnostic.
    pub fn run_iteration(&mut self, runs: &[KernelRun], dma_plan: &[(GpuId, GpuId, u64)]) {
        if let Err(e) = self.try_run_iteration(runs, dma_plan) {
            panic!("{e}");
        }
    }

    /// [`Runner::run_iteration`], surfacing link death and watchdog
    /// trips as errors instead of hanging or panicking.
    ///
    /// # Errors
    ///
    /// [`RunError::LinkDown`] when a link exhausts its retrain budget;
    /// [`RunError::Stalled`] when a delivery exceeds the fault
    /// profile's stall bound; [`RunError::BudgetExceeded`] when a
    /// configured [`crate::RunBudget`] ceiling trips (the runner should
    /// be discarded after any error — partial iteration state is not
    /// rolled back).
    ///
    /// # Panics
    ///
    /// Panics if `runs.len()` differs from the configured GPU count.
    pub fn try_run_iteration(
        &mut self,
        runs: &[KernelRun],
        dma_plan: &[(GpuId, GpuId, u64)],
    ) -> Result<(), RunError> {
        assert_eq!(runs.len(), usize::from(self.cfg.num_gpus));
        if self.trace.is_on() {
            // Iteration timelines restart at zero: shift this
            // iteration's events past everything already simulated, and
            // hand every path a handle carrying the same base.
            self.trace.rebase(self.total_time);
            for path in self.paths.iter_mut().flatten() {
                path.set_trace(self.trace.clone());
            }
        }
        // Unique-byte tracking is paradigm-independent: it reflects the
        // program's store stream.
        for run in runs {
            for t in run.egress.iter().chain(run.atomics.iter()) {
                self.unique.add(t.store.addr, t.store.len());
            }
        }

        let mut kernel_end = runs
            .iter()
            .map(|r| r.kernel_time)
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut last_delivery = SimTime::ZERO;

        match self.paradigm {
            Paradigm::InfiniteBw => {
                // Transfer time analytically elided (§V).
            }
            Paradigm::BulkDma => {
                for (src, dst, bytes) in dma_plan {
                    self.sim_events += 1;
                    // DMA legs always progress: the watchdog is a
                    // store-loop concern, but the event and sim-time
                    // ceilings still bound runaway plans.
                    let start = runs[src.index()].kernel_time + self.cfg.dma_sw_overhead;
                    self.check_budget(start, 0, &[])?;
                    let wire = self.cfg.framing.bulk_wire_bytes(*bytes);
                    let landed = self
                        .fabric
                        .try_send(start, *src, *dst, wire)
                        .map_err(RunError::LinkDown)?;
                    self.trace.record(TraceEvent {
                        time: start,
                        gpu: src.index() as u8,
                        kind: EventKind::WireTransmit {
                            dst: dst.index() as u8,
                            wire_bytes: wire,
                            payload_bytes: *bytes,
                            stores: 0,
                            reason: None,
                            done: landed,
                        },
                    });
                    last_delivery = last_delivery.max(landed);
                    self.dma_wire_bytes += wire;
                    self.dma_data_bytes += bytes;
                }
                if let Some(images) = &mut self.images {
                    // A DMA of the replica region delivers every written
                    // byte's final value.
                    for run in runs {
                        for t in run.egress.iter().chain(run.atomics.iter()) {
                            images[t.store.dst.index()].write(t.store.addr, &t.store.data);
                        }
                    }
                }
            }
            _ => {
                // Store-transport paradigms: event-driven replay.
                let credited = self.cfg.flow_control.credits().is_some();
                // Cumulative SM stall per GPU (credited mode). Every
                // pre-scheduled event for a GPU shifts right by its
                // accumulated stall, preserving program order; with
                // zero stalls the replay — event order, timestamps,
                // fabric call sequence — is identical to open loop.
                let mut stall = vec![SimTime::ZERO; runs.len()];
                let mut retry_at: Vec<Option<SimTime>> = vec![None; runs.len()];
                // Pre-size for the whole trace (plus a Retry slot per
                // GPU) so schedule/pop never reallocate in the hot loop.
                let trace_events: usize = runs
                    .iter()
                    .map(|r| r.egress.len() + r.atomics.len() + r.probes.len() + r.fences.len() + 1)
                    .sum();
                let mut queue: EventQueue<Ev> =
                    EventQueue::with_capacity(trace_events + runs.len());
                for (g, run) in runs.iter().enumerate() {
                    for (idx, t) in run.egress.iter().enumerate() {
                        queue.schedule(t.time, Ev::Store { gpu: g, idx });
                    }
                    for (idx, t) in run.atomics.iter().enumerate() {
                        queue.schedule(t.time, Ev::Atomic { gpu: g, idx });
                    }
                    for (idx, p) in run.probes.iter().enumerate() {
                        queue.schedule(p.time, Ev::Probe { gpu: g, idx });
                    }
                    for f in &run.fences {
                        queue.schedule(*f, Ev::Fence { gpu: g });
                    }
                    queue.schedule(run.kernel_time, Ev::KernelEnd { gpu: g });
                }
                let sample_step = self.sample_every.filter(|_| self.trace.is_on());
                let mut next_sample = sample_step.unwrap_or(SimTime::ZERO);
                while let Some(ev) = queue.pop() {
                    self.sim_events += 1;
                    self.events_since_progress += 1;
                    let now = ev.time;
                    self.check_budget(now, queue.len(), &stall)?;
                    if let Some(step) = sample_step {
                        while next_sample <= now {
                            self.take_samples(next_sample);
                            next_sample += step;
                        }
                    }
                    if let Ev::Retry { gpu } = ev.payload {
                        retry_at[gpu] = None;
                        let out = self.pump(gpu, now)?;
                        if out.last_drained > SimTime::ZERO {
                            self.events_since_progress = 0;
                        }
                        last_delivery = last_delivery.max(out.last_drained);
                        if let Some(until) = out.blocked_until {
                            if retry_at[gpu].is_none_or(|r| until < r) {
                                retry_at[gpu] = Some(until);
                                queue.schedule(until, Ev::Retry { gpu });
                            }
                        }
                        continue;
                    }
                    let gpu = match ev.payload {
                        Ev::Store { gpu, .. }
                        | Ev::Atomic { gpu, .. }
                        | Ev::Probe { gpu, .. }
                        | Ev::Fence { gpu }
                        | Ev::KernelEnd { gpu } => gpu,
                        Ev::Retry { .. } => unreachable!("handled above"),
                    };
                    // The operation issues at its nominal time shifted
                    // by everything this GPU has already stalled.
                    let mut eff = now + stall[gpu];
                    // Closed loop: an SM memory operation that finds
                    // the egress output buffer at its admission
                    // threshold stalls the stream until draining —
                    // gated on link credits — frees a slot.
                    let is_mem_op = matches!(
                        ev.payload,
                        Ev::Store { .. } | Ev::Atomic { .. } | Ev::Probe { .. }
                    );
                    if credited && is_mem_op {
                        loop {
                            if self.paths[gpu]
                                .as_ref()
                                .expect("store paradigm")
                                .can_accept()
                            {
                                break;
                            }
                            let out = self.pump(gpu, eff)?;
                            if out.last_drained > SimTime::ZERO {
                                self.events_since_progress = 0;
                            }
                            last_delivery = last_delivery.max(out.last_drained);
                            if self.paths[gpu]
                                .as_ref()
                                .expect("store paradigm")
                                .can_accept()
                            {
                                break;
                            }
                            let until = out
                                .blocked_until
                                .expect("a still-full buffer implies a blocked head");
                            // Each blocked wait advances simulated time
                            // without popping an event, so a stalled
                            // stream (e.g. credits that effectively
                            // never return) could spin here past every
                            // pop-time check: budget the wait itself.
                            self.events_since_progress += 1;
                            self.check_budget(until, queue.len(), &stall)?;
                            let waited = until.saturating_sub(eff);
                            self.trace.record(TraceEvent {
                                time: eff,
                                gpu: gpu as u8,
                                kind: EventKind::Stall { duration: waited },
                            });
                            let path = self.paths[gpu].as_mut().expect("store paradigm");
                            path.record_stall(waited);
                            stall[gpu] += waited;
                            eff = until;
                        }
                    }
                    let flushes_before = self.trace.is_on().then(|| {
                        // Snapshot the per-reason flush counters so any
                        // flush this event triggers (in push, probe,
                        // release, or the timeout advance below) becomes
                        // exactly one Flush trace event.
                        self.paths[gpu]
                            .as_ref()
                            .expect("store paradigm")
                            .metrics()
                            .flushes_by_reason
                    });
                    if self.trace.is_on() {
                        let kind = match ev.payload {
                            Ev::Store { gpu, idx } => {
                                let s = &runs[gpu].egress[idx].store;
                                EventKind::StoreIssued {
                                    dst: s.dst.index() as u8,
                                    bytes: s.len(),
                                }
                            }
                            Ev::Atomic { gpu, idx } => {
                                let s = &runs[gpu].atomics[idx].store;
                                EventKind::AtomicIssued {
                                    dst: s.dst.index() as u8,
                                    bytes: s.len(),
                                }
                            }
                            Ev::Probe { gpu, idx } => EventKind::LoadProbe {
                                dst: runs[gpu].probes[idx].dst.index() as u8,
                            },
                            Ev::Fence { .. } => EventKind::FenceRelease,
                            Ev::KernelEnd { .. } => EventKind::KernelEnd,
                            Ev::Retry { .. } => unreachable!("handled above"),
                        };
                        self.trace.record(TraceEvent {
                            time: eff,
                            gpu: gpu as u8,
                            kind,
                        });
                    }
                    let mut packets = match ev.payload {
                        Ev::Store { gpu, idx } => {
                            // Borrow straight from the run's egress
                            // stream: zero payload allocation per event.
                            let store = &runs[gpu].egress[idx].store;
                            let path = self.paths[gpu].as_mut().expect("store paradigm");
                            path.push(store, eff).expect("valid L1-coalesced store")
                        }
                        Ev::Atomic { gpu, idx } => {
                            let store = &runs[gpu].atomics[idx].store;
                            let path = self.paths[gpu].as_mut().expect("store paradigm");
                            path.push_atomic(store, eff).expect("valid atomic")
                        }
                        Ev::Probe { gpu, idx } => {
                            let p = runs[gpu].probes[idx];
                            let path = self.paths[gpu].as_mut().expect("store paradigm");
                            path.load_probe(p.dst, p.addr, p.len, eff)
                        }
                        Ev::Fence { gpu } | Ev::KernelEnd { gpu } => {
                            let path = self.paths[gpu].as_mut().expect("store paradigm");
                            path.release()
                        }
                        Ev::Retry { .. } => unreachable!("handled above"),
                    };
                    if matches!(ev.payload, Ev::KernelEnd { .. }) {
                        // The kernel is not done until its last
                        // operation has issued: stalls push it out.
                        kernel_end = kernel_end.max(eff);
                    }
                    // Inactivity-timeout flushes piggyback on event
                    // processing for the same GPU.
                    let path = self.paths[gpu].as_mut().expect("store paradigm");
                    packets.extend(path.advance(eff));
                    if !packets.is_empty() {
                        // A flush advanced: the path packetized buffered
                        // stores. Progress for the watchdog even if the
                        // packets then wait on credits.
                        self.events_since_progress = 0;
                    }
                    if let Some(before) = flushes_before {
                        self.record_flush_delta(gpu, eff, before);
                    }
                    if credited {
                        if !packets.is_empty() {
                            self.paths[gpu]
                                .as_mut()
                                .expect("store paradigm")
                                .output()
                                .extend(packets);
                        }
                        let out = self.pump(gpu, eff)?;
                        if out.last_drained > SimTime::ZERO {
                            self.events_since_progress = 0;
                        }
                        last_delivery = last_delivery.max(out.last_drained);
                        if let Some(until) = out.blocked_until {
                            if retry_at[gpu].is_none_or(|r| until < r) {
                                retry_at[gpu] = Some(until);
                                queue.schedule(until, Ev::Retry { gpu });
                            }
                        }
                    } else if !packets.is_empty() {
                        let done = self.deliver(eff, GpuId::new(gpu as u8), packets)?;
                        last_delivery = last_delivery.max(done);
                    }
                }
                debug_assert!(
                    self.paths
                        .iter()
                        .flatten()
                        .all(|p| p.output_ref().is_empty()),
                    "event queue drained with packets stranded in an output buffer"
                );
            }
        }

        let iter_time = kernel_end.max(last_delivery) + self.cfg.barrier_overhead;
        self.total_time += iter_time;
        self.compute_time += kernel_end;
        self.drain_tail += last_delivery.saturating_sub(kernel_end);
        self.barrier_time += self.cfg.barrier_overhead;
        self.iterations += 1;
        self.unique.barrier();
        self.fabric.reset_time();
        Ok(())
    }

    /// Finalizes the run into a [`RunReport`]. `read_fraction` is the
    /// workload's fraction of uniquely-written bytes the destination
    /// reads (drives the useful/wasted split of Fig 10).
    pub fn finish(self, workload: &str, read_fraction: f64) -> RunReport {
        let mut egress = EgressMetrics::default();
        for p in self.paths.iter().flatten() {
            egress.merge(p.metrics());
        }
        let unique = self.unique.unique_bytes();
        let useful_target = (unique as f64 * read_fraction) as u64;
        // Retransmitted TLP bytes rode the wire but carried no new
        // data: they are protocol overhead, never goodput.
        let replayed_bytes = self.fabric.replayed_bytes_total();
        let mut traffic = match self.paradigm {
            Paradigm::InfiniteBw => TrafficBreakdown::default(),
            Paradigm::BulkDma => {
                let useful = useful_target.min(self.dma_data_bytes);
                TrafficBreakdown {
                    useful,
                    protocol: self.dma_wire_bytes - self.dma_data_bytes,
                    wasted: self.dma_data_bytes - useful,
                }
            }
            _ => {
                let useful = useful_target.min(egress.data_bytes);
                TrafficBreakdown {
                    useful,
                    protocol: egress.protocol_bytes(),
                    wasted: egress.data_bytes - useful,
                }
            }
        };
        if self.paradigm != Paradigm::InfiniteBw {
            traffic.protocol += replayed_bytes;
        }
        let fc = self.fabric.fc_stats_total();
        RunReport {
            workload: workload.to_string(),
            paradigm: self.paradigm,
            num_gpus: self.cfg.num_gpus,
            total_time: self.total_time,
            compute_time: self.compute_time,
            drain_tail: self.drain_tail,
            barrier_time: self.barrier_time,
            stall_time: egress.stall_time,
            fc_update_dllps: fc.update_dllps,
            fc_blocked_attempts: fc.blocked_attempts,
            traffic,
            egress,
            unique_bytes: unique,
            replayed_bytes,
            link_retrains: self.fabric.retrains_total(),
            replay_amplification: self.replay_amp,
            sim_events: self.sim_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::{AddressMap, Gpu};
    use workloads::{Jacobi, Pagerank, RunSpec, Workload};

    fn runs_for(app: &dyn Workload, cfg: &SystemConfig, spec: &RunSpec) -> Vec<KernelRun> {
        let map = AddressMap::new(cfg.num_gpus, 16 << 30);
        (0..cfg.num_gpus)
            .map(|g| {
                let gpu = Gpu::new(cfg.gpu, GpuId::new(g), map);
                gpu.execute_kernel(&app.trace(spec, 0, GpuId::new(g)))
            })
            .collect()
    }

    #[test]
    fn infinite_bw_is_fastest() {
        let cfg = SystemConfig::paper(2);
        let spec = RunSpec::tiny();
        let app = Pagerank::default();
        let runs = runs_for(&app, &cfg, &spec);
        let times: Vec<SimTime> = [
            Paradigm::InfiniteBw,
            Paradigm::FinePack,
            Paradigm::P2pStores,
        ]
        .into_iter()
        .map(|p| {
            let mut r = Runner::new(cfg, p, 0.0, false);
            r.run_iteration(&runs, &[]);
            r.finish("pagerank", 0.8).total_time
        })
        .collect();
        assert!(times[0] <= times[1], "inf {} vs fp {}", times[0], times[1]);
        assert!(times[1] < times[2], "fp {} vs p2p {}", times[1], times[2]);
    }

    #[test]
    fn dma_paradigm_accounts_wire_bytes() {
        let cfg = SystemConfig::paper(2);
        let spec = RunSpec::tiny();
        let app = Jacobi::default();
        let runs = runs_for(&app, &cfg, &spec);
        let mut r = Runner::new(cfg, Paradigm::BulkDma, 0.0, false);
        let plan = vec![
            (GpuId::new(0), GpuId::new(1), 64 << 10),
            (GpuId::new(1), GpuId::new(0), 64 << 10),
        ];
        r.run_iteration(&runs, &plan);
        let report = r.finish("jacobi", 1.0);
        assert!(report.traffic.total() > 128 << 10);
        // Bulk TLPs: protocol share is tiny.
        let prot_frac = report.traffic.protocol as f64 / report.traffic.total() as f64;
        assert!(prot_frac < 0.02, "prot_frac={prot_frac}");
    }

    #[test]
    fn transparency_all_store_paradigms_same_memory_image() {
        let cfg = SystemConfig::paper(2);
        let spec = RunSpec::tiny();
        let app = Pagerank::default();
        let runs = runs_for(&app, &cfg, &spec);
        let image_for = |p: Paradigm| {
            let mut r = Runner::new(cfg, p, 0.0, true);
            r.run_iteration(&runs, &[]);
            r.images().unwrap().to_vec()
        };
        let p2p = image_for(Paradigm::P2pStores);
        let fp = image_for(Paradigm::FinePack);
        let wc = image_for(Paradigm::WriteCombining);
        for g in 0..2 {
            assert!(
                p2p[g].same_contents(&fp[g]),
                "finepack image differs on GPU{g}"
            );
            assert!(
                p2p[g].same_contents(&wc[g]),
                "write-combining image differs on GPU{g}"
            );
        }
    }

    #[test]
    fn finepack_uses_less_wire_than_p2p_and_more_stores_per_packet() {
        let cfg = SystemConfig::paper(2);
        let spec = RunSpec::tiny();
        let app = Pagerank::default();
        let runs = runs_for(&app, &cfg, &spec);
        let report_for = |p: Paradigm| {
            let mut r = Runner::new(cfg, p, 0.0, false);
            r.run_iteration(&runs, &[]);
            r.finish("pagerank", 0.8)
        };
        let fp = report_for(Paradigm::FinePack);
        let p2p = report_for(Paradigm::P2pStores);
        assert!(fp.traffic.total() * 2 < p2p.traffic.total());
        assert!(fp.mean_stores_per_packet().unwrap() > 8.0);
        assert_eq!(p2p.mean_stores_per_packet(), Some(1.0));
        // Same unique bytes either way (paradigm-independent).
        assert_eq!(fp.unique_bytes, p2p.unique_bytes);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn wrong_run_count_panics() {
        let cfg = SystemConfig::paper(4);
        let mut r = Runner::new(cfg, Paradigm::InfiniteBw, 0.0, false);
        r.run_iteration(&[], &[]);
    }
}
