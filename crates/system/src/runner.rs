//! The event-driven iteration runner: replays per-GPU kernel egress
//! streams through a paradigm's egress paths and the switched fabric,
//! producing execution times and wire-traffic accounting.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use finepack::{
    EgressMetrics, EgressPath, FlushReason, OutputBuffer, PayloadMode, ReplayAmplification,
    WirePacket,
};
use gpu_model::{GpuId, KernelRun, MemoryImage};
use sim_engine::{Bandwidth, EventQueue, ShardHand, ShardPlan, ShardScheduler, SimTime};
use telemetry::{CaptureCollector, EventKind, Sample, TraceEvent, TraceHandle};

use crate::budget::{BudgetKind, BudgetTrip, RunnerDiag};
use crate::config::SystemConfig;
use crate::fault::RunError;
use crate::paradigm::Paradigm;
use crate::report::{RunReport, TrafficBreakdown, UniqueTracker};
use crate::topology::{RoutedFabric, SendOutcome};

/// One DMA transfer leg: (source, destination, payload bytes).
pub type DmaPlan = Vec<(GpuId, GpuId, u64)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Store {
        gpu: usize,
        idx: usize,
    },
    Atomic {
        gpu: usize,
        idx: usize,
    },
    Probe {
        gpu: usize,
        idx: usize,
    },
    Fence {
        gpu: usize,
    },
    KernelEnd {
        gpu: usize,
    },
    /// Credited mode only: the GPU's output buffer was blocked on link
    /// credits; retry draining when the earliest `UpdateFC` lands.
    Retry {
        gpu: usize,
    },
}

/// What one output-buffer drain pass achieved.
struct PumpOutcome {
    /// Latest local-memory drain time among delivered packets
    /// (`SimTime::ZERO` when nothing was delivered).
    last_drained: SimTime,
    /// Set when the head packet found a link out of credits: the
    /// earliest time it can be admitted.
    blocked_until: Option<SimTime>,
}

/// What one elaborated path event hands from a shard worker to the
/// commit thread: the wire packets the operation emitted, the path-side
/// trace events it recorded (iteration-local times), and the remote
/// write queue depth after the operation (sample reconstruction).
struct ElabRecord {
    gpu: usize,
    packets: Vec<WirePacket>,
    captured: Vec<TraceEvent>,
    queue_depth: usize,
}

/// Per-GPU probe of path state at iteration start, from which the
/// commit thread reconstructs time-series samples without touching the
/// (cloned-away) paths.
struct GpuProbe {
    queue_depth: usize,
    stall_ps: u64,
}

/// Builds the iteration's pre-scheduled event queue. The schedule order
/// — per GPU: egress stores, atomics, probes, fences, kernel end — is
/// load-bearing: it fixes the tie-break sequence numbers, so serial and
/// sharded commit replays pop identical global orders.
fn fill_queue(queue: &mut EventQueue<Ev>, runs: &[KernelRun]) {
    // Pre-size for the whole trace (plus a Retry slot per GPU) so
    // schedule/pop never reallocate in the hot loop.
    let trace_events: usize = runs
        .iter()
        .map(|r| r.egress.len() + r.atomics.len() + r.probes.len() + r.fences.len() + 1)
        .sum();
    queue.reset();
    let span = runs
        .iter()
        .map(|r| r.kernel_time)
        .max()
        .unwrap_or(SimTime::ZERO);
    queue.reserve_for_span(trace_events + runs.len(), span);
    for (g, run) in runs.iter().enumerate() {
        schedule_gpu_events(queue, g, run);
    }
}

/// Schedules one GPU's pre-known events. Shard workers build per-GPU
/// queues through the same function, so a GPU's events pop in the same
/// relative order locally as they do in the global queue.
fn schedule_gpu_events(queue: &mut EventQueue<Ev>, g: usize, run: &KernelRun) {
    for (idx, t) in run.egress.iter().enumerate() {
        queue.schedule(t.time, Ev::Store { gpu: g, idx });
    }
    for (idx, t) in run.atomics.iter().enumerate() {
        queue.schedule(t.time, Ev::Atomic { gpu: g, idx });
    }
    for (idx, p) in run.probes.iter().enumerate() {
        queue.schedule(p.time, Ev::Probe { gpu: g, idx });
    }
    for f in &run.fences {
        queue.schedule(*f, Ev::Fence { gpu: g });
    }
    queue.schedule(run.kernel_time, Ev::KernelEnd { gpu: g });
}

/// The lifecycle trace event an operation records as it issues.
fn issue_kind(payload: Ev, runs: &[KernelRun]) -> EventKind {
    match payload {
        Ev::Store { gpu, idx } => {
            let s = &runs[gpu].egress[idx].store;
            EventKind::StoreIssued {
                dst: s.dst.index() as u8,
                bytes: s.len(),
            }
        }
        Ev::Atomic { gpu, idx } => {
            let s = &runs[gpu].atomics[idx].store;
            EventKind::AtomicIssued {
                dst: s.dst.index() as u8,
                bytes: s.len(),
            }
        }
        Ev::Probe { gpu, idx } => EventKind::LoadProbe {
            dst: runs[gpu].probes[idx].dst.index() as u8,
        },
        Ev::Fence { .. } => EventKind::FenceRelease,
        Ev::KernelEnd { .. } => EventKind::KernelEnd,
        Ev::Retry { .. } => unreachable!("retries have no issue event"),
    }
}

/// Emits one `Flush` event per increment between two snapshots of a
/// path's per-reason flush counters. Counting from the aggregates keeps
/// trace flush counts equal to `flushes_by_reason` by construction.
fn record_flush_events(
    trace: &TraceHandle,
    gpu: usize,
    at: SimTime,
    before: [u64; FlushReason::ALL.len()],
    after: [u64; FlushReason::ALL.len()],
) {
    for (i, reason) in FlushReason::ALL.iter().enumerate() {
        for _ in before[i]..after[i] {
            trace.record(TraceEvent {
                time: at,
                gpu: gpu as u8,
                kind: EventKind::Flush {
                    reason: reason.label(),
                },
            });
        }
    }
}

/// Elaborates one pre-scheduled event against its (cloned) path at
/// `eff = now`: valid precisely on stall-free timelines, which is the
/// only kind the sharded commit accepts (any would-be stall aborts the
/// parallel attempt).
fn elaborate_event(
    now: SimTime,
    payload: Ev,
    runs: &[KernelRun],
    path: &mut Box<dyn EgressPath>,
    capture: Option<&(TraceHandle, Arc<Mutex<CaptureCollector>>)>,
) -> ElabRecord {
    let gpu = match payload {
        Ev::Store { gpu, .. }
        | Ev::Atomic { gpu, .. }
        | Ev::Probe { gpu, .. }
        | Ev::Fence { gpu }
        | Ev::KernelEnd { gpu } => gpu,
        Ev::Retry { .. } => unreachable!("retries are commit-side only"),
    };
    let eff = now;
    let flushes_before = capture.map(|_| path.metrics().flushes_by_reason);
    if let Some((trace, _)) = capture {
        trace.record(TraceEvent {
            time: eff,
            gpu: gpu as u8,
            kind: issue_kind(payload, runs),
        });
    }
    let mut packets = match payload {
        Ev::Store { gpu, idx } => path
            .push(&runs[gpu].egress[idx].store, eff)
            .expect("valid L1-coalesced store"),
        Ev::Atomic { gpu, idx } => path
            .push_atomic(&runs[gpu].atomics[idx].store, eff)
            .expect("valid atomic"),
        Ev::Probe { gpu, idx } => {
            let p = runs[gpu].probes[idx];
            path.load_probe(p.dst, p.addr, p.len, eff)
        }
        Ev::Fence { .. } | Ev::KernelEnd { .. } => path.release(),
        Ev::Retry { .. } => unreachable!("retries are commit-side only"),
    };
    packets.extend(path.advance(eff));
    if let Some((trace, _)) = capture {
        let before = flushes_before.expect("snapshotted above");
        record_flush_events(trace, gpu, eff, before, path.metrics().flushes_by_reason);
    }
    let captured = capture
        .map(|(_, c)| c.lock().expect("capture collector lock").take_events())
        .unwrap_or_default();
    ElabRecord {
        gpu,
        packets,
        captured,
        queue_depth: path.queue_depth(),
    }
}

/// One shard worker: replays its GPUs' pre-scheduled events against
/// cloned paths, window by window under the conservative lookahead, and
/// streams [`ElabRecord`]s to the commit thread. Returns the elaborated
/// paths so a committed run can adopt them without re-execution.
fn elaborate_shard(
    gpus: std::ops::Range<usize>,
    mut paths: Vec<Box<dyn EgressPath>>,
    captures: Vec<Option<(TraceHandle, Arc<Mutex<CaptureCollector>>)>>,
    runs: &[KernelRun],
    scheduler: ShardScheduler,
    mut hand: ShardHand<ElabRecord>,
) -> Vec<Box<dyn EgressPath>> {
    let mut queues: Vec<EventQueue<Ev>> = gpus
        .map(|g| {
            let run = &runs[g];
            let n = run.egress.len() + run.atomics.len() + run.probes.len() + run.fences.len() + 1;
            let mut q = EventQueue::with_capacity(n);
            q.reserve_for_span(n, run.kernel_time);
            schedule_gpu_events(&mut q, g, run);
            q
        })
        .collect();
    let mut remaining: usize = queues.iter().map(EventQueue::len).sum();
    let mut window_end = scheduler.quantum();
    while remaining > 0 {
        let tmin = queues
            .iter()
            .filter_map(EventQueue::peek_time)
            .min()
            .expect("events remain");
        if tmin >= window_end {
            // Jump over empty windows instead of spinning through them.
            window_end = scheduler.window_end_after(tmin);
        }
        for (i, q) in queues.iter_mut().enumerate() {
            while q.peek_time().is_some_and(|t| t < window_end) {
                let ev = q.pop().expect("peeked above");
                let rec = elaborate_event(
                    ev.time,
                    ev.payload,
                    runs,
                    &mut paths[i],
                    captures[i].as_ref(),
                );
                remaining -= 1;
                hand.send(rec);
            }
        }
    }
    hand.flush();
    paths
}

/// Simulates a (workload, paradigm) combination iteration by iteration.
///
/// # Examples
///
/// ```
/// use system::{Paradigm, Runner, SystemConfig};
/// use workloads::{Jacobi, RunSpec, Workload};
/// use gpu_model::{AddressMap, Gpu, GpuId};
///
/// let cfg = SystemConfig::paper(2);
/// let spec = RunSpec::tiny();
/// let mut runner = Runner::new(cfg, Paradigm::FinePack, 0.0, false);
/// let map = AddressMap::new(2, 16 << 30);
/// let app = Jacobi::default();
/// let runs: Vec<_> = (0..2)
///     .map(|g| {
///         let gpu = Gpu::new(cfg.gpu, GpuId::new(g), map);
///         gpu.execute_kernel(&app.trace(&spec, 0, GpuId::new(g)))
///     })
///     .collect();
/// runner.run_iteration(&runs, &[]);
/// let report = runner.finish("jacobi", 1.0);
/// assert!(report.total_time.as_ps() > 0);
/// ```
#[derive(Debug)]
pub struct Runner {
    cfg: SystemConfig,
    paradigm: Paradigm,
    paths: Vec<Option<Box<dyn EgressPath>>>,
    fabric: RoutedFabric,
    unique: UniqueTracker,
    images: Option<Vec<MemoryImage>>,
    hbm: Bandwidth,
    dma_wire_bytes: u64,
    dma_data_bytes: u64,
    total_time: SimTime,
    compute_time: SimTime,
    drain_tail: SimTime,
    barrier_time: SimTime,
    iterations: u32,
    replay_amp: ReplayAmplification,
    sim_events: u64,
    /// Events processed since the last commit/flush advance — the
    /// progress-watchdog clock (see [`crate::RunBudget`]).
    events_since_progress: u64,
    trace: TraceHandle,
    sample_every: Option<SimTime>,
    /// The iteration event queue, recycled run to run so wheel buckets
    /// and the learned bucket width survive between iterations (see
    /// [`EventQueue::reset`]).
    queue_scratch: EventQueue<Ev>,
}

impl Runner {
    /// Creates a runner. `gps_unsubscribed` parameterizes the GPS
    /// paradigm; `track_memory` enables functional memory images for
    /// transparency verification (slower).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(
        cfg: SystemConfig,
        paradigm: Paradigm,
        gps_unsubscribed: f64,
        track_memory: bool,
    ) -> Self {
        cfg.validate();
        let paths = (0..cfg.num_gpus)
            .map(|g| paradigm.make_egress(&cfg, GpuId::new(g), gps_unsubscribed))
            .collect();
        let mut fabric = RoutedFabric::new(
            cfg.topology,
            cfg.num_gpus,
            cfg.pcie_gen.bandwidth(),
            cfg.hop_latency,
        );
        if let Some(profile) = cfg.fault {
            fabric = fabric.with_faults(profile, cfg.seed);
        }
        let mut paths: Vec<Option<Box<dyn EgressPath>>> = paths;
        let mode = if track_memory {
            PayloadMode::Full
        } else {
            // Without memory images nothing reads the payloads: carry
            // (addr, len) extents only and skip the data clones.
            PayloadMode::Extents
        };
        for path in paths.iter_mut().flatten() {
            path.set_payload_mode(mode);
        }
        if let Some(credits) = cfg.flow_control.credits() {
            fabric = fabric.with_flow_control(credits);
            for path in paths.iter_mut().flatten() {
                path.output().set_capacity(credits.buffer_packets);
            }
        }
        Runner {
            cfg,
            paradigm,
            paths,
            fabric,
            unique: UniqueTracker::new(),
            images: track_memory.then(|| (0..cfg.num_gpus).map(|_| MemoryImage::new()).collect()),
            hbm: cfg.gpu.hbm_bandwidth,
            dma_wire_bytes: 0,
            dma_data_bytes: 0,
            total_time: SimTime::ZERO,
            compute_time: SimTime::ZERO,
            drain_tail: SimTime::ZERO,
            barrier_time: SimTime::ZERO,
            iterations: 0,
            replay_amp: ReplayAmplification::new(),
            sim_events: 0,
            events_since_progress: 0,
            trace: TraceHandle::off(),
            sample_every: None,
            queue_scratch: EventQueue::new(),
        }
    }

    /// Takes the recycled iteration queue, refilled with `runs`'
    /// pre-scheduled events. Hand it back with [`Runner::recycle_queue`]
    /// once the iteration drains so its allocations carry forward.
    fn take_queue(&mut self, runs: &[KernelRun]) -> EventQueue<Ev> {
        let mut queue = std::mem::take(&mut self.queue_scratch);
        fill_queue(&mut queue, runs);
        queue
    }

    /// Returns a drained iteration queue to the recycle slot. Skipped on
    /// error paths (the scratch is then rebuilt from empty — errored
    /// runs are abandoned anyway).
    fn recycle_queue(&mut self, queue: EventQueue<Ev>) {
        self.queue_scratch = queue;
    }

    /// Checks every configured [`crate::RunBudget`] ceiling at
    /// iteration-local time `now` with `pending` events still queued,
    /// returning a structured trip with a diagnostic snapshot when one
    /// is exceeded. `stall` carries the iteration's per-GPU SM stall
    /// clocks (empty outside the store-paradigm loop).
    fn check_budget(
        &self,
        now: SimTime,
        pending: usize,
        stall: &[SimTime],
    ) -> Result<(), RunError> {
        let Some(budget) = self.cfg.run_budget else {
            return Ok(());
        };
        let kind = if let Some(limit) = budget.max_events.filter(|l| self.sim_events > *l) {
            BudgetKind::Events { limit }
        } else if let Some(limit) = budget.max_sim_time.filter(|l| self.total_time + now > *l) {
            BudgetKind::SimTime { limit }
        } else if let Some(limit) = budget
            .max_events_since_progress
            .filter(|l| self.events_since_progress > *l)
        {
            BudgetKind::Watchdog { limit }
        } else {
            return Ok(());
        };
        Err(RunError::BudgetExceeded(Box::new(BudgetTrip {
            kind,
            diag: RunnerDiag {
                now: self.total_time + now,
                sim_events: self.sim_events,
                pending_events: pending as u64,
                events_since_progress: self.events_since_progress,
                stall: stall.to_vec(),
                fc_in_flight: self.fabric.fc_in_flight_total(),
            },
        })))
    }

    /// Attaches a trace handle; subsequent iterations record lifecycle
    /// events through it. With `sample_every` set (and non-zero),
    /// per-GPU occupancy/credit/stall samples are additionally taken at
    /// that simulated-time interval. Tracing observes only: attaching
    /// any collector leaves the run's report byte-identical.
    pub fn attach_trace(&mut self, trace: TraceHandle, sample_every: Option<SimTime>) {
        self.trace = trace;
        self.sample_every = sample_every.filter(|t| t.as_ps() > 0);
    }

    /// Records one occupancy/credit/stall sample per store-paradigm GPU
    /// at iteration-local time `at`.
    fn take_samples(&self, at: SimTime) {
        for (g, path) in self.paths.iter().enumerate() {
            let Some(path) = path else { continue };
            let gid = GpuId::new(g as u8);
            let (hdrs, data) = self.fabric.egress_fc_in_flight(gid);
            self.trace.sample(Sample {
                time: at,
                gpu: g as u8,
                rwq_entries: path.queue_depth() as u64,
                egress_queue: path.occupancy() as u64,
                egress_wire_bytes: self.fabric.egress_bytes(gid),
                credit_hdrs_in_flight: hdrs,
                credit_data_in_flight: data,
                stall_ps: path.metrics().stall_time.as_ps(),
            });
        }
    }

    /// Emits one `Flush` event per flush the just-run path operation
    /// added, by diffing the per-reason counters around it. Counting
    /// from the aggregates keeps trace flush counts equal to
    /// `flushes_by_reason` by construction.
    fn record_flush_delta(&self, gpu: usize, at: SimTime, before: [u64; FlushReason::ALL.len()]) {
        let after = self.paths[gpu]
            .as_ref()
            .expect("store paradigm")
            .metrics()
            .flushes_by_reason;
        record_flush_events(&self.trace, gpu, at, before, after);
    }

    /// The destination memory images, when `track_memory` was requested.
    pub fn images(&self) -> Option<&[MemoryImage]> {
        self.images.as_deref()
    }

    /// The fabric's cumulative credit ledger (consumed/returned units
    /// summed over every link direction), or `None` under open-loop
    /// flow control. Observational — read it before [`Runner::finish`].
    pub fn fc_totals(&self) -> Option<protocol::CreditTotals> {
        self.fabric.fc_totals_total()
    }

    /// `(header, data)` credit units currently in flight across the
    /// fabric; `(0, 0)` under open-loop flow control.
    pub fn fc_in_flight(&self) -> (u64, u64) {
        self.fabric.fc_in_flight_total()
    }

    fn deliver(
        &mut self,
        at: SimTime,
        src: GpuId,
        packets: Vec<WirePacket>,
    ) -> Result<SimTime, RunError> {
        let mut last = SimTime::ZERO;
        let stall_limit = self.cfg.fault.map(|f| f.max_stall);
        for p in packets {
            let replayed_before = self.fabric.replayed_bytes_total();
            let landed = self
                .fabric
                .try_send(at, src, p.dst, p.wire_bytes)
                .map_err(RunError::LinkDown)?;
            // A replayed aggregated TLP retransmits whole: attribute
            // the amplification to the flush that produced the packet.
            let replayed = self.fabric.replayed_bytes_total() - replayed_before;
            self.replay_amp.record(p.reason, p.wire_bytes, replayed);
            // No-forward-progress watchdog: a delivery that stalls past
            // the bound (crawling degraded link, replay storm) is a
            // diagnostic failure, not a silently absurd timeline.
            if let Some(limit) = stall_limit {
                if landed.saturating_sub(at) > limit {
                    return Err(RunError::Stalled {
                        gpu: src.index() as u8,
                        at,
                        landed,
                        limit,
                    });
                }
            }
            // The de-packetizer / L2 drains disaggregated stores at local
            // memory bandwidth (§IV-B); this is never the bottleneck but
            // is modeled for completeness.
            let drained = landed + self.hbm.transfer_time(p.data_bytes);
            last = last.max(drained);
            if self.trace.is_on() {
                self.record_transfer(at, src, &p, replayed, landed, drained);
            }
            if let Some(images) = &mut self.images {
                let stores = p.stores.full().expect("track_memory runs carry payloads");
                for s in stores {
                    images[p.dst.index()].write(s.addr, &s.data);
                }
            }
        }
        Ok(last)
    }

    /// Records the wire/replay/commit events for one delivered packet.
    fn record_transfer(
        &self,
        at: SimTime,
        src: GpuId,
        p: &WirePacket,
        replayed: u64,
        landed: SimTime,
        drained: SimTime,
    ) {
        self.trace.record(TraceEvent {
            time: at,
            gpu: src.index() as u8,
            kind: EventKind::WireTransmit {
                dst: p.dst.index() as u8,
                wire_bytes: p.wire_bytes,
                payload_bytes: u64::from(p.payload_bytes),
                stores: p.stores.len() as u32,
                reason: p.reason.map(|r| r.label()),
                done: landed,
            },
        });
        if replayed > 0 {
            self.trace.record(TraceEvent {
                time: at,
                gpu: src.index() as u8,
                kind: EventKind::DllReplay { bytes: replayed },
            });
        }
        self.trace.record(TraceEvent {
            time: landed,
            gpu: p.dst.index() as u8,
            kind: EventKind::Commit {
                data_bytes: p.data_bytes,
                done: drained,
            },
        });
    }

    /// Drains `gpu`'s output buffer head-first through the credited
    /// fabric, stopping at the first packet blocked on link credits.
    fn pump(&mut self, gpu: usize, at: SimTime) -> Result<PumpOutcome, RunError> {
        if self.paths[gpu]
            .as_ref()
            .expect("store paradigm")
            .output_ref()
            .is_empty()
        {
            // Nothing buffered: an empty drain touches no state, so
            // skip the detach/reattach — most events merge into the
            // RWQ and emit no packets at all.
            return Ok(PumpOutcome {
                last_drained: SimTime::ZERO,
                blocked_until: None,
            });
        }
        // Detach the buffer so the drain can borrow the fabric mutably;
        // the sharded commit drains shadow buffers through the same
        // body, which is what keeps the two modes call-identical.
        let mut out = std::mem::take(self.paths[gpu].as_mut().expect("store paradigm").output());
        let result = self.pump_buffer(gpu, at, &mut out);
        *self.paths[gpu].as_mut().expect("store paradigm").output() = out;
        result
    }

    /// [`Runner::pump`] against an explicit buffer: the head packet is
    /// admitted against link credits, popped on delivery, and left in
    /// place when blocked.
    fn pump_buffer(
        &mut self,
        gpu: usize,
        at: SimTime,
        out: &mut OutputBuffer,
    ) -> Result<PumpOutcome, RunError> {
        let src = GpuId::new(gpu as u8);
        let stall_limit = self.cfg.fault.map(|f| f.max_stall);
        // The data-link layer only exists under fault injection; without
        // it, replayed bytes are identically zero — skip the per-packet
        // all-links sweep.
        let track_replay = self.cfg.fault.is_some();
        let mut last = SimTime::ZERO;
        let mut blocked_until = None;
        while let Some(head) = out.front() {
            let (dst, wire_bytes, payload_bytes) = (head.dst, head.wire_bytes, head.payload_bytes);
            let replayed_before = if track_replay {
                self.fabric.replayed_bytes_total()
            } else {
                0
            };
            let outcome = self
                .fabric
                .try_send_credited(at, src, dst, wire_bytes, payload_bytes)
                .map_err(RunError::LinkDown)?;
            let landed = match outcome {
                SendOutcome::Delivered(landed) => landed,
                SendOutcome::Blocked { until } => {
                    debug_assert!(until > at, "blocked admission must make progress");
                    self.trace.record(TraceEvent {
                        time: at,
                        gpu: gpu as u8,
                        kind: EventKind::CreditBlocked { until },
                    });
                    blocked_until = Some(until);
                    break;
                }
            };
            let p = out.pop_front().expect("head just observed");
            let replayed = if track_replay {
                self.fabric.replayed_bytes_total() - replayed_before
            } else {
                0
            };
            self.replay_amp.record(p.reason, p.wire_bytes, replayed);
            if let Some(limit) = stall_limit {
                if landed.saturating_sub(at) > limit {
                    return Err(RunError::Stalled {
                        gpu: src.index() as u8,
                        at,
                        landed,
                        limit,
                    });
                }
            }
            let drained = landed + self.hbm.transfer_time(p.data_bytes);
            last = last.max(drained);
            if self.trace.is_on() {
                self.record_transfer(at, src, &p, replayed, landed, drained);
            }
            if let Some(images) = &mut self.images {
                let stores = p.stores.full().expect("track_memory runs carry payloads");
                for s in stores {
                    images[p.dst.index()].write(s.addr, &s.data);
                }
            }
        }
        Ok(PumpOutcome {
            last_drained: last,
            blocked_until,
        })
    }

    /// Simulates one bulk-synchronous iteration. `runs` holds each GPU's
    /// kernel replay; `dma_plan` the DMA legs (used only by
    /// [`Paradigm::BulkDma`]).
    ///
    /// # Panics
    ///
    /// Panics if `runs.len()` differs from the configured GPU count, or
    /// if injected faults kill the run — fault experiments should use
    /// [`Runner::try_run_iteration`] and inspect the diagnostic.
    pub fn run_iteration(&mut self, runs: &[KernelRun], dma_plan: &[(GpuId, GpuId, u64)]) {
        if let Err(e) = self.try_run_iteration(runs, dma_plan) {
            panic!("{e}");
        }
    }

    /// [`Runner::run_iteration`], surfacing link death and watchdog
    /// trips as errors instead of hanging or panicking.
    ///
    /// # Errors
    ///
    /// [`RunError::LinkDown`] when a link exhausts its retrain budget;
    /// [`RunError::Stalled`] when a delivery exceeds the fault
    /// profile's stall bound; [`RunError::BudgetExceeded`] when a
    /// configured [`crate::RunBudget`] ceiling trips (the runner should
    /// be discarded after any error — partial iteration state is not
    /// rolled back).
    ///
    /// # Panics
    ///
    /// Panics if `runs.len()` differs from the configured GPU count.
    pub fn try_run_iteration(
        &mut self,
        runs: &[KernelRun],
        dma_plan: &[(GpuId, GpuId, u64)],
    ) -> Result<(), RunError> {
        self.try_run_iteration_inner(runs, dma_plan, None)
    }

    /// [`Runner::try_run_iteration`] with the iteration's unique-byte
    /// count already aggregated (see
    /// [`UniqueTracker::add_precomputed`]): skips the per-store line-map
    /// replay, which is paradigm-independent and therefore identical
    /// across every run of the same prepared workload.
    ///
    /// # Errors
    ///
    /// As [`Runner::try_run_iteration`].
    ///
    /// # Panics
    ///
    /// Panics if `runs.len()` differs from the configured GPU count.
    pub fn try_run_iteration_precomputed(
        &mut self,
        runs: &[KernelRun],
        dma_plan: &[(GpuId, GpuId, u64)],
        unique_bytes: u64,
    ) -> Result<(), RunError> {
        self.try_run_iteration_inner(runs, dma_plan, Some(unique_bytes))
    }

    fn try_run_iteration_inner(
        &mut self,
        runs: &[KernelRun],
        dma_plan: &[(GpuId, GpuId, u64)],
        unique_bytes: Option<u64>,
    ) -> Result<(), RunError> {
        assert_eq!(runs.len(), usize::from(self.cfg.num_gpus));
        if self.trace.is_on() {
            // Iteration timelines restart at zero: shift this
            // iteration's events past everything already simulated, and
            // hand every path a handle carrying the same base.
            self.trace.rebase(self.total_time);
            for path in self.paths.iter_mut().flatten() {
                path.set_trace(self.trace.clone());
            }
        }
        // Unique-byte tracking is paradigm-independent: it reflects the
        // program's store stream.
        match unique_bytes {
            Some(bytes) => self.unique.add_precomputed(bytes),
            None => {
                for run in runs {
                    for t in run.egress.iter().chain(run.atomics.iter()) {
                        self.unique.add(t.store.addr, t.store.len());
                    }
                }
            }
        }

        let mut kernel_end = runs
            .iter()
            .map(|r| r.kernel_time)
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut last_delivery = SimTime::ZERO;

        match self.paradigm {
            Paradigm::InfiniteBw => {
                // Transfer time analytically elided (§V).
            }
            Paradigm::BulkDma => {
                for (src, dst, bytes) in dma_plan {
                    self.sim_events += 1;
                    // DMA legs always progress: the watchdog is a
                    // store-loop concern, but the event and sim-time
                    // ceilings still bound runaway plans.
                    let start = runs[src.index()].kernel_time + self.cfg.dma_sw_overhead;
                    self.check_budget(start, 0, &[])?;
                    let wire = self.cfg.framing.bulk_wire_bytes(*bytes);
                    let landed = self
                        .fabric
                        .try_send(start, *src, *dst, wire)
                        .map_err(RunError::LinkDown)?;
                    self.trace.record(TraceEvent {
                        time: start,
                        gpu: src.index() as u8,
                        kind: EventKind::WireTransmit {
                            dst: dst.index() as u8,
                            wire_bytes: wire,
                            payload_bytes: *bytes,
                            stores: 0,
                            reason: None,
                            done: landed,
                        },
                    });
                    last_delivery = last_delivery.max(landed);
                    self.dma_wire_bytes += wire;
                    self.dma_data_bytes += bytes;
                }
                if let Some(images) = &mut self.images {
                    // A DMA of the replica region delivers every written
                    // byte's final value.
                    for run in runs {
                        for t in run.egress.iter().chain(run.atomics.iter()) {
                            images[t.store.dst.index()].write(t.store.addr, &t.store.data);
                        }
                    }
                }
            }
            _ => {
                // Store-transport paradigms: event-driven replay,
                // sharded across worker threads when the config admits a
                // conservative lookahead (identical results either way —
                // see DESIGN.md §12), serial otherwise.
                match Self::shard_plan_for(&self.cfg, self.paradigm) {
                    Some((plan, quantum)) => self.run_stores_sharded(
                        runs,
                        &plan,
                        quantum,
                        &mut kernel_end,
                        &mut last_delivery,
                    )?,
                    None => self.run_stores_serial(runs, &mut kernel_end, &mut last_delivery)?,
                }
            }
        }

        let iter_time = kernel_end.max(last_delivery) + self.cfg.barrier_overhead;
        self.total_time += iter_time;
        self.compute_time += kernel_end;
        self.drain_tail += last_delivery.saturating_sub(kernel_end);
        self.barrier_time += self.cfg.barrier_overhead;
        self.iterations += 1;
        self.unique.barrier();
        self.fabric.reset_time();
        Ok(())
    }

    /// The intra-run shard count a `(config, paradigm)` pair will
    /// actually execute with: 1 means the serial event loop (requested
    /// serially, non-store paradigm, zero conservative lookahead, or
    /// too few link domains to split).
    pub fn planned_shards(cfg: &SystemConfig, paradigm: Paradigm) -> usize {
        Self::shard_plan_for(cfg, paradigm).map_or(1, |(plan, _)| plan.shards())
    }

    /// The shard partition and lookahead quantum for this run, or
    /// `None` when the run must execute serially.
    fn shard_plan_for(cfg: &SystemConfig, paradigm: Paradigm) -> Option<(ShardPlan, SimTime)> {
        if cfg.intra_jobs < 2 || !paradigm.uses_stores() {
            return None;
        }
        let quantum = cfg.shard_lookahead()?;
        let plan = ShardPlan::aligned(
            usize::from(cfg.num_gpus),
            cfg.topology.shard_group(),
            cfg.intra_jobs,
        );
        (plan.shards() >= 2).then_some((plan, quantum))
    }

    /// The serial store-paradigm event loop: one global queue, every
    /// path operation and fabric interaction inline. This is the
    /// reference semantics the sharded path must reproduce bit for bit
    /// — and its fallback when a stall invalidates the parallel
    /// elaboration.
    fn run_stores_serial(
        &mut self,
        runs: &[KernelRun],
        kernel_end: &mut SimTime,
        last_delivery: &mut SimTime,
    ) -> Result<(), RunError> {
        let credited = self.cfg.flow_control.credits().is_some();
        // Cumulative SM stall per GPU (credited mode). Every
        // pre-scheduled event for a GPU shifts right by its
        // accumulated stall, preserving program order; with
        // zero stalls the replay — event order, timestamps,
        // fabric call sequence — is identical to open loop.
        let mut stall = vec![SimTime::ZERO; runs.len()];
        let mut retry_at: Vec<Option<SimTime>> = vec![None; runs.len()];
        let mut queue = self.take_queue(runs);
        let sample_step = self.sample_every.filter(|_| self.trace.is_on());
        let mut next_sample = sample_step.unwrap_or(SimTime::ZERO);
        while let Some(ev) = queue.pop() {
            self.sim_events += 1;
            self.events_since_progress += 1;
            let now = ev.time;
            self.check_budget(now, queue.len(), &stall)?;
            if let Some(step) = sample_step {
                while next_sample <= now {
                    self.take_samples(next_sample);
                    next_sample += step;
                }
            }
            if let Ev::Retry { gpu } = ev.payload {
                retry_at[gpu] = None;
                let out = self.pump(gpu, now)?;
                if out.last_drained > SimTime::ZERO {
                    self.events_since_progress = 0;
                }
                *last_delivery = (*last_delivery).max(out.last_drained);
                if let Some(until) = out.blocked_until {
                    if retry_at[gpu].is_none_or(|r| until < r) {
                        retry_at[gpu] = Some(until);
                        queue.schedule(until, Ev::Retry { gpu });
                    }
                }
                continue;
            }
            let gpu = match ev.payload {
                Ev::Store { gpu, .. }
                | Ev::Atomic { gpu, .. }
                | Ev::Probe { gpu, .. }
                | Ev::Fence { gpu }
                | Ev::KernelEnd { gpu } => gpu,
                Ev::Retry { .. } => unreachable!("handled above"),
            };
            // The operation issues at its nominal time shifted
            // by everything this GPU has already stalled.
            let mut eff = now + stall[gpu];
            // Closed loop: an SM memory operation that finds
            // the egress output buffer at its admission
            // threshold stalls the stream until draining —
            // gated on link credits — frees a slot.
            let is_mem_op = matches!(
                ev.payload,
                Ev::Store { .. } | Ev::Atomic { .. } | Ev::Probe { .. }
            );
            if credited && is_mem_op {
                loop {
                    if self.paths[gpu]
                        .as_ref()
                        .expect("store paradigm")
                        .can_accept()
                    {
                        break;
                    }
                    let out = self.pump(gpu, eff)?;
                    if out.last_drained > SimTime::ZERO {
                        self.events_since_progress = 0;
                    }
                    *last_delivery = (*last_delivery).max(out.last_drained);
                    if self.paths[gpu]
                        .as_ref()
                        .expect("store paradigm")
                        .can_accept()
                    {
                        break;
                    }
                    let until = out
                        .blocked_until
                        .expect("a still-full buffer implies a blocked head");
                    // Each blocked wait advances simulated time
                    // without popping an event, so a stalled
                    // stream (e.g. credits that effectively
                    // never return) could spin here past every
                    // pop-time check: budget the wait itself.
                    self.events_since_progress += 1;
                    self.check_budget(until, queue.len(), &stall)?;
                    let waited = until.saturating_sub(eff);
                    self.trace.record(TraceEvent {
                        time: eff,
                        gpu: gpu as u8,
                        kind: EventKind::Stall { duration: waited },
                    });
                    let path = self.paths[gpu].as_mut().expect("store paradigm");
                    path.record_stall(waited);
                    stall[gpu] += waited;
                    eff = until;
                }
            }
            let flushes_before = self.trace.is_on().then(|| {
                // Snapshot the per-reason flush counters so any
                // flush this event triggers (in push, probe,
                // release, or the timeout advance below) becomes
                // exactly one Flush trace event.
                self.paths[gpu]
                    .as_ref()
                    .expect("store paradigm")
                    .metrics()
                    .flushes_by_reason
            });
            if self.trace.is_on() {
                self.trace.record(TraceEvent {
                    time: eff,
                    gpu: gpu as u8,
                    kind: issue_kind(ev.payload, runs),
                });
            }
            let mut packets = match ev.payload {
                Ev::Store { gpu, idx } => {
                    // Borrow straight from the run's egress
                    // stream: zero payload allocation per event.
                    let store = &runs[gpu].egress[idx].store;
                    let path = self.paths[gpu].as_mut().expect("store paradigm");
                    path.push(store, eff).expect("valid L1-coalesced store")
                }
                Ev::Atomic { gpu, idx } => {
                    let store = &runs[gpu].atomics[idx].store;
                    let path = self.paths[gpu].as_mut().expect("store paradigm");
                    path.push_atomic(store, eff).expect("valid atomic")
                }
                Ev::Probe { gpu, idx } => {
                    let p = runs[gpu].probes[idx];
                    let path = self.paths[gpu].as_mut().expect("store paradigm");
                    path.load_probe(p.dst, p.addr, p.len, eff)
                }
                Ev::Fence { gpu } | Ev::KernelEnd { gpu } => {
                    let path = self.paths[gpu].as_mut().expect("store paradigm");
                    path.release()
                }
                Ev::Retry { .. } => unreachable!("handled above"),
            };
            if matches!(ev.payload, Ev::KernelEnd { .. }) {
                // The kernel is not done until its last
                // operation has issued: stalls push it out.
                *kernel_end = (*kernel_end).max(eff);
            }
            // Inactivity-timeout flushes piggyback on event
            // processing for the same GPU.
            let path = self.paths[gpu].as_mut().expect("store paradigm");
            packets.extend(path.advance(eff));
            if !packets.is_empty() {
                // A flush advanced: the path packetized buffered
                // stores. Progress for the watchdog even if the
                // packets then wait on credits.
                self.events_since_progress = 0;
            }
            if let Some(before) = flushes_before {
                self.record_flush_delta(gpu, eff, before);
            }
            if credited {
                if !packets.is_empty() {
                    self.paths[gpu]
                        .as_mut()
                        .expect("store paradigm")
                        .output()
                        .extend(packets);
                }
                let out = self.pump(gpu, eff)?;
                if out.last_drained > SimTime::ZERO {
                    self.events_since_progress = 0;
                }
                *last_delivery = (*last_delivery).max(out.last_drained);
                if let Some(until) = out.blocked_until {
                    if retry_at[gpu].is_none_or(|r| until < r) {
                        retry_at[gpu] = Some(until);
                        queue.schedule(until, Ev::Retry { gpu });
                    }
                }
            } else if !packets.is_empty() {
                let done = self.deliver(eff, GpuId::new(gpu as u8), packets)?;
                *last_delivery = (*last_delivery).max(done);
            }
        }
        debug_assert!(
            self.paths
                .iter()
                .flatten()
                .all(|p| p.output_ref().is_empty()),
            "event queue drained with packets stranded in an output buffer"
        );
        self.recycle_queue(queue);
        Ok(())
    }

    /// The sharded store-paradigm loop: per-GPU path elaboration runs
    /// on worker threads (cloned paths, conservative time windows)
    /// while this thread replays the identical global event order,
    /// committing each elaborated record against the fabric, credit
    /// ledgers, memory images, and trace — so every shared-state
    /// mutation happens in exactly the serial sequence.
    ///
    /// Elaborating ahead of commit is only sound on stall-free
    /// timelines (an SM stall shifts every later event of that GPU). If
    /// commit detects a would-be stall it abandons the attempt, rolls
    /// shared state back to the iteration snapshot, and re-runs
    /// serially — conservative, and bit-identical by construction.
    fn run_stores_sharded(
        &mut self,
        runs: &[KernelRun],
        plan: &ShardPlan,
        quantum: SimTime,
        kernel_end: &mut SimTime,
        last_delivery: &mut SimTime,
    ) -> Result<(), RunError> {
        let scheduler =
            ShardScheduler::new(quantum).expect("shard_plan_for implies a nonzero lookahead");
        let trace_on = self.trace.is_on();
        let n = runs.len();

        // Iteration-start probes: sample reconstruction baselines.
        let init: Vec<GpuProbe> = (0..n)
            .map(|g| {
                let p = self.paths[g].as_ref().expect("store paradigm");
                GpuProbe {
                    queue_depth: p.queue_depth(),
                    stall_ps: p.metrics().stall_time.as_ps(),
                }
            })
            .collect();
        // Shadow output buffers mirror the originals (empty at
        // iteration start, same admission capacity): commit drains
        // these so the real paths stay pristine for a serial fallback.
        let shadow: Vec<OutputBuffer> = (0..n)
            .map(|g| {
                self.paths[g]
                    .as_ref()
                    .expect("store paradigm")
                    .output_ref()
                    .clone()
            })
            .collect();

        // Shard workers get cloned paths recording into private
        // captures; the originals (and the run's shared state) are
        // mutated only by this thread.
        type Worker<'a> =
            Box<dyn FnOnce(ShardHand<ElabRecord>) -> Vec<Box<dyn EgressPath>> + Send + 'a>;
        let mut workers: Vec<Worker<'_>> = Vec::with_capacity(plan.shards());
        for s in 0..plan.shards() {
            let range = plan.range(s);
            let mut paths = Vec::with_capacity(range.len());
            let mut captures = Vec::with_capacity(range.len());
            for g in range.clone() {
                let mut clone = self.paths[g]
                    .as_ref()
                    .expect("store paradigm")
                    .boxed_clone();
                if trace_on {
                    let cap = Arc::new(Mutex::new(CaptureCollector::new()));
                    // The clone inherited the original's live handle:
                    // repoint it at the capture (same zero base — the
                    // commit thread applies the run-global shift).
                    clone.set_trace(TraceHandle::new(cap.clone()));
                    captures.push(Some((TraceHandle::new(cap.clone()), cap)));
                } else {
                    clone.set_trace(TraceHandle::off());
                    captures.push(None);
                }
                paths.push(clone);
            }
            workers.push(Box::new(move |hand| {
                elaborate_shard(range, paths, captures, runs, scheduler, hand)
            }));
        }

        // Snapshot everything commit mutates, for the serial fallback.
        let fabric_snap = self.fabric.clone();
        let images_snap = self.images.clone();
        let replay_snap = self.replay_amp.clone();
        let sim_events_snap = self.sim_events;
        let progress_snap = self.events_since_progress;
        let kernel_end_snap = *kernel_end;
        let delivery_snap = *last_delivery;

        // Commit records into a capture of its own, swapped in for the
        // real trace handle: a committed attempt forwards the streams
        // wholesale, an abandoned one discards them without the real
        // collector ever observing the attempt.
        let commit_cap = trace_on.then(|| Arc::new(Mutex::new(CaptureCollector::new())));
        let real_trace = commit_cap.as_ref().map(|cap| {
            let mut handle = TraceHandle::new(cap.clone());
            handle.rebase(self.total_time);
            std::mem::replace(&mut self.trace, handle)
        });

        let (outcome, shard_paths) = scheduler.run(workers, |mailboxes| {
            self.commit_sharded(
                runs,
                plan,
                mailboxes,
                shadow,
                &init,
                kernel_end,
                last_delivery,
            )
        });

        if let Some(real) = real_trace {
            self.trace = real;
        }
        match outcome {
            Ok(true) => {
                self.forward_capture(commit_cap);
                // Adopt the elaborated paths: they hold exactly the
                // state serial execution would have left (RWQ contents,
                // metrics, RNG draws), so the run continues seamlessly.
                for (s, paths) in shard_paths.into_iter().enumerate() {
                    for (g, mut path) in plan.range(s).zip(paths) {
                        path.set_trace(self.trace.clone());
                        self.paths[g] = Some(path);
                    }
                }
                Ok(())
            }
            Err(e) => {
                // Hard simulation error (link death, stall bound,
                // budget trip): identical to where serial would fail.
                // Forward the trace recorded up to the trip point.
                self.forward_capture(commit_cap);
                Err(e)
            }
            Ok(false) => {
                // A would-be SM stall: the stall-free elaboration is
                // invalid. Roll back and re-run the iteration serially.
                self.fabric = fabric_snap;
                self.images = images_snap;
                self.replay_amp = replay_snap;
                self.sim_events = sim_events_snap;
                self.events_since_progress = progress_snap;
                *kernel_end = kernel_end_snap;
                *last_delivery = delivery_snap;
                self.run_stores_serial(runs, kernel_end, last_delivery)
            }
        }
    }

    /// The commit half of the sharded loop: replays the identical
    /// global event order, applying each GPU's next elaborated record
    /// to the fabric/credit/image/trace state. Returns `Ok(false)` to
    /// request serial fallback when the stall-free premise breaks.
    #[allow(clippy::too_many_arguments)]
    fn commit_sharded(
        &mut self,
        runs: &[KernelRun],
        plan: &ShardPlan,
        mailboxes: &mut [sim_engine::ShardMailbox<ElabRecord>],
        mut shadow: Vec<OutputBuffer>,
        init: &[GpuProbe],
        kernel_end: &mut SimTime,
        last_delivery: &mut SimTime,
    ) -> Result<bool, RunError> {
        let credited = self.cfg.flow_control.credits().is_some();
        let n = runs.len();
        let mut queue = self.take_queue(runs);
        // Stall clocks stay zero in any committed sharded run: the
        // vector exists because budget diagnostics carry it.
        let stall = vec![SimTime::ZERO; n];
        let mut retry_at: Vec<Option<SimTime>> = vec![None; n];
        let mut latest_depth: Vec<usize> = init.iter().map(|p| p.queue_depth).collect();
        let mut pending: Vec<VecDeque<ElabRecord>> = (0..n).map(|_| VecDeque::new()).collect();
        let sample_step = self.sample_every.filter(|_| self.trace.is_on());
        let mut next_sample = sample_step.unwrap_or(SimTime::ZERO);
        while let Some(ev) = queue.pop() {
            self.sim_events += 1;
            self.events_since_progress += 1;
            let now = ev.time;
            self.check_budget(now, queue.len(), &stall)?;
            if let Some(step) = sample_step {
                while next_sample <= now {
                    self.take_samples_sharded(next_sample, &latest_depth, init, &shadow);
                    next_sample += step;
                }
            }
            if let Ev::Retry { gpu } = ev.payload {
                retry_at[gpu] = None;
                let out = self.pump_buffer(gpu, now, &mut shadow[gpu])?;
                if out.last_drained > SimTime::ZERO {
                    self.events_since_progress = 0;
                }
                *last_delivery = (*last_delivery).max(out.last_drained);
                if let Some(until) = out.blocked_until {
                    if retry_at[gpu].is_none_or(|r| until < r) {
                        retry_at[gpu] = Some(until);
                        queue.schedule(until, Ev::Retry { gpu });
                    }
                }
                continue;
            }
            let gpu = match ev.payload {
                Ev::Store { gpu, .. }
                | Ev::Atomic { gpu, .. }
                | Ev::Probe { gpu, .. }
                | Ev::Fence { gpu }
                | Ev::KernelEnd { gpu } => gpu,
                Ev::Retry { .. } => unreachable!("handled above"),
            };
            // Pull this GPU's next elaborated record, buffering other
            // GPUs' records that arrive first on the shard's stream.
            let rec = loop {
                if let Some(r) = pending[gpu].pop_front() {
                    break r;
                }
                match mailboxes[plan.shard_of(gpu)].recv() {
                    Some(r) => {
                        let g = r.gpu;
                        pending[g].push_back(r);
                    }
                    None => {
                        // The worker wound down without producing the
                        // record the global order demands — elaboration
                        // and commit disagree. Never commit on a
                        // mismatch; the serial path is always sound.
                        debug_assert!(false, "shard stream ended before its global event");
                        return Ok(false);
                    }
                }
            };
            debug_assert_eq!(rec.gpu, gpu);
            let eff = now;
            let is_mem_op = matches!(
                ev.payload,
                Ev::Store { .. } | Ev::Atomic { .. } | Ev::Probe { .. }
            );
            if credited && is_mem_op && !shadow[gpu].has_room() {
                // Serial's stall loop pumps before it waits: mirror the
                // pump; if the buffer is still at its admission
                // threshold the SM genuinely stalls, which invalidates
                // every already-elaborated later event of this GPU.
                let out = self.pump_buffer(gpu, eff, &mut shadow[gpu])?;
                if out.last_drained > SimTime::ZERO {
                    self.events_since_progress = 0;
                }
                *last_delivery = (*last_delivery).max(out.last_drained);
                if !shadow[gpu].has_room() {
                    return Ok(false);
                }
            }
            // Replay the path-side trace slice (issue, RWQ inserts,
            // flushes) in its recorded order.
            for e in rec.captured {
                self.trace.record(e);
            }
            if matches!(ev.payload, Ev::KernelEnd { .. }) {
                *kernel_end = (*kernel_end).max(eff);
            }
            if !rec.packets.is_empty() {
                self.events_since_progress = 0;
            }
            latest_depth[gpu] = rec.queue_depth;
            if credited {
                if !rec.packets.is_empty() {
                    shadow[gpu].extend(rec.packets);
                }
                let out = self.pump_buffer(gpu, eff, &mut shadow[gpu])?;
                if out.last_drained > SimTime::ZERO {
                    self.events_since_progress = 0;
                }
                *last_delivery = (*last_delivery).max(out.last_drained);
                if let Some(until) = out.blocked_until {
                    if retry_at[gpu].is_none_or(|r| until < r) {
                        retry_at[gpu] = Some(until);
                        queue.schedule(until, Ev::Retry { gpu });
                    }
                }
            } else if !rec.packets.is_empty() {
                let done = self.deliver(eff, GpuId::new(gpu as u8), rec.packets)?;
                *last_delivery = (*last_delivery).max(done);
            }
        }
        debug_assert!(
            shadow.iter().all(OutputBuffer::is_empty),
            "event queue drained with packets stranded in a shadow buffer"
        );
        self.recycle_queue(queue);
        Ok(true)
    }

    /// [`Runner::take_samples`] for the sharded commit, which cannot
    /// read the (cloned-away) paths: RWQ depth comes from the last
    /// committed record, egress occupancy from the shadow buffer, and
    /// stall time is the iteration-start constant (a committed sharded
    /// run is stall-free by construction). Fabric-side columns read the
    /// live fabric exactly as the serial sampler does.
    fn take_samples_sharded(
        &self,
        at: SimTime,
        latest_depth: &[usize],
        init: &[GpuProbe],
        shadow: &[OutputBuffer],
    ) {
        for g in 0..latest_depth.len() {
            let gid = GpuId::new(g as u8);
            let (hdrs, data) = self.fabric.egress_fc_in_flight(gid);
            self.trace.sample(Sample {
                time: at,
                gpu: g as u8,
                rwq_entries: latest_depth[g] as u64,
                egress_queue: shadow[g].len() as u64,
                egress_wire_bytes: self.fabric.egress_bytes(gid),
                credit_hdrs_in_flight: hdrs,
                credit_data_in_flight: data,
                stall_ps: init[g].stall_ps,
            });
        }
    }

    /// Forwards a commit capture's streams into the real collector.
    /// Captured entries already carry run-global times, so they pass
    /// through a temporarily zeroed base.
    fn forward_capture(&mut self, cap: Option<Arc<Mutex<CaptureCollector>>>) {
        let Some(cap) = cap else { return };
        let (events, samples) = cap.lock().expect("capture collector lock").take();
        self.trace.rebase(SimTime::ZERO);
        for e in events {
            self.trace.record(e);
        }
        for s in samples {
            self.trace.sample(s);
        }
        self.trace.rebase(self.total_time);
    }

    /// Finalizes the run into a [`RunReport`]. `read_fraction` is the
    /// workload's fraction of uniquely-written bytes the destination
    /// reads (drives the useful/wasted split of Fig 10).
    pub fn finish(self, workload: &str, read_fraction: f64) -> RunReport {
        let mut egress = EgressMetrics::default();
        for p in self.paths.iter().flatten() {
            egress.merge(p.metrics());
        }
        let unique = self.unique.unique_bytes();
        let useful_target = (unique as f64 * read_fraction) as u64;
        // Retransmitted TLP bytes rode the wire but carried no new
        // data: they are protocol overhead, never goodput.
        let replayed_bytes = self.fabric.replayed_bytes_total();
        let mut traffic = match self.paradigm {
            Paradigm::InfiniteBw => TrafficBreakdown::default(),
            Paradigm::BulkDma => {
                let useful = useful_target.min(self.dma_data_bytes);
                TrafficBreakdown {
                    useful,
                    protocol: self.dma_wire_bytes - self.dma_data_bytes,
                    wasted: self.dma_data_bytes - useful,
                }
            }
            _ => {
                let useful = useful_target.min(egress.data_bytes);
                TrafficBreakdown {
                    useful,
                    protocol: egress.protocol_bytes(),
                    wasted: egress.data_bytes - useful,
                }
            }
        };
        if self.paradigm != Paradigm::InfiniteBw {
            traffic.protocol += replayed_bytes;
        }
        let fc = self.fabric.fc_stats_total();
        RunReport {
            workload: workload.to_string(),
            paradigm: self.paradigm,
            num_gpus: self.cfg.num_gpus,
            total_time: self.total_time,
            compute_time: self.compute_time,
            drain_tail: self.drain_tail,
            barrier_time: self.barrier_time,
            stall_time: egress.stall_time,
            fc_update_dllps: fc.update_dllps,
            fc_blocked_attempts: fc.blocked_attempts,
            traffic,
            egress,
            unique_bytes: unique,
            replayed_bytes,
            link_retrains: self.fabric.retrains_total(),
            replay_amplification: self.replay_amp,
            sim_events: self.sim_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_model::{AddressMap, Gpu};
    use workloads::{Jacobi, Pagerank, RunSpec, Workload};

    fn runs_for(app: &dyn Workload, cfg: &SystemConfig, spec: &RunSpec) -> Vec<KernelRun> {
        let map = AddressMap::new(cfg.num_gpus, 16 << 30);
        (0..cfg.num_gpus)
            .map(|g| {
                let gpu = Gpu::new(cfg.gpu, GpuId::new(g), map);
                gpu.execute_kernel(&app.trace(spec, 0, GpuId::new(g)))
            })
            .collect()
    }

    #[test]
    fn infinite_bw_is_fastest() {
        let cfg = SystemConfig::paper(2);
        let spec = RunSpec::tiny();
        let app = Pagerank::default();
        let runs = runs_for(&app, &cfg, &spec);
        let times: Vec<SimTime> = [
            Paradigm::InfiniteBw,
            Paradigm::FinePack,
            Paradigm::P2pStores,
        ]
        .into_iter()
        .map(|p| {
            let mut r = Runner::new(cfg, p, 0.0, false);
            r.run_iteration(&runs, &[]);
            r.finish("pagerank", 0.8).total_time
        })
        .collect();
        assert!(times[0] <= times[1], "inf {} vs fp {}", times[0], times[1]);
        assert!(times[1] < times[2], "fp {} vs p2p {}", times[1], times[2]);
    }

    #[test]
    fn dma_paradigm_accounts_wire_bytes() {
        let cfg = SystemConfig::paper(2);
        let spec = RunSpec::tiny();
        let app = Jacobi::default();
        let runs = runs_for(&app, &cfg, &spec);
        let mut r = Runner::new(cfg, Paradigm::BulkDma, 0.0, false);
        let plan = vec![
            (GpuId::new(0), GpuId::new(1), 64 << 10),
            (GpuId::new(1), GpuId::new(0), 64 << 10),
        ];
        r.run_iteration(&runs, &plan);
        let report = r.finish("jacobi", 1.0);
        assert!(report.traffic.total() > 128 << 10);
        // Bulk TLPs: protocol share is tiny.
        let prot_frac = report.traffic.protocol as f64 / report.traffic.total() as f64;
        assert!(prot_frac < 0.02, "prot_frac={prot_frac}");
    }

    #[test]
    fn transparency_all_store_paradigms_same_memory_image() {
        let cfg = SystemConfig::paper(2);
        let spec = RunSpec::tiny();
        let app = Pagerank::default();
        let runs = runs_for(&app, &cfg, &spec);
        let image_for = |p: Paradigm| {
            let mut r = Runner::new(cfg, p, 0.0, true);
            r.run_iteration(&runs, &[]);
            r.images().unwrap().to_vec()
        };
        let p2p = image_for(Paradigm::P2pStores);
        let fp = image_for(Paradigm::FinePack);
        let wc = image_for(Paradigm::WriteCombining);
        for g in 0..2 {
            assert!(
                p2p[g].same_contents(&fp[g]),
                "finepack image differs on GPU{g}"
            );
            assert!(
                p2p[g].same_contents(&wc[g]),
                "write-combining image differs on GPU{g}"
            );
        }
    }

    #[test]
    fn finepack_uses_less_wire_than_p2p_and_more_stores_per_packet() {
        let cfg = SystemConfig::paper(2);
        let spec = RunSpec::tiny();
        let app = Pagerank::default();
        let runs = runs_for(&app, &cfg, &spec);
        let report_for = |p: Paradigm| {
            let mut r = Runner::new(cfg, p, 0.0, false);
            r.run_iteration(&runs, &[]);
            r.finish("pagerank", 0.8)
        };
        let fp = report_for(Paradigm::FinePack);
        let p2p = report_for(Paradigm::P2pStores);
        assert!(fp.traffic.total() * 2 < p2p.traffic.total());
        assert!(fp.mean_stores_per_packet().unwrap() > 8.0);
        assert_eq!(p2p.mean_stores_per_packet(), Some(1.0));
        // Same unique bytes either way (paradigm-independent).
        assert_eq!(fp.unique_bytes, p2p.unique_bytes);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn wrong_run_count_panics() {
        let cfg = SystemConfig::paper(4);
        let mut r = Runner::new(cfg, Paradigm::InfiniteBw, 0.0, false);
        r.run_iteration(&[], &[]);
    }

    #[test]
    fn sharded_run_matches_serial_bit_for_bit() {
        use crate::config::FlowControlMode;
        let spec = RunSpec::tiny();
        let app = Pagerank::default();
        for open in [false, true] {
            for paradigm in [Paradigm::FinePack, Paradigm::P2pStores, Paradigm::Gps] {
                let mut reports = Vec::new();
                for jobs in [1usize, 2, 4] {
                    let mut cfg = SystemConfig::paper(4).with_intra_jobs(jobs);
                    if open {
                        cfg = cfg.with_flow_control(FlowControlMode::Open);
                    }
                    let runs = runs_for(&app, &cfg, &spec);
                    let mut r = Runner::new(cfg, paradigm, 0.25, true);
                    for _ in 0..2 {
                        r.run_iteration(&runs, &[]);
                    }
                    let images: Vec<_> = r.images().unwrap().to_vec();
                    reports.push((format!("{:?}", r.finish("pagerank", 0.8)), images));
                }
                for (jobs, (report, images)) in [2usize, 4].iter().zip(&reports[1..]) {
                    assert_eq!(
                        &reports[0].0, report,
                        "intra_jobs={jobs} diverged ({paradigm:?}, open={open})"
                    );
                    for (g, (a, b)) in reports[0].1.iter().zip(images).enumerate() {
                        assert!(
                            a.same_contents(b),
                            "intra_jobs={jobs} memory image differs on GPU{g}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_planning_degrades_to_serial_when_unsafe() {
        // Serial request, non-store paradigm, or a single shard-able
        // domain: all must plan exactly one shard.
        let cfg = SystemConfig::paper(4);
        assert_eq!(Runner::planned_shards(&cfg, Paradigm::FinePack), 1);
        let par = cfg.with_intra_jobs(4);
        assert_eq!(Runner::planned_shards(&par, Paradigm::FinePack), 4);
        assert_eq!(Runner::planned_shards(&par, Paradigm::BulkDma), 1);
        assert_eq!(Runner::planned_shards(&par, Paradigm::InfiniteBw), 1);
        let two = SystemConfig::paper(2).with_intra_jobs(8);
        assert_eq!(Runner::planned_shards(&two, Paradigm::FinePack), 2);
        let mut zero = SystemConfig::paper(4).with_intra_jobs(4);
        zero.hop_latency = SimTime::ZERO;
        zero = zero.open_loop();
        assert_eq!(
            Runner::planned_shards(&zero, Paradigm::FinePack),
            1,
            "zero lookahead must fall back to serial"
        );
    }
}
