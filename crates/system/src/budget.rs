//! Run budgets: structured termination for runaway or livelocked runs.
//!
//! A buggy topology, a pathological credit configuration, or a fault
//! profile interacting badly with retries can keep the [`Runner`]'s
//! event loop legal-but-useless: time advances, events churn, nothing
//! commits. A [`RunBudget`] bounds the run three ways — a cumulative
//! event ceiling, a simulated-time ceiling, and a forward-progress
//! watchdog — and a tripped bound surfaces as
//! [`RunError::BudgetExceeded`](crate::RunError::BudgetExceeded)
//! carrying a [`BudgetTrip`] with a [`RunnerDiag`] snapshot, instead of
//! a hang the user has to `kill -9` and guess about.
//!
//! Budgets are *diagnostic* bounds, not scheduling: a run that never
//! trips them is byte-identical to the same run with no budget at all.
//!
//! [`Runner`]: crate::Runner

use sim_engine::SimTime;

/// Execution ceilings for one [`Runner`](crate::Runner)'s lifetime
/// (cumulative across its iterations). `None` fields are unlimited.
///
/// # Examples
///
/// ```
/// use sim_engine::SimTime;
/// use system::RunBudget;
///
/// let budget = RunBudget::unlimited()
///     .with_max_events(1_000_000)
///     .with_max_sim_time(SimTime::from_ms(100))
///     .with_progress_watchdog(100_000);
/// budget.validate();
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Ceiling on events processed by the runner's event loops (store
    /// events, retries, DMA legs), summed over every iteration.
    pub max_events: Option<u64>,
    /// Ceiling on run-global simulated time (the sum of completed
    /// iterations plus the current iteration's clock).
    pub max_sim_time: Option<SimTime>,
    /// Forward-progress watchdog: maximum events processed since the
    /// last commit (a packet drained into destination memory) or flush
    /// advance (the egress path produced packets). Pick a limit well
    /// above one iteration's compute-only event count — issue events
    /// that merely buffer into the write queue do not count as
    /// progress.
    pub max_events_since_progress: Option<u64>,
}

impl RunBudget {
    /// The identity budget: no ceiling on anything.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Bounds total events processed.
    pub fn with_max_events(mut self, limit: u64) -> Self {
        self.max_events = Some(limit);
        self
    }

    /// Bounds run-global simulated time.
    pub fn with_max_sim_time(mut self, limit: SimTime) -> Self {
        self.max_sim_time = Some(limit);
        self
    }

    /// Bounds events processed without forward progress.
    pub fn with_progress_watchdog(mut self, limit: u64) -> Self {
        self.max_events_since_progress = Some(limit);
        self
    }

    /// True when no ceiling is configured.
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none()
            && self.max_sim_time.is_none()
            && self.max_events_since_progress.is_none()
    }

    /// Validates the ceilings.
    ///
    /// # Panics
    ///
    /// Panics if any configured ceiling is zero (a zero budget would
    /// trip before the first event and can only be a mistake).
    pub fn validate(&self) {
        if let Some(limit) = self.max_events {
            assert!(limit > 0, "event budget must be positive");
        }
        if let Some(limit) = self.max_sim_time {
            assert!(!limit.is_zero(), "sim-time budget must be positive");
        }
        if let Some(limit) = self.max_events_since_progress {
            assert!(limit > 0, "progress watchdog must be positive");
        }
    }
}

/// Which [`RunBudget`] ceiling tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The cumulative event ceiling.
    Events {
        /// The configured limit.
        limit: u64,
    },
    /// The simulated-time ceiling.
    SimTime {
        /// The configured limit.
        limit: SimTime,
    },
    /// The forward-progress watchdog.
    Watchdog {
        /// The configured limit on events without progress.
        limit: u64,
    },
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetKind::Events { limit } => write!(f, "event ceiling ({limit} events)"),
            BudgetKind::SimTime { limit } => write!(f, "sim-time ceiling ({limit})"),
            BudgetKind::Watchdog { limit } => {
                write!(f, "progress watchdog ({limit} events without progress)")
            }
        }
    }
}

/// Diagnostic snapshot of the runner at the moment a budget tripped —
/// the facts needed to tell a livelock from an under-budgeted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerDiag {
    /// Run-global simulated time at the trip.
    pub now: SimTime,
    /// Events processed so far (cumulative across iterations).
    pub sim_events: u64,
    /// Events still pending in the current iteration's queue.
    pub pending_events: u64,
    /// Events processed since the last commit/flush advance.
    pub events_since_progress: u64,
    /// Per-GPU cumulative SM stall clocks for the current iteration
    /// (credited mode; zeros under open-loop flow control).
    pub stall: Vec<SimTime>,
    /// `(header, data)` credit units in flight across the fabric.
    pub fc_in_flight: (u64, u64),
}

impl std::fmt::Display for RunnerDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let max_stall = self.stall.iter().copied().max().unwrap_or(SimTime::ZERO);
        write!(
            f,
            "at {}: {} events processed, {} pending, {} since progress, \
             max GPU stall {}, credits in flight (PH {}, PD {})",
            self.now,
            self.sim_events,
            self.pending_events,
            self.events_since_progress,
            max_stall,
            self.fc_in_flight.0,
            self.fc_in_flight.1
        )
    }
}

/// A tripped run budget: which ceiling, plus the diagnostic snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetTrip {
    /// The ceiling that tripped.
    pub kind: BudgetKind,
    /// The runner's state at the trip.
    pub diag: RunnerDiag,
}

impl std::fmt::Display for BudgetTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} tripped {}", self.kind, self.diag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_and_validate() {
        let b = RunBudget::unlimited()
            .with_max_events(10)
            .with_progress_watchdog(5);
        b.validate();
        assert_eq!(b.max_events, Some(10));
        assert_eq!(b.max_events_since_progress, Some(5));
        assert!(b.max_sim_time.is_none());
        assert!(!b.is_unlimited());
        assert!(RunBudget::unlimited().is_unlimited());
    }

    #[test]
    #[should_panic(expected = "event budget must be positive")]
    fn zero_event_budget_rejected() {
        RunBudget::unlimited().with_max_events(0).validate();
    }

    #[test]
    #[should_panic(expected = "sim-time budget must be positive")]
    fn zero_sim_time_budget_rejected() {
        RunBudget::unlimited()
            .with_max_sim_time(SimTime::ZERO)
            .validate();
    }

    #[test]
    fn trip_renders_kind_and_diagnostics() {
        let trip = BudgetTrip {
            kind: BudgetKind::Watchdog { limit: 1000 },
            diag: RunnerDiag {
                now: SimTime::from_us(3),
                sim_events: 1234,
                pending_events: 7,
                events_since_progress: 1001,
                stall: vec![SimTime::ZERO, SimTime::from_ns(40)],
                fc_in_flight: (2, 16),
            },
        };
        let msg = trip.to_string();
        assert!(msg.contains("progress watchdog (1000"), "{msg}");
        assert!(msg.contains("1234 events processed"), "{msg}");
        assert!(msg.contains("7 pending"), "{msg}");
        assert!(msg.contains("PH 2, PD 16"), "{msg}");
    }
}
