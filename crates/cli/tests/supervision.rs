//! Integration tests pinning the supervision layer's end-to-end
//! contract (ISSUE 6): chaos runs are byte-identical at any worker
//! count, a panicking point degrades to partial results without
//! perturbing its neighbours, and a budget-tripped livelock terminates
//! with a structured diagnostic instead of hanging.

use gpu_model::{GpuId, KernelTrace};
use sim_engine::{QuietPanicGuard, SimTime, WorkerPool};
use system::{
    run_suite, run_suite_supervised, Paradigm, PreparedWorkload, RunBudget, RunnerError,
    Supervision, SystemConfig,
};
use telemetry::TraceHandle;
use workloads::{CommPattern, Jacobi, Pagerank, RunSpec, Workload};

/// A seed for which `--chaos 0.4 --retries 1` is known to leave at
/// least one suite point failed (pinned so the identity test exercises
/// the retry *and* failure paths, not just clean rows).
const CHAOS_SEED: &str = "3735928559";

fn chaos_suite_argv(jobs: &str) -> Vec<String> {
    [
        "suite",
        "--gpus",
        "2",
        "--scale-down",
        "16",
        "--iterations",
        "1",
        "--seed",
        CHAOS_SEED,
        "--chaos",
        "0.4",
        "--retries",
        "1",
        "--jobs",
        jobs,
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

/// (i) A chaos sweep — panics injected, retries consumed, some points
/// dead — renders byte-identically at `--jobs 1`, `2`, and `4`.
#[test]
fn chaos_suite_is_byte_identical_across_jobs() {
    let serial = cli::execute(chaos_suite_argv("1")).expect("chaos suite runs");
    for jobs in ["2", "4"] {
        let par = cli::execute(chaos_suite_argv(jobs)).expect("chaos suite runs");
        assert_eq!(serial.text, par.text, "--jobs {jobs} diverged");
        assert_eq!(serial.partial, par.partial, "--jobs {jobs} diverged");
    }
    // The pinned seed must actually exercise the failure path: a seed
    // where nothing fails would pass identity vacuously.
    assert!(
        serial.partial,
        "seed no longer produces failures:\n{}",
        serial.text
    );
    assert!(serial.text.contains("failed points"), "{}", serial.text);
    assert_eq!(serial.exit_code(), cli::EXIT_PARTIAL);
}

/// A workload whose trace generation panics — stands in for a buggy
/// app model that would otherwise take the whole sweep down.
#[derive(Debug)]
struct Bomb;

impl Workload for Bomb {
    fn name(&self) -> &'static str {
        "bomb"
    }

    fn pattern(&self) -> CommPattern {
        CommPattern::Neighbors
    }

    fn trace(&self, _spec: &RunSpec, _iter: u32, _gpu: GpuId) -> KernelTrace {
        panic!("bomb: deliberate trace panic");
    }

    fn dma_bytes_per_gpu(&self, _spec: &RunSpec) -> u64 {
        0
    }

    fn read_fraction(&self) -> f64 {
        1.0
    }
}

/// (ii) A panicking point yields partial results: the supervisor
/// isolates the panic, burns the retry budget on it, and the surviving
/// points' rows are identical to a clean sweep without the bomb.
#[test]
fn panicking_point_yields_partial_results() {
    let _quiet = QuietPanicGuard::engage();
    let cfg = SystemConfig::paper(2);
    let spec = RunSpec::tiny();
    let paradigms = [Paradigm::FinePack, Paradigm::P2pStores];
    let mixed: Vec<Box<dyn Workload>> = vec![
        Box::new(Jacobi::default()),
        Box::new(Bomb),
        Box::new(Pagerank::default()),
    ];
    let sup = run_suite_supervised(
        &mixed,
        &cfg,
        &spec,
        &paradigms,
        &WorkerPool::new(2),
        Supervision::with_retries(1),
        &TraceHandle::off(),
    );
    assert!(!sup.all_ok());
    assert!(sup.to_result().is_none());

    let bomb = &sup.points[1];
    assert_eq!(bomb.app, "bomb");
    assert!(!bomb.is_ok());
    assert_eq!(bomb.attempts, 2, "one retry must be consumed");
    let failure = bomb.final_failure().expect("bomb fails");
    assert_eq!(failure.kind(), "panic");
    assert!(
        failure.to_string().contains("deliberate trace panic"),
        "{failure}"
    );

    // Survivors are byte-identical to a sweep that never saw the bomb.
    let clean_apps: Vec<Box<dyn Workload>> =
        vec![Box::new(Jacobi::default()), Box::new(Pagerank::default())];
    let clean = run_suite(&clean_apps, &cfg, &spec, &paradigms, &WorkerPool::serial());
    let survivors = sup.rows();
    assert_eq!(survivors.len(), clean.rows.len());
    for (got, want) in survivors.iter().zip(&clean.rows) {
        assert_eq!(got.app, want.app);
        assert_eq!(got.speedups, want.speedups);
    }
}

/// (iii) A deliberately livelocked run — here, one whose budget is far
/// below what the workload needs — terminates via [`RunBudget`] with a
/// structured [`RunnerError`] carrying a diagnostic snapshot, instead
/// of churning forever.
#[test]
fn budget_tripped_run_returns_structured_error_within_budget() {
    const CEILING: u64 = 8;
    let spec = RunSpec::tiny();
    let cfg =
        SystemConfig::paper(2).with_run_budget(RunBudget::unlimited().with_max_events(CEILING));
    let prepared = PreparedWorkload::new(&Jacobi::default(), &cfg, &spec);
    let err: RunnerError = prepared
        .try_run(&cfg, Paradigm::FinePack)
        .expect_err("an 8-event budget cannot cover the run");
    match err {
        RunnerError::BudgetExceeded(trip) => {
            // The runner stopped at the first event past the ceiling,
            // not after churning arbitrarily beyond it.
            assert_eq!(trip.diag.sim_events, CEILING + 1, "{trip}");
            let msg = trip.to_string();
            assert!(msg.contains("event ceiling"), "{msg}");
            assert!(msg.contains("tripped"), "{msg}");
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    // A sim-time ceiling bounds the same run by the other axis.
    let cfg = SystemConfig::paper(2)
        .with_run_budget(RunBudget::unlimited().with_max_sim_time(SimTime::from_ns(1)));
    let prepared = PreparedWorkload::new(&Jacobi::default(), &cfg, &spec);
    match prepared.try_run(&cfg, Paradigm::FinePack) {
        Err(RunnerError::BudgetExceeded(trip)) => {
            assert!(trip.to_string().contains("sim-time ceiling"), "{trip}");
        }
        other => panic!("expected sim-time BudgetExceeded, got {other:?}"),
    }
}
