//! A small, dependency-free argument parser: `--key value` pairs and
//! positional arguments, with typed accessors and unknown-flag checking.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: one subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    subcommand: Option<String>,
    options: BTreeMap<String, String>,
}

/// Errors produced while parsing or validating arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// An option was not recognized by the subcommand.
    Unknown(String),
    /// An option's value failed to parse.
    Invalid {
        /// Option name.
        key: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// No subcommand was given.
    NoSubcommand,
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
            ArgError::Invalid {
                key,
                value,
                expected,
            } => write!(f, "--{key} {value}: expected {expected}"),
            ArgError::NoSubcommand => write!(f, "no subcommand given (try `help`)"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingValue`] if a `--flag` has no value.
    pub fn parse<I, S>(argv: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = argv.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
                out.options.insert(key.to_string(), value);
            } else if out.subcommand.is_none() {
                out.subcommand = Some(tok);
            } else {
                return Err(ArgError::Unknown(tok));
            }
        }
        Ok(out)
    }

    /// The subcommand, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A parsed numeric/typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Invalid`] if present but unparseable.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::Invalid {
                key: key.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }

    /// Rejects any option not in `allowed`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Unknown`] naming the first unexpected option.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::Unknown(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_options() {
        let a = Args::parse(["run", "--app", "jacobi", "--gpus", "4"]).unwrap();
        assert_eq!(a.subcommand(), Some("run"));
        assert_eq!(a.get("app"), Some("jacobi"));
        assert_eq!(a.get_parsed("gpus", 2u8, "integer").unwrap(), 4);
        assert_eq!(a.get_or("paradigm", "all"), "all");
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = Args::parse(["run", "--app"]).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("app".into()));
    }

    #[test]
    fn stray_positional_is_unknown() {
        let e = Args::parse(["run", "jacobi"]).unwrap_err();
        assert!(matches!(e, ArgError::Unknown(_)));
    }

    #[test]
    fn invalid_typed_value() {
        let a = Args::parse(["run", "--gpus", "lots"]).unwrap();
        let e = a.get_parsed("gpus", 2u8, "integer").unwrap_err();
        assert!(e.to_string().contains("expected integer"));
    }

    #[test]
    fn expect_only_flags_unknown_options() {
        let a = Args::parse(["run", "--bogus", "1"]).unwrap();
        assert!(a.expect_only(&["app", "gpus"]).is_err());
        assert!(a.expect_only(&["bogus"]).is_ok());
    }
}
