//! `finepack-sim`: thin binary wrapper over the [`cli`] library.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(argv) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
