//! `finepack-sim`: thin binary wrapper over the [`cli`] library.
//!
//! Exit codes: 0 clean, 3 partial results (some supervised sweep
//! points failed after retries), 2 unrecoverable error.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match cli::execute(argv) {
        Ok(out) => {
            print!("{}", out.text);
            std::process::exit(out.exit_code());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
