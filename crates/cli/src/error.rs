//! CLI error type and exit-code mapping.
//!
//! Every command failure funnels into [`CliError`] so the binary can
//! report cleanly and exit with a meaningful code instead of panicking
//! on a missing file or an unwritable output path. The process exit
//! codes are:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean: the command completed and every sweep point succeeded |
//! | 3    | partial: the command completed but some supervised sweep points failed after retries |
//! | 2    | unrecoverable: bad usage, I/O failure, or a simulation error |

use std::fmt;

use crate::args::ArgError;

/// Process exit code for a clean run.
pub const EXIT_CLEAN: i32 = 0;
/// Process exit code for an unrecoverable error (usage, I/O, or
/// simulation failure).
pub const EXIT_ERROR: i32 = 2;
/// Process exit code for a partial result: the command completed but
/// some supervised sweep points failed after exhausting their retries.
pub const EXIT_PARTIAL: i32 = 3;

/// Why a CLI command failed unrecoverably.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad usage: unknown command, unknown option, or invalid value.
    Usage(String),
    /// An I/O operation failed (missing trace file, unwritable `--out`).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, rendered.
        detail: String,
    },
    /// The simulation or a self-check failed.
    Failed(String),
    /// A farm socket operation failed (bind refused, no daemon
    /// listening, connection lost).
    Socket {
        /// The socket path involved.
        path: String,
        /// The underlying error, rendered.
        detail: String,
    },
    /// The farm wire protocol broke down: a malformed request or
    /// response line, an incompatible wire schema, or a peer that
    /// disconnected mid-job.
    Protocol(String),
}

impl CliError {
    /// Convenience constructor for I/O failures.
    pub fn io(path: &str, detail: impl fmt::Display) -> Self {
        CliError::Io {
            path: path.to_string(),
            detail: detail.to_string(),
        }
    }

    /// The process exit code for this error (always [`EXIT_ERROR`]; the
    /// partial-results code is carried by [`CmdOut::partial`], not an
    /// error).
    pub fn exit_code(&self) -> i32 {
        EXIT_ERROR
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Failed(msg) => write!(f, "{msg}"),
            CliError::Io { path, detail } | CliError::Socket { path, detail } => {
                write!(f, "{path}: {detail}")
            }
            CliError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.to_string())
    }
}

impl From<farm::FarmError> for CliError {
    fn from(e: farm::FarmError) -> Self {
        use farm::FarmError;
        match e {
            FarmError::Bind { path, detail } | FarmError::Connect { path, detail } => {
                CliError::Socket { path, detail }
            }
            FarmError::Malformed(msg) => CliError::Protocol(format!("malformed message: {msg}")),
            FarmError::PeerDisconnected(msg) => {
                CliError::Protocol(format!("peer disconnected: {msg}"))
            }
            FarmError::Io(msg) => CliError::Protocol(format!("socket i/o failed: {msg}")),
            FarmError::Invalid(msg) => CliError::Usage(format!("invalid job: {msg}")),
            FarmError::Failed(msg) => CliError::Failed(msg),
        }
    }
}

/// A command's rendered output plus its completion status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOut {
    /// The report text to print.
    pub text: String,
    /// True when some supervised sweep points failed after retries and
    /// the output holds partial results (exit code [`EXIT_PARTIAL`]).
    pub partial: bool,
}

impl CmdOut {
    /// A fully successful command.
    pub fn clean(text: String) -> Self {
        CmdOut {
            text,
            partial: false,
        }
    }

    /// The exit code this output maps to.
    pub fn exit_code(&self) -> i32 {
        if self.partial {
            EXIT_PARTIAL
        } else {
            EXIT_CLEAN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_errors_convert_to_usage() {
        let e: CliError = ArgError::NoSubcommand.into();
        assert!(matches!(e, CliError::Usage(_)));
        assert!(e.to_string().contains("no subcommand"));
        assert_eq!(e.exit_code(), EXIT_ERROR);
    }

    #[test]
    fn io_errors_name_the_path() {
        let e = CliError::io("/tmp/missing.fpkt", "no such file");
        assert_eq!(e.to_string(), "/tmp/missing.fpkt: no such file");
    }

    #[test]
    fn farm_errors_map_to_socket_protocol_and_usage() {
        let e: CliError = farm::FarmError::Connect {
            path: "/tmp/farm.sock".into(),
            detail: "no such file".into(),
        }
        .into();
        assert!(matches!(e, CliError::Socket { .. }));
        assert_eq!(e.to_string(), "/tmp/farm.sock: no such file");
        assert_eq!(e.exit_code(), EXIT_ERROR);

        let e: CliError = farm::FarmError::PeerDisconnected("mid-job".into()).into();
        assert!(matches!(e, CliError::Protocol(_)));
        assert!(e.to_string().contains("peer disconnected"));

        let e: CliError = farm::FarmError::Malformed("bad line".into()).into();
        assert!(matches!(e, CliError::Protocol(_)));

        let e: CliError = farm::FarmError::Invalid("gpus must be 2-64".into()).into();
        assert!(matches!(e, CliError::Usage(_)));
    }

    #[test]
    fn partial_flag_selects_exit_code() {
        assert_eq!(CmdOut::clean("ok".into()).exit_code(), EXIT_CLEAN);
        let partial = CmdOut {
            text: "some".into(),
            partial: true,
        };
        assert_eq!(partial.exit_code(), EXIT_PARTIAL);
    }
}
