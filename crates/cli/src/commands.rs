//! Subcommand implementations.

use std::fmt::Write as _;

use finepack::{AllocationPolicy, AreaModel, FinePackConfig, FlushReason, SubheaderFormat};
use gpu_model::{profile_run, read_trace, write_trace, AddressMap, Gpu, GpuId};
use protocol::{fig2_sizes, FramingModel, PcieGen};
use sim_engine::Table;
use sim_engine::{SimTime, ThroughputReport, WallClock, WorkerPool};
use system::{
    audit_run, fault_sweep, run_suite_prepared, scaling_curve, subheader_sweep, CreditConfig,
    FaultProfile, FlowControlMode, Paradigm, PreparedWorkload, RunBudget, SystemConfig,
};
use telemetry::{EventKind, Law, Sample, TraceEvent, TraceHandle};
use workloads::{
    suite, CollectiveTuning, MsgDist, RunSpec, ScalingMode, Workload, COLLECTIVE_REGISTRY,
};

use crate::args::{ArgError, Args};
use crate::error::{CliError, CmdOut};

/// The `help` text.
pub(crate) fn help() -> String {
    "\
finepack-sim — FinePack (HPCA 2023) reproduction driver

USAGE: finepack-sim <command> [--option value]...

COMMANDS:
  run              simulate one app across paradigms
                   --app <name> [--gpus N] [--pcie 4|5|6]
                   [--iterations K] [--scale-down S] [--windows W]
                   [--flow-control open|credited] [--intra-jobs N]
                   [--ber RATE] [--fault-profile clean|noisy|outage|degraded|stuck]
                   [--json FILE (write per-paradigm reports as
                   versioned canonical JSON)]
  suite            Fig 9 table for the whole application suite, run
                   under the supervisor (panic isolation, retries,
                   budgets, chaos injection)
                   [--gpus N] [--pcie 4|5|6] [--scale-down S]
                   [--flow-control open|credited] [--jobs N]
                   [--intra-jobs N]
                   [--retries N] [--chaos RATE] [--run-budget SPEC]
  collectives      AI-training collectives study: per-collective
                   message-size crossover tables (FinePack vs bulk DMA
                   vs plain stores) plus a weak-scaling curve over
                   doubling GPU counts
                   [--collective <name>|all] [--payload BYTES]
                   [--msg-dist fixed:N|uniform:MIN:MAX|bimodal:FINE:BULK:PCT]
                   [--gpus N] [--max-gpus N] [--pcie 4|5|6]
                   [--iterations K] [--scale-down S] [--seed S]
                   [--flow-control open|credited] [--jobs N]
                   [--intra-jobs N] [--bench-out FILE]
                   [--min-events-per-sec F]
  goodput          goodput-vs-size curve (Fig 2)
                   [--framing pcie|cxl|nvlink]
  sweep-subheader  Table II / Fig 12 sub-header sweep
                   [--app <name>] [--gpus N] [--scale-down S] [--jobs N]
  faults           bit-error-rate sweep: replay amplification under a
                   faulty data link layer
                   [--app <name>] [--gpus N] [--paradigm <name>]
                   [--scale-down S] [--iterations K] [--jobs N]
                   [--flow-control open|credited] [--intra-jobs N]
                   [--fault-profile clean|noisy|outage|degraded|stuck]
  bench            harness self-benchmark: serial vs parallel suite wall
                   clock plus intra-run sharding throughput, written as
                   JSON; workload prep is untimed, then each variant
                   runs warmup passes followed by measured reps
                   reported as mean and sigma
                   [--gpus N] [--pcie 4|5|6] [--scale-down S]
                   [--iterations K] [--seed S] [--jobs N]
                   [--intra-jobs N] [--flow-control open|credited]
                   [--warmup N (default 1)] [--reps N (default 3)]
                   [--min-events-per-sec F (fail below this serial
                   throughput; 0 disables the gate)]
                   [--out FILE (default BENCH_harness.json)]
  trace            run one (app, paradigm) with event tracing and write
                   a Chrome trace_event JSON (chrome://tracing /
                   Perfetto) or a CSV time series
                   [--app <name>] [--paradigm <name>] [--gpus N]
                   [--iterations K] [--scale-down S] [--intra-jobs N]
                   [--format chrome|csv] [--out FILE]
                   [--sample-interval NS (default 100; 0 disables)]
                   [--capacity EVENTS (ring size, default 1048576)]
  audit            conservation audit: replay the trace stream against
                   cross-layer conservation laws (bytes, wire framing,
                   credits, causality, transparency) over the whole
                   configuration matrix; non-zero exit on any violation
                   [--app <name>] [--paradigm <name>] [--gpus N]
                   [--iterations K] [--scale-down S] [--seed S]
                   [--intra-jobs N]
  area             FinePack SRAM footprint (§VI-B) [--gpus N]
  record           synthesize traces to disk
                   --app <name> --out <dir> [--gpus N] [--iterations K]
                   [--scale-down S]
  replay           replay a recorded trace on one GPU
                   --trace <file> [--gpus N]
  inspect          summarize a recorded trace --trace <file>
  analyze          profile a recorded trace's remote-store stream
                   --trace <file> [--gpus N] [--window-bytes B]
  serve            run the sweep-farm daemon: accept jobs over a unix
                   socket and answer repeats from a content-addressed
                   result cache (see DESIGN.md §14)
                   [--socket PATH (default finepack-farm.sock)]
                   [--cache-entries N (default 64; oldest evicted)]
                   [--jobs N] [--intra-jobs N]
                   [--trace-out FILE (Chrome trace of serving events,
                   written on shutdown)]
  submit           submit one job to a running daemon and print the
                   served report (byte-identical to the one-shot
                   run/suite output; stdout carries exactly the report)
                   [--socket PATH] [--kind run|suite (default run)]
                   [--audit true (run the conservation auditor on cache
                   misses and stamp the entry)]
                   plus the matching run/suite options above
  status           report a running daemon's cache and job counters
                   [--socket PATH]
  shutdown         stop a running daemon cleanly [--socket PATH]
  version          print version, build fingerprint, and schema
                   versions (also: --version)
  help             this text

APPS: jacobi pagerank sssp als ct eqwp diffusion hit
COLLECTIVES: ring-allreduce tree-allreduce alltoall halo2d broadcast
  (accepted wherever --app is; tuned with --payload and --msg-dist)
PARADIGMS: bulk-dma p2p-stores finepack write-combining gps infinite-bw

FLOW CONTROL: `credited` (default) simulates the closed loop — finite
link credit pools backpressure the egress buffers and can stall the
GPU store streams (reported in the `stall` column); `open` is the
open-loop analytic model.

JOBS: `--jobs N` fans sweeps out over N worker threads (default: the
machine's available parallelism; `--jobs 1` forces the serial path).
Output is byte-identical for every N — parallelism never changes
results, only wall-clock time.

INTRA-JOBS: `--intra-jobs N` shards the event core of each single run
across N worker threads (per-GPU/link-domain shards under a
conservative lookahead window; default 1 = serial event loop). Reports,
traces, and audits are bit-identical for every N. Prefer `--jobs` when
a sweep has many points to fan out; prefer `--intra-jobs` for one big
run (many GPUs, few sweep points). The two compose multiplicatively —
keep jobs x intra-jobs near the machine's core count.

SUPERVISION (suite): `--retries N` re-runs a failed sweep point up to N
extra times with the same derived seed (only the attempt index changes);
`--chaos RATE` injects deterministic failures (forced panics, slowdowns,
budget trips) at the given per-kind probability in [0, 1] to exercise
the supervisor — at a fixed seed the full report, including which points
failed and after how many retries, is byte-identical at every --jobs;
`--run-budget SPEC` bounds each run, where SPEC is a plain integer
(event ceiling) or comma-separated `events=N`, `sim-ms=N`, `stall=N`
(events without forward progress). Budget trips, panics, and runner
errors become per-point failures: the table keeps the surviving rows
and a `failed points` section lists the rest.

FARM: `serve` keeps a daemon resident with workloads warm and a
content-addressed result cache keyed on a canonical fingerprint of
(system config, seed, workload identity, build). Because reports are
byte-identical at every --jobs/--intra-jobs, a repeated `submit` of the
same sweep point is answered from cache without executing a single
simulation event; the build fingerprint is part of the key, so a
recompiled binary never serves stale entries.

EXIT CODES: 0 clean; 3 partial results (some supervised sweep points
failed after retries, one-shot or daemon-served); 2 unrecoverable
(usage, I/O, socket/protocol, or simulation error).
"
    .to_string()
}

/// Parses the collective knobs (`--payload`, `--msg-dist`) into a
/// tuning, defaulting any knob the command line leaves out.
fn tuning_from(args: &Args) -> Result<CollectiveTuning, ArgError> {
    let mut tuning = CollectiveTuning::default();
    tuning.payload_bytes = args.get_parsed("payload", tuning.payload_bytes, "payload bytes")?;
    if let Some(d) = args.get("msg-dist") {
        tuning.msg = MsgDist::parse(d).map_err(|_| ArgError::Invalid {
            key: "msg-dist".into(),
            value: d.to_string(),
            expected: "fixed:N, uniform:MIN:MAX, or bimodal:FINE:BULK:PCT",
        })?;
    }
    tuning.validate().map_err(|e| ArgError::Invalid {
        key: "payload".into(),
        value: e,
        expected: "a valid collective tuning",
    })?;
    Ok(tuning)
}

/// Looks up an app by name across the suite and the collectives
/// registry; collectives pick up `--payload`/`--msg-dist` from `args`.
fn find_app(args: &Args, name: &str) -> Result<Box<dyn Workload>, ArgError> {
    let tuning = tuning_from(args)?;
    suite()
        .into_iter()
        .find(|a| a.name() == name)
        .or_else(|| workloads::collective(name, &tuning))
        .ok_or(ArgError::Invalid {
            key: "app".into(),
            value: format!("unknown app `{name}`"),
            expected: "a suite or collective name (see `help`)",
        })
}

fn spec_from(args: &Args) -> Result<RunSpec, ArgError> {
    spec_from_gpus(args, 4)
}

fn spec_from_gpus(args: &Args, default_gpus: u8) -> Result<RunSpec, ArgError> {
    let mut spec = RunSpec::paper(args.get_parsed("gpus", default_gpus, "integer 1-64")?);
    spec.iterations = args.get_parsed("iterations", spec.iterations, "positive integer")?;
    spec.scale_down = args.get_parsed("scale-down", spec.scale_down, "positive integer")?;
    spec.seed = args.get_parsed("seed", spec.seed, "integer")?;
    spec.validate();
    Ok(spec)
}

fn system_from(args: &Args, spec: &RunSpec) -> Result<SystemConfig, ArgError> {
    let gen = match args.get_parsed("pcie", 4u8, "4, 5, or 6")? {
        4 => PcieGen::Gen4,
        5 => PcieGen::Gen5,
        6 => PcieGen::Gen6,
        _ => {
            return Err(ArgError::Invalid {
                key: "pcie".into(),
                value: args.get_or("pcie", "?").to_string(),
                expected: "4, 5, or 6",
            })
        }
    };
    let windows = args.get_parsed("windows", 1u32, "1-64")?;
    let fp = FinePackConfig::paper(u32::from(spec.num_gpus)).with_windows(windows);
    let mut cfg = SystemConfig::paper(spec.num_gpus)
        .with_pcie_gen(gen)
        .with_finepack(fp)
        .with_flow_control(flow_control_from(args)?);
    if let Some(profile) = fault_profile_from(args)? {
        cfg = cfg.with_faults(profile);
    }
    if let Some(budget) = run_budget_from(args)? {
        cfg = cfg.with_run_budget(budget);
    }
    Ok(cfg.with_intra_jobs(intra_jobs_from(args, 1)?))
}

/// Parses `--intra-jobs N`: worker threads sharding the event core of
/// each single run (see DESIGN.md §12). Results are bit-identical for
/// every value; `default` is 1 (serial event loop) everywhere except
/// `bench`, which defaults to the machine's available parallelism.
fn intra_jobs_from(args: &Args, default: usize) -> Result<usize, ArgError> {
    let jobs: usize = args.get_parsed("intra-jobs", default, "positive shard-worker count")?;
    if jobs == 0 {
        return Err(ArgError::Invalid {
            key: "intra-jobs".into(),
            value: "0".into(),
            expected: "positive shard-worker count",
        });
    }
    Ok(jobs)
}

/// The machine's available parallelism (1 when undetectable).
fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The single-core caveat `suite` and `bench` print when thread knobs
/// cannot buy wall-clock time on this machine. Independent of the
/// `--jobs`/`--intra-jobs` values so output stays byte-identical across
/// them.
fn single_core_warning(out: &mut String) {
    if available_parallelism() == 1 {
        let _ = writeln!(
            out,
            "warning: this machine reports a single available core; \
             --jobs/--intra-jobs cannot reduce wall-clock time here"
        );
    }
}

/// Parses `--run-budget SPEC`: a plain integer (event ceiling) or a
/// comma-separated list of `events=N`, `sim-ms=N`, `stall=N` (events
/// without forward progress).
fn run_budget_from(args: &Args) -> Result<Option<RunBudget>, ArgError> {
    let Some(spec) = args.get("run-budget") else {
        return Ok(None);
    };
    let invalid = |value: &str| ArgError::Invalid {
        key: "run-budget".into(),
        value: value.to_string(),
        expected: "an event count, or `events=N,sim-ms=N,stall=N` parts",
    };
    let mut budget = RunBudget::unlimited();
    for part in spec.split(',') {
        let (key, value) = match part.split_once('=') {
            Some(kv) => kv,
            None => ("events", part),
        };
        let n: u64 = value.trim().parse().map_err(|_| invalid(part))?;
        if n == 0 {
            return Err(invalid(part));
        }
        match key.trim() {
            "events" => budget = budget.with_max_events(n),
            "sim-ms" => budget = budget.with_max_sim_time(SimTime::from_ms(n)),
            "stall" => budget = budget.with_progress_watchdog(n),
            _ => return Err(invalid(part)),
        }
    }
    Ok(Some(budget))
}

/// Parses `--jobs N` into a [`WorkerPool`] (default: the machine's
/// available parallelism; `--jobs 1` selects the serial path).
fn pool_from(args: &Args) -> Result<WorkerPool, ArgError> {
    match args.get("jobs") {
        None => Ok(WorkerPool::default_parallel()),
        Some(v) => {
            let jobs: usize = v.parse().map_err(|_| ArgError::Invalid {
                key: "jobs".into(),
                value: v.to_string(),
                expected: "positive worker count",
            })?;
            if jobs == 0 {
                return Err(ArgError::Invalid {
                    key: "jobs".into(),
                    value: v.to_string(),
                    expected: "positive worker count",
                });
            }
            Ok(WorkerPool::new(jobs))
        }
    }
}

/// Parses `--flow-control open|credited` (default: the paper-scale
/// credited pool).
fn flow_control_from(args: &Args) -> Result<FlowControlMode, ArgError> {
    match args.get_or("flow-control", "credited") {
        "open" => Ok(FlowControlMode::Open),
        "credited" => Ok(FlowControlMode::Credited(CreditConfig::paper())),
        other => Err(ArgError::Invalid {
            key: "flow-control".into(),
            value: other.to_string(),
            expected: "open or credited",
        }),
    }
}

/// Builds a [`FaultProfile`] from `--ber` and `--fault-profile`, or
/// `None` when neither is given (the paper's fault-free evaluation).
fn fault_profile_from(args: &Args) -> Result<Option<FaultProfile>, ArgError> {
    let ber: Option<f64> = match args.get("ber") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| ArgError::Invalid {
            key: "ber".into(),
            value: v.to_string(),
            expected: "bit-error rate in [0, 1], e.g. 1e-8",
        })?),
    };
    let profile = match args.get("fault-profile") {
        None => ber.map(FaultProfile::new),
        Some(name) => {
            let base = FaultProfile::new(ber.unwrap_or(match name {
                "clean" | "outage" | "stuck" => 0.0,
                _ => 1e-7,
            }));
            Some(match name {
                "clean" => base,
                "noisy" => base,
                "outage" => base.with_outage(0, SimTime::from_us(5), SimTime::from_us(60)),
                "degraded" => base
                    .with_outage(0, SimTime::from_us(5), SimTime::from_us(60))
                    .with_degrade(0.5),
                "stuck" => base.stuck_link(0, SimTime::ZERO),
                other => {
                    return Err(ArgError::Invalid {
                        key: "fault-profile".into(),
                        value: other.to_string(),
                        expected: "clean, noisy, outage, degraded, or stuck",
                    })
                }
            })
        }
    };
    if let Some(p) = &profile {
        if !(0.0..=1.0).contains(&p.ber) {
            return Err(ArgError::Invalid {
                key: "ber".into(),
                value: p.ber.to_string(),
                expected: "bit-error rate in [0, 1]",
            });
        }
    }
    Ok(profile)
}

/// `goodput [--framing pcie|cxl|nvlink]`
pub(crate) fn goodput(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["framing"])?;
    let (name, fm) = match args.get_or("framing", "pcie") {
        "pcie" => ("PCIe 4.0", FramingModel::pcie_gen4()),
        "cxl" => ("CXL.io", FramingModel::cxl()),
        "nvlink" => ("NVLink-flit", FramingModel::nvlink_flit()),
        other => {
            return Err(ArgError::Invalid {
                key: "framing".into(),
                value: other.to_string(),
                expected: "pcie, cxl, or nvlink",
            }
            .into())
        }
    };
    let mut t = Table::new(
        format!("{name} goodput vs transfer size"),
        &["size (B)", "wire (B)", "goodput"],
    );
    for size in fig2_sizes() {
        let wire = fm.bulk_wire_bytes(u64::from(size));
        t.row(&[
            size.to_string(),
            wire.to_string(),
            format!("{:.1}%", 100.0 * f64::from(size) / wire as f64),
        ]);
    }
    Ok(t.render())
}

/// Builds a farm [`farm::JobRequest`] from CLI args — the shared
/// front door for `run`, `suite`, and `submit`. Both the one-shot
/// commands and the daemon execute requests through
/// [`farm::execute_job`], so their outputs are byte-identical by
/// construction.
fn job_request_from(args: &Args, kind: farm::JobKind) -> Result<farm::JobRequest, CliError> {
    let mut req = farm::JobRequest::new(kind);
    req.gpus = args.get_parsed("gpus", req.gpus, "integer 2-64")?;
    req.pcie = args.get_parsed("pcie", req.pcie, "4, 5, or 6")?;
    req.iterations = args.get_parsed("iterations", req.iterations, "positive integer")?;
    req.scale_down = args.get_parsed("scale-down", req.scale_down, "positive integer")?;
    req.seed = args.get_parsed("seed", req.seed, "integer")?;
    req.windows = args.get_parsed("windows", req.windows, "1-64")?;
    req.open_loop = match args.get_or("flow-control", "credited") {
        "open" => true,
        "credited" => false,
        other => {
            return Err(ArgError::Invalid {
                key: "flow-control".into(),
                value: other.to_string(),
                expected: "open or credited",
            }
            .into())
        }
    };
    req.budget = budget_spec_from(args)?;
    match kind {
        farm::JobKind::Run => {
            req.app = Some(args.get_or("app", "pagerank").to_string());
            req.payload = match args.get("payload") {
                None => None,
                Some(v) => Some(v.parse().map_err(|_| ArgError::Invalid {
                    key: "payload".into(),
                    value: v.to_string(),
                    expected: "collective payload bytes",
                })?),
            };
            req.msg_dist = args.get("msg-dist").map(str::to_string);
            req.ber = match args.get("ber") {
                None => None,
                Some(v) => Some(v.parse().map_err(|_| ArgError::Invalid {
                    key: "ber".into(),
                    value: v.to_string(),
                    expected: "bit-error rate in [0, 1], e.g. 1e-8",
                })?),
            };
            req.fault_profile = args.get("fault-profile").map(str::to_string);
        }
        farm::JobKind::Suite => {
            req.retries = args.get_parsed("retries", 0u32, "retry count")?;
            req.chaos = match args.get("chaos") {
                None => None,
                Some(v) => Some(v.parse().map_err(|_| ArgError::Invalid {
                    key: "chaos".into(),
                    value: v.to_string(),
                    expected: "injection rate in [0, 1]",
                })?),
            };
        }
    }
    req.validate()?;
    Ok(req)
}

/// Parses `--run-budget SPEC` into the farm's wire-level budget form
/// (same grammar as [`run_budget_from`]).
fn budget_spec_from(args: &Args) -> Result<Option<farm::BudgetSpec>, ArgError> {
    let Some(spec) = args.get("run-budget") else {
        return Ok(None);
    };
    let invalid = |value: &str| ArgError::Invalid {
        key: "run-budget".into(),
        value: value.to_string(),
        expected: "an event count, or `events=N,sim-ms=N,stall=N` parts",
    };
    let mut budget = farm::BudgetSpec::default();
    for part in spec.split(',') {
        let (key, value) = match part.split_once('=') {
            Some(kv) => kv,
            None => ("events", part),
        };
        let n: u64 = value.trim().parse().map_err(|_| invalid(part))?;
        if n == 0 {
            return Err(invalid(part));
        }
        match key.trim() {
            "events" => budget.events = Some(n),
            "sim-ms" => budget.sim_ms = Some(n),
            "stall" => budget.stall = Some(n),
            _ => return Err(invalid(part)),
        }
    }
    Ok(Some(budget))
}

/// `run --app <name> ...`: delegates to [`farm::execute_job`], the
/// same code path the sweep-farm daemon serves from.
pub(crate) fn run_app(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "app",
        "payload",
        "msg-dist",
        "gpus",
        "pcie",
        "iterations",
        "scale-down",
        "seed",
        "windows",
        "flow-control",
        "intra-jobs",
        "ber",
        "fault-profile",
        "run-budget",
        "json",
    ])?;
    let req = job_request_from(args, farm::JobKind::Run)?;
    let intra_jobs = intra_jobs_from(args, 1)?;
    let out = farm::execute_job(&req, &WorkerPool::serial(), intra_jobs)?;
    if let Some(path) = args.get("json") {
        let mut doc = String::from("{\n  \"schema_version\": 1,\n  \"reports\": [\n");
        for (i, report) in out.reports_json.iter().enumerate() {
            doc.push_str("    ");
            doc.push_str(report);
            doc.push_str(if i + 1 < out.reports_json.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        doc.push_str("  ]\n}\n");
        std::fs::write(path, doc).map_err(|e| CliError::io(path, e))?;
    }
    Ok(out.text)
}

fn find_paradigm(name: &str) -> Result<Paradigm, ArgError> {
    [
        Paradigm::BulkDma,
        Paradigm::P2pStores,
        Paradigm::FinePack,
        Paradigm::WriteCombining,
        Paradigm::Gps,
        Paradigm::InfiniteBw,
    ]
    .into_iter()
    .find(|p| p.to_string() == name)
    .ok_or(ArgError::Invalid {
        key: "paradigm".into(),
        value: name.to_string(),
        expected: "one of the paradigm names (see `help`)",
    })
}

/// `faults [--app <name>] [--paradigm <name>] ...`
pub(crate) fn faults(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "app",
        "payload",
        "msg-dist",
        "gpus",
        "paradigm",
        "iterations",
        "scale-down",
        "seed",
        "jobs",
        "flow-control",
        "intra-jobs",
        "fault-profile",
    ])?;
    let app = find_app(args, args.get_or("app", "pagerank"))?;
    let spec = spec_from(args)?;
    let pool = pool_from(args)?;
    let paradigm = find_paradigm(args.get_or("paradigm", "finepack"))?;
    let mut cfg = SystemConfig::paper(spec.num_gpus)
        .with_flow_control(flow_control_from(args)?)
        .with_intra_jobs(intra_jobs_from(args, 1)?);
    if let Some(profile) = fault_profile_from(args)? {
        cfg = cfg.with_faults(profile);
    }
    let bers = [0.0, 1e-8, 1e-7, 1e-6, 1e-5];
    let points = fault_sweep(app.as_ref(), &cfg, &spec, paradigm, &bers, &pool);
    let mut t = Table::new(
        format!(
            "{} under link faults ({paradigm}, {} GPUs)",
            app.name(),
            spec.num_gpus
        ),
        &[
            "BER",
            "slowdown",
            "wire bytes",
            "replayed",
            "replay %",
            "retrains",
            "worst flush",
        ],
    );
    for point in &points {
        match &point.outcome {
            Ok(r) => {
                let total = r.traffic.total();
                let worst = r
                    .replay_amplification
                    .rows()
                    .into_iter()
                    .max_by_key(|(_, bytes)| *bytes)
                    .map(|(label, bytes)| format!("{label} ({bytes}B)"))
                    .unwrap_or_else(|| "-".into());
                t.row(&[
                    format!("{:.0e}", point.ber),
                    point
                        .slowdown
                        .map(|s| format!("{s:.3}x"))
                        .unwrap_or_else(|| "-".into()),
                    total.to_string(),
                    r.replayed_bytes.to_string(),
                    format!(
                        "{:.2}%",
                        100.0 * r.replayed_bytes as f64 / total.max(1) as f64
                    ),
                    r.link_retrains.to_string(),
                    worst,
                ]);
            }
            Err(e) => t.row(&[
                format!("{:.0e}", point.ber),
                "dead".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                e.to_string(),
            ]),
        }
    }
    Ok(t.render())
}

/// `suite ...`: delegates to [`farm::execute_job`], the same code path
/// the sweep-farm daemon serves from.
pub(crate) fn suite_table(args: &Args) -> Result<CmdOut, CliError> {
    args.expect_only(&[
        "gpus",
        "pcie",
        "iterations",
        "scale-down",
        "seed",
        "jobs",
        "flow-control",
        "intra-jobs",
        "retries",
        "chaos",
        "run-budget",
    ])?;
    let req = job_request_from(args, farm::JobKind::Suite)?;
    let pool = pool_from(args)?;
    let intra_jobs = intra_jobs_from(args, 1)?;
    let out = farm::execute_job(&req, &pool, intra_jobs)?;
    Ok(CmdOut {
        text: out.text,
        partial: out.partial,
    })
}

/// `collectives ...`: the AI-training collectives study — a fine-vs-bulk
/// message-size crossover table per collective, then a weak-scaling
/// curve over growing GPU counts. The report text never includes
/// wall-clock numbers, so it stays byte-identical across
/// `--jobs`/`--intra-jobs`; throughput goes to `--bench-out` JSON.
pub(crate) fn collectives(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "collective",
        "payload",
        "msg-dist",
        "gpus",
        "max-gpus",
        "pcie",
        "iterations",
        "scale-down",
        "seed",
        "windows",
        "flow-control",
        "jobs",
        "intra-jobs",
        "bench-out",
        "min-events-per-sec",
    ])?;
    // The crossover table at a fixed GPU count uses the paper's strong
    // scaling (same semantics as `run`); the scaling section below
    // switches to weak scaling, the data-parallel training regime.
    let spec = spec_from_gpus(args, 8)?;
    let cfg = system_from(args, &spec)?;
    let pool = pool_from(args)?;
    let tuning = tuning_from(args)?;
    let max_gpus: u8 = args.get_parsed("max-gpus", 16u8, "integer 2-64")?;
    if max_gpus < spec.num_gpus {
        return Err(ArgError::Invalid {
            key: "max-gpus".into(),
            value: max_gpus.to_string(),
            expected: "at least --gpus",
        }
        .into());
    }
    let names: Vec<&'static str> =
        match args.get_or("collective", "all") {
            "all" => COLLECTIVE_REGISTRY.iter().map(|(n, _)| *n).collect(),
            name => {
                let entry = COLLECTIVE_REGISTRY.iter().find(|(n, _)| *n == name).ok_or(
                    ArgError::Invalid {
                        key: "collective".into(),
                        value: name.to_string(),
                        expected: "a collective name or `all` (see `help`)",
                    },
                )?;
                vec![entry.0]
            }
        };

    let clock = WallClock::start();
    let mut total_events = 0u64;
    let mut out = String::new();
    let paradigms = [Paradigm::BulkDma, Paradigm::P2pStores, Paradigm::FinePack];

    // Crossover: the same collective under a ladder of message sizes,
    // from FinePack's home turf (tens of bytes) to DMA's (tens of KB).
    let ladder: Vec<MsgDist> = {
        let mut l = vec![
            MsgDist::Fixed(16),
            MsgDist::Fixed(256),
            MsgDist::Fixed(4096),
            MsgDist::Fixed(65536),
        ];
        if !l.contains(&tuning.msg) {
            l.push(tuning.msg);
        }
        l
    };
    for name in &names {
        let apps: Vec<Box<dyn Workload>> = ladder
            .iter()
            .map(|m| {
                workloads::collective(name, &CollectiveTuning { msg: *m, ..tuning })
                    .expect("registry name")
            })
            .collect();
        let prepared = system::prepare_apps(&apps, &cfg, &spec, &pool);
        let res = run_suite_prepared(&prepared, &cfg, &paradigms, &pool);
        total_events += res.sim_events;
        let mut t = Table::new(
            format!(
                "{name}: message-size crossover on {} GPUs, {}B payload/GPU",
                spec.num_gpus, tuning.payload_bytes
            ),
            &["msg-dist", "bulk-dma", "p2p-stores", "finepack", "best"],
        );
        for (m, row) in ladder.iter().zip(&res.rows) {
            let cell = |p| {
                row.speedup(p)
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into())
            };
            let best = row
                .speedups
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(p, _)| p.to_string())
                .unwrap_or_default();
            t.row(&[
                m.to_string(),
                cell(Paradigm::BulkDma),
                cell(Paradigm::P2pStores),
                cell(Paradigm::FinePack),
                best,
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }

    // Weak scaling: GPU counts double from 2 up to --max-gpus.
    let mut counts = Vec::new();
    let mut c = 2u8;
    while c <= max_gpus {
        counts.push(c);
        if c > u8::MAX / 2 {
            break;
        }
        c *= 2;
    }
    if counts.last() != Some(&max_gpus) {
        counts.push(max_gpus);
    }
    let apps: Vec<Box<dyn Workload>> = names
        .iter()
        .map(|n| workloads::collective(n, &tuning).expect("registry name"))
        .collect();
    // Weak scaling: per-GPU work stays constant as the cluster grows —
    // the data-parallel training regime the collectives model.
    let mut weak = spec;
    weak.scaling = ScalingMode::Weak;
    let make_cfg = |n: u8| {
        let mut s = weak;
        s.num_gpus = n;
        system_from(args, &s).expect("flags validated on the base spec")
    };
    let curve = scaling_curve(
        &apps,
        &weak,
        &counts,
        &make_cfg,
        &[Paradigm::BulkDma, Paradigm::FinePack],
        &pool,
    );
    let mut t = Table::new(
        format!(
            "weak scaling to {max_gpus} GPUs ({}B payload/GPU, {})",
            tuning.payload_bytes, tuning.msg
        ),
        &["collective", "gpus", "bulk-dma", "finepack", "fp/dma"],
    );
    for (i, name) in names.iter().enumerate() {
        for point in &curve {
            let row = &point.rows[i];
            let dma = row.speedup(Paradigm::BulkDma);
            let fp = row.speedup(Paradigm::FinePack);
            let cell = |v: Option<f64>| v.map(|s| format!("{s:.2}x")).unwrap_or_else(|| "-".into());
            let ratio = match (fp, dma) {
                (Some(f), Some(d)) if d > 0.0 => format!("{:.2}", f / d),
                _ => "-".into(),
            };
            t.row(&[
                (*name).to_string(),
                point.num_gpus.to_string(),
                cell(dma),
                cell(fp),
                ratio,
            ]);
        }
    }
    for point in &curve {
        total_events += point.sim_events;
    }
    out.push_str(&t.render());
    let _ = writeln!(out, "total sim events: {total_events}");

    let wall = clock.elapsed().as_secs_f64();
    let eps = total_events as f64 / wall.max(f64::MIN_POSITIVE);
    if let Some(path) = args.get("bench-out") {
        let json = format!(
            "{{\n  \"bench\": \"collectives\",\n  \"schema_version\": 1,\n  \
             \"gpus\": {},\n  \"max_gpus\": {},\n  \"payload_bytes\": {},\n  \
             \"msg_dist\": \"{}\",\n  \"collectives\": {},\n  \"sim_events\": {},\n  \
             \"wall_seconds\": {:.6},\n  \"events_per_sec\": {:.1}\n}}\n",
            spec.num_gpus,
            max_gpus,
            tuning.payload_bytes,
            tuning.msg,
            names.len(),
            total_events,
            wall,
            eps,
        );
        std::fs::write(path, json).map_err(|e| CliError::io(path, e))?;
    }
    let floor: f64 = args.get_parsed("min-events-per-sec", 0.0f64, "events/s floor")?;
    if floor > 0.0 && eps < floor {
        return Err(CliError::Failed(format!(
            "collectives throughput {eps:.0} events/s is below the floor {floor:.0}"
        )));
    }
    Ok(out)
}

/// The default farm socket path.
const DEFAULT_SOCKET: &str = "finepack-farm.sock";

/// `serve [--socket PATH] ...`: run the sweep-farm daemon until a
/// `shutdown` command arrives on the socket.
pub(crate) fn serve(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["socket", "cache-entries", "jobs", "intra-jobs", "trace-out"])?;
    let socket = args.get_or("socket", DEFAULT_SOCKET).to_string();
    let config = farm::ServeConfig {
        socket: socket.clone(),
        cache_entries: args.get_parsed("cache-entries", 64usize, "cache entry capacity")?,
        jobs: match args.get("jobs") {
            None => available_parallelism(),
            Some(_) => {
                let pool = pool_from(args)?;
                pool.jobs()
            }
        },
        intra_jobs: intra_jobs_from(args, 1)?,
        trace_out: args.get("trace-out").map(str::to_string),
    };
    let cache_entries = config.cache_entries;
    let server = farm::Server::bind(config)?;
    // Announce readiness before blocking so wrappers know the socket is
    // live (the returned text only prints after shutdown).
    println!(
        "farm: serving on {socket} (cache capacity {cache_entries}, {} build)",
        farm::build_fingerprint()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run()?;
    Ok(format!("farm: daemon on {socket} shut down cleanly\n"))
}

/// `submit [--socket PATH] [--kind run|suite] [--audit true] ...`:
/// submit one job to a running daemon and print the served report.
/// Stdout carries exactly the report bytes (so it can be diffed against
/// the one-shot `run`/`suite` output); job lifecycle lines go to
/// stderr.
pub(crate) fn submit(args: &Args) -> Result<CmdOut, CliError> {
    args.expect_only(&[
        "socket",
        "kind",
        "app",
        "payload",
        "msg-dist",
        "gpus",
        "pcie",
        "iterations",
        "scale-down",
        "seed",
        "windows",
        "flow-control",
        "ber",
        "fault-profile",
        "retries",
        "chaos",
        "run-budget",
        "audit",
    ])?;
    let kind = match args.get_or("kind", "run") {
        "run" => farm::JobKind::Run,
        "suite" => farm::JobKind::Suite,
        other => {
            return Err(ArgError::Invalid {
                key: "kind".into(),
                value: other.to_string(),
                expected: "run or suite",
            }
            .into())
        }
    };
    let mut req = job_request_from(args, kind)?;
    req.audit = match args.get_or("audit", "false") {
        "true" => true,
        "false" => false,
        other => {
            return Err(ArgError::Invalid {
                key: "audit".into(),
                value: other.to_string(),
                expected: "true or false",
            }
            .into())
        }
    };
    let socket = args.get_or("socket", DEFAULT_SOCKET);
    let outcome = farm::submit(socket, &req, |job| {
        eprintln!("farm: job {job} missed the cache, simulating");
    })?;
    if outcome.cache_hit {
        eprintln!(
            "farm: job {} served from cache (fingerprint {}, hit {})",
            outcome.job, outcome.fingerprint, outcome.hits
        );
    }
    if outcome.audit_clean == Some(false) {
        return Err(CliError::Failed(format!(
            "conservation audit found violations for job {} (fingerprint {})",
            outcome.job, outcome.fingerprint
        )));
    }
    Ok(CmdOut {
        text: outcome.report,
        partial: outcome.partial,
    })
}

/// `status [--socket PATH]`: report a running daemon's counters.
pub(crate) fn farm_status(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["socket"])?;
    let socket = args.get_or("socket", DEFAULT_SOCKET);
    let s = farm::status(socket)?;
    let mut out = String::new();
    let _ = writeln!(out, "farm status on {socket}:");
    let _ = writeln!(out, "  version: {} (build {})", s.version, s.build);
    let _ = writeln!(out, "  jobs submitted: {}", s.jobs_submitted);
    let _ = writeln!(out, "  sim events executed: {}", s.sim_events_total);
    let _ = writeln!(
        out,
        "  cache: {} of {} entries; {} hits, {} misses, {} evictions",
        s.cache_entries, s.cache_capacity, s.cache_hits, s.cache_misses, s.cache_evictions
    );
    Ok(out)
}

/// `shutdown [--socket PATH]`: stop a running daemon cleanly.
pub(crate) fn farm_shutdown(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["socket"])?;
    let socket = args.get_or("socket", DEFAULT_SOCKET);
    farm::shutdown(socket)?;
    Ok(format!("farm: daemon on {socket} shut down\n"))
}

/// `version` / `--version`: crate version plus build fingerprint (the
/// same identity folded into every cache key).
pub(crate) fn version() -> String {
    farm::version_line()
}

/// `sweep-subheader ...`
pub(crate) fn sweep_subheader(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "app",
        "payload",
        "msg-dist",
        "gpus",
        "scale-down",
        "iterations",
        "seed",
        "jobs",
    ])?;
    let spec = spec_from(args)?;
    let cfg = SystemConfig::paper(spec.num_gpus);
    let pool = pool_from(args)?;
    let apps: Vec<Box<dyn Workload>> = match args.get("app") {
        Some(name) => vec![find_app(args, name)?],
        None => suite(),
    };
    let sweep = subheader_sweep(&apps, &cfg, &spec, &pool);
    let mut t = Table::new(
        "FinePack sub-header sweep (geomean speedup)",
        &["subheader", "window", "speedup"],
    );
    for (bytes, speedup) in sweep {
        let f = SubheaderFormat::new(bytes).expect("valid");
        t.row(&[
            format!("{bytes}B"),
            format!("{}B", f.addressable_range()),
            format!("{speedup:.2}x"),
        ]);
    }
    Ok(t.render())
}

/// `area [--gpus N]`
pub(crate) fn area(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["gpus"])?;
    let gpus: u32 = args.get_parsed("gpus", 4u32, "integer >= 2")?;
    let cfg = FinePackConfig::paper(gpus);
    let model = AreaModel::new(cfg);
    let mut out = String::new();
    let _ = writeln!(out, "FinePack SRAM footprint at {gpus} GPUs:");
    let _ = writeln!(
        out,
        "  remote write queue: {} entries, {}KB data ({} partitions)",
        cfg.total_entries(),
        cfg.data_sram_bytes() >> 10,
        cfg.num_partitions
    );
    let _ = writeln!(
        out,
        "  total incl. tags/masks/ingress buffer: {}KB",
        model.total_bytes() >> 10
    );
    let _ = writeln!(
        out,
        "  fraction of GV100 cache: {:.3}%  |  of GA100 cache: {:.3}%",
        100.0 * model.fraction_of_cache(AreaModel::GV100_CACHE_BYTES),
        100.0 * model.fraction_of_cache(AreaModel::GA100_CACHE_BYTES)
    );
    Ok(out)
}

/// `trace [--app <name>] [--paradigm <name>] [--format chrome|csv] ...`:
/// runs one (app, paradigm) with a ring collector attached and exports
/// the recorded lifecycle events and time-series samples.
pub(crate) fn trace(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "app",
        "payload",
        "msg-dist",
        "paradigm",
        "gpus",
        "pcie",
        "iterations",
        "scale-down",
        "seed",
        "windows",
        "flow-control",
        "intra-jobs",
        "ber",
        "fault-profile",
        "run-budget",
        "format",
        "out",
        "sample-interval",
        "capacity",
    ])?;
    let app = find_app(args, args.get_or("app", "jacobi"))?;
    let spec = spec_from(args)?;
    let cfg = system_from(args, &spec)?;
    let paradigm = find_paradigm(args.get_or("paradigm", "finepack"))?;
    let format = args.get_or("format", "chrome");
    if !matches!(format, "chrome" | "csv") {
        return Err(CliError::Usage(format!(
            "--format must be chrome or csv, got `{format}`"
        )));
    }
    let sample_ns: u64 = args.get_parsed(
        "sample-interval",
        100u64,
        "nanoseconds (0 disables sampling)",
    )?;
    let capacity: usize = args.get_parsed("capacity", 1usize << 20, "positive ring capacity")?;
    if capacity == 0 {
        return Err(CliError::Usage("--capacity must be positive".into()));
    }
    let out_path = args.get_or(
        "out",
        if format == "chrome" {
            "trace.json"
        } else {
            "trace.csv"
        },
    );

    let prep = PreparedWorkload::new(app.as_ref(), &cfg, &spec);
    let (handle, ring) = TraceHandle::ring(capacity, capacity);
    let sample_every = (sample_ns > 0).then(|| SimTime::from_ns(sample_ns));
    let report = prep
        .try_run_traced(&cfg, paradigm, handle, sample_every)
        .map_err(|e| CliError::Failed(e.to_string()))?;

    let (events, samples, dropped): (Vec<TraceEvent>, Vec<Sample>, u64) = {
        let collector = ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (
            collector.events().copied().collect(),
            collector.samples().copied().collect(),
            collector.dropped_events(),
        )
    };

    // Self-check: with nothing dropped, per-reason flush events must
    // equal the run's aggregate counters exactly.
    if dropped == 0 {
        for reason in FlushReason::ALL {
            let in_trace = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Flush { reason: r } if r == reason.label()))
                .count() as u64;
            let in_report = report.egress.flushes_for(reason);
            if in_trace != in_report {
                return Err(CliError::Failed(format!(
                    "trace self-check failed: {in_trace} `{}` flush events \
                     vs {in_report} in the run's aggregates",
                    reason.label()
                )));
            }
        }
    }

    let rendered = match format {
        "chrome" => telemetry::chrome_trace(&events, &samples),
        _ => telemetry::time_series_csv(&samples),
    };
    std::fs::write(out_path, &rendered).map_err(|e| CliError::io(out_path, e))?;

    let mut by_label: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for e in &events {
        *by_label.entry(e.kind.label()).or_insert(0) += 1;
    }
    let mut t = Table::new(
        format!(
            "trace of {} under {paradigm} ({} GPUs, sim time {})",
            app.name(),
            spec.num_gpus,
            report.total_time
        ),
        &["event", "count"],
    );
    for (label, count) in &by_label {
        t.row(&[(*label).to_string(), count.to_string()]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "{} events ({} dropped), {} samples -> {out_path} ({format})",
        events.len(),
        dropped,
        samples.len()
    );
    if dropped > 0 {
        let _ = writeln!(
            out,
            "note: ring overflowed; the file holds the run's last {capacity} events \
             (raise --capacity for full coverage)"
        );
    }
    Ok(out)
}

/// `audit [--app NAME] [--paradigm NAME] [--gpus N] [--iterations K]
/// [--scale-down S] [--seed S]`
///
/// Sweeps the conservation auditor over the configuration matrix —
/// every PCIe generation × open/credited flow control × fault profile ×
/// paradigm (FinePack additionally under both RWQ allocation policies)
/// — and fails (non-zero exit) with a per-law report if any run
/// violates a conservation law.
pub(crate) fn audit(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "app",
        "payload",
        "msg-dist",
        "paradigm",
        "gpus",
        "iterations",
        "scale-down",
        "seed",
        "intra-jobs",
    ])?;
    let app = find_app(args, args.get_or("app", "jacobi"))?;
    let spec = spec_from(args)?;
    let intra_jobs = intra_jobs_from(args, 1)?;
    let paradigms: Vec<Paradigm> = match args.get("paradigm") {
        Some(name) => vec![find_paradigm(name)?],
        None => vec![
            Paradigm::BulkDma,
            Paradigm::P2pStores,
            Paradigm::FinePack,
            Paradigm::WriteCombining,
            Paradigm::Gps,
            Paradigm::InfiniteBw,
        ],
    };
    // Trace replay is independent of every swept axis: prepare once.
    let base = SystemConfig::paper(spec.num_gpus);
    let prep = PreparedWorkload::new(app.as_ref(), &base, &spec);

    let faults: [(&str, Option<FaultProfile>); 3] = [
        ("clean", None),
        ("ber-1e-6", Some(FaultProfile::new(1e-6))),
        (
            "outage",
            Some(FaultProfile::new(0.0).with_outage(0, SimTime::from_us(5), SimTime::from_us(60))),
        ),
    ];
    let allocations_for = |p: Paradigm| -> &'static [(&'static str, AllocationPolicy)] {
        if p == Paradigm::FinePack {
            &[
                ("static", AllocationPolicy::StaticPartition),
                ("dynamic", AllocationPolicy::DynamicShared),
            ]
        } else {
            &[("static", AllocationPolicy::StaticPartition)]
        }
    };

    let mut runs = 0u64;
    let mut law_totals = [0u64; 5];
    let mut failures = String::new();
    for gen in PcieGen::ALL {
        for open in [false, true] {
            for (fault_name, profile) in &faults {
                for &paradigm in &paradigms {
                    for (alloc_name, alloc) in allocations_for(paradigm) {
                        let mut cfg = SystemConfig::paper(spec.num_gpus)
                            .with_pcie_gen(gen)
                            .with_intra_jobs(intra_jobs);
                        if open {
                            cfg = cfg.with_flow_control(FlowControlMode::Open);
                        }
                        if let Some(p) = profile {
                            cfg = cfg.with_faults(*p);
                        }
                        if paradigm == Paradigm::FinePack {
                            cfg = cfg.with_finepack(
                                FinePackConfig::paper(u32::from(spec.num_gpus))
                                    .with_allocation(*alloc),
                            );
                        }
                        runs += 1;
                        let point = format!(
                            "{gen:?}/{}/{fault_name}/{paradigm}/{alloc_name}",
                            if open { "open" } else { "credited" }
                        );
                        match audit_run(&prep, &cfg, paradigm) {
                            Ok(outcome) => {
                                for (total, count) in law_totals.iter_mut().zip(outcome.law_counts)
                                {
                                    *total += count;
                                }
                                if !outcome.is_clean() {
                                    let _ = writeln!(failures, "{point}:\n{}", outcome.rendered);
                                }
                            }
                            Err(e) => {
                                let _ = writeln!(failures, "{point}: run died: {e}");
                            }
                        }
                    }
                }
            }
        }
    }

    let mut t = Table::new(
        format!(
            "conservation audit of {} ({} GPUs, {} matrix points)",
            app.name(),
            spec.num_gpus,
            runs
        ),
        &["law", "violations"],
    );
    for (law, total) in Law::ALL.iter().zip(law_totals) {
        t.row(&[law.label().to_string(), total.to_string()]);
    }
    let mut out = t.render();
    if failures.is_empty() {
        let _ = writeln!(out, "all {runs} matrix points clean");
        Ok(out)
    } else {
        let _ = writeln!(out, "\nviolating points:\n{failures}");
        Err(CliError::Failed(out))
    }
}

/// One timed pass over an already-prepared suite, reduced to a
/// throughput report plus the `Debug`-rendered rows used for the
/// determinism cross-check. Workload elaboration and single-GPU
/// baselines happen before the clock starts, so the measurement covers
/// the event core alone.
fn timed_prepared(
    apps: &[system::PreparedApp],
    cfg: &SystemConfig,
    pool: &WorkerPool,
) -> (ThroughputReport, String) {
    let clock = WallClock::start();
    let result = run_suite_prepared(apps, cfg, &Paradigm::FIG9, pool);
    let report = ThroughputReport::new(clock.elapsed(), result.sim_events, result.sim_time);
    (report, format!("{:?}", result.rows))
}

/// Mean and sample standard deviation (σ, n-1 denominator; zero for a
/// single measurement).
fn mean_sigma(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = if xs.len() > 1 {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    (mean, var.sqrt())
}

/// Runs `reps` timed passes after `warmup` untimed ones, returning the
/// per-rep reports, the first pass's rendered rows, and whether every
/// rep (warmup included) produced identical rows.
fn measured_reps(
    apps: &[system::PreparedApp],
    cfg: &SystemConfig,
    pool: &WorkerPool,
    warmup: u32,
    reps: u32,
) -> (Vec<ThroughputReport>, String, bool) {
    let mut rows: Option<String> = None;
    let mut stable = true;
    let mut check = |r: String| match &rows {
        None => rows = Some(r),
        Some(first) => stable &= *first == r,
    };
    for _ in 0..warmup {
        let (_, r) = timed_prepared(apps, cfg, pool);
        check(r);
    }
    let mut reports = Vec::with_capacity(reps as usize);
    for _ in 0..reps.max(1) {
        let (report, r) = timed_prepared(apps, cfg, pool);
        check(r);
        reports.push(report);
    }
    (reports, rows.expect("at least one rep"), stable)
}

/// `bench ...`: times the full suite serially and under the worker
/// pool, checks the outputs match, and writes the comparison as JSON.
pub(crate) fn bench(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "gpus",
        "pcie",
        "iterations",
        "scale-down",
        "seed",
        "jobs",
        "flow-control",
        "intra-jobs",
        "run-budget",
        "out",
        "warmup",
        "reps",
        "min-events-per-sec",
    ])?;
    let spec = spec_from(args)?;
    // The sweep comparison keeps runs serial inside so the jobs axis is
    // the only variable; the intra-run section below owns the
    // `--intra-jobs` axis (default: the machine's parallelism).
    let cfg = system_from(args, &spec)?.with_intra_jobs(1);
    let pool = pool_from(args)?;
    let intra_jobs = intra_jobs_from(args, available_parallelism())?;
    let out_path = args.get_or("out", "BENCH_harness.json");
    let warmup: u32 = args.get_parsed("warmup", 1u32, "warm-up pass count")?;
    let reps: u32 = args.get_parsed("reps", 3u32, "positive measured-rep count")?;
    let floor: f64 = args.get_parsed("min-events-per-sec", 0.0f64, "serial events/s floor")?;
    let apps = suite();

    // Elaborate traces and single-GPU baselines once, outside every
    // timed region: the benchmark measures event-core throughput, not
    // workload preparation. Prep cost is still reported, separately.
    let prep_clock = WallClock::start();
    let prepared = system::prepare_apps(&apps, &cfg, &spec, &WorkerPool::serial());
    let prep_seconds = prep_clock.elapsed().as_secs_f64();

    // Warm-up passes pay first-touch costs (page faults, lazy allocator
    // growth) so no measured rep does; then `reps` measured passes give
    // a mean and a dispersion instead of a single noisy sample.
    let (serial_reps, serial_rows, serial_stable) =
        measured_reps(&prepared, &cfg, &WorkerPool::serial(), warmup, reps);
    // Same warmup for the pool: its first-touch costs (thread spawn,
    // per-worker allocator growth) must not bias the speedup ratio.
    let (parallel_reps, parallel_rows, parallel_stable) =
        measured_reps(&prepared, &cfg, &pool, warmup, reps);
    let deterministic = serial_stable && parallel_stable && serial_rows == parallel_rows;
    let eps = |r: &ThroughputReport| r.events_per_sec();
    let wall = |r: &ThroughputReport| r.wall.as_secs_f64();
    let (serial_eps, serial_eps_sigma) =
        mean_sigma(&serial_reps.iter().map(eps).collect::<Vec<_>>());
    let (serial_wall, serial_wall_sigma) =
        mean_sigma(&serial_reps.iter().map(wall).collect::<Vec<_>>());
    let (parallel_eps, parallel_eps_sigma) =
        mean_sigma(&parallel_reps.iter().map(eps).collect::<Vec<_>>());
    let (parallel_wall, parallel_wall_sigma) =
        mean_sigma(&parallel_reps.iter().map(wall).collect::<Vec<_>>());
    let speedup = serial_wall / parallel_wall.max(f64::MIN_POSITIVE);

    // Intra-run sharding throughput: one serial-pool suite pass over an
    // 8-GPU system, event core serial vs sharded across `intra_jobs`
    // workers. Big single runs are exactly where intra-run sharding is
    // meant to pay off, independent of sweep fan-out.
    const INTRA_GPUS: u8 = 8;
    let mut spec8 = RunSpec::paper(INTRA_GPUS);
    spec8.iterations = spec.iterations;
    spec8.scale_down = spec.scale_down;
    spec8.seed = spec.seed;
    spec8.validate();
    let cfg8 = SystemConfig::paper(INTRA_GPUS)
        .with_pcie_gen(cfg.pcie_gen)
        .with_flow_control(cfg.flow_control);
    let prep8_clock = WallClock::start();
    let prepared8 = system::prepare_apps(&apps, &cfg8, &spec8, &WorkerPool::serial());
    let prep8_seconds = prep8_clock.elapsed().as_secs_f64();
    let _ = run_suite_prepared(&prepared8, &cfg8, &Paradigm::FIG9, &WorkerPool::serial());
    let (intra_serial, intra_serial_rows) =
        timed_prepared(&prepared8, &cfg8.with_intra_jobs(1), &WorkerPool::serial());
    let (intra_sharded, intra_sharded_rows) = timed_prepared(
        &prepared8,
        &cfg8.with_intra_jobs(intra_jobs),
        &WorkerPool::serial(),
    );
    let intra_deterministic = intra_serial_rows == intra_sharded_rows;
    let intra_speedup = intra_sharded.speedup_over(&intra_serial);

    // A sub-1.0 "speedup" on a box with one usable core is thread
    // overhead, not a harness regression: record the machine's
    // parallelism alongside the numbers so consumers can tell.
    let available = available_parallelism();
    let single_core = available == 1 || pool.jobs() == 1;

    let queue_backend = sim_engine::EventQueue::<u8>::new().backend_name();
    let json = format!(
        "{{\n  \"bench\": \"harness\",\n  \"schema_version\": 1,\n  \
         \"queue_backend\": \"{}\",\n  \"gpus\": {},\n  \
         \"pcie\": \"{}\",\n  \
         \"iterations\": {},\n  \"scale_down\": {},\n  \"seed\": {},\n  \"apps\": {},\n  \
         \"jobs\": {},\n  \"intra_jobs\": {},\n  \"available_parallelism\": {},\n  \
         \"single_core\": {},\n  \"warmup_reps\": {},\n  \"measured_reps\": {},\n  \
         \"prep_seconds\": {:.6},\n  \
         \"sim_events\": {},\n  \"sim_time_ps\": {},\n  \
         \"serial\": {{ \"wall_seconds\": {:.6}, \"wall_seconds_sigma\": {:.6}, \
         \"events_per_sec\": {:.1}, \"events_per_sec_sigma\": {:.1}, \
         \"sim_ps_per_wall_sec\": {:.1} }},\n  \
         \"parallel\": {{ \"wall_seconds\": {:.6}, \"wall_seconds_sigma\": {:.6}, \
         \"events_per_sec\": {:.1}, \"events_per_sec_sigma\": {:.1}, \
         \"sim_ps_per_wall_sec\": {:.1} }},\n  \"speedup\": {:.3},\n  \
         \"parallel_efficiency\": {:.3},\n  \"deterministic\": {},\n  \
         \"intra_run\": {{ \"gpus\": {}, \"intra_jobs\": {}, \"prep_seconds\": {:.6}, \
         \"serial\": {{ \"wall_seconds\": {:.6}, \"events_per_sec\": {:.1} }}, \
         \"sharded\": {{ \"wall_seconds\": {:.6}, \"events_per_sec\": {:.1} }}, \
         \"speedup\": {:.3}, \"deterministic\": {} }}\n}}\n",
        queue_backend,
        spec.num_gpus,
        cfg.pcie_gen,
        spec.iterations,
        spec.scale_down,
        spec.seed,
        apps.len(),
        pool.jobs(),
        intra_jobs,
        available,
        single_core,
        warmup,
        serial_reps.len(),
        prep_seconds,
        serial_reps[0].events,
        serial_reps[0].sim_time.as_ps(),
        serial_wall,
        serial_wall_sigma,
        serial_eps,
        serial_eps_sigma,
        serial_reps[0].sim_time.as_ps() as f64 / serial_wall.max(f64::MIN_POSITIVE),
        parallel_wall,
        parallel_wall_sigma,
        parallel_eps,
        parallel_eps_sigma,
        parallel_reps[0].sim_time.as_ps() as f64 / parallel_wall.max(f64::MIN_POSITIVE),
        speedup,
        speedup / pool.jobs() as f64,
        deterministic,
        INTRA_GPUS,
        intra_jobs,
        prep8_seconds,
        intra_serial.wall.as_secs_f64(),
        intra_serial.events_per_sec(),
        intra_sharded.wall.as_secs_f64(),
        intra_sharded.events_per_sec(),
        intra_speedup,
        intra_deterministic,
    );
    std::fs::write(out_path, &json).map_err(|e| CliError::io(out_path, e))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "harness bench: {} apps x {} paradigms, {} GPUs, scale-down {}, \
         {} queue, {warmup} warmup + {} reps (prep {:.0} ms untimed)",
        apps.len(),
        Paradigm::FIG9.len(),
        spec.num_gpus,
        spec.scale_down,
        queue_backend,
        serial_reps.len(),
        1e3 * prep_seconds,
    );
    let _ = writeln!(
        out,
        "  serial   (1 job):  {:>9.2} ms, {:.0} events/s (sigma {:.0})",
        1e3 * serial_wall,
        serial_eps,
        serial_eps_sigma,
    );
    let _ = writeln!(
        out,
        "  parallel ({} jobs): {:>8.2} ms, {:.0} events/s (sigma {:.0})",
        pool.jobs(),
        1e3 * parallel_wall,
        parallel_eps,
        parallel_eps_sigma,
    );
    let _ = writeln!(
        out,
        "  speedup: {speedup:.2}x  deterministic: {deterministic}  -> {out_path}"
    );
    let _ = writeln!(
        out,
        "  intra-run ({INTRA_GPUS} GPUs): serial {:.2} ms, {intra_jobs} shard workers {:.2} ms, \
         speedup {intra_speedup:.2}x  deterministic: {intra_deterministic}",
        1e3 * intra_serial.wall.as_secs_f64(),
        1e3 * intra_sharded.wall.as_secs_f64(),
    );
    if single_core {
        let _ = writeln!(
            out,
            "  note: single-core run (available parallelism {available}, jobs {}); \
             speedup reflects thread overhead, not harness performance",
            pool.jobs()
        );
    }
    single_core_warning(&mut out);
    if !deterministic {
        return Err(CliError::Failed(format!(
            "parallel suite output diverged from serial (jobs = {})",
            pool.jobs()
        )));
    }
    if !intra_deterministic {
        return Err(CliError::Failed(format!(
            "sharded suite output diverged from serial (intra-jobs = {intra_jobs})"
        )));
    }
    // The CI regression gate: fail when mean serial throughput drops
    // below the committed floor. Overridable per invocation by passing
    // a lower (or zero) `--min-events-per-sec`.
    if floor > 0.0 && serial_eps < floor {
        let _ = writeln!(
            out,
            "FAIL: serial throughput {serial_eps:.0} events/s is below the floor \
             {floor:.0} (sigma {serial_eps_sigma:.0}); lower or drop \
             --min-events-per-sec to override"
        );
        return Err(CliError::Failed(out));
    }
    if floor > 0.0 {
        let _ = writeln!(
            out,
            "  bench gate: {serial_eps:.0} events/s >= floor {floor:.0}"
        );
    }
    Ok(out)
}

/// `record --app <name> --out <dir> ...`
pub(crate) fn record(args: &Args) -> Result<String, CliError> {
    args.expect_only(&[
        "app",
        "payload",
        "msg-dist",
        "out",
        "gpus",
        "iterations",
        "scale-down",
        "seed",
    ])?;
    let app = find_app(args, args.get_or("app", "pagerank"))?;
    let out_dir = args
        .get("out")
        .ok_or_else(|| CliError::Usage("record needs --out <dir>".into()))?;
    let spec = spec_from(args)?;
    std::fs::create_dir_all(out_dir).map_err(|e| CliError::io(out_dir, e))?;
    let mut report = String::new();
    for iter in 0..spec.iterations {
        for g in 0..spec.num_gpus {
            let trace = app.trace(&spec, iter, GpuId::new(g));
            let bytes = write_trace(&trace);
            let path = format!("{out_dir}/{}.g{g}.i{iter}.fpkt", app.name());
            std::fs::write(&path, &bytes).map_err(|e| CliError::io(&path, e))?;
            let _ = writeln!(
                report,
                "{path}: {} ops, {} stores, {} bytes",
                trace.len(),
                trace.store_count(),
                bytes.len()
            );
        }
    }
    Ok(report)
}

fn load_trace(args: &Args) -> Result<gpu_model::KernelTrace, CliError> {
    let path = args
        .get("trace")
        .ok_or_else(|| CliError::Usage("needs --trace <file>".into()))?;
    let bytes = std::fs::read(path).map_err(|e| CliError::io(path, e))?;
    read_trace(&bytes).map_err(|e| CliError::Failed(format!("{path}: {e}")))
}

/// `replay --trace <file> [--gpus N]`
pub(crate) fn replay(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["trace", "gpus"])?;
    let trace = load_trace(args)?;
    let gpus: u8 = args.get_parsed("gpus", 4u8, "integer")?;
    let map = AddressMap::new(gpus, 16 << 30);
    let gpu = Gpu::new(gpu_model::GpuConfig::gv100(), GpuId::new(0), map);
    let run = gpu.execute_kernel(&trace);
    let mut out = String::new();
    let _ = writeln!(out, "replayed `{}` on GPU0 of {gpus}:", run.name);
    let _ = writeln!(out, "  kernel time: {}", run.kernel_time);
    let _ = writeln!(
        out,
        "  remote stores: {} ({} bytes, mean {:.1}B)",
        run.stats.remote_stores,
        run.stats.remote_bytes,
        run.stats.mean_remote_size().unwrap_or(0.0)
    );
    let _ = writeln!(
        out,
        "  local stores: {}  loads: {}  atomics: {}  fences: {}",
        run.stats.local_stores,
        run.stats.remote_loads,
        run.stats.remote_atomics,
        run.fences.len()
    );
    Ok(out)
}

/// `analyze --trace <file> [--gpus N] [--window-bytes B]`
pub(crate) fn analyze(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["trace", "gpus", "window-bytes"])?;
    let trace = load_trace(args)?;
    let gpus: u8 = args.get_parsed("gpus", 4u8, "integer")?;
    let window: u64 = args.get_parsed("window-bytes", 1u64 << 30, "power-of-two bytes")?;
    if !window.is_power_of_two() {
        return Err(CliError::Usage(
            "--window-bytes must be a power of two".into(),
        ));
    }
    let map = AddressMap::new(gpus, 16 << 30);
    let gpu = Gpu::new(gpu_model::GpuConfig::gv100(), GpuId::new(0), map);
    let run = gpu.execute_kernel(&trace);
    let profile = profile_run(&run, window);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile of `{}` ({}B FinePack windows):",
        trace.name, window
    );
    let _ = writeln!(
        out,
        "  remote payload: {} bytes total, {} unique (rewrite factor {:.2})",
        profile.total_bytes,
        profile.unique_bytes,
        profile.rewrite_factor()
    );
    let _ = writeln!(
        out,
        "  store sizes: mean {:.1}B, p50 {}B, p90 {}B, {:.1}% <= 32B",
        profile.sizes.mean().unwrap_or(0.0),
        profile.sizes.quantile(0.5).unwrap_or(0),
        profile.sizes.quantile(0.9).unwrap_or(0),
        100.0 * profile.fine_grained_fraction()
    );
    let _ = writeln!(
        out,
        "  spatial locality: {:.1} consecutive stores per window run          (upper bound on FinePack packing from locality alone)",
        profile.window_run_length
    );
    let mut dsts: Vec<(usize, u64)> = profile
        .per_destination
        .iter()
        .map(|(d, c)| (*d, *c))
        .collect();
    dsts.sort_unstable();
    for (d, count) in dsts {
        let _ = writeln!(out, "  -> GPU{d}: {count} stores");
    }
    Ok(out)
}

/// `inspect --trace <file>`
pub(crate) fn inspect(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["trace"])?;
    let trace = load_trace(args)?;
    let mut out = String::new();
    let _ = writeln!(out, "trace `{}`:", trace.name);
    let _ = writeln!(out, "  ops: {}", trace.len());
    let _ = writeln!(out, "  compute cycles: {}", trace.total_compute_cycles());
    let _ = writeln!(out, "  warp stores: {}", trace.store_count());
    let _ = writeln!(out, "  remote loads: {}", trace.load_count());
    let _ = writeln!(out, "  remote atomics: {}", trace.atomic_count());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_replay_inspect_roundtrip() {
        let dir = std::env::temp_dir().join("finepack-sim-test");
        let dir_s = dir.to_str().expect("utf-8 temp dir");
        let rec = record(
            &Args::parse([
                "record",
                "--app",
                "jacobi",
                "--out",
                dir_s,
                "--gpus",
                "2",
                "--iterations",
                "1",
                "--scale-down",
                "16",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(rec.contains("jacobi.g0.i0.fpkt"));
        let path = format!("{dir_s}/jacobi.g0.i0.fpkt");
        let rep =
            replay(&Args::parse(["replay", "--trace", &path, "--gpus", "2"]).unwrap()).unwrap();
        assert!(rep.contains("remote stores"));
        let ins = inspect(&Args::parse(["inspect", "--trace", &path]).unwrap()).unwrap();
        assert!(ins.contains("warp stores"));
        let ana =
            analyze(&Args::parse(["analyze", "--trace", &path, "--gpus", "2"]).unwrap()).unwrap();
        assert!(ana.contains("rewrite factor"));
        assert!(ana.contains("-> GPU1"));
        let bad =
            analyze(&Args::parse(["analyze", "--trace", &path, "--window-bytes", "1000"]).unwrap());
        assert!(bad.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_missing_file_errors() {
        let e =
            replay(&Args::parse(["replay", "--trace", "/nonexistent.fpkt"]).unwrap()).unwrap_err();
        assert!(e.to_string().contains("nonexistent"));
        assert!(matches!(e, CliError::Io { .. }));
    }

    #[test]
    fn suite_runs_tiny() {
        let out = suite_table(
            &Args::parse([
                "suite",
                "--gpus",
                "2",
                "--scale-down",
                "16",
                "--iterations",
                "1",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(!out.partial);
        assert!(out.text.contains("jacobi") && out.text.contains("hit"));
    }

    #[test]
    fn faults_sweep_runs_tiny() {
        let out = faults(
            &Args::parse([
                "faults",
                "--app",
                "jacobi",
                "--gpus",
                "2",
                "--scale-down",
                "16",
                "--iterations",
                "1",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("BER"), "{out}");
        assert!(out.contains("replay"), "{out}");
    }

    #[test]
    fn run_with_stuck_link_reports_dead_paradigms() {
        let out = run_app(
            &Args::parse([
                "run",
                "--app",
                "jacobi",
                "--gpus",
                "2",
                "--scale-down",
                "16",
                "--iterations",
                "1",
                "--fault-profile",
                "stuck",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("dead"), "{out}");
        assert!(out.contains("no forward progress"), "{out}");
    }

    #[test]
    fn flow_control_flag_selects_regime() {
        let base = [
            "run",
            "--app",
            "jacobi",
            "--gpus",
            "2",
            "--scale-down",
            "16",
            "--iterations",
            "1",
        ];
        let credited = run_app(&Args::parse(base).unwrap()).unwrap();
        assert!(credited.contains("stall"), "{credited}");
        let mut open_args: Vec<&str> = base.to_vec();
        open_args.extend(["--flow-control", "open"]);
        let open = run_app(&Args::parse(open_args).unwrap()).unwrap();
        assert!(open.contains("stall"), "{open}");
        let bad = run_app(&Args::parse(["run", "--flow-control", "throttled"]).unwrap());
        assert!(bad.is_err());
    }

    #[test]
    fn bad_fault_options_are_rejected() {
        let bad_profile = run_app(&Args::parse(["run", "--fault-profile", "gremlins"]).unwrap());
        assert!(bad_profile.is_err());
        let bad_ber = run_app(&Args::parse(["run", "--ber", "2.0"]).unwrap());
        assert!(bad_ber.is_err());
        let unparsed = run_app(&Args::parse(["run", "--ber", "lots"]).unwrap());
        assert!(unparsed.is_err());
    }

    #[test]
    fn suite_jobs_flag_is_output_invariant() {
        let base = [
            "suite",
            "--gpus",
            "2",
            "--scale-down",
            "16",
            "--iterations",
            "1",
        ];
        let serial = {
            let mut a: Vec<&str> = base.to_vec();
            a.extend(["--jobs", "1"]);
            suite_table(&Args::parse(a).unwrap()).unwrap()
        };
        let parallel = {
            let mut a: Vec<&str> = base.to_vec();
            a.extend(["--jobs", "3"]);
            suite_table(&Args::parse(a).unwrap()).unwrap()
        };
        assert_eq!(serial, parallel);
    }

    #[test]
    fn supervision_flags_are_validated() {
        for bad in [
            vec!["suite", "--chaos", "2.0"],
            vec!["suite", "--chaos", "lots"],
            vec!["suite", "--retries", "-1"],
            vec!["suite", "--run-budget", "0"],
            vec!["suite", "--run-budget", "events=ten"],
            vec!["suite", "--run-budget", "cycles=5"],
        ] {
            let a = Args::parse(bad.clone()).unwrap();
            assert!(suite_table(&a).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn run_budget_spec_parses_all_forms() {
        let parse = |spec: &str| {
            run_budget_from(&Args::parse(["suite", "--run-budget", spec]).unwrap())
                .unwrap()
                .unwrap()
        };
        assert_eq!(parse("5000").max_events, Some(5000));
        let full = parse("events=10,sim-ms=20,stall=30");
        assert_eq!(full.max_events, Some(10));
        assert_eq!(full.max_sim_time, Some(SimTime::from_ms(20)));
        assert_eq!(full.max_events_since_progress, Some(30));
    }

    #[test]
    fn suite_with_tiny_budget_reports_partial_and_failed_points() {
        let out = suite_table(
            &Args::parse([
                "suite",
                "--gpus",
                "2",
                "--scale-down",
                "16",
                "--iterations",
                "1",
                "--run-budget",
                "3",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.partial, "{}", out.text);
        assert!(out.text.contains("failed points"), "{}", out.text);
        assert!(out.text.contains("event ceiling"), "{}", out.text);
        assert!(out.text.contains("exiting with code 3"), "{}", out.text);
    }

    #[test]
    fn run_with_tiny_budget_reports_dead_paradigms() {
        let out = run_app(
            &Args::parse([
                "run",
                "--app",
                "jacobi",
                "--gpus",
                "2",
                "--scale-down",
                "16",
                "--iterations",
                "1",
                "--run-budget",
                "3",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("dead"), "{out}");
        assert!(out.contains("run budget exceeded"), "{out}");
    }

    #[test]
    fn jobs_zero_is_rejected() {
        let a = Args::parse(["suite", "--jobs", "0"]).unwrap();
        assert!(suite_table(&a).is_err());
        let a = Args::parse(["suite", "--jobs", "many"]).unwrap();
        assert!(suite_table(&a).is_err());
    }

    #[test]
    fn bench_writes_json_and_reports_speedup() {
        let out_file = std::env::temp_dir().join("finepack-bench-test.json");
        let out_s = out_file.to_str().expect("utf-8 temp path");
        let rendered = bench(
            &Args::parse([
                "bench",
                "--gpus",
                "2",
                "--scale-down",
                "16",
                "--iterations",
                "1",
                "--jobs",
                "2",
                "--out",
                out_s,
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(rendered.contains("speedup"), "{rendered}");
        assert!(rendered.contains("deterministic: true"), "{rendered}");
        let json = std::fs::read_to_string(out_s).unwrap();
        for key in [
            "\"bench\": \"harness\"",
            "\"schema_version\": 1",
            "\"jobs\": 2",
            "\"sim_events\"",
            "\"serial\"",
            "\"parallel\"",
            "\"speedup\"",
            "\"deterministic\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let _ = std::fs::remove_file(&out_file);
    }

    #[test]
    fn trace_writes_chrome_json_and_csv() {
        let json_file = std::env::temp_dir().join("finepack-trace-test.json");
        let json_s = json_file.to_str().expect("utf-8 temp path");
        let rendered = trace(
            &Args::parse([
                "trace",
                "--app",
                "jacobi",
                "--gpus",
                "2",
                "--scale-down",
                "16",
                "--iterations",
                "1",
                "--out",
                json_s,
            ])
            .unwrap(),
        )
        .unwrap();
        // The flush-count self-check passed and events were recorded.
        assert!(rendered.contains("flush"), "{rendered}");
        assert!(rendered.contains("wire-transmit"), "{rendered}");
        assert!(rendered.contains("(chrome)"), "{rendered}");
        let json = std::fs::read_to_string(json_s).unwrap();
        assert!(
            json.starts_with("{\"schema_version\":1,\"traceEvents\":["),
            "{}",
            &json[..80]
        );
        assert!(json.contains("\"flush:release\""));
        assert!(json.contains("\"name\":\"GPU0\""));
        let _ = std::fs::remove_file(&json_file);

        let csv_file = std::env::temp_dir().join("finepack-trace-test.csv");
        let csv_s = csv_file.to_str().expect("utf-8 temp path");
        let rendered = trace(
            &Args::parse([
                "trace",
                "--app",
                "jacobi",
                "--gpus",
                "2",
                "--scale-down",
                "16",
                "--iterations",
                "1",
                "--format",
                "csv",
                "--out",
                csv_s,
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(rendered.contains("(csv)"), "{rendered}");
        let csv = std::fs::read_to_string(csv_s).unwrap();
        assert!(csv.starts_with("time_ps,gpu,rwq_entries"), "{}", &csv[..60]);
        assert!(
            csv.lines().count() > 1,
            "no samples at the default interval"
        );
        let _ = std::fs::remove_file(&csv_file);

        let bad = trace(&Args::parse(["trace", "--format", "xml"]).unwrap());
        assert!(bad.is_err());
        let bad = trace(&Args::parse(["trace", "--capacity", "0"]).unwrap());
        assert!(bad.is_err());
    }

    #[test]
    fn sweep_runs_tiny_single_app() {
        let out = sweep_subheader(
            &Args::parse([
                "sweep-subheader",
                "--app",
                "pagerank",
                "--gpus",
                "2",
                "--scale-down",
                "16",
                "--iterations",
                "1",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("5B"));
    }
}
