//! # finepack-sim
//!
//! The command-line driver for the FinePack reproduction: run any
//! workload under any communication paradigm, sweep design parameters,
//! record and replay traces, and inspect wire formats — without writing
//! Rust.
//!
//! ```text
//! finepack-sim run --app pagerank --gpus 4 --pcie 4
//! finepack-sim suite --jobs 4
//! finepack-sim goodput --framing nvlink
//! finepack-sim sweep-subheader --app sssp
//! finepack-sim record --app jacobi --out /tmp/traces
//! finepack-sim replay --trace /tmp/traces/jacobi.g0.i0.fpkt
//! finepack-sim area --gpus 16
//! finepack-sim bench --jobs 4 --out BENCH_harness.json
//! finepack-sim trace --app jacobi --format chrome --out trace.json
//! finepack-sim audit --app jacobi --gpus 2 --scale-down 16
//! ```
//!
//! Sweep commands take `--jobs N` to fan out over a worker pool; the
//! output is byte-identical for every `N` (parallelism changes only
//! wall-clock time, never results). The `suite` sweep additionally
//! runs under a supervisor: `--retries`, `--chaos`, and `--run-budget`
//! control panic isolation, deterministic fault injection, and run
//! budgets, and partial results exit with a distinct code (see
//! [`EXIT_PARTIAL`]).
//!
//! The library surface exists so the dispatcher is unit-testable; the
//! binary (`src/main.rs`) is a thin wrapper around [`execute`].

#![warn(missing_docs)]

mod args;
mod commands;
mod error;

pub use args::{ArgError, Args};
pub use error::{CliError, CmdOut, EXIT_CLEAN, EXIT_ERROR, EXIT_PARTIAL};

/// Executes a command line (without the program name) and returns the
/// report text plus its completion status (clean or partial).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, bad options, I/O
/// failures, or simulation errors; map it to a process exit code with
/// [`CliError::exit_code`].
pub fn execute<I, S>(argv: I) -> Result<CmdOut, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let argv: Vec<String> = argv.into_iter().map(Into::into).collect();
    // `--version` has no subcommand, which the flag parser rejects;
    // answer it before parsing (like `help`, it must always work).
    if matches!(argv.first().map(String::as_str), Some("--version" | "-V")) {
        return Ok(CmdOut::clean(commands::version()));
    }
    let args = Args::parse(argv)?;
    match args.subcommand() {
        None | Some("help") => Ok(CmdOut::clean(commands::help())),
        Some("version") => Ok(CmdOut::clean(commands::version())),
        Some("goodput") => commands::goodput(&args).map(CmdOut::clean),
        Some("run") => commands::run_app(&args).map(CmdOut::clean),
        Some("suite") => commands::suite_table(&args),
        Some("collectives") => commands::collectives(&args).map(CmdOut::clean),
        Some("serve") => commands::serve(&args).map(CmdOut::clean),
        Some("submit") => commands::submit(&args),
        Some("status") => commands::farm_status(&args).map(CmdOut::clean),
        Some("shutdown") => commands::farm_shutdown(&args).map(CmdOut::clean),
        Some("sweep-subheader") => commands::sweep_subheader(&args).map(CmdOut::clean),
        Some("faults") => commands::faults(&args).map(CmdOut::clean),
        Some("bench") => commands::bench(&args).map(CmdOut::clean),
        Some("trace") => commands::trace(&args).map(CmdOut::clean),
        Some("audit") => commands::audit(&args).map(CmdOut::clean),
        Some("area") => commands::area(&args).map(CmdOut::clean),
        Some("record") => commands::record(&args).map(CmdOut::clean),
        Some("replay") => commands::replay(&args).map(CmdOut::clean),
        Some("inspect") => commands::inspect(&args).map(CmdOut::clean),
        Some("analyze") => commands::analyze(&args).map(CmdOut::clean),
        Some(other) => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `help`)"
        ))),
    }
}

/// [`execute`] reduced to strings: the report text, or a human-readable
/// error. Kept for tests and embedding; the partial/clean distinction
/// is dropped.
///
/// # Errors
///
/// Returns a human-readable error string for unknown commands, bad
/// options, or I/O failures.
///
/// # Examples
///
/// ```
/// let out = cli::run(["area", "--gpus", "4"]).expect("area runs");
/// assert!(out.contains("remote write queue"));
/// ```
pub fn run<I, S>(argv: I) -> Result<String, String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    execute(argv).map(|out| out.text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_lists_commands() {
        let h = run(["help"]).unwrap();
        for cmd in [
            "run", "suite", "goodput", "record", "replay", "area", "analyze", "trace", "audit",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
        assert_eq!(run(Vec::<String>::new()).unwrap(), h);
    }

    #[test]
    fn audit_sweeps_clean_on_tiny_config() {
        // One paradigm keeps the matrix small: 3 generations x 2 flow
        // control modes x 3 fault profiles x 2 allocation policies.
        let out = run([
            "audit",
            "--app",
            "jacobi",
            "--gpus",
            "2",
            "--scale-down",
            "16",
            "--iterations",
            "1",
            "--paradigm",
            "finepack",
        ])
        .unwrap();
        assert!(out.contains("all 36 matrix points clean"), "{out}");
        assert!(out.contains("byte-conservation"), "{out}");
        assert!(out.contains("transparency"), "{out}");
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(["frobnicate"]).is_err());
    }

    #[test]
    fn version_answers_as_command_and_bare_flag() {
        let v = run(["version"]).unwrap();
        assert!(v.starts_with("finepack-sim "), "{v}");
        assert!(v.contains("build "), "{v}");
        assert!(v.contains("wire schema"), "{v}");
        // The bare flag has no subcommand, which the arg parser would
        // reject — it must still answer.
        assert_eq!(run(["--version"]).unwrap(), v);
        assert_eq!(run(["-V"]).unwrap(), v);
    }

    #[test]
    fn run_json_writes_versioned_reports() {
        let out_file = std::env::temp_dir().join("finepack-run-json-test.json");
        let out_s = out_file.to_str().expect("utf-8 temp path");
        run([
            "run",
            "--app",
            "jacobi",
            "--gpus",
            "2",
            "--scale-down",
            "16",
            "--iterations",
            "1",
            "--json",
            out_s,
        ])
        .unwrap();
        let json = std::fs::read_to_string(out_s).unwrap();
        assert!(json.starts_with("{\n  \"schema_version\": 1,"), "{json}");
        assert!(json.contains("\"workload\":\"jacobi\""), "{json}");
        // One report object per paradigm that survived.
        assert_eq!(json.matches("\"schema_version\":1").count(), 6, "{json}");
        let _ = std::fs::remove_file(&out_file);
    }

    #[test]
    fn goodput_runs() {
        let out = run(["goodput"]).unwrap();
        assert!(out.contains("128"));
        let nv = run(["goodput", "--framing", "nvlink"]).unwrap();
        assert!(nv.contains("NVLink") || nv.contains("nvlink"));
        assert!(run(["goodput", "--framing", "token-ring"]).is_err());
    }

    #[test]
    fn run_rejects_unknown_app() {
        let e = run(["run", "--app", "doom"]).unwrap_err();
        assert!(e.contains("unknown app"));
    }

    #[test]
    fn run_executes_tiny_workload() {
        let out = run([
            "run",
            "--app",
            "jacobi",
            "--gpus",
            "2",
            "--scale-down",
            "16",
            "--iterations",
            "1",
        ])
        .unwrap();
        assert!(out.contains("finepack"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn area_reports_sram() {
        let out = run(["area", "--gpus", "16"]).unwrap();
        assert!(out.contains("120KB"));
    }
}
