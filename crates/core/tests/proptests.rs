//! Property tests for the FinePack hardware structures.

use std::collections::HashMap;

use finepack::{
    packetize, ConfigPacketModel, FinePackConfig, FlushReason, RemoteWriteQueue, SubheaderFormat,
};
use gpu_model::{GpuId, RemoteStore};
use proptest::prelude::*;

/// (dst, line index, offset, len, value) with the no-block-crossing
/// invariant the L1 coalescer guarantees.
fn store_params() -> impl Strategy<Value = (u8, u64, u32, u32, u8)> {
    (1u8..4, 0u64..1024, 0u32..128, 1u32..=64, any::<u8>()).prop_map(|(d, l, o, n, v)| {
        let o = o.min(127);
        let n = n.min(128 - o);
        (d, l, o, n, v)
    })
}

fn build(d: u8, l: u64, o: u32, n: u32, v: u8) -> RemoteStore {
    RemoteStore {
        src: GpuId::new(0),
        dst: GpuId::new(d),
        addr: 0x1_0000_0000 + l * 128 + u64::from(o),
        data: (0..n).map(|i| v.wrapping_mul(31).wrapping_add(i as u8)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Last-writer-wins: flushing the queue yields, for every byte, the
    /// value of the most recent store to that byte — and only bytes that
    /// were actually written.
    #[test]
    fn rwq_flush_is_last_writer_wins(
        raw in prop::collection::vec(store_params(), 1..250),
    ) {
        // Keyed by (destination, address): in a real system the address
        // determines the destination, but the generator draws them
        // independently, so the oracle must distinguish partitions.
        let mut expected: HashMap<(u8, u64), u8> = HashMap::new();
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), FinePackConfig::paper(4));
        let mut emitted: HashMap<(u8, u64), u8> = HashMap::new();
        let absorb =
            |batches: Vec<finepack::FlushedBatch>, out: &mut HashMap<(u8, u64), u8>| {
                for b in batches {
                    let dst = b.dst.index() as u8;
                    for e in &b.entries {
                        for (off, len) in e.runs() {
                            for i in 0..len {
                                out.insert(
                                    (dst, e.line_addr + u64::from(off + i)),
                                    e.data[(off + i) as usize],
                                );
                            }
                        }
                    }
                }
            };
        for (d, l, o, n, v) in raw {
            let s = build(d, l, o, n, v);
            for (i, byte) in s.data.iter().enumerate() {
                expected.insert((d, s.addr + i as u64), *byte);
            }
            let flushed = rwq.insert(s).expect("valid store");
            absorb(flushed.into_iter().collect(), &mut emitted);
        }
        absorb(rwq.flush_all(FlushReason::Release), &mut emitted);
        prop_assert_eq!(emitted, expected);
    }

    /// Accounting identity: stores received = entry hits + entry misses,
    /// and buffered entries drain to zero on release.
    #[test]
    fn rwq_counters_are_consistent(
        raw in prop::collection::vec(store_params(), 1..250),
    ) {
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), FinePackConfig::paper(4));
        let n = raw.len() as u64;
        for (d, l, o, len, v) in raw {
            rwq.insert(build(d, l, o, len, v)).expect("valid");
        }
        let stats = rwq.stats();
        prop_assert_eq!(stats.stores_received, n);
        prop_assert_eq!(stats.entry_hits + stats.entry_misses, n);
        rwq.flush_all(FlushReason::Release);
        prop_assert_eq!(rwq.buffered_entries(), 0);
    }

    /// Packetizer invariants, for every Table II sub-header format:
    /// payload budget respected, offsets fit the field, sub-packet data
    /// bytes equal the batch's valid bytes.
    #[test]
    fn packetizer_respects_format(
        raw in prop::collection::vec(store_params(), 1..200),
        bytes in 2u32..=6,
    ) {
        let cfg = FinePackConfig::paper(4)
            .with_subheader(SubheaderFormat::new(bytes).expect("2..=6"));
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        let mut batches = Vec::new();
        for (d, l, o, n, v) in raw {
            if let Some(b) = rwq.insert(build(d, l, o, n, v)).expect("valid") {
                batches.push(b);
            }
        }
        batches.extend(rwq.flush_all(FlushReason::Release));
        for batch in &batches {
            let packets = packetize(batch, &cfg, GpuId::new(0));
            let mut data_bytes = 0u64;
            for p in &packets {
                prop_assert!(p.payload_bytes() <= cfg.max_payload);
                prop_assert_eq!(p.base_addr % 4, 0, "base must be DW-aligned");
                for sub in &p.subpackets {
                    prop_assert!(sub.offset < cfg.subheader.addressable_range());
                    prop_assert!(!sub.data.is_empty());
                    data_bytes += sub.data.len() as u64;
                }
            }
            prop_assert_eq!(data_bytes, batch.valid_bytes());
        }
    }

    /// The §VI-B alternate design is strictly less efficient than
    /// FinePack for any non-empty batch of stores.
    #[test]
    fn config_packet_design_never_wins(
        sizes in prop::collection::vec(1u32..=128, 1..100),
    ) {
        let m = ConfigPacketModel::new();
        prop_assert!(m.wire_bytes(&sizes) > m.finepack_wire_bytes(&sizes));
        let eff = m.relative_efficiency(&sizes);
        prop_assert!(eff > 0.0 && eff < 1.0);
    }

    /// Window-base masking is idempotent and monotone.
    #[test]
    fn window_base_is_projection(addr in any::<u64>(), bytes in 2u32..=6) {
        let f = SubheaderFormat::new(bytes).expect("valid");
        let base = f.window_base(addr);
        prop_assert!(base <= addr);
        prop_assert_eq!(f.window_base(base), base);
        prop_assert!(addr - base < f.addressable_range());
    }
}
