//! Randomized property tests for the FinePack hardware structures.

use std::collections::HashMap;

use finepack::{
    packetize, ConfigPacketModel, FinePackConfig, FlushReason, RemoteWriteQueue, SubheaderFormat,
};
use gpu_model::{GpuId, RemoteStore};
use sim_engine::DetRng;

/// (dst, line index, offset, len, value) with the no-block-crossing
/// invariant the L1 coalescer guarantees.
fn store_params(rng: &mut DetRng) -> (u8, u64, u32, u32, u8) {
    let d = rng.next_in_range(1, 4) as u8;
    let l = rng.next_u64_below(1024);
    let o = (rng.next_u64_below(128) as u32).min(127);
    let n = (rng.next_in_range(1, 65) as u32).min(128 - o);
    let v = rng.next_u64() as u8;
    (d, l, o, n, v)
}

fn build(d: u8, l: u64, o: u32, n: u32, v: u8) -> RemoteStore {
    RemoteStore {
        src: GpuId::new(0),
        dst: GpuId::new(d),
        addr: 0x1_0000_0000 + l * 128 + u64::from(o),
        data: (0..n)
            .map(|i| v.wrapping_mul(31).wrapping_add(i as u8))
            .collect(),
    }
}

/// Last-writer-wins: flushing the queue yields, for every byte, the
/// value of the most recent store to that byte — and only bytes that
/// were actually written.
#[test]
fn rwq_flush_is_last_writer_wins() {
    let mut rng = DetRng::new(0xC0_0001, "rwq-lww");
    for _ in 0..64 {
        let raw: Vec<_> = (0..rng.next_in_range(1, 250))
            .map(|_| store_params(&mut rng))
            .collect();
        // Keyed by (destination, address): in a real system the address
        // determines the destination, but the generator draws them
        // independently, so the oracle must distinguish partitions.
        let mut expected: HashMap<(u8, u64), u8> = HashMap::new();
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), FinePackConfig::paper(4));
        let mut emitted: HashMap<(u8, u64), u8> = HashMap::new();
        let absorb = |batches: Vec<finepack::FlushedBatch>, out: &mut HashMap<(u8, u64), u8>| {
            for b in batches {
                let dst = b.dst.index() as u8;
                for e in &b.entries {
                    for (off, len) in e.runs() {
                        for i in 0..len {
                            out.insert(
                                (dst, e.line_addr + u64::from(off + i)),
                                e.data[(off + i) as usize],
                            );
                        }
                    }
                }
            }
        };
        for (d, l, o, n, v) in raw {
            let s = build(d, l, o, n, v);
            for (i, byte) in s.data.iter().enumerate() {
                expected.insert((d, s.addr + i as u64), *byte);
            }
            let flushed = rwq.insert(&s).expect("valid store");
            absorb(flushed.into_iter().collect(), &mut emitted);
        }
        absorb(rwq.flush_all(FlushReason::Release), &mut emitted);
        assert_eq!(emitted, expected);
    }
}

/// Accounting identity: stores received = entry hits + entry misses,
/// and buffered entries drain to zero on release.
#[test]
fn rwq_counters_are_consistent() {
    let mut rng = DetRng::new(0xC0_0002, "rwq-counters");
    for _ in 0..64 {
        let raw: Vec<_> = (0..rng.next_in_range(1, 250))
            .map(|_| store_params(&mut rng))
            .collect();
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), FinePackConfig::paper(4));
        let n = raw.len() as u64;
        for (d, l, o, len, v) in raw {
            rwq.insert(&build(d, l, o, len, v)).expect("valid");
        }
        let stats = rwq.stats();
        assert_eq!(stats.stores_received, n);
        assert_eq!(stats.entry_hits + stats.entry_misses, n);
        rwq.flush_all(FlushReason::Release);
        assert_eq!(rwq.buffered_entries(), 0);
    }
}

/// Packetizer invariants, for every Table II sub-header format:
/// payload budget respected, offsets fit the field, sub-packet data
/// bytes equal the batch's valid bytes.
#[test]
fn packetizer_respects_format() {
    let mut rng = DetRng::new(0xC0_0003, "packetizer");
    for _ in 0..64 {
        let bytes = rng.next_in_range(2, 7) as u32;
        let cfg =
            FinePackConfig::paper(4).with_subheader(SubheaderFormat::new(bytes).expect("2..=6"));
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        let mut batches = Vec::new();
        for _ in 0..rng.next_in_range(1, 200) {
            let (d, l, o, n, v) = store_params(&mut rng);
            if let Some(b) = rwq.insert(&build(d, l, o, n, v)).expect("valid") {
                batches.push(b);
            }
        }
        batches.extend(rwq.flush_all(FlushReason::Release));
        for batch in &batches {
            let packets = packetize(batch, &cfg, GpuId::new(0));
            let mut data_bytes = 0u64;
            for p in &packets {
                assert!(p.payload_bytes() <= cfg.max_payload);
                assert_eq!(p.base_addr % 4, 0, "base must be DW-aligned");
                for sub in &p.subpackets {
                    assert!(sub.offset < cfg.subheader.addressable_range());
                    assert!(!sub.data.is_empty());
                    data_bytes += sub.data.len() as u64;
                }
            }
            assert_eq!(data_bytes, batch.valid_bytes());
        }
    }
}

/// The §VI-B alternate design is strictly less efficient than
/// FinePack for any non-empty batch of stores.
#[test]
fn config_packet_design_never_wins() {
    let mut rng = DetRng::new(0xC0_0004, "config-packet");
    for _ in 0..100 {
        let sizes: Vec<u32> = (0..rng.next_in_range(1, 100))
            .map(|_| rng.next_in_range(1, 129) as u32)
            .collect();
        let m = ConfigPacketModel::new();
        assert!(m.wire_bytes(&sizes) > m.finepack_wire_bytes(&sizes));
        let eff = m.relative_efficiency(&sizes);
        assert!(eff > 0.0 && eff < 1.0);
    }
}

/// Window-base masking is idempotent and monotone.
#[test]
fn window_base_is_projection() {
    let mut rng = DetRng::new(0xC0_0005, "window-base");
    for _ in 0..500 {
        let addr = rng.next_u64();
        let bytes = rng.next_in_range(2, 7) as u32;
        let f = SubheaderFormat::new(bytes).expect("valid");
        let base = f.window_base(addr);
        assert!(base <= addr);
        assert_eq!(f.window_base(base), base);
        assert!(addr - base < f.addressable_range());
    }
}
