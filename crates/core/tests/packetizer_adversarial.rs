//! Adversarial packetizer inputs: arbitrary byte-mask patterns (far more
//! fragmented than the L1 coalescer produces) must still packetize into
//! format-legal packets that decode back to exactly the masked bytes.

use finepack::{
    packetize, FinePackConfig, FinePackPacket, FlushReason, FlushedBatch, FlushedEntry,
    SubheaderFormat,
};
use gpu_model::GpuId;
use sim_engine::DetRng;

fn random_entry(rng: &mut DetRng) -> (u64, u128) {
    // Line index and a fully arbitrary 128-bit byte mask.
    let mask = u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64());
    (rng.next_u64_below(512), mask)
}

fn build_batch(entries: Vec<(u64, u128)>, window_base: u64) -> FlushedBatch {
    let mut unique: std::collections::BTreeMap<u64, u128> = std::collections::BTreeMap::new();
    for (line, mask) in entries {
        *unique.entry(window_base + line * 128).or_insert(0) |= mask;
    }
    FlushedBatch {
        dst: GpuId::new(1),
        reason: FlushReason::Release,
        window_base,
        entries: unique
            .into_iter()
            .filter(|(_, mask)| *mask != 0)
            .map(|(line_addr, mask)| FlushedEntry {
                line_addr,
                mask,
                data: (0..128u64)
                    .map(|i| ((line_addr + i) & 0xFF) as u8)
                    .collect(),
            })
            .collect(),
        stores_merged: 1,
        overwritten_bytes: 0,
    }
}

#[test]
fn arbitrary_masks_roundtrip() {
    let mut rng = DetRng::new(0xAD_0001, "masks");
    for _ in 0..64 {
        let raw: Vec<_> = (0..rng.next_in_range(1, 32))
            .map(|_| random_entry(&mut rng))
            .collect();
        let sub = rng.next_in_range(2, 7) as u32;
        let cfg =
            FinePackConfig::paper(4).with_subheader(SubheaderFormat::new(sub).expect("2..=6"));
        let window_base = 0x4000_0000u64;
        let batch = build_batch(raw, window_base);
        // Expected masked bytes.
        let mut expected: Vec<(u64, u8)> = Vec::new();
        for e in &batch.entries {
            for i in 0..128u32 {
                if e.mask >> i & 1 == 1 {
                    expected.push((e.line_addr + u64::from(i), e.data[i as usize]));
                }
            }
        }
        let packets = packetize(&batch, &cfg, GpuId::new(0));
        let mut got: Vec<(u64, u8)> = Vec::new();
        for p in &packets {
            assert!(p.payload_bytes() <= cfg.max_payload);
            let wire = p.encode();
            let back = FinePackPacket::decode(&wire, cfg.subheader, p.src, p.dst)
                .expect("own wire decodes");
            assert_eq!(&back, p);
            for s in back.to_stores() {
                for (i, b) in s.data.iter().enumerate() {
                    got.push((s.addr + i as u64, *b));
                }
            }
        }
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}

/// Worst-case fragmentation: alternating bytes (64 runs of 1 byte per
/// line) still fits the format, with one sub-header per run.
#[test]
fn alternating_mask_packs_one_subheader_per_run() {
    for lines in 1u64..8 {
        let cfg = FinePackConfig::paper(4);
        let mask = {
            let mut m = 0u128;
            for i in (0..128).step_by(2) {
                m |= 1 << i;
            }
            m
        };
        let batch = build_batch((0..lines).map(|l| (l, mask)).collect(), 0x4000_0000);
        let packets = packetize(&batch, &cfg, GpuId::new(0));
        let subpackets: usize = packets.iter().map(|p| p.len()).sum();
        assert_eq!(subpackets as u64, lines * 64);
        for p in &packets {
            for s in &p.subpackets {
                assert_eq!(s.data.len(), 1);
            }
        }
    }
}
