//! The de-packetizer (§IV-B): at the destination GPU's ingress port,
//! breaks a FinePack transaction back into individual stores, rebases
//! their addresses, buffers them (64 × 128B), and issues them to the
//! local memory system.

use gpu_model::{GpuId, MemoryImage, RemoteStore};
use sim_engine::{Bandwidth, SimTime};

use crate::config::{FinePackError, SubheaderFormat};
use crate::packet::FinePackPacket;

/// Ingress-side de-packetizer with the paper's 64-entry × 128B buffer,
/// draining into the GPU's memory system at local-memory bandwidth.
///
/// # Examples
///
/// ```
/// use finepack::{Depacketizer, FinePackPacket, SubPacket, SubheaderFormat};
/// use gpu_model::{GpuId, MemoryImage};
///
/// let pkt = FinePackPacket {
///     src: GpuId::new(0),
///     dst: GpuId::new(1),
///     base_addr: 0x1000,
///     subheader: SubheaderFormat::paper(),
///     subpackets: vec![SubPacket { offset: 4, data: vec![9, 9] }],
/// };
/// let mut depk = Depacketizer::new();
/// let mut mem = MemoryImage::new();
/// depk.deliver(&pkt, &mut mem);
/// assert_eq!(mem.read(0x1004, 2), vec![9, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct Depacketizer {
    /// Buffer capacity in entries (Table: 64 entries of 128B).
    buffer_entries: u32,
    /// Entry size in bytes.
    entry_bytes: u32,
    /// Drain bandwidth into the local memory system.
    drain_bandwidth: Bandwidth,
    /// Total stores disaggregated.
    stores_delivered: u64,
    /// Total data bytes delivered.
    bytes_delivered: u64,
    /// Peak buffer occupancy observed (entries).
    peak_occupancy: u32,
    /// Arrivals rejected before delivery (failed LCRC or malformed
    /// payload): the whole aggregated TLP bounces and must replay.
    packets_rejected: u64,
}

impl Default for Depacketizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Depacketizer {
    /// Creates a de-packetizer with the paper's buffer geometry and a
    /// 900 GB/s HBM-class drain rate.
    pub fn new() -> Self {
        Depacketizer {
            buffer_entries: 64,
            entry_bytes: 128,
            drain_bandwidth: Bandwidth::from_gbps(900.0),
            stores_delivered: 0,
            bytes_delivered: 0,
            peak_occupancy: 0,
            packets_rejected: 0,
        }
    }

    /// Buffer capacity in bytes.
    pub fn buffer_bytes(&self) -> u32 {
        self.buffer_entries * self.entry_bytes
    }

    /// Disaggregates `packet` and applies its stores to `mem`.
    /// Returns the stores in packet order.
    pub fn deliver(&mut self, packet: &FinePackPacket, mem: &mut MemoryImage) -> Vec<RemoteStore> {
        let stores = packet.to_stores();
        let occupancy = (packet.data_bytes().div_ceil(self.entry_bytes)).min(self.buffer_entries);
        self.peak_occupancy = self.peak_occupancy.max(occupancy);
        for s in &stores {
            mem.write(s.addr, &s.data);
            self.stores_delivered += 1;
            self.bytes_delivered += u64::from(s.len());
        }
        stores
    }

    /// Time to drain one packet's data into the local memory system.
    /// The disaggregated transactions cannot all be consumed by L2 in the
    /// same cycle (§IV-B), so delivery is serialized at drain bandwidth.
    pub fn drain_time(&self, packet: &FinePackPacket) -> SimTime {
        self.drain_bandwidth
            .transfer_time(u64::from(packet.data_bytes()))
    }

    /// Total stores disaggregated so far.
    pub fn stores_delivered(&self) -> u64 {
        self.stores_delivered
    }

    /// Total data bytes delivered so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Peak buffer occupancy in entries.
    pub fn peak_occupancy(&self) -> u32 {
        self.peak_occupancy
    }

    /// Decodes a wire buffer and delivers it, rejecting corruption.
    ///
    /// This is the ingress path under fault injection: `lcrc_ok` carries
    /// the data link layer's verdict. A failed LCRC — or a payload that
    /// no longer parses — rejects the *entire* aggregated transaction:
    /// FinePack has no sub-packet retry, so the whole TLP replays as a
    /// unit from the sender's replay buffer. Nothing is written to `mem`
    /// on rejection.
    ///
    /// # Errors
    ///
    /// [`FinePackError::Decode`] when `lcrc_ok` is false or the payload
    /// is malformed; the rejection counter increments either way.
    pub fn deliver_wire(
        &mut self,
        wire: &[u8],
        subheader: SubheaderFormat,
        src: GpuId,
        dst: GpuId,
        lcrc_ok: bool,
        mem: &mut MemoryImage,
    ) -> Result<Vec<RemoteStore>, FinePackError> {
        if !lcrc_ok {
            self.packets_rejected += 1;
            return Err(FinePackError::Decode(
                protocol::ProtocolError::InvalidField("LCRC"),
            ));
        }
        let packet = match FinePackPacket::decode(wire, subheader, src, dst) {
            Ok(p) => p,
            Err(e) => {
                self.packets_rejected += 1;
                return Err(e);
            }
        };
        Ok(self.deliver(&packet, mem))
    }

    /// Arrivals rejected before delivery.
    pub fn packets_rejected(&self) -> u64 {
        self.packets_rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SubheaderFormat;
    use crate::packet::SubPacket;
    use gpu_model::GpuId;

    fn packet(n: usize, size: usize) -> FinePackPacket {
        FinePackPacket {
            src: GpuId::new(0),
            dst: GpuId::new(1),
            base_addr: 0x10_0000,
            subheader: SubheaderFormat::paper(),
            subpackets: (0..n)
                .map(|i| SubPacket {
                    offset: (i * 256) as u64,
                    data: vec![i as u8; size],
                })
                .collect(),
        }
    }

    #[test]
    fn delivery_applies_all_stores() {
        let mut d = Depacketizer::new();
        let mut mem = MemoryImage::new();
        let pkt = packet(10, 16);
        let stores = d.deliver(&pkt, &mut mem);
        assert_eq!(stores.len(), 10);
        assert_eq!(d.stores_delivered(), 10);
        assert_eq!(d.bytes_delivered(), 160);
        for (i, s) in stores.iter().enumerate() {
            assert_eq!(mem.read(s.addr, 16), vec![i as u8; 16]);
        }
    }

    #[test]
    fn buffer_geometry_matches_paper() {
        let d = Depacketizer::new();
        assert_eq!(d.buffer_bytes(), 64 * 128);
    }

    #[test]
    fn drain_time_scales_with_data() {
        let d = Depacketizer::new();
        let small = d.drain_time(&packet(1, 8));
        let large = d.drain_time(&packet(100, 8));
        assert!(large > small);
    }

    #[test]
    fn corrupted_arrival_is_rejected_whole() {
        let mut d = Depacketizer::new();
        let mut mem = MemoryImage::new();
        let pkt = packet(10, 16);
        let wire = pkt.encode();
        // LCRC failure: nothing lands, the rejection is counted.
        let err = d.deliver_wire(
            &wire,
            SubheaderFormat::paper(),
            pkt.src,
            pkt.dst,
            false,
            &mut mem,
        );
        assert!(err.is_err());
        assert_eq!(d.packets_rejected(), 1);
        assert_eq!(d.stores_delivered(), 0);
        assert!(mem.same_contents(&MemoryImage::new()));
        // The replayed (clean) copy delivers everything.
        let stores = d
            .deliver_wire(
                &wire,
                SubheaderFormat::paper(),
                pkt.src,
                pkt.dst,
                true,
                &mut mem,
            )
            .unwrap();
        assert_eq!(stores.len(), 10);
        assert_eq!(d.stores_delivered(), 10);
        assert_eq!(d.packets_rejected(), 1);
    }

    #[test]
    fn malformed_payload_is_rejected() {
        let mut d = Depacketizer::new();
        let mut mem = MemoryImage::new();
        let mut wire = packet(4, 16).encode();
        wire.truncate(20); // truncated mid-subpacket
        let err = d.deliver_wire(
            &wire,
            SubheaderFormat::paper(),
            GpuId::new(0),
            GpuId::new(1),
            true,
            &mut mem,
        );
        assert!(err.is_err());
        assert_eq!(d.packets_rejected(), 1);
    }

    #[test]
    fn occupancy_is_tracked() {
        let mut d = Depacketizer::new();
        let mut mem = MemoryImage::new();
        d.deliver(&packet(4, 128), &mut mem);
        assert_eq!(d.peak_occupancy(), 4);
        d.deliver(&packet(1, 8), &mut mem);
        assert_eq!(d.peak_occupancy(), 4); // peak retained
    }
}
