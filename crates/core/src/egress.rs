//! The egress-path abstraction: how remote stores become wire packets.
//!
//! Three peer-to-peer paths implement [`EgressPath`]:
//!
//! - [`FinePackEgress`] — the paper's contribution: remote write queue →
//!   packetizer → FinePack transactions.
//! - [`RawP2pEgress`] — today's hardware: every store becomes its own
//!   memory-write TLP.
//! - write-combining and GPS-style baselines live in
//!   [`crate::baselines`].
//!
//! The DMA/memcpy paradigm does not flow through an egress path; it is
//! modeled at the system level from workload buffer metadata.

use std::collections::VecDeque;

use gpu_model::{GpuId, RemoteStore};
use protocol::FramingModel;
use sim_engine::{Histogram, SimTime};

use telemetry::{EventKind, TraceEvent, TraceHandle};

use crate::config::{FinePackConfig, FinePackError};
use crate::packetizer::packetize_layout;
use crate::rwq::{FlushReason, RemoteWriteQueue};

/// How much of each constituent store a [`WirePacket`] carries.
///
/// Timing-only runs never read the payload bytes back, so cloning them
/// into every packet is pure allocation overhead; functional runs
/// (`track_memory`) need the full data to build memory images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    /// Carry only each store's `(addr, len)` extent.
    Extents,
    /// Carry the full store payloads.
    Full,
}

/// The stores a [`WirePacket`] delivers, in order — either full payloads
/// (functional runs) or bare `(addr, len)` extents (timing-only runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketStores {
    /// `(addr, len)` per store; payload bytes were never copied.
    Extents(Vec<(u64, u32)>),
    /// Full store payloads for functional memory delivery.
    Full(Vec<RemoteStore>),
}

impl PacketStores {
    /// Wraps a single borrowed store: clones the payload only under
    /// [`PayloadMode::Full`] — extents-mode packets cost zero payload
    /// allocation.
    fn from_store_ref(store: &RemoteStore, mode: PayloadMode) -> PacketStores {
        match mode {
            PayloadMode::Full => PacketStores::Full(vec![store.clone()]),
            PayloadMode::Extents => PacketStores::Extents(vec![(store.addr, store.len())]),
        }
    }

    /// Number of stores in the packet.
    pub fn len(&self) -> usize {
        match self {
            PacketStores::Extents(v) => v.len(),
            PacketStores::Full(v) => v.len(),
        }
    }

    /// True if the packet carries no stores.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full stores, if this packet was built under
    /// [`PayloadMode::Full`].
    pub fn full(&self) -> Option<&[RemoteStore]> {
        match self {
            PacketStores::Full(v) => Some(v),
            PacketStores::Extents(_) => None,
        }
    }

    /// `(addr, len)` extents, available in either mode.
    pub fn extents(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        let full = match self {
            PacketStores::Full(v) => &v[..],
            PacketStores::Extents(_) => &[],
        };
        let ext = match self {
            PacketStores::Extents(v) => &v[..],
            PacketStores::Full(_) => &[],
        };
        ext.iter()
            .copied()
            .chain(full.iter().map(|s| (s.addr, s.len())))
    }
}

/// A packet handed to the interconnect: sizes for timing/accounting plus
/// the disaggregated stores for functional delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePacket {
    /// Destination GPU.
    pub dst: GpuId,
    /// Total bytes on the wire (headers, framing, padding, payload).
    pub wire_bytes: u64,
    /// Data bytes carried (the stores' payloads).
    pub data_bytes: u64,
    /// TLP payload bytes before DW padding — what the posted-data
    /// credit cost is computed from (sub-headers included on the
    /// FinePack path, sector padding included under quantization).
    pub payload_bytes: u32,
    /// The flush that produced this packet, when it left a FinePack
    /// queue (`None` for uncoalesced paths and atomics). Lets the
    /// link layer attribute replay amplification to flush causes.
    pub reason: Option<crate::FlushReason>,
    /// The stores this packet delivers, in order.
    pub stores: PacketStores,
}

impl WirePacket {
    /// Non-data bytes: protocol overhead including padding.
    pub fn protocol_bytes(&self) -> u64 {
        self.wire_bytes - self.data_bytes
    }
}

/// Finite FIFO between an egress path and its PCIe port.
///
/// `capacity` is an *admission* threshold, not a hard cap: a single
/// flush may emit several packets and transiently overshoot, but the SM
/// must not offer new stores while [`OutputBuffer::has_room`] is false —
/// that is the backpressure the closed-loop runner turns into stall
/// time.
#[derive(Debug, Clone)]
pub struct OutputBuffer {
    queue: VecDeque<WirePacket>,
    capacity: usize,
}

impl Default for OutputBuffer {
    fn default() -> Self {
        OutputBuffer::new(OutputBuffer::DEFAULT_CAPACITY)
    }
}

impl OutputBuffer {
    /// Default admission threshold, packets.
    pub const DEFAULT_CAPACITY: usize = 8;

    /// Creates a buffer admitting new work while under `capacity`
    /// packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "output buffer capacity must be positive");
        OutputBuffer {
            queue: VecDeque::new(),
            capacity,
        }
    }

    /// Changes the admission threshold.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "output buffer capacity must be positive");
        self.capacity = capacity;
    }

    /// The admission threshold, packets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True while the buffer admits new upstream work.
    pub fn has_room(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Buffered packets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queues packets for transmission (never rejects; see type docs).
    pub fn extend(&mut self, packets: impl IntoIterator<Item = WirePacket>) {
        self.queue.extend(packets);
    }

    /// The packet next in line for the port.
    pub fn front(&self) -> Option<&WirePacket> {
        self.queue.front()
    }

    /// Removes and returns the packet at the head of the queue.
    pub fn pop_front(&mut self) -> Option<WirePacket> {
        self.queue.pop_front()
    }
}

/// Cumulative egress metrics (the inputs to Figs 10 and 11).
#[derive(Debug, Clone)]
pub struct EgressMetrics {
    /// Packets emitted.
    pub packets: u64,
    /// Total wire bytes.
    pub wire_bytes: u64,
    /// Total data bytes on the wire.
    pub data_bytes: u64,
    /// Stores offered by the GPU.
    pub stores_in: u64,
    /// Store payload bytes offered by the GPU (before any coalescing).
    pub bytes_in: u64,
    /// Bytes elided by in-buffer overwrites (redundant-transfer savings).
    pub overwritten_bytes: u64,
    /// Remote atomics sent (never coalesced, §IV-C).
    pub atomics_sent: u64,
    /// Flush counts by [`crate::FlushReason::ALL`] order (FinePack only).
    pub flushes_by_reason: [u64; FlushReason::ALL.len()],
    /// Distribution of GPU stores aggregated per emitted packet (Fig 11).
    pub stores_per_packet: Histogram,
    /// Time this GPU's store stream spent stalled on backpressure (a
    /// full output buffer or an out-of-credits link). Zero under
    /// open-loop flow control.
    pub stall_time: SimTime,
}

impl Default for EgressMetrics {
    fn default() -> Self {
        EgressMetrics::new()
    }
}

impl EgressMetrics {
    fn new() -> Self {
        EgressMetrics {
            packets: 0,
            wire_bytes: 0,
            data_bytes: 0,
            stores_in: 0,
            bytes_in: 0,
            overwritten_bytes: 0,
            atomics_sent: 0,
            flushes_by_reason: [0; FlushReason::ALL.len()],
            stores_per_packet: Histogram::new("stores_per_packet"),
            stall_time: SimTime::ZERO,
        }
    }

    /// Flush count for `reason` (non-zero only on the FinePack path).
    pub fn flushes_for(&self, reason: crate::FlushReason) -> u64 {
        let idx = crate::FlushReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("reason in ALL");
        self.flushes_by_reason[idx]
    }

    /// Total protocol (non-data) bytes.
    pub fn protocol_bytes(&self) -> u64 {
        self.wire_bytes - self.data_bytes
    }

    /// Mean stores per packet, or `None` before any packet was sent.
    pub fn mean_stores_per_packet(&self) -> Option<f64> {
        self.stores_per_packet.mean()
    }

    /// Merges another metrics block (e.g. across GPUs).
    pub fn merge(&mut self, other: &EgressMetrics) {
        self.packets += other.packets;
        self.wire_bytes += other.wire_bytes;
        self.data_bytes += other.data_bytes;
        self.stores_in += other.stores_in;
        self.bytes_in += other.bytes_in;
        self.overwritten_bytes += other.overwritten_bytes;
        self.atomics_sent += other.atomics_sent;
        for (a, b) in self
            .flushes_by_reason
            .iter_mut()
            .zip(other.flushes_by_reason.iter())
        {
            *a += b;
        }
        self.stores_per_packet.merge(&other.stores_per_packet);
        self.stall_time += other.stall_time;
    }
}

/// A peer-to-peer store egress path: turns a stream of remote stores into
/// wire packets.
///
/// Implementations must preserve *final-value* semantics: after
/// [`EgressPath::release`], replaying every emitted packet's stores in
/// emission order yields the same memory image as replaying the raw store
/// stream in program order (FinePack's transparency claim).
pub trait EgressPath: std::fmt::Debug + Send {
    /// Offers one remote store issued at time `now`; returns any packets
    /// this forced out.
    ///
    /// The store is borrowed: paths copy what they buffer (or, under
    /// [`PayloadMode::Extents`], nothing at all), so the caller's trace
    /// can be replayed without per-store payload clones.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed stores (empty, larger than a cache
    /// block, or block-crossing).
    fn push(&mut self, store: &RemoteStore, now: SimTime)
        -> Result<Vec<WirePacket>, FinePackError>;

    /// Offers a remote atomic. Atomics are never coalesced (§IV-C): any
    /// buffered same-address store must leave first, then the atomic
    /// travels as its own transaction. The default treats it like a
    /// plain store, which is correct for paths that never buffer
    /// out-of-order.
    ///
    /// # Errors
    ///
    /// As for [`EgressPath::push`].
    fn push_atomic(
        &mut self,
        store: &RemoteStore,
        now: SimTime,
    ) -> Result<Vec<WirePacket>, FinePackError> {
        self.push(store, now)
    }

    /// A remote load issued by this GPU: same-address load-store ordering
    /// requires flushing any buffered store the load overlaps (§IV-B).
    fn load_probe(&mut self, _dst: GpuId, _addr: u64, _len: u32, _now: SimTime) -> Vec<WirePacket> {
        Vec::new()
    }

    /// Advances the path's notion of time, allowing inactivity-timeout
    /// flushes (§IV-B). Called opportunistically by the runner.
    fn advance(&mut self, _now: SimTime) -> Vec<WirePacket> {
        Vec::new()
    }

    /// A system-scoped release (fence / kernel end): everything buffered
    /// must be emitted.
    fn release(&mut self) -> Vec<WirePacket>;

    /// Cumulative metrics.
    fn metrics(&self) -> &EgressMetrics;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// The finite FIFO between this path and its PCIe port.
    fn output(&mut self) -> &mut OutputBuffer;

    /// Read-only view of the output FIFO.
    fn output_ref(&self) -> &OutputBuffer;

    /// True while the path admits new stores: backpressure starts when
    /// the output buffer is at capacity.
    fn can_accept(&self) -> bool {
        self.output_ref().has_room()
    }

    /// Packets queued at the port, waiting for link credits.
    fn occupancy(&self) -> usize {
        self.output_ref().len()
    }

    /// Accounts time the upstream store stream spent blocked on this
    /// path (accumulates [`EgressMetrics::stall_time`]).
    fn record_stall(&mut self, stalled: SimTime);

    /// Selects whether emitted packets carry full store payloads or
    /// bare `(addr, len)` extents (see [`PayloadMode`]).
    fn set_payload_mode(&mut self, mode: PayloadMode);

    /// Attaches a trace handle for structured event recording. The
    /// default discards it — paths without internal buffering have
    /// nothing to report beyond what the runner already records.
    fn set_trace(&mut self, _trace: TraceHandle) {}

    /// Entries buffered *inside* the path (e.g. RWQ occupancy), as
    /// opposed to packets queued at the port ([`EgressPath::occupancy`]).
    /// Zero for paths that never buffer.
    fn queue_depth(&self) -> usize {
        0
    }

    /// Clones the path — state, metrics, and buffers — behind a fresh
    /// box. This is the snapshot primitive intra-run sharding relies
    /// on: a shard elaborates on a copy while the original stays
    /// untouched for a possible serial fallback.
    fn boxed_clone(&self) -> Box<dyn EgressPath>;
}

/// The FinePack egress path: remote write queue + packetizer.
#[derive(Debug, Clone)]
pub struct FinePackEgress {
    src: GpuId,
    config: FinePackConfig,
    framing: FramingModel,
    rwq: RemoteWriteQueue,
    metrics: EgressMetrics,
    /// Optional inactivity timeout (§IV-B); `None` matches the paper's
    /// evaluated configuration.
    flush_timeout: Option<SimTime>,
    /// Last insert time per destination, for timeout flushes.
    last_activity: std::collections::BTreeMap<GpuId, SimTime>,
    out: OutputBuffer,
    payload_mode: PayloadMode,
    trace: TraceHandle,
}

impl FinePackEgress {
    /// Creates a FinePack egress for GPU `src`.
    pub fn new(src: GpuId, config: FinePackConfig, framing: FramingModel) -> Self {
        FinePackEgress {
            src,
            config,
            framing,
            rwq: RemoteWriteQueue::new(src, config),
            metrics: EgressMetrics::new(),
            flush_timeout: None,
            last_activity: std::collections::BTreeMap::new(),
            out: OutputBuffer::default(),
            payload_mode: PayloadMode::Full,
            trace: TraceHandle::off(),
        }
    }

    /// Enables an inactivity-timeout flush: a partition idle for
    /// `timeout` is flushed on the next [`EgressPath::advance`]. The
    /// paper discusses but does not enable this (§IV-B); it trades
    /// coalescing window for latency under bursty traffic.
    pub fn with_flush_timeout(mut self, timeout: SimTime) -> Self {
        self.flush_timeout = Some(timeout);
        self
    }

    /// Access to the underlying queue (e.g. for load probes).
    pub fn rwq_mut(&mut self) -> &mut RemoteWriteQueue {
        &mut self.rwq
    }

    /// The queue's cumulative statistics.
    pub fn rwq_stats(&self) -> &crate::RwqStats {
        self.rwq.stats()
    }

    fn emit_batch(&mut self, batch: crate::rwq::FlushedBatch) -> Vec<WirePacket> {
        // Layout pass only: payload bytes are copied at most once (Full
        // mode) and never under Extents — timing-only runs pay zero
        // payload allocation per TLP.
        let layouts = packetize_layout(&batch, &self.config);
        let n = layouts.len() as u64;
        self.metrics.overwritten_bytes += batch.overwritten_bytes;
        let reason_idx = crate::FlushReason::ALL
            .iter()
            .position(|r| *r == batch.reason)
            .expect("reason in ALL");
        self.metrics.flushes_by_reason[reason_idx] += 1;
        let subheader = self.config.subheader;
        let mut out = Vec::with_capacity(layouts.len());
        for (i, layout) in layouts.into_iter().enumerate() {
            // Attribute the batch's merged-store count across its packets
            // (nearly always a single packet per batch).
            let share = batch.stores_merged / n + u64::from((i as u64) < batch.stores_merged % n);
            self.metrics.stores_per_packet.record(share);
            self.metrics.packets += 1;
            let payload_bytes = layout.payload_bytes(subheader);
            let wire = self.framing.wire_bytes(payload_bytes);
            let data = u64::from(layout.data_bytes());
            self.metrics.wire_bytes += wire;
            self.metrics.data_bytes += data;
            let stores = match self.payload_mode {
                PayloadMode::Full => PacketStores::Full(
                    layout
                        .chunks
                        .iter()
                        .map(|c| RemoteStore {
                            src: self.src,
                            dst: batch.dst,
                            addr: layout.base_addr + c.offset,
                            data: batch.entries[c.entry_idx].data
                                [c.data_off..c.data_off + c.len as usize]
                                .to_vec(),
                        })
                        .collect(),
                ),
                PayloadMode::Extents => PacketStores::Extents(
                    layout
                        .chunks
                        .iter()
                        .map(|c| (layout.base_addr + c.offset, c.len))
                        .collect(),
                ),
            };
            out.push(WirePacket {
                dst: batch.dst,
                wire_bytes: wire,
                data_bytes: data,
                payload_bytes,
                reason: Some(batch.reason),
                stores,
            });
        }
        out
    }
}

impl EgressPath for FinePackEgress {
    fn push(
        &mut self,
        store: &RemoteStore,
        now: SimTime,
    ) -> Result<Vec<WirePacket>, FinePackError> {
        self.metrics.stores_in += 1;
        self.metrics.bytes_in += u64::from(store.len());
        self.last_activity.insert(store.dst, now);
        let hits_before = self.rwq.stats().entry_hits;
        let flushed = self.rwq.insert(store)?;
        if self.trace.is_on() {
            self.trace.record(TraceEvent {
                time: now,
                gpu: self.src.index() as u8,
                kind: EventKind::RwqInsert {
                    dst: store.dst.index() as u8,
                    merged: self.rwq.stats().entry_hits > hits_before,
                },
            });
        }
        match flushed {
            Some(batch) => Ok(self.emit_batch(batch)),
            None => Ok(Vec::new()),
        }
    }

    fn push_atomic(
        &mut self,
        store: &RemoteStore,
        _now: SimTime,
    ) -> Result<Vec<WirePacket>, FinePackError> {
        if store.is_empty() || store.len() > self.config.entry_bytes {
            return Err(FinePackError::StoreTooLarge {
                len: store.len(),
                max: self.config.entry_bytes,
            });
        }
        self.metrics.stores_in += 1;
        self.metrics.bytes_in += u64::from(store.len());
        self.metrics.atomics_sent += 1;
        let mut out = Vec::new();
        // Same-address ordering: a buffered store to the operand address
        // must become visible before the atomic (§IV-C).
        if let Some(batch) = self.rwq.atomic_probe(store.dst, store.addr, store.len()) {
            out.extend(self.emit_batch(batch));
        }
        // The atomic itself travels as an ordinary, uncoalesced TLP.
        let wire = self.framing.wire_bytes(store.len());
        let data = u64::from(store.len());
        self.metrics.packets += 1;
        self.metrics.wire_bytes += wire;
        self.metrics.data_bytes += data;
        self.metrics.stores_per_packet.record(1);
        let payload = store.len();
        out.push(WirePacket {
            dst: store.dst,
            wire_bytes: wire,
            data_bytes: data,
            payload_bytes: payload,
            reason: None,
            stores: PacketStores::from_store_ref(store, self.payload_mode),
        });
        Ok(out)
    }

    fn load_probe(&mut self, dst: GpuId, addr: u64, len: u32, _now: SimTime) -> Vec<WirePacket> {
        match self.rwq.load_probe(dst, addr, len) {
            Some(batch) => self.emit_batch(batch),
            None => Vec::new(),
        }
    }

    fn advance(&mut self, now: SimTime) -> Vec<WirePacket> {
        let Some(timeout) = self.flush_timeout else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for dst in self.rwq.non_empty_dsts() {
            let idle_since = self
                .last_activity
                .get(&dst)
                .copied()
                .unwrap_or(SimTime::ZERO);
            if now.saturating_sub(idle_since) >= timeout {
                for batch in self.rwq.flush_dst_all(dst, crate::FlushReason::Timeout) {
                    out.extend(self.emit_batch(batch));
                }
            }
        }
        out
    }

    fn release(&mut self) -> Vec<WirePacket> {
        let batches = self.rwq.flush_all(FlushReason::Release);
        batches
            .into_iter()
            .flat_map(|b| self.emit_batch(b))
            .collect()
    }

    fn metrics(&self) -> &EgressMetrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "finepack"
    }

    fn output(&mut self) -> &mut OutputBuffer {
        &mut self.out
    }

    fn output_ref(&self) -> &OutputBuffer {
        &self.out
    }

    fn record_stall(&mut self, stalled: SimTime) {
        self.metrics.stall_time += stalled;
    }

    fn set_payload_mode(&mut self, mode: PayloadMode) {
        self.payload_mode = mode;
        // Timing-only runs never read payload bytes back: turn off the
        // queue's per-entry line buffering so inserts copy nothing.
        self.rwq
            .set_buffer_payloads(matches!(mode, PayloadMode::Full));
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    fn queue_depth(&self) -> usize {
        self.rwq.buffered_entries()
    }

    fn boxed_clone(&self) -> Box<dyn EgressPath> {
        Box::new(self.clone())
    }
}

/// Today's hardware: every store leaves immediately as its own TLP.
#[derive(Debug, Clone)]
pub struct RawP2pEgress {
    framing: FramingModel,
    metrics: EgressMetrics,
    /// When set, payloads are padded to cover whole sectors of this size
    /// — hardware that transfers at sector granularity rather than using
    /// byte enables, producing Fig 1's "unread bytes at the receiver".
    sector_bytes: Option<u32>,
    out: OutputBuffer,
    payload_mode: PayloadMode,
}

impl RawP2pEgress {
    /// Creates a raw peer-to-peer egress path with byte-exact payloads
    /// (byte enables mask sub-DW writes).
    pub fn new(framing: FramingModel) -> Self {
        RawP2pEgress {
            framing,
            metrics: EgressMetrics::new(),
            sector_bytes: None,
            out: OutputBuffer::default(),
            payload_mode: PayloadMode::Full,
        }
    }

    /// Variant that transfers whole `sector` -byte sectors per store —
    /// the Fig 1 over-transfer behaviour of sector-granular memory
    /// systems.
    ///
    /// # Panics
    ///
    /// Panics unless `sector` is a power of two in 4..=128.
    pub fn with_sector_quantization(mut self, sector: u32) -> Self {
        assert!(
            sector.is_power_of_two() && (4..=128).contains(&sector),
            "sector must be a power of two in 4..=128"
        );
        self.sector_bytes = Some(sector);
        self
    }

    /// Wire payload for a store at `addr` of `len` bytes under the
    /// configured quantization.
    fn wire_payload(&self, addr: u64, len: u32) -> u32 {
        match self.sector_bytes {
            None => len,
            Some(sector) => {
                let s = u64::from(sector);
                let first = addr / s;
                let last = (addr + u64::from(len) - 1) / s;
                ((last - first + 1) * s) as u32
            }
        }
    }
}

impl EgressPath for RawP2pEgress {
    fn push(
        &mut self,
        store: &RemoteStore,
        _now: SimTime,
    ) -> Result<Vec<WirePacket>, FinePackError> {
        if store.is_empty() {
            return Err(FinePackError::StoreTooLarge { len: 0, max: 128 });
        }
        self.metrics.stores_in += 1;
        self.metrics.bytes_in += u64::from(store.len());
        let payload = self.wire_payload(store.addr, store.len());
        let wire = self.framing.wire_bytes(payload);
        let data = u64::from(store.len());
        self.metrics.packets += 1;
        self.metrics.wire_bytes += wire;
        self.metrics.data_bytes += data;
        self.metrics.stores_per_packet.record(1);
        Ok(vec![WirePacket {
            dst: store.dst,
            wire_bytes: wire,
            data_bytes: data,
            payload_bytes: payload,
            reason: None,
            stores: PacketStores::from_store_ref(store, self.payload_mode),
        }])
    }

    fn release(&mut self) -> Vec<WirePacket> {
        Vec::new() // nothing is ever buffered
    }

    fn metrics(&self) -> &EgressMetrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "p2p"
    }

    fn output(&mut self) -> &mut OutputBuffer {
        &mut self.out
    }

    fn output_ref(&self) -> &OutputBuffer {
        &self.out
    }

    fn record_stall(&mut self, stalled: SimTime) {
        self.metrics.stall_time += stalled;
    }

    fn set_payload_mode(&mut self, mode: PayloadMode) {
        self.payload_mode = mode;
    }

    fn boxed_clone(&self) -> Box<dyn EgressPath> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(dst: u8, addr: u64, len: usize) -> RemoteStore {
        RemoteStore {
            src: GpuId::new(0),
            dst: GpuId::new(dst),
            addr,
            data: vec![0xA5; len],
        }
    }

    #[test]
    fn finepack_buffers_until_release() {
        let mut fp = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        for i in 0..40u64 {
            let pkts = fp
                .push(&store(1, 0x1_0000 + i * 200, 8), SimTime::ZERO)
                .unwrap();
            assert!(pkts.is_empty());
        }
        let pkts = fp.release();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].stores.len(), 40);
        assert_eq!(fp.metrics().mean_stores_per_packet(), Some(40.0));
    }

    #[test]
    fn finepack_beats_raw_p2p_on_wire_bytes() {
        let framing = FramingModel::pcie_gen4();
        let mut fp = FinePackEgress::new(GpuId::new(0), FinePackConfig::paper(4), framing);
        let mut p2p = RawP2pEgress::new(framing);
        for i in 0..100u64 {
            let s = store(1, 0x1_0000 + i * 160, 8);
            fp.push(&s, SimTime::ZERO).unwrap();
            p2p.push(&s, SimTime::ZERO).unwrap();
        }
        fp.release();
        // 100 stores x 8B: p2p pays 100x(24+8), finepack ~1x24 + 100x(5+8).
        let fp_wire = fp.metrics().wire_bytes;
        let p2p_wire = p2p.metrics().wire_bytes;
        assert!(
            fp_wire * 2 < p2p_wire,
            "finepack {fp_wire}B vs p2p {p2p_wire}B"
        );
    }

    #[test]
    fn raw_p2p_emits_one_packet_per_store() {
        let mut p2p = RawP2pEgress::new(FramingModel::pcie_gen4());
        let pkts = p2p.push(&store(2, 0x40, 4), SimTime::ZERO).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].wire_bytes, 28); // 24 + 4
        assert_eq!(pkts[0].protocol_bytes(), 24);
        assert!(p2p.release().is_empty());
    }

    #[test]
    fn sector_quantized_p2p_over_transfers() {
        let mut exact = RawP2pEgress::new(FramingModel::pcie_gen4());
        let mut quant = RawP2pEgress::new(FramingModel::pcie_gen4()).with_sector_quantization(32);
        // An 8B store straddling a 32B sector boundary: 2 sectors move.
        let s = store(1, 0x101c, 8);
        let a = exact.push(&s, SimTime::ZERO).unwrap();
        let b = quant.push(&s, SimTime::ZERO).unwrap();
        assert_eq!(a[0].wire_bytes, 24 + 8);
        assert_eq!(b[0].wire_bytes, 24 + 64);
        assert_eq!(b[0].data_bytes, 8); // useful bytes unchanged
    }

    #[test]
    fn raw_p2p_counts_dw_padding_as_protocol() {
        let mut p2p = RawP2pEgress::new(FramingModel::pcie_gen4());
        let pkts = p2p.push(&store(1, 0x40, 5), SimTime::ZERO).unwrap();
        // 5B payload -> 8B padded + 24B overhead.
        assert_eq!(pkts[0].wire_bytes, 32);
        assert_eq!(pkts[0].protocol_bytes(), 27);
    }

    #[test]
    fn finepack_final_value_semantics() {
        use gpu_model::MemoryImage;
        let mut fp = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        let mut program_order = MemoryImage::new();
        let mut via_finepack = MemoryImage::new();
        let stores = vec![
            store(1, 0x1000, 8),
            RemoteStore {
                src: GpuId::new(0),
                dst: GpuId::new(1),
                addr: 0x1000,
                data: vec![0x11; 8],
            },
            store(1, 0x1004, 2),
        ];
        let mut emitted = Vec::new();
        for s in &stores {
            program_order.write(s.addr, &s.data);
            emitted.extend(fp.push(s, SimTime::ZERO).unwrap());
        }
        emitted.extend(fp.release());
        for p in &emitted {
            for s in p.stores.full().expect("default mode carries payloads") {
                via_finepack.write(s.addr, &s.data);
            }
        }
        assert!(program_order.same_contents(&via_finepack));
    }

    #[test]
    fn extents_mode_skips_payload_clones_but_keeps_extents() {
        let mut fp = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        fp.set_payload_mode(PayloadMode::Extents);
        fp.push(&store(1, 0x1000, 8), SimTime::ZERO).unwrap();
        fp.push(&store(1, 0x1010, 4), SimTime::ZERO).unwrap();
        let pkts = fp.release();
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].stores.full().is_none(), "no payload bytes carried");
        let extents: Vec<_> = pkts[0].stores.extents().collect();
        assert_eq!(extents, vec![(0x1000, 8), (0x1010, 4)]);
        // Accounting is identical to full mode.
        let mut full = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        full.push(&store(1, 0x1000, 8), SimTime::ZERO).unwrap();
        full.push(&store(1, 0x1010, 4), SimTime::ZERO).unwrap();
        let full_pkts = full.release();
        assert_eq!(full_pkts[0].wire_bytes, pkts[0].wire_bytes);
        assert_eq!(full_pkts[0].data_bytes, pkts[0].data_bytes);
        assert_eq!(full_pkts[0].payload_bytes, pkts[0].payload_bytes);
    }

    #[test]
    fn output_buffer_admission_threshold() {
        let mut buf = OutputBuffer::new(2);
        assert!(buf.has_room() && buf.is_empty());
        let mut p2p = RawP2pEgress::new(FramingModel::pcie_gen4());
        let pkts = p2p.push(&store(1, 0x40, 4), SimTime::ZERO).unwrap();
        buf.extend(pkts.clone());
        assert!(buf.has_room());
        buf.extend(pkts.clone());
        assert!(!buf.has_room(), "at capacity: upstream must stall");
        // Overshoot is tolerated (a flush may emit several packets)...
        buf.extend(pkts);
        assert_eq!(buf.len(), 3);
        // ...and draining restores admission.
        while buf.pop_front().is_some() {}
        assert!(buf.has_room());
        assert!(p2p.can_accept());
        assert_eq!(p2p.occupancy(), 0);
    }

    #[test]
    fn timeout_flushes_idle_partitions() {
        let mut fp = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        )
        .with_flush_timeout(SimTime::from_us(1));
        fp.push(&store(1, 0x1000, 8), SimTime::from_ns(100))
            .unwrap();
        // Not yet idle long enough.
        assert!(fp.advance(SimTime::from_ns(600)).is_empty());
        // Past the timeout: the buffered store leaves.
        let pkts = fp.advance(SimTime::from_us(2));
        assert_eq!(pkts.len(), 1);
        assert_eq!(fp.metrics().flushes_for(crate::FlushReason::Timeout), 1);
        // Without a timeout, advance never flushes.
        let mut plain = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        plain.push(&store(1, 0x1000, 8), SimTime::ZERO).unwrap();
        assert!(plain.advance(SimTime::from_ms(10)).is_empty());
    }

    #[test]
    fn atomics_flush_same_address_stores_and_travel_alone() {
        let mut fp = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        fp.push(&store(1, 0x1000, 8), SimTime::ZERO).unwrap();
        fp.push(&store(1, 0x2000, 8), SimTime::ZERO).unwrap();
        let pkts = fp.push_atomic(&store(1, 0x1004, 4), SimTime::ZERO).unwrap();
        // One flush batch (same-address ordering) + the atomic itself.
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[1].stores.len(), 1);
        assert_eq!(pkts[1].data_bytes, 4);
        assert_eq!(fp.metrics().atomics_sent, 1);
        assert_eq!(fp.metrics().flushes_for(crate::FlushReason::AtomicHit), 1);
        // An atomic to an untouched address does not flush anything.
        let pkts = fp.push_atomic(&store(1, 0x9000, 4), SimTime::ZERO).unwrap();
        assert_eq!(pkts.len(), 1);
    }

    #[test]
    fn load_probe_flushes_overlapping_store() {
        let mut fp = FinePackEgress::new(
            GpuId::new(0),
            FinePackConfig::paper(4),
            FramingModel::pcie_gen4(),
        );
        fp.push(&store(1, 0x1000, 8), SimTime::ZERO).unwrap();
        assert!(fp
            .load_probe(GpuId::new(1), 0x5000, 8, SimTime::ZERO)
            .is_empty());
        let pkts = fp.load_probe(GpuId::new(1), 0x1000, 4, SimTime::ZERO);
        assert_eq!(pkts.len(), 1);
        assert_eq!(fp.metrics().flushes_for(crate::FlushReason::LoadHit), 1);
    }

    #[test]
    fn metrics_merge() {
        let mut a = EgressMetrics::new();
        a.packets = 1;
        a.wire_bytes = 100;
        a.data_bytes = 60;
        a.stores_per_packet.record(5);
        let mut b = EgressMetrics::new();
        b.packets = 2;
        b.wire_bytes = 50;
        b.data_bytes = 30;
        b.stores_per_packet.record(3);
        a.merge(&b);
        assert_eq!(a.packets, 3);
        assert_eq!(a.protocol_bytes(), 60);
        assert_eq!(a.stores_per_packet.total(), 2);
    }
}
