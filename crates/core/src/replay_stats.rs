//! Replay-amplification accounting: when the data link layer replays a
//! FinePack TLP, the *whole* aggregated transaction retransmits as a
//! unit — a large packet full of coalesced stores costs more wire bytes
//! per bit error than the small TLPs it replaced. This module attributes
//! those replayed bytes to the flush reason that produced each packet
//! and to the packet's size class, so the faults experiment can report
//! where the amplification comes from.

use sim_engine::Histogram;

use crate::rwq::FlushReason;

/// Replayed-byte attribution across flush reasons and packet sizes.
///
/// # Examples
///
/// ```
/// use finepack::{FlushReason, ReplayAmplification};
///
/// let mut amp = ReplayAmplification::new();
/// amp.record(Some(FlushReason::Release), 4096, 8192); // replayed twice
/// amp.record(None, 32, 32); // an uncoalesced packet replayed once
/// assert_eq!(amp.total_replayed(), 8224);
/// assert_eq!(amp.replayed_for(Some(FlushReason::Release)), 8192);
/// assert_eq!(amp.replayed_for(None), 32);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayAmplification {
    /// Replayed bytes per [`FlushReason::ALL`] position; the final slot
    /// collects packets with no flush attribution (raw stores, atomics).
    by_reason: [u64; FlushReason::ALL.len() + 1],
    /// Wire size of each replayed packet, once per replay event —
    /// shows whether big aggregated TLPs or small ones bear the retries.
    replayed_packet_sizes: Histogram,
    /// Packets that suffered at least one replay.
    packets_replayed: u64,
    /// Total bytes retransmitted.
    total_replayed: u64,
}

impl Default for ReplayAmplification {
    fn default() -> Self {
        ReplayAmplification::new()
    }
}

impl ReplayAmplification {
    /// Creates an empty attribution table.
    pub fn new() -> Self {
        ReplayAmplification {
            by_reason: [0; FlushReason::ALL.len() + 1],
            replayed_packet_sizes: Histogram::new("replayed_packet_wire_bytes"),
            packets_replayed: 0,
            total_replayed: 0,
        }
    }

    fn slot(reason: Option<FlushReason>) -> usize {
        match reason {
            Some(r) => FlushReason::ALL
                .iter()
                .position(|x| *x == r)
                .expect("reason in ALL"),
            None => FlushReason::ALL.len(),
        }
    }

    /// Records that a packet of `wire_bytes` (produced by `reason`, if
    /// it left a FinePack queue) incurred `replayed_bytes` of
    /// retransmission. No-op when `replayed_bytes` is zero.
    pub fn record(&mut self, reason: Option<FlushReason>, wire_bytes: u64, replayed_bytes: u64) {
        if replayed_bytes == 0 {
            return;
        }
        self.by_reason[Self::slot(reason)] += replayed_bytes;
        self.replayed_packet_sizes.record(wire_bytes);
        self.packets_replayed += 1;
        self.total_replayed += replayed_bytes;
    }

    /// Replayed bytes attributed to `reason` (`None` = unattributed).
    pub fn replayed_for(&self, reason: Option<FlushReason>) -> u64 {
        self.by_reason[Self::slot(reason)]
    }

    /// Total bytes retransmitted.
    pub fn total_replayed(&self) -> u64 {
        self.total_replayed
    }

    /// Packets that replayed at least once.
    pub fn packets_replayed(&self) -> u64 {
        self.packets_replayed
    }

    /// Wire-size distribution of replayed packets.
    pub fn replayed_packet_sizes(&self) -> &Histogram {
        &self.replayed_packet_sizes
    }

    /// Mean replayed bytes per replayed packet, or `None` if nothing
    /// replayed.
    pub fn mean_replay_cost(&self) -> Option<f64> {
        (self.packets_replayed > 0)
            .then(|| self.total_replayed as f64 / self.packets_replayed as f64)
    }

    /// Merges another table (e.g. across iterations or GPUs).
    pub fn merge(&mut self, other: &ReplayAmplification) {
        for (a, b) in self.by_reason.iter_mut().zip(other.by_reason.iter()) {
            *a += b;
        }
        self.replayed_packet_sizes
            .merge(&other.replayed_packet_sizes);
        self.packets_replayed += other.packets_replayed;
        self.total_replayed += other.total_replayed;
    }

    /// `(label, replayed bytes)` rows for non-zero reasons, report-ready.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        for (i, r) in FlushReason::ALL.iter().enumerate() {
            if self.by_reason[i] > 0 {
                out.push((r.label(), self.by_reason[i]));
            }
        }
        if self.by_reason[FlushReason::ALL.len()] > 0 {
            out.push(("uncoalesced", self.by_reason[FlushReason::ALL.len()]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_by_reason_and_size() {
        let mut amp = ReplayAmplification::new();
        amp.record(Some(FlushReason::PayloadFull), 4096, 4096);
        amp.record(Some(FlushReason::PayloadFull), 4096, 8192);
        amp.record(Some(FlushReason::Release), 256, 256);
        amp.record(None, 32, 64);
        assert_eq!(amp.total_replayed(), 4096 + 8192 + 256 + 64);
        assert_eq!(amp.replayed_for(Some(FlushReason::PayloadFull)), 12288);
        assert_eq!(amp.replayed_for(Some(FlushReason::Release)), 256);
        assert_eq!(amp.replayed_for(Some(FlushReason::WindowMiss)), 0);
        assert_eq!(amp.replayed_for(None), 64);
        assert_eq!(amp.packets_replayed(), 4);
        assert_eq!(amp.replayed_packet_sizes().total(), 4);
    }

    #[test]
    fn zero_replay_is_a_noop() {
        let mut amp = ReplayAmplification::new();
        amp.record(Some(FlushReason::Release), 4096, 0);
        assert_eq!(amp.total_replayed(), 0);
        assert_eq!(amp.packets_replayed(), 0);
        assert_eq!(amp.mean_replay_cost(), None);
        assert!(amp.rows().is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ReplayAmplification::new();
        a.record(Some(FlushReason::Release), 100, 100);
        let mut b = ReplayAmplification::new();
        b.record(Some(FlushReason::Release), 200, 400);
        b.record(None, 50, 50);
        a.merge(&b);
        assert_eq!(a.total_replayed(), 550);
        assert_eq!(a.replayed_for(Some(FlushReason::Release)), 500);
        assert_eq!(a.mean_replay_cost(), Some(550.0 / 3.0));
        let rows = a.rows();
        assert_eq!(rows, vec![("release", 500), ("uncoalesced", 50)]);
    }
}
