//! The packetizer (§IV-B): converts flushed remote-write-queue batches
//! into FinePack transactions, splitting non-contiguous byte runs into
//! separate sub-packets (the sub-header carries no byte enables) and
//! respecting the outer transaction's maximum payload.

use gpu_model::GpuId;

use crate::config::{FinePackConfig, SubheaderFormat};
use crate::packet::{FinePackPacket, SubPacket};
use crate::rwq::FlushedBatch;

/// One packed store's position inside a [`PacketLayout`]: which batch
/// entry it came from and where its bytes live — no payload is copied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutChunk {
    /// Index into the batch's `entries`.
    pub entry_idx: usize,
    /// Byte offset of the chunk within that entry's `data`.
    pub data_off: usize,
    /// Chunk length in bytes.
    pub len: u32,
    /// Byte offset from the packet's base address.
    pub offset: u64,
}

/// The shape of one outgoing FinePack transaction, computed without
/// touching payload bytes.
///
/// This is the packetizer's zero-copy core: timing-only (extents-mode)
/// egress consumes layouts directly, and [`packetize`] materializes
/// [`FinePackPacket`]s from them only when payload bytes are needed
/// (functional runs, wire encode/decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketLayout {
    /// Base address shared by all chunks (window-aligned).
    pub base_addr: u64,
    /// The packed stores, in emission order.
    pub chunks: Vec<LayoutChunk>,
}

impl PacketLayout {
    /// Payload bytes of the outer transaction (sub-headers + data).
    pub fn payload_bytes(&self, subheader: SubheaderFormat) -> u32 {
        self.chunks.iter().map(|c| subheader.bytes() + c.len).sum()
    }

    /// Data bytes carried (excluding sub-headers).
    pub fn data_bytes(&self) -> u32 {
        self.chunks.iter().map(|c| c.len).sum()
    }
}

/// Packetizes one flushed batch into one or more FinePack transactions.
///
/// All packets share the batch's window base address. A fresh packet is
/// started whenever adding the next run would exceed the configured
/// maximum payload (this can happen because the queue's payload-budget
/// register tracks merged stores, while fragmentation inside an entry can
/// add sub-headers at packetization time).
///
/// # Examples
///
/// ```
/// use finepack::{packetize, FinePackConfig, FlushReason, RemoteWriteQueue};
/// use gpu_model::{GpuId, RemoteStore};
///
/// let cfg = FinePackConfig::paper(4);
/// let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
/// for i in 0..10u64 {
///     rwq.insert(&RemoteStore {
///         src: GpuId::new(0),
///         dst: GpuId::new(1),
///         addr: 0x1_0000 + i * 256,
///         data: vec![i as u8; 8],
///     })?;
/// }
/// let batches = rwq.flush_all(FlushReason::Release);
/// let packets = packetize(&batches[0], &cfg, GpuId::new(0));
/// assert_eq!(packets.len(), 1);
/// assert_eq!(packets[0].len(), 10); // ten stores share one outer header
/// # Ok::<(), finepack::FinePackError>(())
/// ```
pub fn packetize(batch: &FlushedBatch, cfg: &FinePackConfig, src: GpuId) -> Vec<FinePackPacket> {
    packetize_layout(batch, cfg)
        .into_iter()
        .map(|layout| FinePackPacket {
            src,
            dst: batch.dst,
            base_addr: layout.base_addr,
            subheader: cfg.subheader,
            subpackets: layout
                .chunks
                .into_iter()
                .map(|c| SubPacket {
                    offset: c.offset,
                    data: batch.entries[c.entry_idx].data[c.data_off..c.data_off + c.len as usize]
                        .to_vec(),
                })
                .collect(),
        })
        .collect()
}

/// The layout pass behind [`packetize`]: computes every packet's base
/// address and chunk placement without copying any payload bytes.
///
/// Split rules are identical to [`packetize`] (they share this code): a
/// fresh packet starts whenever a run crosses into a different address
/// window or adding the next chunk would exceed the configured maximum
/// payload.
pub fn packetize_layout(batch: &FlushedBatch, cfg: &FinePackConfig) -> Vec<PacketLayout> {
    if batch.entries.is_empty() {
        return Vec::new();
    }
    let subheader = cfg.subheader;
    let range = subheader.addressable_range();
    let mut packets = Vec::new();
    let mut current: Vec<LayoutChunk> = Vec::new();
    let mut payload: u32 = 0;
    let mut base = batch.window_base;

    let mut emit = |base: u64, current: &mut Vec<LayoutChunk>, payload: &mut u32| {
        if !current.is_empty() {
            packets.push(PacketLayout {
                base_addr: base,
                chunks: std::mem::take(current),
            });
            *payload = 0;
        }
    };

    for (entry_idx, entry) in batch.entries.iter().enumerate() {
        for (run_off, run_len) in entry.runs_iter() {
            // Runs may straddle window boundaries when the addressable
            // range is smaller than a queue entry (2-byte sub-headers,
            // Table II): split them so every offset fits its field.
            let mut start = entry.line_addr + u64::from(run_off);
            let mut remaining = run_len;
            while remaining > 0 {
                let run_base = subheader.window_base(start);
                let room = (run_base + range - start).min(u64::from(remaining)) as u32;
                if run_base != base {
                    emit(base, &mut current, &mut payload);
                    base = run_base;
                }
                // A run chunk never exceeds the entry size (<=128B), which
                // is always encodable in the 10-bit length field.
                let cost = subheader.bytes() + room;
                if payload + cost > cfg.max_payload {
                    emit(base, &mut current, &mut payload);
                }
                current.push(LayoutChunk {
                    entry_idx,
                    data_off: (start - entry.line_addr) as usize,
                    len: room,
                    offset: start - base,
                });
                payload += cost;
                start += u64::from(room);
                remaining -= room;
            }
        }
    }
    emit(base, &mut current, &mut payload);
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwq::{FlushReason, RemoteWriteQueue};
    use gpu_model::RemoteStore;

    fn store(addr: u64, data: Vec<u8>) -> RemoteStore {
        RemoteStore {
            src: GpuId::new(0),
            dst: GpuId::new(1),
            addr,
            data,
        }
    }

    #[test]
    fn fragmented_entry_splits_into_subpackets() {
        let cfg = FinePackConfig::paper(4);
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        rwq.insert(&store(0x1000, vec![1; 4])).unwrap();
        rwq.insert(&store(0x1010, vec![2; 4])).unwrap(); // gap within line
        let batches = rwq.flush_all(FlushReason::Release);
        let pkts = packetize(&batches[0], &cfg, GpuId::new(0));
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].len(), 2);
        assert_eq!(pkts[0].subpackets[0].offset, 0x1000 - pkts[0].base_addr);
        assert_eq!(pkts[0].subpackets[1].offset, 0x1010 - pkts[0].base_addr);
    }

    #[test]
    fn overflow_splits_into_multiple_packets() {
        let mut cfg = FinePackConfig::paper(4);
        cfg.max_payload = 300; // fits two 128B entries + subheaders, not three
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        // Insert full 128B lines so the budget math is simple.
        for i in 0..2u64 {
            rwq.insert(&store(0x1000 + i * 128, vec![i as u8; 128]))
                .unwrap();
        }
        let mut batches = rwq.flush_all(FlushReason::Release);
        // Force a third entry into the same batch artificially to make the
        // packetizer split (runs of 128+5 each: 266 fits, 399 does not).
        let extra = crate::rwq::FlushedEntry {
            line_addr: 0x1000 + 2 * 128,
            mask: u128::MAX,
            data: vec![3u8; 128],
        };
        batches[0].entries.push(extra);
        let pkts = packetize(&batches[0], &cfg, GpuId::new(0));
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].len(), 2);
        assert_eq!(pkts[1].len(), 1);
        assert!(pkts.iter().all(|p| p.payload_bytes() <= 300));
    }

    #[test]
    fn empty_batch_yields_no_packets() {
        let batch = FlushedBatch {
            dst: GpuId::new(1),
            reason: FlushReason::Release,
            window_base: 0,
            entries: vec![],
            stores_merged: 0,
            overwritten_bytes: 0,
        };
        assert!(packetize(&batch, &FinePackConfig::paper(4), GpuId::new(0)).is_empty());
    }

    #[test]
    fn roundtrip_preserves_store_data() {
        let cfg = FinePackConfig::paper(4);
        let mut rwq = RemoteWriteQueue::new(GpuId::new(0), cfg);
        let stores: Vec<RemoteStore> = (0..20)
            .map(|i| store(0x2_0000 + i * 96, vec![(i % 251) as u8; 12]))
            .collect();
        for s in &stores {
            rwq.insert(s).unwrap();
        }
        let batches = rwq.flush_all(FlushReason::Release);
        let mut unpacked = Vec::new();
        for b in &batches {
            for p in packetize(b, &cfg, GpuId::new(0)) {
                let wire = p.encode();
                let back = FinePackPacket::decode(&wire, cfg.subheader, p.src, p.dst).unwrap();
                unpacked.extend(back.to_stores());
            }
        }
        // Disjoint addresses: every original store must come back intact
        // (merged runs may concatenate adjacent stores, but these are 96B
        // apart with 12B payloads, so they stay distinct).
        assert_eq!(unpacked.len(), stores.len());
        let mut got: Vec<(u64, Vec<u8>)> = unpacked.into_iter().map(|s| (s.addr, s.data)).collect();
        got.sort_by_key(|(a, _)| *a);
        let mut want: Vec<(u64, Vec<u8>)> = stores.into_iter().map(|s| (s.addr, s.data)).collect();
        want.sort_by_key(|(a, _)| *a);
        assert_eq!(got, want);
    }
}
