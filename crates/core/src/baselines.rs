//! Baseline egress paths the paper compares against:
//!
//! - [`WriteCombiningEgress`]: cacheline-granularity write combining with
//!   no FinePack repacketization — each combined line leaves as ordinary
//!   memory-write TLPs. FinePack's §VI-A reports a further 24% wire-data
//!   reduction over this.
//! - [`GpsEgress`]: a GPS-like model (§VI-B): the same cacheline
//!   write combining, plus a publish–subscribe filter that drops stores
//!   to unsubscribed replicas. GPS wins where unsubscription removes
//!   enough traffic to offset its per-line TLP inefficiency; FinePack
//!   wins elsewhere — and needs no application porting.

use std::collections::{BTreeMap, VecDeque};

use gpu_model::{GpuId, RemoteStore};
use protocol::FramingModel;
use sim_engine::{DetRng, SimTime};

use crate::config::FinePackError;
use crate::egress::{
    EgressMetrics, EgressPath, OutputBuffer, PacketStores, PayloadMode, WirePacket,
};
use crate::rwq::FlushedEntry;

/// Per-destination cacheline combining buffer with FIFO eviction.
#[derive(Debug, Default, Clone)]
struct LineBuffer {
    lines: BTreeMap<u64, (u128, Vec<u8>, u64)>, // line -> (mask, data, stores_merged)
    fifo: VecDeque<u64>,
}

fn span_mask(offset: u32, len: u32) -> u128 {
    if len == 128 {
        u128::MAX
    } else {
        ((1u128 << len) - 1) << offset
    }
}

impl LineBuffer {
    /// Inserts a store; returns an evicted line if capacity was exceeded.
    /// With `buffer_payloads` off (timing-only runs) lines hold masks
    /// only and flushed entries carry empty `data`.
    fn insert(
        &mut self,
        addr: u64,
        data: &[u8],
        capacity: usize,
        overwritten: &mut u64,
        buffer_payloads: bool,
    ) -> Option<(u64, FlushedEntry, u64)> {
        let line_addr = addr & !127;
        let off = (addr - line_addr) as u32;
        let incoming = span_mask(off, data.len() as u32);
        let mut evicted = None;
        if !self.lines.contains_key(&line_addr) && self.lines.len() >= capacity {
            let victim = self.fifo.pop_front().expect("fifo tracks lines");
            let (mask, vdata, merged) = self.lines.remove(&victim).expect("line present");
            evicted = Some((
                victim,
                FlushedEntry {
                    line_addr: victim,
                    mask,
                    data: vdata,
                },
                merged,
            ));
        }
        match self.lines.get_mut(&line_addr) {
            Some((mask, buf, merged)) => {
                *overwritten += u64::from((incoming & *mask).count_ones());
                *mask |= incoming;
                if buffer_payloads {
                    buf[off as usize..off as usize + data.len()].copy_from_slice(data);
                }
                *merged += 1;
            }
            None => {
                let buf = if buffer_payloads {
                    let mut buf = vec![0u8; 128];
                    buf[off as usize..off as usize + data.len()].copy_from_slice(data);
                    buf
                } else {
                    Vec::new()
                };
                self.lines.insert(line_addr, (incoming, buf, 1));
                self.fifo.push_back(line_addr);
            }
        }
        evicted
    }

    fn drain(&mut self) -> Vec<(FlushedEntry, u64)> {
        self.fifo.clear();
        std::mem::take(&mut self.lines)
            .into_iter()
            .map(|(line_addr, (mask, data, merged))| {
                (
                    FlushedEntry {
                        line_addr,
                        mask,
                        data,
                    },
                    merged,
                )
            })
            .collect()
    }
}

fn validate(store: &RemoteStore) -> Result<(u64, u32), FinePackError> {
    let len = store.len();
    if len == 0 || len > 128 {
        return Err(FinePackError::StoreTooLarge { len, max: 128 });
    }
    let off = (store.addr % 128) as u32;
    if off + len > 128 {
        return Err(FinePackError::StoreCrossesBlock {
            addr: store.addr,
            len,
        });
    }
    Ok((store.addr & !127, off))
}

/// Write combining at cacheline granularity, emitting plain memory-write
/// TLPs (one per contiguous valid-byte run).
#[derive(Debug, Clone)]
pub struct WriteCombiningEgress {
    src: GpuId,
    framing: FramingModel,
    capacity: usize,
    buffers: BTreeMap<GpuId, LineBuffer>,
    metrics: EgressMetrics,
    out: OutputBuffer,
    payload_mode: PayloadMode,
}

impl WriteCombiningEgress {
    /// Creates a write-combining egress with `capacity` lines per
    /// destination (the paper's structures use 64).
    pub fn new(src: GpuId, framing: FramingModel, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        WriteCombiningEgress {
            src,
            framing,
            capacity,
            buffers: BTreeMap::new(),
            metrics: new_metrics(),
            out: OutputBuffer::default(),
            payload_mode: PayloadMode::Full,
        }
    }

    fn emit_entry(&mut self, dst: GpuId, entry: FlushedEntry, merged: u64) -> Vec<WirePacket> {
        let runs = entry.runs();
        let n = runs.len() as u64;
        runs.into_iter()
            .enumerate()
            .map(|(i, (off, len))| {
                let addr = entry.line_addr + u64::from(off);
                let wire = self.framing.wire_bytes(len);
                self.metrics.packets += 1;
                self.metrics.wire_bytes += wire;
                self.metrics.data_bytes += u64::from(len);
                let share = merged / n + u64::from((i as u64) < merged % n);
                self.metrics.stores_per_packet.record(share);
                let stores = match self.payload_mode {
                    PayloadMode::Extents => PacketStores::Extents(vec![(addr, len)]),
                    PayloadMode::Full => PacketStores::Full(vec![RemoteStore {
                        src: self.src,
                        dst,
                        addr,
                        data: entry.data[off as usize..(off + len) as usize].to_vec(),
                    }]),
                };
                WirePacket {
                    dst,
                    wire_bytes: wire,
                    data_bytes: u64::from(len),
                    payload_bytes: len,
                    reason: None,
                    stores,
                }
            })
            .collect()
    }
}

fn new_metrics() -> EgressMetrics {
    // EgressMetrics has no public constructor by design; clone a fresh one
    // through the egress paths' shared helper.
    EgressMetrics::default()
}

impl EgressPath for WriteCombiningEgress {
    fn push(
        &mut self,
        store: &RemoteStore,
        _now: SimTime,
    ) -> Result<Vec<WirePacket>, FinePackError> {
        validate(store)?;
        self.metrics.stores_in += 1;
        self.metrics.bytes_in += u64::from(store.len());
        let mut overwritten = 0u64;
        let buffer_payloads = matches!(self.payload_mode, PayloadMode::Full);
        let evicted = self.buffers.entry(store.dst).or_default().insert(
            store.addr,
            &store.data,
            self.capacity,
            &mut overwritten,
            buffer_payloads,
        );
        self.metrics.overwritten_bytes += overwritten;
        match evicted {
            Some((_, entry, merged)) => Ok(self.emit_entry(store.dst, entry, merged)),
            None => Ok(Vec::new()),
        }
    }

    fn release(&mut self) -> Vec<WirePacket> {
        let mut out = Vec::new();
        let dsts: Vec<GpuId> = self.buffers.keys().copied().collect();
        for dst in dsts {
            let drained = self.buffers.get_mut(&dst).expect("dst present").drain();
            for (entry, merged) in drained {
                out.extend(self.emit_entry(dst, entry, merged));
            }
        }
        out
    }

    fn metrics(&self) -> &EgressMetrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "write-combining"
    }

    fn output(&mut self) -> &mut OutputBuffer {
        &mut self.out
    }

    fn output_ref(&self) -> &OutputBuffer {
        &self.out
    }

    fn record_stall(&mut self, stalled: SimTime) {
        self.metrics.stall_time += stalled;
    }

    fn set_payload_mode(&mut self, mode: PayloadMode) {
        self.payload_mode = mode;
    }

    fn boxed_clone(&self) -> Box<dyn EgressPath> {
        Box::new(self.clone())
    }
}

/// GPS-like egress: cacheline write combining plus publish–subscribe
/// filtering. Combined lines leave as memory-write TLPs covering each
/// dirty byte run (DW-padded on the wire — GPS's "unneeded transfers
/// within a cacheline"), and a configurable fraction of stores targets
/// unsubscribed replicas and is dropped entirely (GPS's dynamic
/// unsubscription benefit).
#[derive(Debug, Clone)]
pub struct GpsEgress {
    src: GpuId,
    framing: FramingModel,
    capacity: usize,
    /// Probability an incoming store targets an unsubscribed replica and
    /// is dropped (GPS's dynamic-unsubscription benefit).
    unsubscribed_fraction: f64,
    rng: DetRng,
    buffers: BTreeMap<GpuId, LineBuffer>,
    metrics: EgressMetrics,
    out: OutputBuffer,
    payload_mode: PayloadMode,
    /// Stores filtered out by subscription.
    pub stores_filtered: u64,
}

impl GpsEgress {
    /// Creates a GPS-like egress.
    ///
    /// # Panics
    ///
    /// Panics if `unsubscribed_fraction` is outside `[0, 1]` or
    /// `capacity` is zero.
    pub fn new(
        src: GpuId,
        framing: FramingModel,
        capacity: usize,
        unsubscribed_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&unsubscribed_fraction));
        assert!(capacity > 0);
        GpsEgress {
            src,
            framing,
            capacity,
            unsubscribed_fraction,
            rng: DetRng::new(seed, &format!("gps-{}", src.index())),
            buffers: BTreeMap::new(),
            metrics: new_metrics(),
            out: OutputBuffer::default(),
            payload_mode: PayloadMode::Full,
            stores_filtered: 0,
        }
    }

    fn emit_entry(&mut self, dst: GpuId, entry: FlushedEntry, merged: u64) -> Vec<WirePacket> {
        let runs = entry.runs();
        let n = runs.len() as u64;
        runs.into_iter()
            .enumerate()
            .map(|(i, (off, len))| {
                let addr = entry.line_addr + u64::from(off);
                let wire = self.framing.wire_bytes(len);
                self.metrics.packets += 1;
                self.metrics.wire_bytes += wire;
                self.metrics.data_bytes += u64::from(len);
                let share = merged / n + u64::from((i as u64) < merged % n);
                self.metrics.stores_per_packet.record(share);
                let stores = match self.payload_mode {
                    PayloadMode::Extents => PacketStores::Extents(vec![(addr, len)]),
                    PayloadMode::Full => PacketStores::Full(vec![RemoteStore {
                        src: self.src,
                        dst,
                        addr,
                        data: entry.data[off as usize..(off + len) as usize].to_vec(),
                    }]),
                };
                WirePacket {
                    dst,
                    wire_bytes: wire,
                    data_bytes: u64::from(len),
                    payload_bytes: len,
                    reason: None,
                    stores,
                }
            })
            .collect()
    }
}

impl EgressPath for GpsEgress {
    fn push(
        &mut self,
        store: &RemoteStore,
        _now: SimTime,
    ) -> Result<Vec<WirePacket>, FinePackError> {
        validate(store)?;
        self.metrics.stores_in += 1;
        self.metrics.bytes_in += u64::from(store.len());
        if self.rng.chance(self.unsubscribed_fraction) {
            self.stores_filtered += 1;
            return Ok(Vec::new());
        }
        let mut overwritten = 0u64;
        let buffer_payloads = matches!(self.payload_mode, PayloadMode::Full);
        let evicted = self.buffers.entry(store.dst).or_default().insert(
            store.addr,
            &store.data,
            self.capacity,
            &mut overwritten,
            buffer_payloads,
        );
        self.metrics.overwritten_bytes += overwritten;
        match evicted {
            Some((_, entry, merged)) => Ok(self.emit_entry(store.dst, entry, merged)),
            None => Ok(Vec::new()),
        }
    }

    fn release(&mut self) -> Vec<WirePacket> {
        let mut out = Vec::new();
        let dsts: Vec<GpuId> = self.buffers.keys().copied().collect();
        for dst in dsts {
            let drained = self.buffers.get_mut(&dst).expect("dst present").drain();
            for (entry, merged) in drained {
                out.extend(self.emit_entry(dst, entry, merged));
            }
        }
        out
    }

    fn metrics(&self) -> &EgressMetrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "gps"
    }

    fn output(&mut self) -> &mut OutputBuffer {
        &mut self.out
    }

    fn output_ref(&self) -> &OutputBuffer {
        &self.out
    }

    fn record_stall(&mut self, stalled: SimTime) {
        self.metrics.stall_time += stalled;
    }

    fn set_payload_mode(&mut self, mode: PayloadMode) {
        self.payload_mode = mode;
    }

    fn boxed_clone(&self) -> Box<dyn EgressPath> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(dst: u8, addr: u64, len: usize, val: u8) -> RemoteStore {
        RemoteStore {
            src: GpuId::new(0),
            dst: GpuId::new(dst),
            addr,
            data: vec![val; len],
        }
    }

    #[test]
    fn wc_combines_within_a_line_only() {
        let mut wc = WriteCombiningEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 64);
        wc.push(&store(1, 0x1000, 8, 1), SimTime::ZERO).unwrap();
        wc.push(&store(1, 0x1008, 8, 2), SimTime::ZERO).unwrap();
        let pkts = wc.release();
        // Contiguous within the line: one run, one packet.
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].data_bytes, 16);
    }

    #[test]
    fn wc_fragmented_line_emits_multiple_tlps() {
        let mut wc = WriteCombiningEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 64);
        wc.push(&store(1, 0x1000, 4, 1), SimTime::ZERO).unwrap();
        wc.push(&store(1, 0x1020, 4, 2), SimTime::ZERO).unwrap();
        let pkts = wc.release();
        assert_eq!(pkts.len(), 2);
    }

    #[test]
    fn wc_fifo_eviction() {
        let mut wc = WriteCombiningEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 2);
        wc.push(&store(1, 0, 4, 1), SimTime::ZERO).unwrap();
        wc.push(&store(1, 128, 4, 2), SimTime::ZERO).unwrap();
        let evicted = wc.push(&store(1, 2 * 128, 4, 3), SimTime::ZERO).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].stores.full().unwrap()[0].addr, 0); // oldest line left first
    }

    #[test]
    fn wc_overwrites_are_elided() {
        let mut wc = WriteCombiningEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 64);
        wc.push(&store(1, 0x1000, 8, 1), SimTime::ZERO).unwrap();
        wc.push(&store(1, 0x1000, 8, 9), SimTime::ZERO).unwrap();
        let pkts = wc.release();
        assert_eq!(pkts[0].data_bytes, 8);
        assert_eq!(pkts[0].stores.full().unwrap()[0].data, vec![9; 8]);
        assert_eq!(wc.metrics().overwritten_bytes, 8);
    }

    #[test]
    fn gps_ships_dirty_runs_without_subscription_loss() {
        let mut gps = GpsEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 64, 0.0, 1);
        gps.push(&store(1, 0x1000, 4, 1), SimTime::ZERO).unwrap();
        let pkts = gps.release();
        assert_eq!(pkts.len(), 1);
        // One 4B dirty run: 4B payload + 24B overhead.
        assert_eq!(pkts[0].wire_bytes, 28);
        assert_eq!(pkts[0].data_bytes, 4);
    }

    #[test]
    fn gps_subscription_drops_stores() {
        let mut gps = GpsEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 64, 1.0, 1);
        gps.push(&store(1, 0x1000, 4, 1), SimTime::ZERO).unwrap();
        assert!(gps.release().is_empty());
        assert_eq!(gps.stores_filtered, 1);
    }

    #[test]
    fn wc_beats_raw_but_loses_to_finepack() {
        use crate::egress::{FinePackEgress, RawP2pEgress};
        use crate::FinePackConfig;
        let framing = FramingModel::pcie_gen4();
        let mut fp = FinePackEgress::new(GpuId::new(0), FinePackConfig::paper(4), framing);
        let mut wc = WriteCombiningEgress::new(GpuId::new(0), framing, 64);
        let mut p2p = RawP2pEgress::new(framing);
        // Scattered 8B stores, two per line.
        for i in 0..200u64 {
            let s = store(1, 0x1_0000 + (i / 2) * 128 + (i % 2) * 8, 8, i as u8);
            fp.push(&s, SimTime::ZERO).unwrap();
            wc.push(&s, SimTime::ZERO).unwrap();
            p2p.push(&s, SimTime::ZERO).unwrap();
        }
        fp.release();
        wc.release();
        let (f, w, p) = (
            fp.metrics().wire_bytes,
            wc.metrics().wire_bytes,
            p2p.metrics().wire_bytes,
        );
        assert!(f < w, "finepack {f} !< wc {w}");
        assert!(w < p, "wc {w} !< p2p {p}");
    }

    #[test]
    fn invalid_stores_rejected() {
        let mut wc = WriteCombiningEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 64);
        assert!(wc.push(&store(1, 0x7c, 8, 0), SimTime::ZERO).is_err()); // crosses block
        let mut gps = GpsEgress::new(GpuId::new(0), FramingModel::pcie_gen4(), 64, 0.0, 1);
        assert!(gps.push(&store(1, 0, 129, 0), SimTime::ZERO).is_err());
    }
}
