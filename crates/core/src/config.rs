//! FinePack configuration: the sub-transaction header format of Table II
//! and the structure sizes of Table III.

use std::fmt;

/// Bits reserved for the length field in every sub-transaction header
/// (mirrors PCIe's 10-bit length, §IV-A).
pub const LENGTH_FIELD_BITS: u32 = 10;

/// How remote-write-queue entry SRAM is shared between destinations.
///
/// §IV-C: "More sophisticated designs might construct the SRAM with
/// fully dynamic allocation, rather than partitioning the capacity in
/// advance."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocationPolicy {
    /// The paper's evaluated design: each destination gets a fixed
    /// per-partition share of the entries.
    #[default]
    StaticPartition,
    /// A shared pool: any destination may use any entry; when the pool
    /// fills, the globally least-recently-used window is flushed.
    DynamicShared,
}

/// The sub-transaction header format: a total byte count split into a
/// 10-bit length field and the remaining bits of address offset
/// (Table II).
///
/// # Examples
///
/// ```
/// use finepack::SubheaderFormat;
///
/// let f = SubheaderFormat::new(5)?;
/// assert_eq!(f.offset_bits(), 30);
/// assert_eq!(f.addressable_range(), 1 << 30); // 1 GB
/// # Ok::<(), finepack::FinePackError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubheaderFormat {
    bytes: u32,
}

impl SubheaderFormat {
    /// Creates a format with `bytes` total sub-header bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FinePackError::InvalidSubheader`] unless `2 <= bytes <= 6`
    /// (the range swept in Table II / Fig 12).
    pub fn new(bytes: u32) -> Result<Self, FinePackError> {
        if !(2..=6).contains(&bytes) {
            return Err(FinePackError::InvalidSubheader(bytes));
        }
        Ok(SubheaderFormat { bytes })
    }

    /// The paper's chosen configuration: 5 bytes (30-bit offset, 1 GB
    /// range), per Table III.
    pub fn paper() -> Self {
        SubheaderFormat { bytes: 5 }
    }

    /// Total sub-header size in bytes.
    pub fn bytes(self) -> u32 {
        self.bytes
    }

    /// Address-offset bits carried in the sub-header.
    pub fn offset_bits(self) -> u32 {
        self.bytes * 8 - LENGTH_FIELD_BITS
    }

    /// Addressable range per outer transaction, in bytes
    /// (`2^offset_bits`) — the Table II row.
    pub fn addressable_range(self) -> u64 {
        1u64 << self.offset_bits()
    }

    /// Maximum encodable sub-packet payload length in bytes.
    pub fn max_subpacket_len(self) -> u32 {
        (1 << LENGTH_FIELD_BITS) - 1
    }

    /// Masks `addr` down to the window base containing it.
    pub fn window_base(self, addr: u64) -> u64 {
        addr & !(self.addressable_range() - 1)
    }
}

impl fmt::Display for SubheaderFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B subheader ({} offset bits, {} range)",
            self.bytes,
            self.offset_bits(),
            human_bytes(self.addressable_range())
        )
    }
}

fn human_bytes(b: u64) -> String {
    const UNITS: [(&str, u64); 4] = [("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10), ("B", 1)];
    for (unit, scale) in UNITS {
        if b >= scale {
            return format!("{}{}", b / scale, unit);
        }
    }
    "0B".to_string()
}

/// Complete FinePack hardware configuration (Table III defaults).
///
/// # Examples
///
/// ```
/// use finepack::FinePackConfig;
///
/// let cfg = FinePackConfig::paper(4);
/// // Table III: 192 entries total on a 4-GPU system (64 per peer).
/// assert_eq!(cfg.total_entries(), 192);
/// assert_eq!(cfg.max_payload, 4096);
/// assert_eq!(cfg.subheader.bytes(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinePackConfig {
    /// Sub-transaction header format.
    pub subheader: SubheaderFormat,
    /// Maximum outer-transaction payload (PCIe max payload), bytes.
    pub max_payload: u32,
    /// Remote write queue entries per destination partition.
    pub entries_per_partition: u32,
    /// Bytes of data per queue entry (one cache block).
    pub entry_bytes: u32,
    /// Number of destination partitions (peer GPUs).
    pub num_partitions: u32,
    /// Open outer transactions (address windows) per partition. The
    /// paper evaluates 1; §IV-C suggests more to avoid thrashing when a
    /// data structure straddles an alignment boundary, at the cost of
    /// fewer entries per window.
    pub windows_per_partition: u32,
    /// Entry-SRAM sharing policy (§IV-C; static in the paper).
    pub allocation: AllocationPolicy,
}

impl FinePackConfig {
    /// The Table III configuration for a node with `num_gpus` GPUs:
    /// 64 × 128B entries per peer partition, 4 KB max payload, 5-byte
    /// sub-headers.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus < 2` (FinePack needs at least one peer).
    pub fn paper(num_gpus: u32) -> Self {
        assert!(num_gpus >= 2, "need at least one peer GPU");
        FinePackConfig {
            subheader: SubheaderFormat::paper(),
            max_payload: 4096,
            entries_per_partition: 64,
            entry_bytes: 128,
            num_partitions: num_gpus - 1,
            windows_per_partition: 1,
            allocation: AllocationPolicy::StaticPartition,
        }
    }

    /// Same structure sizes under a different SRAM sharing policy.
    pub fn with_allocation(mut self, allocation: AllocationPolicy) -> Self {
        self.allocation = allocation;
        self
    }

    /// Same structure sizes but `windows` concurrently open outer
    /// transactions per destination (§IV-C anti-thrashing variant).
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero or exceeds the entry count.
    pub fn with_windows(mut self, windows: u32) -> Self {
        assert!(
            windows >= 1 && windows <= self.entries_per_partition,
            "windows must be in 1..=entries_per_partition"
        );
        self.windows_per_partition = windows;
        self
    }

    /// Queue entries available to each open window.
    pub fn entries_per_window(&self) -> u32 {
        (self.entries_per_partition / self.windows_per_partition).max(1)
    }

    /// Same structure sizes but a different sub-header format (Fig 12
    /// sweep).
    pub fn with_subheader(mut self, subheader: SubheaderFormat) -> Self {
        self.subheader = subheader;
        self
    }

    /// Total queue entries across all partitions (Table III reports 192
    /// for 4 GPUs).
    pub fn total_entries(&self) -> u32 {
        self.entries_per_partition * self.num_partitions
    }

    /// Total data SRAM across all partitions, in bytes (§IV-B: 48 KB on a
    /// 4-GPU system, not counting tags or byte enables).
    pub fn data_sram_bytes(&self) -> u64 {
        u64::from(self.total_entries()) * u64::from(self.entry_bytes)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero-sized structures,
    /// entry larger than payload, or a window smaller than an entry).
    pub fn validate(&self) {
        assert!(self.entry_bytes.is_power_of_two() && self.entry_bytes > 0);
        assert!(self.max_payload >= self.entry_bytes);
        assert!(self.entries_per_partition > 0);
        assert!(self.num_partitions > 0);
        assert!(self.windows_per_partition >= 1);
        assert!(self.windows_per_partition <= self.entries_per_partition);
        // Note: the addressable window MAY be smaller than a queue entry
        // (the 2-byte Table II format has a 64B window vs 128B entries);
        // the packetizer splits runs at window boundaries in that case.
    }
}

/// Errors produced by FinePack components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinePackError {
    /// Sub-header byte count outside the supported 2–6 range.
    InvalidSubheader(u32),
    /// A store larger than one queue entry / cache block was offered.
    StoreTooLarge {
        /// Offending store length.
        len: u32,
        /// Maximum supported length.
        max: u32,
    },
    /// A store crossing a cache-block boundary was offered (the L1
    /// coalescer never produces these).
    StoreCrossesBlock {
        /// Store address.
        addr: u64,
        /// Store length.
        len: u32,
    },
    /// A store addressed to the GPU that issued it: local traffic must
    /// never enter the remote write queue (a routing bug upstream).
    SelfRoute {
        /// The GPU that both issued and would receive the store.
        gpu: u8,
        /// Store address.
        addr: u64,
    },
    /// Packet decode failed.
    Decode(protocol::ProtocolError),
}

impl fmt::Display for FinePackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinePackError::InvalidSubheader(b) => {
                write!(f, "sub-header must be 2-6 bytes, got {b}")
            }
            FinePackError::StoreTooLarge { len, max } => {
                write!(f, "store of {len} bytes exceeds entry size {max}")
            }
            FinePackError::StoreCrossesBlock { addr, len } => {
                write!(f, "store at {addr:#x} len {len} crosses a cache block")
            }
            FinePackError::SelfRoute { gpu, addr } => {
                write!(f, "store at {addr:#x} routed from GPU{gpu} to itself")
            }
            FinePackError::Decode(e) => write!(f, "packet decode failed: {e}"),
        }
    }
}

impl std::error::Error for FinePackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FinePackError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<protocol::ProtocolError> for FinePackError {
    fn from(e: protocol::ProtocolError) -> Self {
        FinePackError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows() {
        // (bytes, offset bits, range)
        let expect = [
            (2, 6, 64u64),
            (3, 14, 16 << 10),
            (4, 22, 4 << 20),
            (5, 30, 1 << 30),
            (6, 38, 256 << 30),
        ];
        for (bytes, bits, range) in expect {
            let f = SubheaderFormat::new(bytes).unwrap();
            assert_eq!(f.offset_bits(), bits, "bytes={bytes}");
            assert_eq!(f.addressable_range(), range, "bytes={bytes}");
        }
    }

    #[test]
    fn invalid_subheaders_rejected() {
        assert!(SubheaderFormat::new(1).is_err());
        assert!(SubheaderFormat::new(7).is_err());
        assert_eq!(
            SubheaderFormat::new(9).unwrap_err(),
            FinePackError::InvalidSubheader(9)
        );
    }

    #[test]
    fn window_base_masks_low_bits() {
        let f = SubheaderFormat::new(4).unwrap(); // 4MB windows
        assert_eq!(f.window_base(0x0123_4567), 0x0100_0000);
        assert_eq!(f.window_base(0x0040_0000), 0x0040_0000);
        assert_eq!(f.window_base(0x0100_0000), 0x0100_0000);
    }

    #[test]
    fn paper_config_matches_table3() {
        let cfg = FinePackConfig::paper(4);
        cfg.validate();
        assert_eq!(cfg.total_entries(), 192);
        assert_eq!(cfg.data_sram_bytes(), 192 * 128); // 24 KB data per §IV-B sizing of 3 partitions
        assert_eq!(cfg.subheader.offset_bits(), 30);
    }

    #[test]
    fn sixteen_gpu_sram_within_discussion_bound() {
        // §VI-B: on a 16-GPU system the per-GPU partition storage is 120KB
        // (15 partitions x 64 entries x 128B = 120KB).
        let cfg = FinePackConfig::paper(16);
        assert_eq!(cfg.data_sram_bytes(), 120 << 10);
    }

    #[test]
    fn display_formats_range() {
        let f = SubheaderFormat::new(5).unwrap();
        assert_eq!(f.to_string(), "5B subheader (30 offset bits, 1GB range)");
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let e = FinePackError::StoreTooLarge { len: 256, max: 128 };
        assert!(e.to_string().contains("256"));
        assert!(e.source().is_none());
        let d = FinePackError::from(protocol::ProtocolError::InvalidField("x"));
        assert!(d.source().is_some());
    }

    #[test]
    fn tiny_window_is_allowed() {
        // Table II's 2-byte format has a 64B window, smaller than one
        // 128B queue entry; the packetizer handles the split.
        let cfg = FinePackConfig::paper(4).with_subheader(SubheaderFormat::new(2).unwrap());
        cfg.validate();
    }
}
