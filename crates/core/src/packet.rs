//! The FinePack transaction format (§IV-A, Fig 6): an outer PCIe TLP
//! whose payload concatenates sub-packets, each led by a compact
//! sub-transaction header carrying a base-relative address offset and a
//! byte length.

use gpu_model::{GpuId, RemoteStore};
use protocol::{FramingModel, ProtocolError, TlpHeader, TlpType};

use crate::config::{FinePackError, SubheaderFormat, LENGTH_FIELD_BITS};

/// One packed store inside a FinePack transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubPacket {
    /// Byte offset from the outer transaction's base address.
    pub offset: u64,
    /// Store payload (1–1023 bytes; zero-length terminates decoding).
    pub data: Vec<u8>,
}

impl SubPacket {
    /// Wire bytes of this sub-packet under `format` (sub-header + data).
    pub fn wire_bytes(&self, format: SubheaderFormat) -> u32 {
        format.bytes() + self.data.len() as u32
    }
}

/// A FinePack transaction: base address + packed sub-packets.
///
/// # Examples
///
/// ```
/// use finepack::{FinePackPacket, SubPacket, SubheaderFormat};
/// use gpu_model::GpuId;
///
/// let pkt = FinePackPacket {
///     src: GpuId::new(0),
///     dst: GpuId::new(1),
///     base_addr: 0x4000_0000,
///     subheader: SubheaderFormat::paper(),
///     subpackets: vec![SubPacket { offset: 0x10, data: vec![1, 2, 3, 4] }],
/// };
/// let wire = pkt.encode();
/// let back = FinePackPacket::decode(&wire, SubheaderFormat::paper(), GpuId::new(0), GpuId::new(1))?;
/// assert_eq!(back, pkt);
/// # Ok::<(), finepack::FinePackError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinePackPacket {
    /// Sending GPU (carried out-of-band; on real PCIe this is the
    /// requester ID).
    pub src: GpuId,
    /// Destination GPU (out-of-band; on real PCIe, address routing).
    pub dst: GpuId,
    /// Base address shared by all sub-packets (window-aligned).
    pub base_addr: u64,
    /// Sub-header format in force for this packet.
    pub subheader: SubheaderFormat,
    /// The packed stores.
    pub subpackets: Vec<SubPacket>,
}

impl FinePackPacket {
    /// Payload bytes of the outer transaction (sub-headers + data).
    pub fn payload_bytes(&self) -> u32 {
        self.subpackets
            .iter()
            .map(|s| s.wire_bytes(self.subheader))
            .sum()
    }

    /// Data bytes carried (excluding sub-headers).
    pub fn data_bytes(&self) -> u32 {
        self.subpackets.iter().map(|s| s.data.len() as u32).sum()
    }

    /// Total bytes on the wire under `framing` (outer header + link
    /// framing + DW-padded payload).
    pub fn wire_bytes(&self, framing: &FramingModel) -> u64 {
        framing.wire_bytes(self.payload_bytes())
    }

    /// Number of packed sub-packets.
    pub fn len(&self) -> usize {
        self.subpackets.len()
    }

    /// True if the packet carries no sub-packets.
    pub fn is_empty(&self) -> bool {
        self.subpackets.is_empty()
    }

    /// Encodes the outer TLP header plus the FinePack payload.
    ///
    /// The payload is padded with zero bytes to the next DW; a zero
    /// length field terminates decoding, so sub-packets never have
    /// zero-length payloads.
    ///
    /// # Panics
    ///
    /// Panics if a sub-packet's offset does not fit the sub-header's
    /// offset field, if a payload is empty or exceeds the encodable
    /// length, or if the packet itself is empty.
    pub fn encode(&self) -> Vec<u8> {
        assert!(!self.is_empty(), "cannot encode an empty FinePack packet");
        let payload_len = self.payload_bytes();
        let padded = payload_len.div_ceil(4) * 4;
        // GpuId is bounded to u8 by construction, so widening into the
        // 16-bit requester-id field is lossless for every id.
        let header = TlpHeader::finepack(u16::from(self.src.as_u8()), self.base_addr, padded);
        let mut out = Vec::with_capacity(16 + padded as usize);
        out.extend_from_slice(&header.encode());
        for sub in &self.subpackets {
            let len = sub.data.len() as u64;
            assert!(
                len > 0 && len <= u64::from((1u32 << LENGTH_FIELD_BITS) - 1),
                "sub-packet length {len} not encodable"
            );
            assert!(
                sub.offset < self.subheader.addressable_range(),
                "offset {:#x} exceeds {}-bit offset field",
                sub.offset,
                self.subheader.offset_bits()
            );
            let value: u64 = (sub.offset << LENGTH_FIELD_BITS) | len;
            let bytes = value.to_le_bytes();
            out.extend_from_slice(&bytes[..self.subheader.bytes() as usize]);
            out.extend_from_slice(&sub.data);
        }
        out.resize(16 + padded as usize, 0);
        out
    }

    /// Decodes a wire buffer produced by [`FinePackPacket::encode`].
    ///
    /// # Errors
    ///
    /// Returns an error if the outer header is malformed, is not a
    /// FinePack transaction, or a sub-packet is truncated.
    pub fn decode(
        bytes: &[u8],
        subheader: SubheaderFormat,
        src: GpuId,
        dst: GpuId,
    ) -> Result<Self, FinePackError> {
        let header = TlpHeader::decode(bytes)?;
        if header.tlp_type != TlpType::FinePack {
            return Err(FinePackError::Decode(ProtocolError::InvalidField(
                "not a FinePack transaction",
            )));
        }
        let payload = &bytes[16..];
        if (payload.len() as u32) < header.length_bytes {
            return Err(FinePackError::Decode(ProtocolError::Truncated {
                needed: 16 + header.length_bytes as usize,
                got: bytes.len(),
            }));
        }
        let sub_bytes = subheader.bytes() as usize;
        let mut subpackets = Vec::new();
        let mut pos = 0usize;
        let end = header.length_bytes as usize;
        while pos + sub_bytes <= end {
            let mut raw = [0u8; 8];
            raw[..sub_bytes].copy_from_slice(&payload[pos..pos + sub_bytes]);
            let value = u64::from_le_bytes(raw);
            let len = (value & u64::from((1u32 << LENGTH_FIELD_BITS) - 1)) as usize;
            if len == 0 {
                break; // zero-length terminator / padding
            }
            let offset = value >> LENGTH_FIELD_BITS;
            pos += sub_bytes;
            if pos + len > end {
                return Err(FinePackError::Decode(ProtocolError::Truncated {
                    needed: 16 + pos + len,
                    got: 16 + end,
                }));
            }
            subpackets.push(SubPacket {
                offset,
                data: payload[pos..pos + len].to_vec(),
            });
            pos += len;
        }
        Ok(FinePackPacket {
            src,
            dst,
            base_addr: header.address,
            subheader,
            subpackets,
        })
    }

    /// The `(addr, len)` extent of every packed store, without cloning
    /// payload bytes — what timing-only runs carry in place of
    /// [`FinePackPacket::to_stores`].
    pub fn store_extents(&self) -> Vec<(u64, u32)> {
        self.subpackets
            .iter()
            .map(|s| (self.base_addr + s.offset, s.data.len() as u32))
            .collect()
    }

    /// Disaggregates the packet into individual stores, adding each
    /// sub-packet offset to the base address (the de-packetizer, §IV-B).
    pub fn to_stores(&self) -> Vec<RemoteStore> {
        self.subpackets
            .iter()
            .map(|s| RemoteStore {
                src: self.src,
                dst: self.dst,
                addr: self.base_addr + s.offset,
                data: s.data.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(subheader: SubheaderFormat) -> FinePackPacket {
        FinePackPacket {
            src: GpuId::new(2),
            dst: GpuId::new(0),
            base_addr: 0x8000_0000,
            subheader,
            subpackets: vec![
                SubPacket {
                    offset: 0,
                    data: vec![9; 8],
                },
                // Offsets stay below 64 so the sample round-trips even
                // under the 2-byte (6-offset-bit) Table II format.
                SubPacket {
                    offset: 0x30,
                    data: vec![1, 2, 3],
                },
                SubPacket {
                    offset: 0x2F,
                    data: vec![0xAA],
                },
            ],
        }
    }

    #[test]
    fn boundary_gpu_id_encodes_unaliased() {
        // GPU 255 — the top of the id space — must reach the TLP's
        // 16-bit requester-id field un-truncated and round-trip.
        let mut p = sample(SubheaderFormat::paper());
        p.src = GpuId::new(u8::MAX);
        let wire = p.encode();
        let header = TlpHeader::decode(&wire).unwrap();
        assert_eq!(header.requester_id, 255u16);
        let back = FinePackPacket::decode(&wire, p.subheader, p.src, p.dst).expect("roundtrip");
        assert_eq!(back.src, GpuId::new(u8::MAX));
        assert_eq!(back.subpackets, p.subpackets);
    }

    #[test]
    fn roundtrip_all_table2_formats() {
        for bytes in 2..=6 {
            let f = SubheaderFormat::new(bytes).unwrap();
            let pkt = sample(f);
            let wire = pkt.encode();
            let back = FinePackPacket::decode(&wire, f, pkt.src, pkt.dst).unwrap();
            assert_eq!(back, pkt, "subheader={bytes}B");
        }
    }

    #[test]
    fn payload_accounting() {
        let pkt = sample(SubheaderFormat::paper());
        // 3 subheaders x 5B + 12 data bytes.
        assert_eq!(pkt.payload_bytes(), 27);
        assert_eq!(pkt.data_bytes(), 12);
        let fm = FramingModel::pcie_gen4();
        // 27 -> padded 28 + 24 overhead.
        assert_eq!(pkt.wire_bytes(&fm), 52);
    }

    #[test]
    fn wire_is_dw_padded_and_terminated() {
        let pkt = FinePackPacket {
            src: GpuId::new(0),
            dst: GpuId::new(1),
            base_addr: 0x1000,
            subheader: SubheaderFormat::paper(),
            subpackets: vec![SubPacket {
                offset: 1,
                data: vec![7],
            }],
        };
        let wire = pkt.encode();
        assert_eq!((wire.len() - 16) % 4, 0);
        let back = FinePackPacket::decode(&wire, pkt.subheader, pkt.src, pkt.dst).unwrap();
        assert_eq!(back.subpackets, pkt.subpackets);
    }

    #[test]
    fn to_stores_rebases_addresses() {
        let pkt = sample(SubheaderFormat::paper());
        let stores = pkt.to_stores();
        assert_eq!(stores.len(), 3);
        assert_eq!(stores[0].addr, 0x8000_0000);
        assert_eq!(stores[1].addr, 0x8000_0030);
        assert_eq!(stores[2].addr, 0x8000_002F);
        assert_eq!(stores[1].data, vec![1, 2, 3]);
        assert!(stores.iter().all(|s| s.src == pkt.src && s.dst == pkt.dst));
    }

    #[test]
    fn decode_rejects_plain_memwrite() {
        let hdr = TlpHeader::mem_write(0, 0x1000, 8);
        let mut wire = hdr.encode().to_vec();
        wire.extend_from_slice(&[0u8; 8]);
        let err = FinePackPacket::decode(
            &wire,
            SubheaderFormat::paper(),
            GpuId::new(0),
            GpuId::new(1),
        );
        assert!(err.is_err());
    }

    #[test]
    fn decode_rejects_truncated_subpacket() {
        let pkt = sample(SubheaderFormat::paper());
        let mut wire = pkt.encode();
        // Claim a longer payload than present by truncating data.
        wire.truncate(16 + 6);
        let err = FinePackPacket::decode(&wire, pkt.subheader, pkt.src, pkt.dst);
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn oversized_offset_panics_on_encode() {
        let f = SubheaderFormat::new(2).unwrap(); // 64B range
        let pkt = FinePackPacket {
            src: GpuId::new(0),
            dst: GpuId::new(1),
            base_addr: 0,
            subheader: f,
            subpackets: vec![SubPacket {
                offset: 64,
                data: vec![1],
            }],
        };
        let _ = pkt.encode();
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_packet_panics_on_encode() {
        let pkt = FinePackPacket {
            src: GpuId::new(0),
            dst: GpuId::new(1),
            base_addr: 0,
            subheader: SubheaderFormat::paper(),
            subpackets: vec![],
        };
        let _ = pkt.encode();
    }
}
