//! The stateful "configuration packet" alternate design (§VI-B).
//!
//! Instead of packing stores as sub-transactions inside one outer TLP,
//! this design sends a special PCIe *configuration packet* that fixes the
//! base address and common header fields for the stores that follow;
//! those stores then travel as independent (header-compressed) TLPs. The
//! paper's analytical model found this ~18% less efficient than FinePack
//! for 32–64-store batches, because each independent TLP still pays its
//! own sequence number and CRC fields (~10 bytes per store).

use protocol::FramingModel;

use crate::config::SubheaderFormat;

/// Analytic wire-cost model for the config-packet design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigPacketModel {
    /// Framing model (for the config packet's own TLP cost).
    pub framing: FramingModel,
    /// Compressed per-store header bytes (same role as FinePack's
    /// sub-header).
    pub subheader: SubheaderFormat,
    /// Payload bytes of the configuration packet itself (base address +
    /// shared fields).
    pub config_payload_bytes: u32,
}

impl ConfigPacketModel {
    /// The default model: PCIe Gen4 framing, paper sub-header, 8-byte
    /// config payload.
    pub fn new() -> Self {
        ConfigPacketModel {
            framing: FramingModel::pcie_gen4(),
            subheader: SubheaderFormat::paper(),
            config_payload_bytes: 8,
        }
    }

    /// Wire bytes for one batch of store payload sizes under the
    /// config-packet design: one config TLP plus one compressed TLP per
    /// store (each paying link-layer framing + sequence/CRC).
    pub fn wire_bytes(&self, store_sizes: &[u32]) -> u64 {
        if store_sizes.is_empty() {
            return 0;
        }
        let config_pkt = self.framing.wire_bytes(self.config_payload_bytes);
        let per_store: u64 = store_sizes
            .iter()
            .map(|&len| {
                let content = self.subheader.bytes() + len;
                let padded = u64::from(content.div_ceil(4) * 4);
                u64::from(self.framing.link_layer_overhead()) + padded
            })
            .sum();
        config_pkt + per_store
    }

    /// Wire bytes for the same batch under FinePack (one outer TLP).
    pub fn finepack_wire_bytes(&self, store_sizes: &[u32]) -> u64 {
        if store_sizes.is_empty() {
            return 0;
        }
        let payload: u32 = store_sizes
            .iter()
            .map(|&len| self.subheader.bytes() + len)
            .sum();
        self.framing.wire_bytes(payload)
    }

    /// Efficiency of the config-packet design relative to FinePack
    /// (goodput ratio, < 1 means config-packet is worse).
    ///
    /// # Panics
    ///
    /// Panics if `store_sizes` is empty.
    pub fn relative_efficiency(&self, store_sizes: &[u32]) -> f64 {
        assert!(!store_sizes.is_empty(), "need at least one store");
        let fp = self.finepack_wire_bytes(store_sizes) as f64;
        let alt = self.wire_bytes(store_sizes) as f64;
        fp / alt
    }
}

impl Default for ConfigPacketModel {
    fn default() -> Self {
        ConfigPacketModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_packet_always_costs_more_per_batch() {
        let m = ConfigPacketModel::new();
        for size in [4u32, 8, 16, 32, 64, 128] {
            let sizes = vec![size; 42];
            assert!(
                m.wire_bytes(&sizes) > m.finepack_wire_bytes(&sizes),
                "size={size}"
            );
        }
    }

    #[test]
    fn inefficiency_near_paper_claim_for_typical_batches() {
        // §VI-B: "For a packet containing 32-64 stores ... approximately
        // 18% less efficient". The gap depends on store size; it should
        // bracket ~18% across the typical coalesced-store size range.
        let m = ConfigPacketModel::new();
        let eff_small = m.relative_efficiency(&[16u32; 42]);
        let eff_large = m.relative_efficiency(&[64u32; 42]);
        assert!(
            eff_small < 0.82,
            "small stores should be >18% worse: {eff_small}"
        );
        assert!(eff_large > 0.75, "large stores close the gap: {eff_large}");
    }

    #[test]
    fn per_store_extra_overhead_close_to_10_bytes() {
        // The paper attributes ~10 extra bytes per store (seq + CRC).
        let m = ConfigPacketModel::new();
        let sizes = vec![32u32; 42];
        let extra = m.wire_bytes(&sizes) - m.finepack_wire_bytes(&sizes);
        let per_store = extra as f64 / 42.0;
        assert!(
            (6.0..=14.0).contains(&per_store),
            "per-store extra = {per_store}"
        );
    }

    #[test]
    fn empty_batch_is_free() {
        let m = ConfigPacketModel::new();
        assert_eq!(m.wire_bytes(&[]), 0);
        assert_eq!(m.finepack_wire_bytes(&[]), 0);
    }
}
