//! # finepack
//!
//! The core contribution of *FinePack: Transparently Improving the
//! Efficiency of Fine-Grained Transfers in Multi-GPU Systems* (HPCA
//! 2023): GPU-side hardware that coalesces and compresses small
//! peer-to-peer stores into large, efficiently framed PCIe transactions —
//! fully transparently to software.
//!
//! ## Components (Fig 7)
//!
//! - [`RemoteWriteQueue`] — a per-destination-partitioned SRAM between
//!   the GPU crossbar and the network egress port. Same-address stores
//!   overwrite in place (legal under the GPU's weak memory model before a
//!   system-scope release); stores within the open address window
//!   accumulate until the window, payload budget, or entry capacity is
//!   exhausted.
//! - [`packetize`] — converts flushed queue contents into
//!   [`FinePackPacket`]s: one outer PCIe TLP whose payload concatenates
//!   sub-packets, each led by a compact base+offset sub-header
//!   ([`SubheaderFormat`], Table II).
//! - [`Depacketizer`] — the ingress side: disaggregates sub-packets back
//!   into individual stores and issues them to local memory.
//!
//! ## Baselines
//!
//! [`RawP2pEgress`] (today's hardware), [`WriteCombiningEgress`]
//! (cacheline combining without repacketization), [`GpsEgress`] (a
//! GPS-like publish–subscribe model), and [`ConfigPacketModel`] (the
//! stateful alternate design of §VI-B) — all compared in the paper's
//! evaluation.
//!
//! # Examples
//!
//! ```
//! use finepack::{EgressPath, FinePackConfig, FinePackEgress, RawP2pEgress};
//! use gpu_model::{GpuId, RemoteStore};
//! use protocol::FramingModel;
//! use sim_engine::SimTime;
//!
//! let framing = FramingModel::pcie_gen4();
//! let mut fp = FinePackEgress::new(GpuId::new(0), FinePackConfig::paper(4), framing);
//! let mut p2p = RawP2pEgress::new(framing);
//! for i in 0..64u64 {
//!     let store = RemoteStore {
//!         src: GpuId::new(0),
//!         dst: GpuId::new(1),
//!         addr: 0x10_0000 + i * 192,
//!         data: vec![1; 8], // 8-byte scattered stores
//!     };
//!     fp.push(&store, SimTime::ZERO)?;
//!     p2p.push(&store, SimTime::ZERO)?;
//! }
//! fp.release();
//! // FinePack moves the same data in far fewer wire bytes.
//! assert!(fp.metrics().wire_bytes * 2 < p2p.metrics().wire_bytes);
//! # Ok::<(), finepack::FinePackError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alt_design;
mod area;
mod baselines;
mod config;
mod depacketizer;
mod egress;
mod packet;
mod packetizer;
mod replay_stats;
mod rwq;

pub use alt_design::ConfigPacketModel;
pub use area::AreaModel;
pub use baselines::{GpsEgress, WriteCombiningEgress};
pub use config::{
    AllocationPolicy, FinePackConfig, FinePackError, SubheaderFormat, LENGTH_FIELD_BITS,
};
pub use depacketizer::Depacketizer;
pub use egress::{
    EgressMetrics, EgressPath, FinePackEgress, OutputBuffer, PacketStores, PayloadMode,
    RawP2pEgress, WirePacket,
};
pub use packet::{FinePackPacket, SubPacket};
pub use packetizer::{packetize, packetize_layout, LayoutChunk, PacketLayout};
pub use replay_stats::ReplayAmplification;
pub use rwq::{FlushReason, FlushedBatch, FlushedEntry, MaskRuns, RemoteWriteQueue, RwqStats};
