//! SRAM area accounting for the FinePack structures (§VI-B "FinePack
//! Overheads"): the remote write queue is a rounding error next to a
//! modern GPU's caches — less than 0.05% of GA100's cache area.

use crate::config::FinePackConfig;

/// Per-entry address-tag bits: a 48-bit physical address at 128B line
/// granularity.
const TAG_BITS_PER_ENTRY: u64 = 48 - 7;

/// Estimates the SRAM footprint of FinePack's on-GPU structures.
///
/// The model counts raw storage bits — data, byte-enable masks, address
/// tags, and per-partition registers — for both the egress remote write
/// queue and the ingress de-packetizer buffer. Comparing bit counts is
/// how the paper frames the overhead ("less than 0.05% of the area of
/// existing caches"), since SRAM area is dominated by bit cells.
///
/// # Examples
///
/// ```
/// use finepack::{AreaModel, FinePackConfig};
///
/// let area = AreaModel::new(FinePackConfig::paper(4));
/// // §VI-B: negligible relative to GA100's caches (the RWQ alone is
/// // <0.05%; with the ingress buffer it stays well under 0.1%).
/// assert!(area.fraction_of_cache(AreaModel::GA100_CACHE_BYTES) < 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaModel {
    config: FinePackConfig,
}

impl AreaModel {
    /// Total cache capacity of an NVIDIA GA100-class GPU: 40 MB L2 plus
    /// 108 SMs × 192 KB combined L1.
    pub const GA100_CACHE_BYTES: u64 = (40 << 20) + 108 * (192 << 10);

    /// Total cache capacity of the GV100 used in the evaluation: 6 MB L2
    /// plus 80 SMs × 128 KB combined L1 ("the total cache size (L1 + L2)
    /// is 16MB", §IV-B).
    pub const GV100_CACHE_BYTES: u64 = (6 << 20) + 80 * (128 << 10);

    /// Creates an area model for `config`.
    pub fn new(config: FinePackConfig) -> Self {
        AreaModel { config }
    }

    /// Remote-write-queue storage bits: per entry, the 128B data array,
    /// a byte-enable bit per byte, and an address tag; per partition,
    /// the base-address and available-payload-length registers.
    pub fn rwq_bits(&self) -> u64 {
        let c = &self.config;
        let per_entry =
            u64::from(c.entry_bytes) * 8 + u64::from(c.entry_bytes) + TAG_BITS_PER_ENTRY;
        let per_partition = 64 + 16; // base address + payload-length registers
        u64::from(c.total_entries()) * per_entry + u64::from(c.num_partitions) * per_partition
    }

    /// Ingress de-packetizer buffer bits (64 × 128B, §IV-B).
    pub fn depacketizer_bits(&self) -> u64 {
        64 * u64::from(self.config.entry_bytes) * 8
    }

    /// Total FinePack storage bits per GPU.
    pub fn total_bits(&self) -> u64 {
        self.rwq_bits() + self.depacketizer_bits()
    }

    /// Total FinePack storage expressed in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }

    /// FinePack storage as a fraction of `cache_bytes` of on-GPU cache.
    ///
    /// # Panics
    ///
    /// Panics if `cache_bytes` is zero.
    pub fn fraction_of_cache(&self, cache_bytes: u64) -> f64 {
        assert!(cache_bytes > 0, "cache capacity must be positive");
        self.total_bits() as f64 / (cache_bytes as f64 * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ga100_claim_holds() {
        // §VI-B: "The area requirement for FinePack remote write queue is
        // less than 0.05% of the area of existing caches in NVIDIA's
        // recent GA100 GPU."
        let area = AreaModel::new(FinePackConfig::paper(4));
        let rwq_only = area.rwq_bits() as f64 / (AreaModel::GA100_CACHE_BYTES as f64 * 8.0);
        assert!(rwq_only < 0.0005, "rwq fraction {rwq_only}");
    }

    #[test]
    fn gv100_claim_holds() {
        // §IV-B: 48KB-class storage is ~0.3% of GV100's 16MB of cache.
        let area = AreaModel::new(FinePackConfig::paper(4));
        let frac = area.fraction_of_cache(AreaModel::GV100_CACHE_BYTES);
        assert!(frac < 0.004, "fraction {frac}");
        // GV100 total cache is ~16MB as the paper states.
        assert_eq!(AreaModel::GV100_CACHE_BYTES >> 20, 16);
    }

    #[test]
    fn sixteen_gpu_queue_is_still_small() {
        // §VI-B: 120KB of partitions on a 16-GPU system vs a 40MB L2.
        let area = AreaModel::new(FinePackConfig::paper(16));
        assert_eq!(FinePackConfig::paper(16).data_sram_bytes() >> 10, 120);
        assert!(area.fraction_of_cache(40 << 20) < 0.005);
    }

    #[test]
    fn bits_decompose() {
        let area = AreaModel::new(FinePackConfig::paper(4));
        assert_eq!(
            area.total_bits(),
            area.rwq_bits() + area.depacketizer_bits()
        );
        assert!(area.total_bytes() * 8 >= area.total_bits());
    }
}
