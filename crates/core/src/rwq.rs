//! The remote write queue (§IV-B): a per-destination-partitioned,
//! fully-associative SRAM that buffers outbound remote stores, merges
//! same-address writes (the GPU's weak memory model permits this before a
//! system-scope release), and hands full windows to the packetizer.

use std::collections::BTreeMap;

use gpu_model::{GpuId, RemoteStore};

use crate::config::{AllocationPolicy, FinePackConfig, FinePackError};

/// Why a partition was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushReason {
    /// An incoming store fell outside the open address window.
    WindowMiss,
    /// The accumulated payload would exceed the maximum packet payload.
    PayloadFull,
    /// All queue entries in the partition were occupied.
    EntriesFull,
    /// A system-scoped release (fence or kernel end) arrived.
    Release,
    /// A remote load matched a queued store (same-address ordering).
    LoadHit,
    /// A remote atomic matched a queued store (§IV-C: atomics flush).
    AtomicHit,
    /// An inactivity timeout expired (optional, §IV-B: useful when
    /// latency or burstiness constrains performance).
    Timeout,
}

impl FlushReason {
    /// All reasons, for iterating metric tables.
    pub const ALL: [FlushReason; 7] = [
        FlushReason::WindowMiss,
        FlushReason::PayloadFull,
        FlushReason::EntriesFull,
        FlushReason::Release,
        FlushReason::LoadHit,
        FlushReason::AtomicHit,
        FlushReason::Timeout,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::WindowMiss => "window-miss",
            FlushReason::PayloadFull => "payload-full",
            FlushReason::EntriesFull => "entries-full",
            FlushReason::Release => "release",
            FlushReason::LoadHit => "load-hit",
            FlushReason::AtomicHit => "atomic-hit",
            FlushReason::Timeout => "timeout",
        }
    }
}

/// One flushed queue entry: a cache-block-aligned line with a byte mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushedEntry {
    /// Cache-block-aligned base address of the line.
    pub line_addr: u64,
    /// Bit `i` set means byte `line_addr + i` holds valid data.
    pub mask: u128,
    /// Line data; only masked bytes are meaningful.
    pub data: Vec<u8>,
}

impl FlushedEntry {
    /// Number of valid bytes in the entry.
    pub fn valid_bytes(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Iterates the contiguous runs of valid bytes as
    /// `(start_offset, len)` pairs in ascending order.
    ///
    /// Walks the full mask width, not `data.len()`: a mask bit beyond
    /// the allocated data would otherwise be dropped silently. Such an
    /// entry is malformed — the queue always sizes `data` to the line —
    /// so it trips the debug assertion instead. (Entries flushed from a
    /// queue with payload buffering disabled carry empty `data` by
    /// design; their runs are timing-only and exempt.)
    pub fn runs(&self) -> Vec<(u32, u32)> {
        debug_assert!(
            self.data.is_empty()
                || u128::BITS - self.mask.leading_zeros() <= self.data.len() as u32,
            "mask bit {} set beyond entry data length {}",
            (u128::BITS - self.mask.leading_zeros()).saturating_sub(1),
            self.data.len()
        );
        self.runs_iter().collect()
    }

    /// Allocation-free form of [`FlushedEntry::runs`]: the packetizer's
    /// hot loop iterates runs without materializing a `Vec`.
    pub fn runs_iter(&self) -> MaskRuns {
        MaskRuns { mask: self.mask }
    }
}

/// Iterator over the contiguous set-bit runs of a byte mask, as
/// `(start_offset, len)` pairs in ascending order.
///
/// Word-level run extraction: `trailing_zeros` jumps to the next run's
/// start and `trailing_zeros` of the inverted remainder measures its
/// length — each run costs two count instructions instead of a
/// per-bit walk over the 128-bit mask.
#[derive(Debug, Clone)]
pub struct MaskRuns {
    mask: u128,
}

impl Iterator for MaskRuns {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.mask == 0 {
            return None;
        }
        let start = self.mask.trailing_zeros();
        let len = (!(self.mask >> start)).trailing_zeros();
        if start + len >= u128::BITS {
            self.mask = 0;
        } else {
            self.mask &= !span_mask(start, len);
        }
        Some((start, len))
    }
}

/// A flushed partition's contents, ready for the packetizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushedBatch {
    /// Destination GPU of every store in the batch.
    pub dst: GpuId,
    /// Why the flush happened.
    pub reason: FlushReason,
    /// The partition's open window base at flush time.
    pub window_base: u64,
    /// Entries in ascending line-address order.
    pub entries: Vec<FlushedEntry>,
    /// Number of store transactions merged into this batch.
    pub stores_merged: u64,
    /// Bytes that were overwritten in place (redundant transfers elided).
    pub overwritten_bytes: u64,
}

impl FlushedBatch {
    /// Total valid payload bytes across entries.
    pub fn valid_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| u64::from(e.valid_bytes()))
            .sum()
    }
}

/// Deducts a phase-3 merge charge from a window's payload budget.
///
/// Phase-1 admission already proved `cost <= available_payload` for the
/// window the store merges into, so the subtraction can never wrap; the
/// debug assertion pins that cross-phase invariant, and release builds
/// saturate at zero instead of wrapping to a ~4 GiB budget if admission
/// and charge ever disagree.
fn charge_payload(available_payload: u32, cost: u32) -> u32 {
    debug_assert!(
        cost <= available_payload,
        "phase-3 charge of {cost}B exceeds the window's remaining budget of \
         {available_payload}B: phase-1 admission and phase-3 merge disagree"
    );
    available_payload.saturating_sub(cost)
}

/// Byte mask covering `[offset, offset + len)` within a 128B line.
fn span_mask(offset: u32, len: u32) -> u128 {
    debug_assert!(offset + len <= 128);
    if len == 128 {
        u128::MAX
    } else {
        ((1u128 << len) - 1) << offset
    }
}

#[derive(Debug, Clone)]
struct EntrySlot {
    mask: u128,
    data: Vec<u8>,
}

/// One open outer transaction: an aligned address window accumulating
/// entries until its payload budget, entry allocation, or window range is
/// exhausted.
#[derive(Debug, Clone)]
struct Window {
    /// Masked (aligned) window base.
    base: u64,
    /// Entry slots sorted ascending by line address. A sorted vector
    /// beats a `BTreeMap` here: windows hold at most a few dozen
    /// entries, lookups are a cache-friendly binary search, and flushing
    /// moves the storage out wholesale with no per-node frees.
    entries: Vec<(u64, EntrySlot)>,
    /// Remaining payload budget in bytes (the paper's available-payload-
    /// length register; full == `max_payload`, zero == full window).
    available_payload: u32,
    stores_merged: u64,
    overwritten_bytes: u64,
    /// Monotonic use stamp for LRU eviction among windows.
    last_use: u64,
}

impl Window {
    fn take(self, dst: GpuId, reason: FlushReason) -> FlushedBatch {
        FlushedBatch {
            dst,
            reason,
            window_base: self.base,
            entries: self
                .entries
                .into_iter()
                .map(|(line_addr, slot)| FlushedEntry {
                    line_addr,
                    mask: slot.mask,
                    data: slot.data,
                })
                .collect(),
            stores_merged: self.stores_merged,
            overwritten_bytes: self.overwritten_bytes,
        }
    }
}

/// One destination's share of the queue: up to `windows_per_partition`
/// concurrently open windows (the paper evaluates exactly one).
#[derive(Debug, Clone)]
struct Partition {
    dst: GpuId,
    windows: Vec<Window>,
}

impl Partition {
    fn new(dst: GpuId) -> Self {
        Partition {
            dst,
            windows: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    fn entry_count(&self) -> usize {
        self.windows.iter().map(|w| w.entries.len()).sum()
    }

    fn take_all(&mut self, reason: FlushReason) -> Vec<FlushedBatch> {
        let dst = self.dst;
        std::mem::take(&mut self.windows)
            .into_iter()
            .map(|w| w.take(dst, reason))
            .collect()
    }
}

/// Cumulative remote-write-queue statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwqStats {
    /// Stores accepted into the queue.
    pub stores_received: u64,
    /// Stores that merged into an existing entry (associative hit).
    pub entry_hits: u64,
    /// Stores that allocated a new entry.
    pub entry_misses: u64,
    /// Total bytes elided by in-queue overwrites.
    pub overwritten_bytes: u64,
    /// Flush counts: indexed by [`FlushReason::ALL`] order.
    pub flushes: [u64; 7],
}

impl RwqStats {
    /// Flush count for `reason`.
    pub fn flushes_for(&self, reason: FlushReason) -> u64 {
        let idx = FlushReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("reason in ALL");
        self.flushes[idx]
    }

    fn record_flush(&mut self, reason: FlushReason) {
        let idx = FlushReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("reason in ALL");
        self.flushes[idx] += 1;
    }
}

/// The remote write queue: one partition per peer GPU, per §IV-B.
///
/// # Examples
///
/// ```
/// use finepack::{FinePackConfig, RemoteWriteQueue};
/// use gpu_model::{GpuId, RemoteStore};
///
/// let mut rwq = RemoteWriteQueue::new(GpuId::new(0), FinePackConfig::paper(4));
/// let store = RemoteStore {
///     src: GpuId::new(0),
///     dst: GpuId::new(1),
///     addr: 1 << 34, // inside GPU1's window in a 16GB/GPU map
///     data: vec![7; 8],
/// };
/// assert!(rwq.insert(&store)?.is_none()); // buffered, no flush yet
/// let batches = rwq.flush_all(finepack::FlushReason::Release);
/// assert_eq!(batches.len(), 1);
/// assert_eq!(batches[0].valid_bytes(), 8);
/// # Ok::<(), finepack::FinePackError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RemoteWriteQueue {
    src: GpuId,
    config: FinePackConfig,
    partitions: BTreeMap<GpuId, Partition>,
    stats: RwqStats,
    /// Global monotonic use stamp, for LRU decisions across windows
    /// (and across partitions under [`AllocationPolicy::DynamicShared`]).
    use_seq: u64,
    /// When false (timing-only runs), entry slots hold masks but no
    /// payload bytes: flushed entries carry empty `data`.
    buffer_payloads: bool,
}

impl RemoteWriteQueue {
    /// Creates a queue for GPU `src` with the given configuration.
    /// Partitions are allocated lazily per destination.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(src: GpuId, config: FinePackConfig) -> Self {
        config.validate();
        assert!(
            config.entry_bytes <= 128,
            "entry masks support at most 128B lines"
        );
        RemoteWriteQueue {
            src,
            config,
            partitions: BTreeMap::new(),
            stats: RwqStats::default(),
            use_seq: 0,
            buffer_payloads: true,
        }
    }

    /// Controls whether entry slots buffer payload bytes.
    ///
    /// Timing-only runs never read the data back — masks alone determine
    /// every packet boundary and byte count — so skipping the per-entry
    /// line allocation and the per-store copy removes the queue's only
    /// payload-proportional work. Flushed entries then carry empty
    /// `data`; callers must not materialize [`FlushedEntry::runs`]-based
    /// payloads in this mode. Switch only while the queue is empty.
    pub fn set_buffer_payloads(&mut self, on: bool) {
        debug_assert!(
            self.buffered_entries() == 0,
            "payload buffering toggled with entries in flight"
        );
        self.buffer_payloads = on;
    }

    /// The configuration in force.
    pub fn config(&self) -> &FinePackConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &RwqStats {
        &self.stats
    }

    /// Total entries currently buffered across all partitions.
    pub fn buffered_entries(&self) -> usize {
        self.partitions.values().map(|p| p.entry_count()).sum()
    }

    /// The open windows for `dst` as `(window_base, available_payload)`
    /// pairs in insertion order — an observation surface for tests and
    /// auditors that pin the payload-budget bookkeeping against an
    /// independently recomputed oracle. Empty if the partition holds
    /// nothing.
    pub fn window_budgets(&self, dst: GpuId) -> Vec<(u64, u32)> {
        self.partitions
            .get(&dst)
            .map(|p| {
                p.windows
                    .iter()
                    .map(|w| (w.base, w.available_payload))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Offers a store to the queue. Returns any [`FlushedBatch`]es that
    /// accepting the store forced out (window miss with all windows
    /// busy, payload full, or entries full); the incoming store is then
    /// buffered as the first store of a fresh window, exactly as §IV-B
    /// specifies.
    ///
    /// Takes the store by reference: the queue copies the payload bytes
    /// it buffers into its own entry slots, so callers replaying a
    /// recorded trace never clone a `RemoteStore` per insert.
    ///
    /// # Errors
    ///
    /// Returns an error if the store is larger than a queue entry,
    /// crosses a cache-block boundary (the L1 coalescer never emits
    /// either), or is addressed back to the issuing GPU (a routing bug
    /// upstream — local traffic never enters the remote write queue).
    pub fn insert(&mut self, store: &RemoteStore) -> Result<Option<FlushedBatch>, FinePackError> {
        let entry_bytes = self.config.entry_bytes;
        let len = store.len();
        if len == 0 || len > entry_bytes {
            return Err(FinePackError::StoreTooLarge {
                len,
                max: entry_bytes,
            });
        }
        let line_off = (store.addr % u64::from(entry_bytes)) as u32;
        if line_off + len > entry_bytes {
            return Err(FinePackError::StoreCrossesBlock {
                addr: store.addr,
                len,
            });
        }
        if store.dst == self.src {
            return Err(FinePackError::SelfRoute {
                gpu: self.src.as_u8(),
                addr: store.addr,
            });
        }

        let subheader = self.config.subheader;
        let sub_bytes = subheader.bytes();
        let max_payload = self.config.max_payload;
        let per_window_cap = match self.config.allocation {
            AllocationPolicy::StaticPartition => self.config.entries_per_window() as usize,
            // The shared pool bounds entries globally, not per window.
            AllocationPolicy::DynamicShared => usize::MAX,
        };
        let max_windows = self.config.windows_per_partition as usize;

        self.stats.stores_received += 1;
        let buffer_payloads = self.buffer_payloads;
        let line_addr = store.addr - u64::from(line_off);
        let wanted_base = subheader.window_base(store.addr);
        self.use_seq += 1;
        let use_seq = self.use_seq;

        let mut flushed = None;
        let mut needs_new_entry = true;
        // Phase 1: partition-local admission. May flush the matching
        // window (budget/entry exhaustion) or the partition-LRU window
        // (all window slots busy elsewhere).
        {
            let partition = self
                .partitions
                .entry(store.dst)
                .or_insert_with(|| Partition::new(store.dst));
            debug_assert_eq!(partition.dst, store.dst);
            let matching = partition.windows.iter().position(|w| {
                w.base == wanted_base && store.end() <= w.base + subheader.addressable_range()
            });
            match matching {
                Some(idx) => {
                    let w = &partition.windows[idx];
                    let slot_idx = w.entries.binary_search_by_key(&line_addr, |(a, _)| *a);
                    let line_present = slot_idx.is_ok();
                    let cost = if let Ok(i) = slot_idx {
                        let slot = &w.entries[i].1;
                        let incoming = span_mask(line_off, len);
                        (incoming & !slot.mask).count_ones()
                    } else {
                        len + sub_bytes
                    };
                    let payload_ok = cost <= w.available_payload;
                    let entries_ok = line_present || w.entries.len() < per_window_cap;
                    if payload_ok && entries_ok {
                        needs_new_entry = !line_present;
                    } else {
                        let reason = if !payload_ok {
                            FlushReason::PayloadFull
                        } else {
                            FlushReason::EntriesFull
                        };
                        self.stats.record_flush(reason);
                        let dst = partition.dst;
                        let w = partition.windows.remove(idx);
                        flushed = Some(w.take(dst, reason));
                    }
                }
                None => {
                    if partition.windows.len() >= max_windows {
                        // All windows busy elsewhere: evict the least
                        // recently used one (with a single window this is
                        // the paper's plain window-miss flush).
                        let (idx, _) = partition
                            .windows
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, w)| w.last_use)
                            .expect("windows non-empty");
                        self.stats.record_flush(FlushReason::WindowMiss);
                        let dst = partition.dst;
                        let w = partition.windows.remove(idx);
                        flushed = Some(w.take(dst, FlushReason::WindowMiss));
                    }
                }
            }
        }

        // Phase 2: shared-pool admission (§IV-C dynamic allocation). A
        // new entry with the pool full evicts the globally LRU window —
        // unless phase 1 already freed space.
        if needs_new_entry
            && self.config.allocation == AllocationPolicy::DynamicShared
            && flushed.is_none()
            && self.buffered_entries() >= self.config.total_entries() as usize
        {
            let victim = self
                .partitions
                .iter()
                .flat_map(|(d, p)| p.windows.iter().map(move |w| (*d, w.base, w.last_use)))
                .min_by_key(|(_, _, last_use)| *last_use);
            if let Some((dst, base, _)) = victim {
                let p = self.partitions.get_mut(&dst).expect("victim partition");
                let idx = p
                    .windows
                    .iter()
                    .position(|w| w.base == base)
                    .expect("victim window");
                self.stats.record_flush(FlushReason::EntriesFull);
                let w = p.windows.remove(idx);
                flushed = Some(w.take(dst, FlushReason::EntriesFull));
            }
        }

        // Phase 3: perform the insert (the victim of phase 2 may have
        // been the matching window itself, so re-resolve by base).
        let partition = self
            .partitions
            .entry(store.dst)
            .or_insert_with(|| Partition::new(store.dst));
        let matching = partition.windows.iter().position(|w| {
            w.base == wanted_base && store.end() <= w.base + subheader.addressable_range()
        });
        match matching {
            Some(idx) => {
                // Merge into the open window.
                let w = &mut partition.windows[idx];
                w.last_use = use_seq;
                w.stores_merged += 1;
                let incoming = span_mask(line_off, len);
                match w.entries.binary_search_by_key(&line_addr, |(a, _)| *a) {
                    Ok(i) => {
                        let slot = &mut w.entries[i].1;
                        let overlap = (incoming & slot.mask).count_ones();
                        let fresh = (incoming & !slot.mask).count_ones();
                        w.overwritten_bytes += u64::from(overlap);
                        self.stats.overwritten_bytes += u64::from(overlap);
                        w.available_payload = charge_payload(w.available_payload, fresh);
                        slot.mask |= incoming;
                        if buffer_payloads {
                            slot.data[line_off as usize..(line_off + len) as usize]
                                .copy_from_slice(&store.data);
                        }
                        self.stats.entry_hits += 1;
                    }
                    Err(i) => {
                        w.available_payload = charge_payload(w.available_payload, len + sub_bytes);
                        w.entries.insert(
                            i,
                            (
                                line_addr,
                                new_slot(entry_bytes, line_off, &store.data, buffer_payloads),
                            ),
                        );
                        self.stats.entry_misses += 1;
                    }
                }
            }
            None => {
                // Open a fresh window with this store as its first.
                partition.windows.push(Window {
                    base: wanted_base,
                    entries: vec![(
                        line_addr,
                        new_slot(entry_bytes, line_off, &store.data, buffer_payloads),
                    )],
                    available_payload: max_payload.saturating_sub(len + sub_bytes),
                    stores_merged: 1,
                    overwritten_bytes: 0,
                    last_use: use_seq,
                });
                self.stats.entry_misses += 1;
            }
        }
        Ok(flushed)
    }

    /// Flushes one destination's windows (e.g. on a load hit).
    pub fn flush_dst(&mut self, dst: GpuId, reason: FlushReason) -> Option<FlushedBatch> {
        let batches = self.flush_dst_all(dst, reason);
        debug_assert!(batches.len() <= 1 || self.config.windows_per_partition > 1);
        batches.into_iter().next()
    }

    /// Flushes every window of one destination, returning one batch per
    /// window (relevant with [`FinePackConfig::windows_per_partition`]
    /// greater than one).
    pub fn flush_dst_all(&mut self, dst: GpuId, reason: FlushReason) -> Vec<FlushedBatch> {
        let Some(p) = self.partitions.get_mut(&dst) else {
            return Vec::new();
        };
        let batches = p.take_all(reason);
        for _ in &batches {
            self.stats.record_flush(reason);
        }
        batches
    }

    /// Flushes every partition — the system-scoped-release behaviour
    /// required for memory-model compatibility (§IV-B).
    pub fn flush_all(&mut self, reason: FlushReason) -> Vec<FlushedBatch> {
        let mut out = Vec::new();
        for p in self.partitions.values_mut() {
            let batches = p.take_all(reason);
            for _ in &batches {
                self.stats.record_flush(reason);
            }
            out.extend(batches);
        }
        out
    }

    /// Destinations whose partitions currently hold buffered stores.
    pub fn non_empty_dsts(&self) -> Vec<GpuId> {
        self.partitions
            .iter()
            .filter(|(_, p)| !p.is_empty())
            .map(|(d, _)| *d)
            .collect()
    }

    /// Handles a remote atomic: atomics are never coalesced (§IV-C); any
    /// queued store overlapping the operand's address flushes first so
    /// same-address ordering is preserved. Returns the flush, if any.
    pub fn atomic_probe(&mut self, dst: GpuId, addr: u64, len: u32) -> Option<FlushedBatch> {
        self.probe(dst, addr, len, FlushReason::AtomicHit)
    }

    /// Handles a remote load: if the address range overlaps any queued
    /// store for that destination, the partition is flushed (same-address
    /// load-store ordering, §IV-B). Returns the flush, if any.
    pub fn load_probe(&mut self, dst: GpuId, addr: u64, len: u32) -> Option<FlushedBatch> {
        self.probe(dst, addr, len, FlushReason::LoadHit)
    }

    fn probe(
        &mut self,
        dst: GpuId,
        addr: u64,
        len: u32,
        reason: FlushReason,
    ) -> Option<FlushedBatch> {
        let entry_bytes = u64::from(self.config.entry_bytes);
        let overlapping_window = {
            let p = self.partitions.get(&dst)?;
            let end = addr + u64::from(len);
            p.windows.iter().position(|w| {
                w.entries.iter().any(|(line, slot)| {
                    let line_end = line + entry_bytes;
                    if end <= *line || addr >= line_end {
                        return false;
                    }
                    let lo = addr.max(*line) - line;
                    let hi = end.min(line_end) - line;
                    let m = span_mask(lo as u32, (hi - lo) as u32);
                    slot.mask & m != 0
                })
            })
        };
        let idx = overlapping_window?;
        let p = self.partitions.get_mut(&dst).expect("partition exists");
        let dst_id = p.dst;
        let w = p.windows.remove(idx);
        self.stats.record_flush(reason);
        Some(w.take(dst_id, reason))
    }
}

fn new_slot(entry_bytes: u32, line_off: u32, data: &[u8], buffer_payloads: bool) -> EntrySlot {
    let mask = span_mask(line_off, data.len() as u32);
    if !buffer_payloads {
        return EntrySlot {
            mask,
            data: Vec::new(),
        };
    }
    let mut slot = EntrySlot {
        mask,
        data: vec![0u8; entry_bytes as usize],
    };
    slot.data[line_off as usize..line_off as usize + data.len()].copy_from_slice(data);
    slot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(dst: u8, addr: u64, data: Vec<u8>) -> RemoteStore {
        RemoteStore {
            src: GpuId::new(0),
            dst: GpuId::new(dst),
            addr,
            data,
        }
    }

    fn rwq() -> RemoteWriteQueue {
        RemoteWriteQueue::new(GpuId::new(0), FinePackConfig::paper(4))
    }

    #[test]
    fn self_routed_store_is_rejected() {
        let mut q = rwq();
        let err = q.insert(&store(0, 0x1000, vec![1; 4])).unwrap_err();
        assert!(matches!(
            err,
            FinePackError::SelfRoute {
                gpu: 0,
                addr: 0x1000
            }
        ));
        assert_eq!(q.buffered_entries(), 0);
        assert_eq!(q.stats().stores_received, 0);
    }

    #[test]
    fn self_route_reports_the_boundary_gpu_id() {
        // GPU 255 is the top of the id space: the diagnostic must carry
        // it through un-truncated (the old `index() as u8` narrowing).
        let mut q = RemoteWriteQueue::new(GpuId::new(u8::MAX), FinePackConfig::paper(4));
        let err = q
            .insert(&RemoteStore {
                src: GpuId::new(u8::MAX),
                dst: GpuId::new(u8::MAX),
                addr: 0x1000,
                data: vec![1; 4],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            FinePackError::SelfRoute {
                gpu: 255,
                addr: 0x1000
            }
        ));
    }

    #[test]
    fn runs_cover_the_full_mask_width() {
        // A store at the very top of a 128B line must surface as a run
        // even though earlier bytes are unset; the old implementation
        // bounded the walk by data.len(), which silently dropped high
        // mask bits of a short-allocated entry.
        let e = FlushedEntry {
            line_addr: 0,
            mask: span_mask(120, 8) | 1,
            data: vec![7; 128],
        };
        assert_eq!(e.runs(), vec![(0, 1), (120, 8)]);
        // Full line: one run covering every byte.
        let full = FlushedEntry {
            line_addr: 0,
            mask: u128::MAX,
            data: vec![7; 128],
        };
        assert_eq!(full.runs(), vec![(0, 128)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "beyond entry data length")]
    fn short_allocated_entry_trips_the_mask_bound_assert() {
        let e = FlushedEntry {
            line_addr: 0,
            mask: 1u128 << 40,
            data: vec![0; 32], // mask bit 40 has no backing byte
        };
        let _ = e.runs();
    }

    #[test]
    fn first_store_sets_window() {
        let mut q = rwq();
        assert!(q
            .insert(&store(1, 0x1234_5678, vec![1; 4]))
            .unwrap()
            .is_none());
        assert_eq!(q.buffered_entries(), 1);
        assert_eq!(q.stats().entry_misses, 1);
    }

    #[test]
    fn window_budgets_track_admission_costs() {
        let cfg = FinePackConfig::paper(4);
        let sub = cfg.subheader.bytes();
        let max = cfg.max_payload;
        let mut q = RemoteWriteQueue::new(GpuId::new(0), cfg);
        q.insert(&store(1, 0x1000, vec![1; 8])).unwrap();
        // New entry: charged len + subheader.
        assert_eq!(q.window_budgets(GpuId::new(1)), vec![(0, max - 8 - sub)]);
        // Partial overlap: only the 4 fresh bytes are charged.
        q.insert(&store(1, 0x1004, vec![2; 8])).unwrap();
        assert_eq!(q.window_budgets(GpuId::new(1)), vec![(0, max - 12 - sub)]);
        // Full overwrite: nothing fresh, nothing charged.
        q.insert(&store(1, 0x1000, vec![3; 12])).unwrap();
        assert_eq!(q.window_budgets(GpuId::new(1)), vec![(0, max - 12 - sub)]);
        // Other partitions are untouched.
        assert!(q.window_budgets(GpuId::new(2)).is_empty());
    }

    #[test]
    fn same_line_stores_merge() {
        let mut q = rwq();
        q.insert(&store(1, 0x1000, vec![1; 8])).unwrap();
        q.insert(&store(1, 0x1008, vec![2; 8])).unwrap();
        assert_eq!(q.buffered_entries(), 1);
        assert_eq!(q.stats().entry_hits, 1);
        let b = q.flush_all(FlushReason::Release);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].valid_bytes(), 16);
        assert_eq!(b[0].entries[0].runs(), vec![(0, 16)]);
    }

    #[test]
    fn same_address_overwrite_is_elided() {
        let mut q = rwq();
        q.insert(&store(1, 0x1000, vec![1; 8])).unwrap();
        q.insert(&store(1, 0x1000, vec![2; 8])).unwrap();
        let b = q.flush_all(FlushReason::Release);
        // Only 8 valid bytes on the wire, holding the *final* value.
        assert_eq!(b[0].valid_bytes(), 8);
        assert_eq!(b[0].overwritten_bytes, 8);
        assert_eq!(&b[0].entries[0].data[0..8], &[2u8; 8]);
        assert_eq!(q.stats().overwritten_bytes, 8);
    }

    #[test]
    fn window_miss_flushes_and_rebuffers() {
        let mut q = rwq();
        // Paper config: 1GB window.
        q.insert(&store(1, 0x1000, vec![1; 4])).unwrap();
        let flushed = q
            .insert(&store(1, (2u64 << 30) + 0x1000, vec![2; 4]))
            .unwrap();
        let batch = flushed.expect("window miss must flush");
        assert_eq!(batch.reason, FlushReason::WindowMiss);
        assert_eq!(batch.valid_bytes(), 4);
        // Incoming store became the first store of the new window.
        assert_eq!(q.buffered_entries(), 1);
        assert_eq!(q.stats().flushes_for(FlushReason::WindowMiss), 1);
    }

    #[test]
    fn entries_full_flushes() {
        let mut cfg = FinePackConfig::paper(4);
        cfg.entries_per_partition = 2;
        let mut q = RemoteWriteQueue::new(GpuId::new(0), cfg);
        q.insert(&store(1, 0, vec![1; 4])).unwrap();
        q.insert(&store(1, 128, vec![1; 4])).unwrap();
        let f = q.insert(&store(1, 256, vec![1; 4])).unwrap();
        assert_eq!(f.unwrap().reason, FlushReason::EntriesFull);
        assert_eq!(q.buffered_entries(), 1);
    }

    #[test]
    fn payload_full_flushes() {
        let mut cfg = FinePackConfig::paper(4);
        cfg.max_payload = 128; // fits one 123B store + 5B subheader
        cfg.entry_bytes = 128;
        let mut q = RemoteWriteQueue::new(GpuId::new(0), cfg);
        q.insert(&store(1, 0, vec![1; 123])).unwrap();
        let f = q.insert(&store(1, 256, vec![1; 8])).unwrap();
        assert_eq!(f.unwrap().reason, FlushReason::PayloadFull);
    }

    #[test]
    fn partitions_are_independent() {
        let mut q = rwq();
        q.insert(&store(1, 0x1000, vec![1; 4])).unwrap();
        q.insert(&store(2, 0x2000, vec![2; 4])).unwrap();
        q.insert(&store(3, 0x3000, vec![3; 4])).unwrap();
        assert_eq!(q.buffered_entries(), 3);
        let b = q.flush_all(FlushReason::Release);
        assert_eq!(b.len(), 3);
        let dsts: Vec<_> = b.iter().map(|x| x.dst.index()).collect();
        assert_eq!(dsts, vec![1, 2, 3]);
    }

    #[test]
    fn flush_dst_only_touches_one_partition() {
        let mut q = rwq();
        q.insert(&store(1, 0x1000, vec![1; 4])).unwrap();
        q.insert(&store(2, 0x2000, vec![2; 4])).unwrap();
        let b = q.flush_dst(GpuId::new(1), FlushReason::LoadHit).unwrap();
        assert_eq!(b.dst, GpuId::new(1));
        assert_eq!(q.buffered_entries(), 1);
        assert!(q.flush_dst(GpuId::new(1), FlushReason::LoadHit).is_none());
    }

    #[test]
    fn load_probe_flushes_only_on_overlap() {
        let mut q = rwq();
        q.insert(&store(1, 0x1000, vec![1; 8])).unwrap();
        assert!(q.load_probe(GpuId::new(1), 0x2000, 8).is_none());
        assert!(q.load_probe(GpuId::new(1), 0x1004, 2).is_some());
        assert_eq!(q.buffered_entries(), 0);
    }

    #[test]
    fn load_probe_ignores_unmasked_bytes_of_same_line() {
        let mut q = rwq();
        q.insert(&store(1, 0x1000, vec![1; 8])).unwrap();
        // Same 128B line, but bytes 0x40.. are not buffered.
        assert!(q.load_probe(GpuId::new(1), 0x1040, 8).is_none());
    }

    #[test]
    fn atomic_probe_flushes_with_atomic_reason() {
        let mut q = rwq();
        q.insert(&store(1, 0x1000, vec![1; 8])).unwrap();
        let b = q.atomic_probe(GpuId::new(1), 0x1004, 4).unwrap();
        assert_eq!(b.reason, FlushReason::AtomicHit);
        assert_eq!(q.stats().flushes_for(FlushReason::AtomicHit), 1);
        assert!(q.atomic_probe(GpuId::new(1), 0x1004, 4).is_none());
    }

    #[test]
    fn non_empty_dsts_tracks_partitions() {
        let mut q = rwq();
        assert!(q.non_empty_dsts().is_empty());
        q.insert(&store(1, 0x1000, vec![1; 8])).unwrap();
        q.insert(&store(3, 0x1000, vec![1; 8])).unwrap();
        let dsts = q.non_empty_dsts();
        assert_eq!(dsts, vec![GpuId::new(1), GpuId::new(3)]);
        q.flush_dst(GpuId::new(1), FlushReason::Timeout);
        assert_eq!(q.non_empty_dsts(), vec![GpuId::new(3)]);
    }

    #[test]
    fn oversized_store_rejected() {
        let mut q = rwq();
        let err = q.insert(&store(1, 0, vec![0; 129])).unwrap_err();
        assert!(matches!(err, FinePackError::StoreTooLarge { .. }));
    }

    #[test]
    fn block_crossing_store_rejected() {
        let mut q = rwq();
        let err = q.insert(&store(1, 120, vec![0; 16])).unwrap_err();
        assert!(matches!(err, FinePackError::StoreCrossesBlock { .. }));
    }

    #[test]
    fn batch_entries_ascend_by_address() {
        let mut q = rwq();
        q.insert(&store(1, 0x3000, vec![1; 4])).unwrap();
        q.insert(&store(1, 0x1000, vec![1; 4])).unwrap();
        q.insert(&store(1, 0x2000, vec![1; 4])).unwrap();
        let b = q.flush_all(FlushReason::Release);
        let addrs: Vec<u64> = b[0].entries.iter().map(|e| e.line_addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x2000, 0x3000]);
    }

    #[test]
    fn two_windows_stop_alignment_thrashing() {
        // A data structure straddling a window boundary (§IV-C "Base
        // Address Alignment"): alternating stores to both sides thrash a
        // single-window partition but coalesce fine with two windows.
        let sub = crate::SubheaderFormat::new(4).unwrap(); // 4MB windows
        let boundary = 1u64 << 30;
        let run = |windows: u32| {
            let cfg = FinePackConfig::paper(4)
                .with_subheader(sub)
                .with_windows(windows);
            let mut q = RemoteWriteQueue::new(GpuId::new(0), cfg);
            let mut flushes = 0u64;
            for i in 0..64u64 {
                let side = i % 2; // alternate across the boundary
                let addr = boundary - (4 << 20) + side * (8 << 20) + (i / 2) * 256;
                if q.insert(&store(1, addr, vec![1; 8])).unwrap().is_some() {
                    flushes += 1;
                }
            }
            flushes
        };
        let thrash = run(1);
        let calm = run(2);
        assert!(thrash >= 60, "single window must thrash: {thrash}");
        assert_eq!(calm, 0, "two windows must absorb both streams");
    }

    #[test]
    fn multi_window_lru_eviction() {
        let sub = crate::SubheaderFormat::new(4).unwrap();
        let cfg = FinePackConfig::paper(4).with_subheader(sub).with_windows(2);
        let mut q = RemoteWriteQueue::new(GpuId::new(0), cfg);
        let w = 4u64 << 20;
        // Open windows A, B, then touch A again; a third region must
        // evict B (least recently used).
        q.insert(&store(1, 0, vec![1; 8])).unwrap(); // A (window base 0)
        q.insert(&store(1, 10 * w, vec![2; 8])).unwrap(); // B
        q.insert(&store(1, 256, vec![3; 8])).unwrap(); // A again
        let flushed = q.insert(&store(1, 20 * w, vec![4; 8])).unwrap().unwrap();
        assert_eq!(flushed.window_base, 10 * w, "B evicted, not A");
        assert_eq!(flushed.reason, FlushReason::WindowMiss);
    }

    #[test]
    fn dynamic_allocation_lets_one_hot_destination_use_the_pool() {
        // Static: dst 1 is capped at its partition share. Dynamic: with
        // the other partitions idle, dst 1 may fill the whole pool.
        let run = |policy: crate::AllocationPolicy| {
            let cfg = FinePackConfig::paper(4).with_allocation(policy);
            let mut q = RemoteWriteQueue::new(GpuId::new(0), cfg);
            let mut flushes = 0u64;
            // 150 distinct lines to one destination: beyond the 64-entry
            // static share, within the 192-entry pool.
            for i in 0..150u64 {
                if q.insert(&store(1, i * 128, vec![1; 8])).unwrap().is_some() {
                    flushes += 1;
                }
            }
            flushes
        };
        assert!(run(crate::AllocationPolicy::StaticPartition) >= 2);
        assert_eq!(run(crate::AllocationPolicy::DynamicShared), 0);
    }

    #[test]
    fn dynamic_allocation_evicts_globally_lru_window() {
        let cfg = FinePackConfig::paper(4).with_allocation(crate::AllocationPolicy::DynamicShared);
        let mut q = RemoteWriteQueue::new(GpuId::new(0), cfg);
        // Fill the pool: 191 lines to dst 1, then 1 to dst 2 (the newest).
        for i in 0..191u64 {
            assert!(q.insert(&store(1, i * 128, vec![1; 8])).unwrap().is_none());
        }
        assert!(q.insert(&store(2, 0x5000, vec![2; 8])).unwrap().is_none());
        assert_eq!(q.buffered_entries(), 192);
        // Pool full; touching dst 3 must evict dst 1's window (global
        // LRU), not dst 2's.
        let flushed = q.insert(&store(3, 0x9000, vec![3; 8])).unwrap().unwrap();
        assert_eq!(flushed.dst, GpuId::new(1));
        assert_eq!(flushed.reason, FlushReason::EntriesFull);
    }

    #[test]
    fn dynamic_allocation_preserves_final_values() {
        let cfg = FinePackConfig::paper(4).with_allocation(crate::AllocationPolicy::DynamicShared);
        let mut q = RemoteWriteQueue::new(GpuId::new(0), cfg);
        q.insert(&store(1, 0x1000, vec![1; 8])).unwrap();
        q.insert(&store(1, 0x1000, vec![9; 8])).unwrap();
        let b = q.flush_all(FlushReason::Release);
        assert_eq!(b[0].valid_bytes(), 8);
        assert_eq!(&b[0].entries[0].data[0..8], &[9u8; 8]);
    }

    #[test]
    fn entries_split_across_windows() {
        let cfg = FinePackConfig::paper(4).with_windows(4);
        assert_eq!(cfg.entries_per_window(), 16);
        cfg.validate();
    }

    #[test]
    fn span_mask_extremes() {
        assert_eq!(span_mask(0, 128), u128::MAX);
        assert_eq!(span_mask(0, 1), 1);
        assert_eq!(span_mask(127, 1), 1u128 << 127);
    }

    #[test]
    fn noncontiguous_runs_reported() {
        let mut q = rwq();
        q.insert(&store(1, 0x1000, vec![1; 4])).unwrap();
        q.insert(&store(1, 0x1010, vec![2; 4])).unwrap();
        let b = q.flush_all(FlushReason::Release);
        assert_eq!(b[0].entries[0].runs(), vec![(0, 4), (16, 4)]);
    }
}
