//! Randomized property tests for the wire-protocol models, driven by
//! the deterministic simulation RNG.

use protocol::{FramingModel, NvlinkModel, TlpHeader, TlpType};
use sim_engine::DetRng;

fn random_header(rng: &mut DetRng) -> TlpHeader {
    let tlp_type = match rng.next_u64_below(3) {
        0 => TlpType::MemWrite,
        1 => TlpType::MemRead,
        _ => TlpType::FinePack,
    };
    TlpHeader {
        tlp_type,
        traffic_class: rng.next_u64_below(8) as u8,
        has_digest: rng.chance(0.5),
        poisoned: rng.chance(0.5),
        attributes: rng.next_u64_below(4) as u8,
        length_bytes: rng.next_in_range(1, 1025) as u32 * 4,
        requester_id: rng.next_u64() as u16,
        tag: rng.next_u64() as u8,
        last_be: rng.next_u64_below(16) as u8,
        first_be: rng.next_u64_below(16) as u8,
        address: (rng.next_u64() & ((1 << 62) - 1)) & !0x3, // DW-aligned
    }
}

/// Every well-formed header round-trips through its 16-byte wire
/// encoding, including the 1024-DW length wrap case.
#[test]
fn tlp_header_roundtrip() {
    let mut rng = DetRng::new(0x9207_0001, "tlp-roundtrip");
    for _ in 0..500 {
        let hdr = random_header(&mut rng);
        let wire = hdr.encode();
        let back = TlpHeader::decode(&wire).expect("valid header");
        assert_eq!(back, hdr);
    }
}

/// Goodput is always in (0, 1) and never decreases with payload size
/// within a single TLP.
#[test]
fn pcie_goodput_bounds_and_monotonicity() {
    let fm = FramingModel::pcie_gen4();
    assert_eq!(fm.goodput(0), None, "empty packets have no goodput");
    for payload in 1u32..=4096 {
        let g = fm.goodput(payload).unwrap();
        assert!(g > 0.0 && g < 1.0);
        // Goodput is monotonic across DW boundaries (within a DW the
        // padding makes it locally dip, so compare DW-aligned sizes).
        if payload % 4 == 0 && payload > 4 {
            let prev = fm.goodput(payload - 4).unwrap();
            assert!(fm.goodput(payload).unwrap() >= prev - 1e-12);
        }
    }
}

/// Bulk transfers are never more wire-expensive than the same bytes
/// sent as two bulk transfers.
#[test]
fn bulk_wire_subadditivity() {
    let fm = FramingModel::pcie_gen4();
    let mut rng = DetRng::new(0x9207_0002, "bulk-subadd");
    for _ in 0..500 {
        let a = rng.next_in_range(1, 100_000);
        let b = rng.next_in_range(1, 100_000);
        assert!(fm.bulk_wire_bytes(a + b) <= fm.bulk_wire_bytes(a) + fm.bulk_wire_bytes(b));
        assert!(fm.bulk_wire_bytes(a + b) >= a + b);
    }
}

/// NVLink wire size is flit-quantized and at least payload + header.
#[test]
fn nvlink_wire_is_flit_quantized() {
    let nv = NvlinkModel::default();
    for payload in 1u32..=256 {
        for aligned in [false, true] {
            let wire = nv.wire_bytes(payload, aligned);
            assert_eq!(wire % 16, 0);
            assert!(wire >= u64::from(payload) + 16);
        }
        // Unaligned never cheaper than aligned.
        assert!(nv.wire_bytes(payload, false) >= nv.wire_bytes(payload, true));
    }
}

/// Random consume/release interleavings never corrupt a credit pool:
/// usage mirrors a reference in-flight set, never exceeds the
/// advertised maxima, and draining the set restores the full pool.
#[test]
fn credit_account_exhaustion_and_release_property() {
    use protocol::{CreditAccount, PD_UNIT_BYTES};

    let mut rng = DetRng::new(0x9207_0003, "credit-prop");
    for round in 0..200 {
        let ph_max = rng.next_in_range(1, 16) as u32;
        let pd_max = rng.next_in_range(1, 64) as u32;
        let mut fc = CreditAccount::new(ph_max, pd_max);
        let mut in_flight: Vec<u32> = Vec::new();
        for _ in 0..200 {
            let payload = rng.next_in_range(1, u64::from(pd_max) * u64::from(PD_UNIT_BYTES)) as u32;
            if !in_flight.is_empty() && rng.chance(0.4) {
                let idx = rng.next_u64_below(in_flight.len() as u64) as usize;
                fc.release(in_flight.swap_remove(idx));
            } else {
                let expect_fit = in_flight.len() < ph_max as usize
                    && in_flight
                        .iter()
                        .map(|p| p.div_ceil(PD_UNIT_BYTES))
                        .sum::<u32>()
                        + payload.div_ceil(PD_UNIT_BYTES)
                        <= pd_max;
                assert_eq!(fc.can_send(payload), expect_fit, "round {round}");
                if fc.try_consume(payload) {
                    assert!(expect_fit);
                    in_flight.push(payload);
                } else {
                    assert!(!expect_fit);
                }
            }
            assert_eq!(fc.headers_in_flight(), in_flight.len() as u32);
            assert!(fc.headers_in_flight() <= ph_max);
            assert!(fc.data_units_in_flight() <= pd_max);
        }
        for p in in_flight.drain(..) {
            fc.release(p);
        }
        assert_eq!(fc.headers_in_flight(), 0);
        assert_eq!(fc.data_units_in_flight(), 0);
        assert!(fc.can_send(pd_max * PD_UNIT_BYTES));
    }
}
