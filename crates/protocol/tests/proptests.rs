//! Randomized property tests for the wire-protocol models, driven by
//! the deterministic simulation RNG.

use protocol::{FramingModel, NvlinkModel, TlpHeader, TlpType};
use sim_engine::DetRng;

fn random_header(rng: &mut DetRng) -> TlpHeader {
    let tlp_type = match rng.next_u64_below(3) {
        0 => TlpType::MemWrite,
        1 => TlpType::MemRead,
        _ => TlpType::FinePack,
    };
    TlpHeader {
        tlp_type,
        traffic_class: rng.next_u64_below(8) as u8,
        has_digest: rng.chance(0.5),
        poisoned: rng.chance(0.5),
        attributes: rng.next_u64_below(4) as u8,
        length_bytes: rng.next_in_range(1, 1025) as u32 * 4,
        requester_id: rng.next_u64() as u16,
        tag: rng.next_u64() as u8,
        last_be: rng.next_u64_below(16) as u8,
        first_be: rng.next_u64_below(16) as u8,
        address: (rng.next_u64() & ((1 << 62) - 1)) & !0x3, // DW-aligned
    }
}

/// Every well-formed header round-trips through its 16-byte wire
/// encoding, including the 1024-DW length wrap case.
#[test]
fn tlp_header_roundtrip() {
    let mut rng = DetRng::new(0x9207_0001, "tlp-roundtrip");
    for _ in 0..500 {
        let hdr = random_header(&mut rng);
        let wire = hdr.encode();
        let back = TlpHeader::decode(&wire).expect("valid header");
        assert_eq!(back, hdr);
    }
}

/// Goodput is always in (0, 1) and never decreases with payload size
/// within a single TLP.
#[test]
fn pcie_goodput_bounds_and_monotonicity() {
    let fm = FramingModel::pcie_gen4();
    for payload in 1u32..=4096 {
        let g = fm.goodput(payload);
        assert!(g > 0.0 && g < 1.0);
        // Goodput is monotonic across DW boundaries (within a DW the
        // padding makes it locally dip, so compare DW-aligned sizes).
        if payload % 4 == 0 && payload > 4 {
            assert!(fm.goodput(payload) >= fm.goodput(payload - 4) - 1e-12);
        }
    }
}

/// Bulk transfers are never more wire-expensive than the same bytes
/// sent as two bulk transfers.
#[test]
fn bulk_wire_subadditivity() {
    let fm = FramingModel::pcie_gen4();
    let mut rng = DetRng::new(0x9207_0002, "bulk-subadd");
    for _ in 0..500 {
        let a = rng.next_in_range(1, 100_000);
        let b = rng.next_in_range(1, 100_000);
        assert!(fm.bulk_wire_bytes(a + b) <= fm.bulk_wire_bytes(a) + fm.bulk_wire_bytes(b));
        assert!(fm.bulk_wire_bytes(a + b) >= a + b);
    }
}

/// NVLink wire size is flit-quantized and at least payload + header.
#[test]
fn nvlink_wire_is_flit_quantized() {
    let nv = NvlinkModel::default();
    for payload in 1u32..=256 {
        for aligned in [false, true] {
            let wire = nv.wire_bytes(payload, aligned);
            assert_eq!(wire % 16, 0);
            assert!(wire >= u64::from(payload) + 16);
        }
        // Unaligned never cheaper than aligned.
        assert!(nv.wire_bytes(payload, false) >= nv.wire_bytes(payload, true));
    }
}
