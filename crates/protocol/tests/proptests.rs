//! Property tests for the wire-protocol models.

use proptest::prelude::*;
use protocol::{FramingModel, NvlinkModel, TlpHeader, TlpType};

fn header_strategy() -> impl Strategy<Value = TlpHeader> {
    (
        prop_oneof![
            Just(TlpType::MemWrite),
            Just(TlpType::MemRead),
            Just(TlpType::FinePack)
        ],
        0u8..8,       // traffic class
        any::<bool>(),
        any::<bool>(),
        0u8..4,       // attributes
        1u32..=1024,  // length in DW
        any::<u16>(),
        any::<u8>(),
        0u8..16,
        0u8..16,
        0u64..(1 << 62),
    )
        .prop_map(
            |(ty, tc, td, ep, attr, len_dw, req, tag, last_be, first_be, addr)| TlpHeader {
                tlp_type: ty,
                traffic_class: tc,
                has_digest: td,
                poisoned: ep,
                attributes: attr,
                length_bytes: len_dw * 4,
                requester_id: req,
                tag,
                last_be,
                first_be,
                address: addr & !0x3, // DW-aligned
            },
        )
}

proptest! {
    /// Every well-formed header round-trips through its 16-byte wire
    /// encoding, including the 1024-DW length wrap case.
    #[test]
    fn tlp_header_roundtrip(hdr in header_strategy()) {
        let wire = hdr.encode();
        let back = TlpHeader::decode(&wire).expect("valid header");
        prop_assert_eq!(back, hdr);
    }

    /// Goodput is always in (0, 1) and never decreases with payload size
    /// within a single TLP.
    #[test]
    fn pcie_goodput_bounds_and_monotonicity(payload in 1u32..=4096) {
        let fm = FramingModel::pcie_gen4();
        let g = fm.goodput(payload);
        prop_assert!(g > 0.0 && g < 1.0);
        // Goodput is monotonic across DW boundaries (within a DW the
        // padding makes it locally dip, so compare DW-aligned sizes).
        if payload % 4 == 0 && payload > 4 {
            prop_assert!(fm.goodput(payload) >= fm.goodput(payload - 4) - 1e-12);
        }
    }

    /// Bulk transfers are never more wire-expensive than the same bytes
    /// sent as two bulk transfers.
    #[test]
    fn bulk_wire_subadditivity(a in 1u64..100_000, b in 1u64..100_000) {
        let fm = FramingModel::pcie_gen4();
        prop_assert!(fm.bulk_wire_bytes(a + b) <= fm.bulk_wire_bytes(a) + fm.bulk_wire_bytes(b));
        prop_assert!(fm.bulk_wire_bytes(a + b) >= a + b);
    }

    /// NVLink wire size is flit-quantized and at least payload + header.
    #[test]
    fn nvlink_wire_is_flit_quantized(payload in 1u32..=256, aligned in any::<bool>()) {
        let nv = NvlinkModel::default();
        let wire = nv.wire_bytes(payload, aligned);
        prop_assert_eq!(wire % 16, 0);
        prop_assert!(wire >= u64::from(payload) + 16);
        // Unaligned never cheaper than aligned.
        prop_assert!(nv.wire_bytes(payload, false) >= nv.wire_bytes(payload, true));
    }
}
