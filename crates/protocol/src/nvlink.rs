//! NVLink flit-level framing model.
//!
//! NVLink moves data in 16-byte flits. Each request carries a header flit;
//! when the payload is not flit-aligned (or byte enables are otherwise
//! required), an additional byte-enable flit is sent — this is the cause
//! of the goodput "spikes" the paper notes in Figure 2's footnote.

use sim_engine::Bandwidth;

/// NVLink flit size in bytes.
pub const FLIT_BYTES: u32 = 16;

/// Framing model for an NVLink-style flit protocol.
///
/// # Examples
///
/// ```
/// use protocol::NvlinkModel;
///
/// let nv = NvlinkModel::default();
/// // A 16B aligned store: 1 header flit + 1 data flit.
/// assert_eq!(nv.wire_bytes(16, true), 32);
/// // A 12B store additionally pays a byte-enable flit.
/// assert_eq!(nv.wire_bytes(12, true), 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NvlinkModel {
    /// Header flits per packet.
    pub header_flits: u32,
    /// Whether a byte-enable flit is charged for non-flit-aligned payloads.
    pub byte_enable_flit: bool,
    /// Maximum data payload per packet, bytes.
    pub max_payload: u32,
}

impl Default for NvlinkModel {
    fn default() -> Self {
        NvlinkModel {
            header_flits: 1,
            byte_enable_flit: true,
            max_payload: 256,
        }
    }
}

impl NvlinkModel {
    /// Aggregate bandwidth of an NVLink3-class 4-link bundle, roughly the
    /// "highest performance NVLink interconnects" the paper equates with
    /// PCIe 6.0 bandwidth in Fig 13.
    pub fn bundle_bandwidth() -> Bandwidth {
        Bandwidth::from_gbps(128.0)
    }

    /// Total wire bytes for one packet with `payload` data bytes.
    ///
    /// `aligned` indicates the store is flit-aligned at both ends; when
    /// false (or when the size is not a flit multiple), a byte-enable flit
    /// is charged if the model carries them.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is zero or exceeds `max_payload`.
    pub fn wire_bytes(&self, payload: u32, aligned: bool) -> u64 {
        assert!(
            payload > 0 && payload <= self.max_payload,
            "invalid NVLink payload {payload}"
        );
        let data_flits = payload.div_ceil(FLIT_BYTES);
        let needs_be = self.byte_enable_flit && (!aligned || !payload.is_multiple_of(FLIT_BYTES));
        let flits = self.header_flits + data_flits + u32::from(needs_be);
        u64::from(flits) * u64::from(FLIT_BYTES)
    }

    /// Total wire bytes to move `total_payload` bytes in max-size packets.
    pub fn bulk_wire_bytes(&self, total_payload: u64) -> u64 {
        if total_payload == 0 {
            return 0;
        }
        let full = total_payload / u64::from(self.max_payload);
        let rem = (total_payload % u64::from(self.max_payload)) as u32;
        let mut bytes = full * self.wire_bytes(self.max_payload, true);
        if rem > 0 {
            bytes += self.wire_bytes(rem, true);
        }
        bytes
    }

    /// Goodput (payload / wire bytes) for a single packet.
    ///
    /// # Panics
    ///
    /// Panics as for [`NvlinkModel::wire_bytes`].
    pub fn goodput(&self, payload: u32, aligned: bool) -> f64 {
        f64::from(payload) / self.wire_bytes(payload, aligned) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_flit_multiples_skip_be_flit() {
        let nv = NvlinkModel::default();
        assert_eq!(nv.wire_bytes(32, true), 48); // hdr + 2 data
        assert_eq!(nv.wire_bytes(32, false), 64); // + BE flit
    }

    #[test]
    fn goodput_spikes_at_flit_boundaries() {
        let nv = NvlinkModel::default();
        // 16B aligned: 16/32 = 0.5; 17B: needs 2 data flits + BE = 17/64.
        let at16 = nv.goodput(16, true);
        let at17 = nv.goodput(17, true);
        assert!(at16 > at17 * 1.5, "expected spike: {at16} vs {at17}");
    }

    #[test]
    fn small_unaligned_stores_are_inefficient() {
        let nv = NvlinkModel::default();
        // 4B store: header + data flit + BE flit = 48B on wire.
        assert!(nv.goodput(4, false) < 0.1);
    }

    #[test]
    fn bulk_wire_bytes_chunks() {
        let nv = NvlinkModel::default();
        let one = nv.wire_bytes(256, true);
        assert_eq!(nv.bulk_wire_bytes(512), 2 * one);
        assert_eq!(nv.bulk_wire_bytes(0), 0);
    }

    #[test]
    #[should_panic(expected = "invalid NVLink payload")]
    fn zero_payload_panics() {
        let _ = NvlinkModel::default().wire_bytes(0, true);
    }
}
