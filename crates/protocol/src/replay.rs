//! The PCIe data link layer's Ack/Nak retry protocol, closed-loop.
//!
//! FinePack's transparency claim (§IV-A) extends below the transaction
//! layer: an aggregated FinePack TLP is protected by the same LCRC,
//! acknowledged by the same Ack/Nak DLLPs, and replayed from the same
//! replay buffer as any plain memory write. This module models that
//! machinery so the simulator can inject bit errors and show that the
//! final memory image is still byte-identical to a fault-free run — the
//! only observable difference being replayed wire bytes and added
//! latency.
//!
//! The state machine follows the PCIe data link layer:
//!
//! - 12-bit TLP sequence numbers (`NEXT_TRANSMIT_SEQ`, `ACKD_SEQ`,
//!   `NEXT_RCV_SEQ`) with modulo-4096 wraparound;
//! - a bounded replay buffer holding unacknowledged TLPs;
//! - [`Dllp::Ack`] purges the buffer up to the acknowledged sequence,
//!   [`Dllp::Nak`] replays everything after it;
//! - a `REPLAY_TIMER` that replays the whole buffer when an Ack fails to
//!   arrive (e.g. the Ack DLLP itself was corrupted);
//! - a `REPLAY_NUM` counter that escalates to link retraining after
//!   repeated replays without forward progress.
//!
//! Bit errors are drawn from a [`BitErrorModel`] using the simulator's
//! deterministic RNG, so fault runs replay exactly for a fixed seed.

use std::collections::VecDeque;
use std::fmt;

use sim_engine::{DetRng, SimTime};

use crate::dllp::{Dllp, DLLP_WIRE_BYTES};

/// Sequence numbers are 12 bits: arithmetic is modulo 4096.
pub const SEQ_MODULO: u16 = 1 << 12;

/// Distance from `from` to `to` in modulo-4096 sequence space.
fn seq_distance(from: u16, to: u16) -> u16 {
    to.wrapping_sub(from) & (SEQ_MODULO - 1)
}

/// The sequence number immediately before `seq` (modulo 4096).
fn seq_before(seq: u16) -> u16 {
    seq.wrapping_sub(1) & (SEQ_MODULO - 1)
}

/// A per-bit error-rate model for a link direction.
///
/// # Examples
///
/// ```
/// use protocol::BitErrorModel;
///
/// let clean = BitErrorModel::new(0.0);
/// assert_eq!(clean.tlp_error_probability(4096), 0.0);
/// let noisy = BitErrorModel::new(1e-6);
/// // A 4KB TLP carries ~32k bits: a few percent of them fail.
/// assert!(noisy.tlp_error_probability(4096) > 0.03);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitErrorModel {
    ber: f64,
}

impl BitErrorModel {
    /// Creates a model with `ber` errors per transmitted bit.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= ber <= 1`.
    pub fn new(ber: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ber),
            "bit error rate out of range: {ber}"
        );
        BitErrorModel { ber }
    }

    /// The configured errors-per-bit rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// Probability that a transfer of `bytes` bytes suffers at least one
    /// bit error (and so fails its LCRC check).
    pub fn tlp_error_probability(&self, bytes: u64) -> f64 {
        if self.ber <= 0.0 {
            return 0.0;
        }
        if self.ber >= 1.0 {
            return 1.0;
        }
        // 1 - (1-ber)^bits, computed in log space for small rates.
        let bits = (bytes * 8) as f64;
        -f64::exp_m1(bits * f64::ln_1p(-self.ber))
    }

    /// Draws whether a transfer of `bytes` bytes is corrupted.
    pub fn corrupts(&self, bytes: u64, rng: &mut DetRng) -> bool {
        rng.chance(self.tlp_error_probability(bytes))
    }
}

/// Data-link-layer retry parameters.
///
/// Defaults follow PCIe proportions: the replay timer is a few
/// round-trips, REPLAY_NUM escalates after four replays without
/// progress, and retraining costs microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Replay-buffer capacity in TLPs (unacknowledged outstanding TLPs).
    pub buffer_tlps: usize,
    /// Ack/Nak turnaround: TLP receipt to DLLP arrival back at the
    /// transmitter.
    pub ack_delay: SimTime,
    /// REPLAY_TIMER timeout: replay the buffer if no Ack/Nak arrives.
    pub replay_timer: SimTime,
    /// Replays without forward progress before escalating to retrain
    /// (PCIe's 2-bit REPLAY_NUM rolls over on the fourth).
    pub max_replay_num: u32,
    /// Time the link spends retraining (recovery/LTSSM round-trip).
    pub retrain_time: SimTime,
    /// Consecutive retrains without delivering a TLP before the
    /// endpoint declares the link dead ([`ReplayError::LinkDown`]).
    pub max_consecutive_retrains: u32,
}

impl ReplayConfig {
    /// Defaults proportioned for a PCIe 4.0 x16 link.
    pub fn pcie_gen4() -> Self {
        ReplayConfig {
            buffer_tlps: 32,
            ack_delay: SimTime::from_ns(500),
            replay_timer: SimTime::from_us(2),
            max_replay_num: 4,
            retrain_time: SimTime::from_us(20),
            max_consecutive_retrains: 16,
        }
    }
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig::pcie_gen4()
    }
}

/// Errors surfaced by the data link state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The replay buffer is full: the transmitter must stall until an
    /// Ack frees an entry.
    BufferFull {
        /// Configured buffer capacity.
        capacity: usize,
    },
    /// An Ack/Nak referenced a sequence number outside the
    /// unacknowledged window (a protocol violation).
    BadSequence {
        /// The offending DLLP sequence number.
        seq: u16,
    },
    /// The link failed to deliver a TLP despite repeated retrains —
    /// permanently down as far as the endpoint can tell.
    LinkDown {
        /// Sequence number of the undeliverable TLP.
        seq: u16,
        /// Retrains attempted before giving up.
        retrains: u32,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BufferFull { capacity } => {
                write!(f, "replay buffer full ({capacity} TLPs outstanding)")
            }
            ReplayError::BadSequence { seq } => {
                write!(f, "DLLP sequence {seq} outside the unacknowledged window")
            }
            ReplayError::LinkDown { seq, retrains } => write!(
                f,
                "link down: TLP seq {seq} undeliverable after {retrains} retrains"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// What the transmitter must do after consuming a DLLP or a timer expiry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayAction {
    /// Pure forward progress; nothing to retransmit.
    None,
    /// Retransmit these sequence numbers, oldest first.
    Retransmit(Vec<u16>),
    /// REPLAY_NUM rolled over: retrain the link, then retransmit.
    Retrain(Vec<u16>),
}

/// Cumulative per-direction link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// TLPs accepted into the replay buffer.
    pub tlps_sent: u64,
    /// TLPs acknowledged (delivered exactly once to the receiver).
    pub tlps_delivered: u64,
    /// Total transmissions, including replays.
    pub transmissions: u64,
    /// TLP bytes transmitted the first time.
    pub first_transmission_bytes: u64,
    /// TLP bytes retransmitted (wire traffic that is not goodput).
    pub replayed_bytes: u64,
    /// Ack DLLPs consumed.
    pub acks: u64,
    /// Nak DLLPs consumed.
    pub naks: u64,
    /// Ack/Nak DLLPs lost to bit errors on the return path.
    pub dllps_lost: u64,
    /// REPLAY_TIMER expirations.
    pub timer_expiries: u64,
    /// Link retrains triggered by REPLAY_NUM rollover.
    pub retrains: u64,
    /// DLLP return-path bytes (Acks and Naks, including lost ones).
    pub dllp_bytes: u64,
    /// Duplicate TLPs discarded by the receiver (replays of delivered
    /// TLPs whose Ack was lost).
    pub rx_duplicates: u64,
}

/// The outcome of carrying one TLP across the link, closed-loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTransfer {
    /// Sequence number the TLP was assigned.
    pub seq: u16,
    /// Transmission attempts (1 = clean first pass).
    pub attempts: u32,
    /// Bytes retransmitted beyond the first attempt.
    pub replayed_bytes: u64,
    /// Retrains incurred while delivering this TLP.
    pub retrains: u32,
    /// Latency added by Naks, timer expiries, and retrains. Zero for a
    /// clean first-pass delivery, so fault-free timing is unchanged.
    pub extra_delay: SimTime,
}

/// One buffered, unacknowledged TLP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BufferedTlp {
    seq: u16,
    wire_bytes: u64,
    enqueued_at: SimTime,
}

/// One direction of a data-link-layer connection: the transmitter's
/// retry state machine plus a model of the peer's receiver, so the
/// Ack/Nak loop closes inside one object.
///
/// # Examples
///
/// ```
/// use protocol::{BitErrorModel, DataLinkEndpoint, ReplayConfig};
/// use sim_engine::{DetRng, SimTime};
///
/// let mut ep = DataLinkEndpoint::new(
///     ReplayConfig::pcie_gen4(),
///     BitErrorModel::new(0.0),
///     DetRng::new(7, "link0"),
/// );
/// let t = ep.transmit(SimTime::ZERO, 256).unwrap();
/// assert_eq!(t.attempts, 1);
/// assert_eq!(t.extra_delay, SimTime::ZERO);
/// assert_eq!(ep.stats().tlps_delivered, 1);
/// ```
#[derive(Debug, Clone)]
pub struct DataLinkEndpoint {
    cfg: ReplayConfig,
    ber: BitErrorModel,
    rng: DetRng,
    /// Unacknowledged TLPs, oldest first.
    buffer: VecDeque<BufferedTlp>,
    /// Sequence number the next new TLP will carry.
    next_transmit_seq: u16,
    /// Most recently acknowledged sequence number.
    ackd_seq: u16,
    /// Receiver side: sequence number expected next.
    next_rcv_seq: u16,
    /// Replays since the last forward progress.
    replay_num: u32,
    /// Retrains since the last delivered TLP.
    consecutive_retrains: u32,
    /// REPLAY_TIMER deadline, armed while TLPs are outstanding.
    timer_deadline: Option<SimTime>,
    /// Forced-failure window: transmissions inside it are lost outright
    /// (models a transient link outage; the TLP is not Nak'd, the timer
    /// must recover it).
    outage: Option<(SimTime, SimTime)>,
    stats: ReplayStats,
}

impl DataLinkEndpoint {
    /// Creates an idle endpoint.
    pub fn new(cfg: ReplayConfig, ber: BitErrorModel, rng: DetRng) -> Self {
        assert!(
            cfg.buffer_tlps > 0,
            "replay buffer must hold at least 1 TLP"
        );
        assert!(cfg.max_replay_num > 0, "REPLAY_NUM must allow one replay");
        DataLinkEndpoint {
            cfg,
            ber,
            rng,
            buffer: VecDeque::new(),
            next_transmit_seq: 0,
            ackd_seq: SEQ_MODULO - 1, // "nothing acknowledged yet"
            next_rcv_seq: 0,
            replay_num: 0,
            consecutive_retrains: 0,
            timer_deadline: None,
            outage: None,
            stats: ReplayStats::default(),
        }
    }

    /// Declares a transmission blackout: attempts in `[from, until)`
    /// are lost without a Nak. `until == SimTime::MAX` models a link
    /// that never comes back (the watchdog's stuck-link case).
    pub fn set_outage(&mut self, from: SimTime, until: SimTime) {
        assert!(from < until, "empty outage window");
        self.outage = Some((from, until));
    }

    /// Clears any configured outage window.
    pub fn clear_outage(&mut self) {
        self.outage = None;
    }

    /// True if a transmission at `at` falls inside the outage window.
    pub fn in_outage(&self, at: SimTime) -> bool {
        self.outage
            .is_some_and(|(from, until)| at >= from && at < until)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &ReplayStats {
        &self.stats
    }

    /// Unacknowledged TLPs in the replay buffer.
    pub fn outstanding(&self) -> usize {
        self.buffer.len()
    }

    /// The sequence number the next new TLP will carry.
    pub fn next_transmit_seq(&self) -> u16 {
        self.next_transmit_seq
    }

    /// The most recently acknowledged sequence number.
    pub fn ackd_seq(&self) -> u16 {
        self.ackd_seq
    }

    /// Replays since the last forward progress (REPLAY_NUM).
    pub fn replay_num(&self) -> u32 {
        self.replay_num
    }

    /// Accepts a TLP of `wire_bytes` into the replay buffer and assigns
    /// its sequence number. The caller transmits it; the entry stays
    /// buffered until an Ack covers it.
    ///
    /// # Errors
    ///
    /// [`ReplayError::BufferFull`] when `buffer_tlps` TLPs are already
    /// outstanding — the transmitter must stall (this is how the link
    /// layer applies backpressure).
    pub fn enqueue(&mut self, now: SimTime, wire_bytes: u64) -> Result<u16, ReplayError> {
        if self.buffer.len() >= self.cfg.buffer_tlps {
            return Err(ReplayError::BufferFull {
                capacity: self.cfg.buffer_tlps,
            });
        }
        let seq = self.next_transmit_seq;
        self.next_transmit_seq = (seq + 1) & (SEQ_MODULO - 1);
        self.buffer.push_back(BufferedTlp {
            seq,
            wire_bytes,
            enqueued_at: now,
        });
        self.stats.tlps_sent += 1;
        self.stats.transmissions += 1;
        self.stats.first_transmission_bytes += wire_bytes;
        if self.timer_deadline.is_none() {
            self.timer_deadline = now.checked_add(self.cfg.replay_timer);
        }
        Ok(seq)
    }

    /// Receiver half: a TLP with `seq` arrives, `lcrc_ok` telling whether
    /// its LCRC verified. Returns the DLLP the receiver schedules and
    /// whether the TLP is accepted (delivered to the transaction layer) —
    /// duplicates and corrupted TLPs are not.
    pub fn receive_tlp(&mut self, seq: u16, lcrc_ok: bool) -> (Dllp, bool) {
        let last_good = seq_before(self.next_rcv_seq);
        if !lcrc_ok {
            // Bad LCRC: Nak the last in-order TLP; sender replays.
            return (Dllp::Nak { seq: last_good }, false);
        }
        if seq == self.next_rcv_seq {
            self.next_rcv_seq = (seq + 1) & (SEQ_MODULO - 1);
            return (Dllp::Ack { seq }, true);
        }
        // A duplicate (already received: its Ack was lost) is re-acked
        // and discarded; a gap (future seq) is Nak'd.
        if seq_distance(seq, last_good) <= seq_distance(last_good, seq) {
            self.stats.rx_duplicates += 1;
            (Dllp::Ack { seq: last_good }, false)
        } else {
            (Dllp::Nak { seq: last_good }, false)
        }
    }

    /// Transmitter half: consumes an Ack or Nak DLLP.
    ///
    /// An Ack purges the replay buffer through the acknowledged
    /// sequence. A Nak does the same (a Nak acknowledges everything up
    /// to its sequence) and then asks for everything after it back.
    ///
    /// # Errors
    ///
    /// [`ReplayError::BadSequence`] if the DLLP references a sequence
    /// outside the unacknowledged window, and [`ReplayError::LinkDown`]
    /// if escalation exhausts the retrain budget.
    pub fn handle_dllp(&mut self, now: SimTime, dllp: Dllp) -> Result<ReplayAction, ReplayError> {
        match dllp {
            Dllp::Ack { seq } => {
                self.stats.acks += 1;
                let freed = self.purge_through(seq)?;
                if freed > 0 {
                    // Forward progress: REPLAY_NUM and the retrain
                    // escalation both reset.
                    self.replay_num = 0;
                    self.consecutive_retrains = 0;
                }
                self.rearm_timer(now);
                Ok(ReplayAction::None)
            }
            Dllp::Nak { seq } => {
                self.stats.naks += 1;
                self.purge_through(seq)?;
                self.rearm_timer(now);
                self.initiate_replay()
            }
            Dllp::UpdateFcPosted { .. } => Ok(ReplayAction::None),
        }
    }

    /// Fires the REPLAY_TIMER if `now` has passed its deadline: every
    /// unacknowledged TLP is scheduled for retransmission.
    ///
    /// # Errors
    ///
    /// [`ReplayError::LinkDown`] if escalation exhausts the retrain
    /// budget.
    pub fn expire_timer(&mut self, now: SimTime) -> Result<ReplayAction, ReplayError> {
        let Some(deadline) = self.timer_deadline else {
            return Ok(ReplayAction::None);
        };
        if now < deadline || self.buffer.is_empty() {
            return Ok(ReplayAction::None);
        }
        self.stats.timer_expiries += 1;
        self.rearm_timer(now);
        self.initiate_replay()
    }

    /// Purges buffered TLPs with sequence numbers in `(ackd_seq, seq]`.
    /// Returns how many were freed.
    fn purge_through(&mut self, seq: u16) -> Result<usize, ReplayError> {
        // A (re)acknowledgment of the current ACKD_SEQ is a no-op.
        if seq == self.ackd_seq {
            return Ok(0);
        }
        let window = seq_distance(self.ackd_seq, seq);
        let outstanding = self.buffer.len() as u16;
        if window == 0 || window > outstanding {
            return Err(ReplayError::BadSequence { seq });
        }
        let mut freed = 0;
        while let Some(front) = self.buffer.front().copied() {
            if seq_distance(front.seq, seq) > outstanding {
                break; // front is past the acknowledged range
            }
            self.buffer.pop_front();
            freed += 1;
            self.stats.tlps_delivered += 1;
            if front.seq == seq {
                break;
            }
        }
        self.ackd_seq = seq;
        Ok(freed)
    }

    /// Counts one replay of the whole buffer, escalating to retrain when
    /// REPLAY_NUM rolls over.
    fn initiate_replay(&mut self) -> Result<ReplayAction, ReplayError> {
        let seqs: Vec<u16> = self.buffer.iter().map(|t| t.seq).collect();
        if seqs.is_empty() {
            return Ok(ReplayAction::None);
        }
        for t in &self.buffer {
            self.stats.replayed_bytes += t.wire_bytes;
        }
        self.stats.transmissions += seqs.len() as u64;
        self.replay_num += 1;
        if self.replay_num >= self.cfg.max_replay_num {
            self.replay_num = 0;
            self.stats.retrains += 1;
            self.consecutive_retrains += 1;
            if self.consecutive_retrains > self.cfg.max_consecutive_retrains {
                return Err(ReplayError::LinkDown {
                    seq: seqs[0],
                    retrains: self.consecutive_retrains,
                });
            }
            return Ok(ReplayAction::Retrain(seqs));
        }
        Ok(ReplayAction::Retransmit(seqs))
    }

    fn rearm_timer(&mut self, now: SimTime) {
        self.timer_deadline = if self.buffer.is_empty() {
            None
        } else {
            now.checked_add(self.cfg.replay_timer)
        };
    }

    /// Records the DLLP return-path bytes of one Ack/Nak.
    fn account_dllp(&mut self) {
        self.stats.dllp_bytes += u64::from(DLLP_WIRE_BYTES);
    }

    /// Carries one TLP of `wire_bytes` across the link, simulating the
    /// full closed loop: LCRC corruption draws, Nak-triggered replays,
    /// lost-Ack timer recoveries, and REPLAY_NUM-escalated retrains.
    ///
    /// With a zero bit-error rate and no outage the TLP is delivered on
    /// the first attempt with `extra_delay == ZERO`, so fault-free runs
    /// are bit- and time-identical to a simulation without this layer.
    ///
    /// # Errors
    ///
    /// [`ReplayError::LinkDown`] when the retrain budget is exhausted —
    /// the caller's watchdog should turn this into a diagnostic rather
    /// than retrying forever.
    pub fn transmit(&mut self, now: SimTime, wire_bytes: u64) -> Result<LinkTransfer, ReplayError> {
        let seq = self.enqueue(now, wire_bytes)?;
        let mut t = now;
        let mut attempts: u32 = 1;
        let mut replayed: u64 = 0;
        let mut retrains: u32 = 0;
        loop {
            if self.in_outage(t) {
                // The TLP vanishes: no Nak will come, only the timer.
                let wait = self
                    .timer_deadline
                    .unwrap_or_else(|| t + self.cfg.replay_timer);
                t = t.max(wait);
                if let ReplayAction::Retrain(_) = self.expire_timer(t)? {
                    retrains += 1;
                    t += self.cfg.retrain_time;
                }
                attempts += 1;
                replayed += wire_bytes;
                continue;
            }
            // The TLP reaches the receiver; its LCRC may have failed.
            let corrupted = self.ber.corrupts(wire_bytes, &mut self.rng);
            let (dllp, _accepted) = self.receive_tlp(seq, !corrupted);
            self.account_dllp();
            // The DLLP rides the reverse direction and can be lost too.
            if self.ber.corrupts(u64::from(DLLP_WIRE_BYTES), &mut self.rng) {
                self.stats.dllps_lost += 1;
                let wait = self
                    .timer_deadline
                    .unwrap_or_else(|| t + self.cfg.replay_timer);
                t = t.max(wait);
                if let ReplayAction::Retrain(_) = self.expire_timer(t)? {
                    retrains += 1;
                    t += self.cfg.retrain_time;
                }
                // A lost Ack means the receiver may already have the
                // TLP; the replay below is discarded as a duplicate and
                // re-acked, which the next loop iteration handles.
                attempts += 1;
                replayed += wire_bytes;
                continue;
            }
            t += self.cfg.ack_delay;
            match self.handle_dllp(t, dllp)? {
                ReplayAction::None => {
                    if self.buffer.iter().all(|b| b.seq != seq) {
                        // Delivered and acknowledged.
                        self.consecutive_retrains = 0;
                        let extra = if attempts == 1 {
                            SimTime::ZERO
                        } else {
                            t.saturating_sub(now + self.cfg.ack_delay)
                        };
                        return Ok(LinkTransfer {
                            seq,
                            attempts,
                            replayed_bytes: replayed,
                            retrains,
                            extra_delay: extra,
                        });
                    }
                    // Re-ack of an old sequence (duplicate path): replay
                    // once more via the timer.
                    let wait = self
                        .timer_deadline
                        .unwrap_or_else(|| t + self.cfg.replay_timer);
                    t = t.max(wait);
                    if let ReplayAction::Retrain(_) = self.expire_timer(t)? {
                        retrains += 1;
                        t += self.cfg.retrain_time;
                    }
                    attempts += 1;
                    replayed += wire_bytes;
                }
                ReplayAction::Retransmit(_) => {
                    attempts += 1;
                    replayed += wire_bytes;
                }
                ReplayAction::Retrain(_) => {
                    retrains += 1;
                    t += self.cfg.retrain_time;
                    attempts += 1;
                    replayed += wire_bytes;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint(ber: f64) -> DataLinkEndpoint {
        DataLinkEndpoint::new(
            ReplayConfig::pcie_gen4(),
            BitErrorModel::new(ber),
            DetRng::new(0xD11, "dll-test"),
        )
    }

    #[test]
    fn clean_transfer_is_free() {
        let mut ep = endpoint(0.0);
        for i in 0..100u64 {
            let t = ep.transmit(SimTime::from_ns(i * 10), 4096).unwrap();
            assert_eq!(t.attempts, 1);
            assert_eq!(t.replayed_bytes, 0);
            assert_eq!(t.extra_delay, SimTime::ZERO);
        }
        assert_eq!(ep.stats().tlps_delivered, 100);
        assert_eq!(ep.stats().replayed_bytes, 0);
        assert_eq!(ep.outstanding(), 0);
    }

    #[test]
    fn sequence_numbers_wrap_at_4096() {
        let mut ep = endpoint(0.0);
        for _ in 0..(usize::from(SEQ_MODULO) + 5) {
            ep.transmit(SimTime::ZERO, 64).unwrap();
        }
        // 4101 TLPs: the 4097th reuses seq 0.
        assert_eq!(ep.next_transmit_seq(), 5);
        assert_eq!(ep.ackd_seq(), 4);
        assert_eq!(ep.stats().tlps_delivered, u64::from(SEQ_MODULO) + 5);
    }

    #[test]
    fn ack_frees_the_replay_buffer() {
        let mut ep = endpoint(0.0);
        let s0 = ep.enqueue(SimTime::ZERO, 100).unwrap();
        let s1 = ep.enqueue(SimTime::ZERO, 200).unwrap();
        let s2 = ep.enqueue(SimTime::ZERO, 300).unwrap();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        assert_eq!(ep.outstanding(), 3);
        // A collapsed Ack for seq 1 covers 0 and 1.
        let action = ep.handle_dllp(SimTime::ZERO, Dllp::Ack { seq: 1 }).unwrap();
        assert_eq!(action, ReplayAction::None);
        assert_eq!(ep.outstanding(), 1);
        assert_eq!(ep.ackd_seq(), 1);
        assert_eq!(ep.stats().tlps_delivered, 2);
        ep.handle_dllp(SimTime::ZERO, Dllp::Ack { seq: 2 }).unwrap();
        assert_eq!(ep.outstanding(), 0);
    }

    #[test]
    fn nak_requests_retransmission_of_the_tail() {
        let mut ep = endpoint(0.0);
        for _ in 0..4 {
            ep.enqueue(SimTime::ZERO, 64).unwrap();
        }
        // Nak{1}: 0 and 1 are acknowledged, 2 and 3 replay.
        let action = ep.handle_dllp(SimTime::ZERO, Dllp::Nak { seq: 1 }).unwrap();
        assert_eq!(action, ReplayAction::Retransmit(vec![2, 3]));
        assert_eq!(ep.outstanding(), 2);
        assert_eq!(ep.stats().naks, 1);
        assert_eq!(ep.stats().replayed_bytes, 128);
    }

    #[test]
    fn replay_timer_replays_everything_outstanding() {
        let mut ep = endpoint(0.0);
        ep.enqueue(SimTime::ZERO, 64).unwrap();
        ep.enqueue(SimTime::ZERO, 64).unwrap();
        // Before the deadline: nothing happens.
        let early = ep.expire_timer(SimTime::from_ns(10)).unwrap();
        assert_eq!(early, ReplayAction::None);
        // After it: both TLPs replay.
        let deadline = ReplayConfig::pcie_gen4().replay_timer;
        let action = ep.expire_timer(deadline).unwrap();
        assert_eq!(action, ReplayAction::Retransmit(vec![0, 1]));
        assert_eq!(ep.stats().timer_expiries, 1);
    }

    #[test]
    fn replay_num_escalates_to_retrain() {
        let mut ep = endpoint(0.0);
        ep.enqueue(SimTime::ZERO, 64).unwrap();
        let last_good = SEQ_MODULO - 1; // nothing delivered yet
        let mut actions = Vec::new();
        for _ in 0..ReplayConfig::pcie_gen4().max_replay_num {
            actions.push(
                ep.handle_dllp(SimTime::ZERO, Dllp::Nak { seq: last_good })
                    .unwrap(),
            );
        }
        // First three are plain replays; the fourth escalates.
        assert!(matches!(actions[0], ReplayAction::Retransmit(_)));
        assert!(matches!(actions[2], ReplayAction::Retransmit(_)));
        assert!(matches!(actions[3], ReplayAction::Retrain(_)));
        assert_eq!(ep.stats().retrains, 1);
        assert_eq!(ep.replay_num(), 0); // reset by the retrain
    }

    #[test]
    fn progress_resets_replay_num() {
        let mut ep = endpoint(0.0);
        ep.enqueue(SimTime::ZERO, 64).unwrap();
        ep.enqueue(SimTime::ZERO, 64).unwrap();
        let last_good = SEQ_MODULO - 1;
        ep.handle_dllp(SimTime::ZERO, Dllp::Nak { seq: last_good })
            .unwrap();
        assert_eq!(ep.replay_num(), 1);
        // Ack for seq 0: forward progress.
        ep.handle_dllp(SimTime::ZERO, Dllp::Ack { seq: 0 }).unwrap();
        assert_eq!(ep.replay_num(), 0);
    }

    #[test]
    fn buffer_capacity_stalls_the_transmitter() {
        let cfg = ReplayConfig {
            buffer_tlps: 2,
            ..ReplayConfig::pcie_gen4()
        };
        let mut ep = DataLinkEndpoint::new(cfg, BitErrorModel::new(0.0), DetRng::new(1, "cap"));
        ep.enqueue(SimTime::ZERO, 64).unwrap();
        ep.enqueue(SimTime::ZERO, 64).unwrap();
        assert_eq!(
            ep.enqueue(SimTime::ZERO, 64),
            Err(ReplayError::BufferFull { capacity: 2 })
        );
        ep.handle_dllp(SimTime::ZERO, Dllp::Ack { seq: 0 }).unwrap();
        assert!(ep.enqueue(SimTime::ZERO, 64).is_ok());
    }

    #[test]
    fn bad_sequence_is_rejected() {
        let mut ep = endpoint(0.0);
        ep.enqueue(SimTime::ZERO, 64).unwrap();
        // Acking seq 7 with only seq 0 outstanding is a violation.
        assert_eq!(
            ep.handle_dllp(SimTime::ZERO, Dllp::Ack { seq: 7 }),
            Err(ReplayError::BadSequence { seq: 7 })
        );
    }

    #[test]
    fn receiver_acks_in_order_naks_corruption() {
        let mut ep = endpoint(0.0);
        let (d, accepted) = ep.receive_tlp(0, true);
        assert_eq!(d, Dllp::Ack { seq: 0 });
        assert!(accepted);
        // Corrupted: Nak of the last good (0), not accepted.
        let (d, accepted) = ep.receive_tlp(1, false);
        assert_eq!(d, Dllp::Nak { seq: 0 });
        assert!(!accepted);
        // Duplicate of 0: re-acked, discarded.
        let (d, accepted) = ep.receive_tlp(0, true);
        assert_eq!(d, Dllp::Ack { seq: 0 });
        assert!(!accepted);
        assert_eq!(ep.stats().rx_duplicates, 1);
    }

    #[test]
    fn bit_errors_force_replays_but_deliver_everything() {
        let mut ep = endpoint(5e-5); // ~15% per 4KB TLP
        let mut replayed = 0u64;
        for i in 0..200u64 {
            let t = ep.transmit(SimTime::from_us(i), 4096).unwrap();
            replayed += t.replayed_bytes;
            if t.attempts > 1 {
                assert!(t.extra_delay > SimTime::ZERO);
            }
        }
        assert_eq!(ep.stats().tlps_delivered, 200);
        assert!(
            replayed > 0,
            "a 5e-5 BER must corrupt something in 200 TLPs"
        );
        assert_eq!(ep.stats().replayed_bytes, replayed);
        assert_eq!(ep.outstanding(), 0);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = || {
            let mut ep = DataLinkEndpoint::new(
                ReplayConfig::pcie_gen4(),
                BitErrorModel::new(1e-5),
                DetRng::new(99, "det"),
            );
            let mut log = Vec::new();
            for i in 0..100u64 {
                let t = ep.transmit(SimTime::from_us(i), 2048).unwrap();
                log.push((t.attempts, t.replayed_bytes, t.extra_delay));
            }
            (log, *ep.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn permanent_outage_declares_link_down() {
        let mut ep = endpoint(0.0);
        ep.set_outage(SimTime::ZERO, SimTime::MAX);
        let err = ep.transmit(SimTime::ZERO, 256).unwrap_err();
        assert!(matches!(err, ReplayError::LinkDown { .. }));
        let msg = err.to_string();
        assert!(msg.contains("link down"), "{msg}");
    }

    #[test]
    fn transient_outage_recovers_via_timer() {
        let mut ep = endpoint(0.0);
        // Out for 5us: a couple of timer-driven replays, then success.
        ep.set_outage(SimTime::ZERO, SimTime::from_us(5));
        let t = ep.transmit(SimTime::ZERO, 256).unwrap();
        assert!(t.attempts > 1);
        assert!(
            t.extra_delay >= SimTime::from_us(4),
            "delay {:?}",
            t.extra_delay
        );
        assert_eq!(ep.stats().tlps_delivered, 1);
        ep.clear_outage();
        let t = ep.transmit(SimTime::from_us(10), 256).unwrap();
        assert_eq!(t.attempts, 1);
    }

    #[test]
    fn error_probability_is_monotone_in_size() {
        let m = BitErrorModel::new(1e-7);
        let p64 = m.tlp_error_probability(64);
        let p4k = m.tlp_error_probability(4096);
        assert!(p64 < p4k);
        assert!(p4k < 1.0);
        assert!((0.0..1.0).contains(&p64));
        assert_eq!(BitErrorModel::new(1.0).tlp_error_probability(1), 1.0);
    }

    #[test]
    fn stats_conserve_bytes() {
        let mut ep = endpoint(1e-5);
        for i in 0..100u64 {
            ep.transmit(SimTime::from_us(i), 1024).unwrap();
        }
        let s = ep.stats();
        assert_eq!(s.first_transmission_bytes, 100 * 1024);
        assert_eq!(s.transmissions, s.tlps_sent + s.replayed_bytes / 1024);
    }
}
