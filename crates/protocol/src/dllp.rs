//! PCIe Data Link Layer Packets (DLLPs): the 8-byte control messages
//! that carry ACK/NAK sequence updates and flow-control credit updates.
//! FinePack leaves this layer untouched (§IV-A) — one ACK and one
//! UpdateFC cover a whole aggregated transaction just as they would a
//! single large memory write, which is where part of its link-efficiency
//! win comes from.

use crate::{ProtocolError, Result};

/// Total DLLP size on the wire: 2B framing + 4B body + 2B CRC-16.
pub const DLLP_WIRE_BYTES: u32 = 8;

/// The DLLP kinds this model implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dllp {
    /// Acknowledges all TLPs up to and including `seq`.
    Ack {
        /// 12-bit TLP sequence number.
        seq: u16,
    },
    /// Requests retransmission from `seq` onward.
    Nak {
        /// 12-bit TLP sequence number.
        seq: u16,
    },
    /// Posted-credit update: header and data credits freed by the
    /// receiver (the companion of [`crate::CreditAccount`]).
    UpdateFcPosted {
        /// 8-bit header-credit count.
        header_credits: u8,
        /// 12-bit data-credit count (16B units).
        data_credits: u16,
    },
}

/// CRC-16 (CCITT polynomial 0x1021), as PCIe uses for DLLPs.
fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for b in bytes {
        crc ^= u16::from(*b) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

impl Dllp {
    /// Encodes to the 8 wire bytes (framing, 4-byte body, CRC-16).
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its wire width (12-bit sequence numbers
    /// and data credits).
    pub fn encode(&self) -> [u8; DLLP_WIRE_BYTES as usize] {
        let body: [u8; 4] = match self {
            Dllp::Ack { seq } => {
                assert!(*seq < 1 << 12, "sequence number is 12 bits");
                [0x00, 0, (seq >> 8) as u8, (seq & 0xFF) as u8]
            }
            Dllp::Nak { seq } => {
                assert!(*seq < 1 << 12, "sequence number is 12 bits");
                [0x10, 0, (seq >> 8) as u8, (seq & 0xFF) as u8]
            }
            Dllp::UpdateFcPosted {
                header_credits,
                data_credits,
            } => {
                assert!(*data_credits < 1 << 12, "data credits are 12 bits");
                [
                    0x40,
                    *header_credits,
                    (data_credits >> 8) as u8,
                    (data_credits & 0xFF) as u8,
                ]
            }
        };
        let crc = crc16(&body);
        let mut out = [0u8; 8];
        out[0] = 0x5A; // SDP framing token
        out[1] = 0xA5;
        out[2..6].copy_from_slice(&body);
        out[6..8].copy_from_slice(&crc.to_be_bytes());
        out
    }

    /// Decodes 8 wire bytes, verifying framing and CRC.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Truncated`] for short buffers and
    /// [`ProtocolError::InvalidField`] for bad framing, CRC mismatch, or
    /// unknown DLLP types.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < DLLP_WIRE_BYTES as usize {
            return Err(ProtocolError::Truncated {
                needed: DLLP_WIRE_BYTES as usize,
                got: bytes.len(),
            });
        }
        if bytes[0] != 0x5A || bytes[1] != 0xA5 {
            return Err(ProtocolError::InvalidField("DLLP framing"));
        }
        let body = &bytes[2..6];
        let crc = u16::from_be_bytes([bytes[6], bytes[7]]);
        if crc != crc16(body) {
            return Err(ProtocolError::InvalidField("DLLP CRC"));
        }
        let seq = (u16::from(body[2]) << 8 | u16::from(body[3])) & 0xFFF;
        match body[0] {
            0x00 => Ok(Dllp::Ack { seq }),
            0x10 => Ok(Dllp::Nak { seq }),
            0x40 => Ok(Dllp::UpdateFcPosted {
                header_credits: body[1],
                data_credits: seq,
            }),
            _ => Err(ProtocolError::InvalidField("DLLP type")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for d in [
            Dllp::Ack { seq: 0 },
            Dllp::Ack { seq: 0xFFF },
            Dllp::Nak { seq: 77 },
            Dllp::UpdateFcPosted {
                header_credits: 64,
                data_credits: 512,
            },
        ] {
            let wire = d.encode();
            assert_eq!(Dllp::decode(&wire).unwrap(), d);
        }
    }

    #[test]
    fn crc_detects_corruption() {
        let mut wire = Dllp::Ack { seq: 5 }.encode();
        wire[4] ^= 0x01;
        assert_eq!(
            Dllp::decode(&wire),
            Err(ProtocolError::InvalidField("DLLP CRC"))
        );
    }

    #[test]
    fn framing_checked() {
        let mut wire = Dllp::Ack { seq: 5 }.encode();
        wire[0] = 0;
        assert!(Dllp::decode(&wire).is_err());
    }

    #[test]
    fn truncation_is_an_error() {
        let wire = Dllp::Ack { seq: 5 }.encode();
        assert!(matches!(
            Dllp::decode(&wire[..5]),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    #[test]
    fn ack_amortization_favors_aggregation() {
        // One ACK covers one TLP either way: 42 raw stores cost 42 DLLPs
        // of ACK traffic on the return path, one FinePack packet costs 1.
        let per_ack = u64::from(DLLP_WIRE_BYTES);
        assert_eq!(42 * per_ack, 336);
        assert_eq!(per_ack, 8);
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn oversized_seq_panics() {
        let _ = Dllp::Ack { seq: 1 << 12 }.encode();
    }

    #[test]
    fn update_fc_roundtrips_at_header_credit_boundaries() {
        // The header-credit field is a full 8 bits: both rails must
        // survive the wire unchanged.
        for header_credits in [0u8, 1, 0x7F, 0xFF] {
            let d = Dllp::UpdateFcPosted {
                header_credits,
                data_credits: 256,
            };
            assert_eq!(Dllp::decode(&d.encode()).unwrap(), d);
        }
    }

    #[test]
    fn update_fc_roundtrips_at_data_credit_boundaries() {
        // Data credits are 12 bits packed across two body bytes; the
        // byte-boundary values 0xFF/0x100 and the 12-bit rail 0xFFF are
        // the cases a shift bug would corrupt.
        for data_credits in [0u16, 1, 0xFF, 0x100, 0x7FF, 0x800, 0xFFF] {
            let d = Dllp::UpdateFcPosted {
                header_credits: 64,
                data_credits,
            };
            assert_eq!(Dllp::decode(&d.encode()).unwrap(), d);
        }
    }

    #[test]
    #[should_panic(expected = "data credits are 12 bits")]
    fn oversized_data_credits_panic() {
        let _ = Dllp::UpdateFcPosted {
            header_credits: 0,
            data_credits: 1 << 12,
        }
        .encode();
    }
}
