//! # protocol
//!
//! Interconnect wire-protocol models for the FinePack reproduction:
//! byte-accurate PCIe TLP headers and framing overhead ([`TlpHeader`],
//! [`FramingModel`]), the NVLink flit model ([`NvlinkModel`]), and the
//! goodput-vs-size curves behind the paper's Figure 2
//! ([`goodput_curve`]).
//!
//! The FinePack *inner* (sub-transaction) format lives in the `finepack`
//! crate, which embeds its payload inside the [`TlpType::FinePack`] outer
//! transaction defined here.
//!
//! # Examples
//!
//! ```
//! use protocol::{FramingModel, PcieGen};
//!
//! let fm = FramingModel::pcie_gen4();
//! // Why FinePack exists: an 8B P2P store wastes 3/4 of the wire.
//! assert!(fm.goodput(8).unwrap() < 0.3);
//! // while the link itself is fast:
//! assert_eq!(PcieGen::Gen4.bandwidth().as_gbps(), 32.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod credits;
mod dllp;
mod goodput;
mod nvlink;
mod pcie;
mod replay;

use std::fmt;

pub use credits::{CreditAccount, CreditTimeline, CreditTotals, PD_UNIT_BYTES};
pub use dllp::{Dllp, DLLP_WIRE_BYTES};
pub use goodput::{fig2_sizes, goodput_curve, pcie_efficiency, GoodputPoint};
pub use nvlink::{NvlinkModel, FLIT_BYTES};
pub use pcie::{FramingModel, PcieGen, TlpHeader, TlpType, MAX_PAYLOAD_BYTES, TLP_HEADER_BYTES};
pub use replay::{
    BitErrorModel, DataLinkEndpoint, LinkTransfer, ReplayAction, ReplayConfig, ReplayError,
    ReplayStats, SEQ_MODULO,
};

/// Errors produced when decoding wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The buffer ended before a complete field could be read.
    Truncated {
        /// Bytes required to continue decoding.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A TLP type encoding this model does not implement.
    UnknownTlpType(u8),
    /// A field held a value that violates the format's invariants.
    InvalidField(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            ProtocolError::UnknownTlpType(t) => write!(f, "unknown TLP type encoding {t:#07b}"),
            ProtocolError::InvalidField(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Convenience alias for protocol results.
pub type Result<T> = std::result::Result<T, ProtocolError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ProtocolError::Truncated { needed: 16, got: 3 };
        assert_eq!(e.to_string(), "truncated packet: needed 16 bytes, got 3");
        let e = ProtocolError::UnknownTlpType(0b11111);
        assert!(e.to_string().contains("unknown TLP type"));
        let e = ProtocolError::InvalidField("length");
        assert_eq!(e.to_string(), "invalid field: length");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
