//! PCIe transaction-layer and link-layer modeling.
//!
//! This module provides the pieces of PCIe that matter for FinePack:
//!
//! - [`TlpHeader`]: the 4-DW memory-write TLP header of Table I, with
//!   byte-accurate encode/decode.
//! - [`FramingModel`]: the per-TLP physical/data-link overhead (STP token,
//!   LCRC, optional ECRC, amortized DLLP tax) that drives the goodput
//!   curves of Fig 2.
//! - [`PcieGen`]: per-generation x16 bandwidths (32 GB/s for 4.0 up to
//!   128 GB/s for 6.0, matching Section V).

use std::fmt;

use sim_engine::Bandwidth;

use crate::{ProtocolError, Result};

/// PCIe maximum TLP payload size used throughout the paper (bytes).
pub const MAX_PAYLOAD_BYTES: u32 = 4096;

/// Size of a 4-DW (64-bit-address) TLP header in bytes.
pub const TLP_HEADER_BYTES: u32 = 16;

/// A PCIe generation, fixing the x16 per-direction bandwidth.
///
/// # Examples
///
/// ```
/// use protocol::PcieGen;
///
/// assert_eq!(PcieGen::Gen4.bandwidth().as_gbps(), 32.0);
/// assert_eq!(PcieGen::Gen6.bandwidth().as_gbps(), 128.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PcieGen {
    /// PCIe 4.0 x16: 32 GB/s per direction.
    Gen4,
    /// PCIe 5.0 x16: 64 GB/s per direction.
    Gen5,
    /// PCIe 6.0 x16: 128 GB/s per direction.
    Gen6,
}

impl PcieGen {
    /// All generations the paper sweeps in Fig 13, ascending.
    pub const ALL: [PcieGen; 3] = [PcieGen::Gen4, PcieGen::Gen5, PcieGen::Gen6];

    /// Per-direction x16 link bandwidth.
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            PcieGen::Gen4 => Bandwidth::from_gbps(32.0),
            PcieGen::Gen5 => Bandwidth::from_gbps(64.0),
            PcieGen::Gen6 => Bandwidth::from_gbps(128.0),
        }
    }
}

impl fmt::Display for PcieGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcieGen::Gen4 => write!(f, "PCIe4.0"),
            PcieGen::Gen5 => write!(f, "PCIe5.0"),
            PcieGen::Gen6 => write!(f, "PCIe6.0"),
        }
    }
}

/// Per-TLP link overhead model.
///
/// For PCIe Gen3+ framing, each TLP carries a 4-byte STP token (which
/// includes the sequence number) and a 4-byte LCRC, plus an optional
/// 4-byte ECRC digest, plus an amortized share of DLLP (ACK / flow
/// control) traffic. Together with the 16-byte 4-DW header this yields the
/// ~24-byte-per-packet overhead visible in Fig 2 and Fig 3.
///
/// # Examples
///
/// ```
/// use protocol::FramingModel;
///
/// let fm = FramingModel::pcie_gen4();
/// // A 32B store costs 32 payload + 16 header + 8 framing = 56B on the wire.
/// assert_eq!(fm.wire_bytes(32), 56);
/// assert_eq!(fm.per_tlp_overhead(), 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FramingModel {
    /// STP framing token bytes (includes the TLP sequence number on Gen3+).
    pub stp_bytes: u32,
    /// Link CRC bytes.
    pub lcrc_bytes: u32,
    /// End-to-end CRC digest bytes (0 when ECRC is disabled).
    pub ecrc_bytes: u32,
    /// Amortized DLLP (ACK/FC) bytes charged per TLP.
    pub dllp_tax_bytes: u32,
    /// Transaction-layer header bytes (16 for a 4-DW 64-bit-address TLP).
    pub header_bytes: u32,
    /// Maximum TLP payload in bytes.
    pub max_payload: u32,
    /// Payload padding granularity on the wire: 4 (DW) for PCIe/CXL,
    /// 16 (flit) for NVLink-style links.
    pub pad_granularity: u32,
}

impl FramingModel {
    /// The framing model used throughout the evaluation: Gen3+ encoding,
    /// 4-DW headers, ECRC off, DLLPs folded into link efficiency.
    pub fn pcie_gen4() -> Self {
        FramingModel {
            stp_bytes: 4,
            lcrc_bytes: 4,
            ecrc_bytes: 0,
            dllp_tax_bytes: 0,
            header_bytes: TLP_HEADER_BYTES,
            max_payload: MAX_PAYLOAD_BYTES,
            pad_granularity: 4,
        }
    }

    /// CXL.io framing (§IV-C: "CXL ... reuses and extends PCIe, and thus
    /// FinePack is directly applicable"): PCIe transaction layer carried
    /// in 68-byte flits, modeled as a small per-TLP flit-header tax on
    /// top of standard PCIe framing.
    pub fn cxl() -> Self {
        FramingModel {
            dllp_tax_bytes: 4,
            ..FramingModel::pcie_gen4()
        }
    }

    /// An NVLink-style framing for FinePack's outer transaction (§IV-C:
    /// NVLink "would likely require slightly different encodings"): one
    /// 16-byte header flit, payload padded to whole flits, no separate
    /// link-layer tokens (CRC is carried inside flits).
    pub fn nvlink_flit() -> Self {
        FramingModel {
            stp_bytes: 0,
            lcrc_bytes: 0,
            ecrc_bytes: 0,
            dllp_tax_bytes: 0,
            header_bytes: 16,
            max_payload: MAX_PAYLOAD_BYTES,
            pad_granularity: 16,
        }
    }

    /// Total non-payload bytes charged per TLP.
    pub fn per_tlp_overhead(&self) -> u32 {
        self.stp_bytes + self.lcrc_bytes + self.ecrc_bytes + self.dllp_tax_bytes + self.header_bytes
    }

    /// Link-layer-only overhead (everything except the TLP header): what a
    /// packet pays even if its transaction-layer header were free.
    pub fn link_layer_overhead(&self) -> u32 {
        self.stp_bytes + self.lcrc_bytes + self.ecrc_bytes + self.dllp_tax_bytes
    }

    /// Total wire bytes for a single TLP carrying `payload` bytes.
    ///
    /// Payloads are padded to the link's wire granularity — DWs (4B) on
    /// PCIe/CXL, flits (16B) on NVLink — with byte enables masking the
    /// padding.
    pub fn wire_bytes(&self, payload: u32) -> u64 {
        let padded = payload.div_ceil(self.pad_granularity) * self.pad_granularity;
        u64::from(self.per_tlp_overhead()) + u64::from(padded)
    }

    /// Total wire bytes to move `total_payload` bytes using maximum-sized
    /// TLPs (the DMA/memcpy path).
    pub fn bulk_wire_bytes(&self, total_payload: u64) -> u64 {
        if total_payload == 0 {
            return 0;
        }
        let full = total_payload / u64::from(self.max_payload);
        let rem = (total_payload % u64::from(self.max_payload)) as u32;
        let mut bytes = full * self.wire_bytes(self.max_payload);
        if rem > 0 {
            bytes += self.wire_bytes(rem);
        }
        bytes
    }

    /// Goodput (payload / wire bytes) of a TLP with `payload` bytes, or
    /// `None` for an empty packet, whose goodput is undefined.
    ///
    /// Non-panicking by design: a zero-payload TLP reaching a stats
    /// path mid-sweep surfaces as a `None` the caller can report,
    /// rather than aborting the whole sweep.
    pub fn goodput(&self, payload: u32) -> Option<f64> {
        if payload == 0 {
            return None;
        }
        Some(f64::from(payload) / self.wire_bytes(payload) as f64)
    }
}

/// TLP type field values (5 bits), including the repurposed FinePack
/// encoding described in Section IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlpType {
    /// Ordinary posted memory write (MWr).
    MemWrite,
    /// Memory read request (MRd).
    MemRead,
    /// FinePack aggregated-store transaction (repurposed reserved encoding).
    FinePack,
}

impl TlpType {
    /// The 5-bit wire encoding of this type.
    pub fn encoding(self) -> u8 {
        match self {
            TlpType::MemWrite => 0b0_0000,
            TlpType::MemRead => 0b0_0001,
            // A reserved encoding repurposed for FinePack, per §IV-A.
            TlpType::FinePack => 0b1_0110,
        }
    }

    /// Decodes a 5-bit type field.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownTlpType`] for encodings this model
    /// does not implement.
    pub fn from_encoding(bits: u8) -> Result<Self> {
        match bits {
            0b0_0000 => Ok(TlpType::MemWrite),
            0b0_0001 => Ok(TlpType::MemRead),
            0b1_0110 => Ok(TlpType::FinePack),
            other => Err(ProtocolError::UnknownTlpType(other)),
        }
    }
}

/// The 4-DW PCIe TLP header of Table I.
///
/// All fields of the paper's Table I are represented. `length_bytes` is
/// stored in bytes; on the wire it is carried as the standard 10-bit DW
/// count (with FinePack reading it as the total sub-packet payload
/// length, DW-granular like normal PCIe).
///
/// # Examples
///
/// ```
/// use protocol::{TlpHeader, TlpType};
///
/// let hdr = TlpHeader::mem_write(0x42, 0xdead_bee0, 128);
/// let bytes = hdr.encode();
/// let back = TlpHeader::decode(&bytes)?;
/// assert_eq!(back, hdr);
/// assert_eq!(back.tlp_type, TlpType::MemWrite);
/// # Ok::<(), protocol::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlpHeader {
    /// Transaction type (Fmt is implied: 4-DW with data).
    pub tlp_type: TlpType,
    /// Traffic class (3 bits).
    pub traffic_class: u8,
    /// TLP digest present (TD bit).
    pub has_digest: bool,
    /// Error/poisoned (EP bit).
    pub poisoned: bool,
    /// Attributes (2 bits).
    pub attributes: u8,
    /// Payload length in bytes (DW-granular on the wire, max 4096).
    pub length_bytes: u32,
    /// Requester ID (16 bits).
    pub requester_id: u16,
    /// Tag (8 bits).
    pub tag: u8,
    /// Last DW byte enables (4 bits).
    pub last_be: u8,
    /// First DW byte enables (4 bits). Zero for FinePack (§IV-A Table I).
    pub first_be: u8,
    /// 64-bit address; the low 2 bits must be zero (62-bit field).
    pub address: u64,
}

impl TlpHeader {
    /// Builds an ordinary posted memory-write header.
    ///
    /// # Panics
    ///
    /// Panics if `length_bytes` is 0 or exceeds [`MAX_PAYLOAD_BYTES`], or
    /// if `address` is not DW-aligned.
    pub fn mem_write(requester_id: u16, address: u64, length_bytes: u32) -> Self {
        assert!(
            length_bytes > 0 && length_bytes <= MAX_PAYLOAD_BYTES,
            "invalid TLP length {length_bytes}"
        );
        assert_eq!(address & 0x3, 0, "TLP address must be DW-aligned");
        TlpHeader {
            tlp_type: TlpType::MemWrite,
            traffic_class: 0,
            has_digest: false,
            poisoned: false,
            attributes: 0,
            length_bytes,
            requester_id,
            tag: 0,
            last_be: 0xF,
            first_be: 0xF,
            address,
        }
    }

    /// Builds the outer header of a FinePack transaction: the address is
    /// the payload base address, first-BE is zero (unused), and the length
    /// covers the packed sub-transactions.
    ///
    /// # Panics
    ///
    /// Panics as for [`TlpHeader::mem_write`].
    pub fn finepack(requester_id: u16, base_address: u64, payload_bytes: u32) -> Self {
        assert!(
            payload_bytes > 0 && payload_bytes <= MAX_PAYLOAD_BYTES,
            "invalid FinePack payload {payload_bytes}"
        );
        assert_eq!(base_address & 0x3, 0, "base address must be DW-aligned");
        TlpHeader {
            tlp_type: TlpType::FinePack,
            traffic_class: 0,
            has_digest: false,
            poisoned: false,
            attributes: 0,
            length_bytes: payload_bytes,
            requester_id,
            tag: 0,
            last_be: 0xF,
            first_be: 0, // not needed by FinePack (Table I)
            address: base_address,
        }
    }

    /// Length rounded up to whole DWs, as carried in the 10-bit field.
    pub fn length_dw(&self) -> u32 {
        self.length_bytes.div_ceil(4)
    }

    /// Encodes into the 16 header bytes (big-endian DWs, as in the spec).
    pub fn encode(&self) -> [u8; TLP_HEADER_BYTES as usize] {
        let fmt: u32 = 0b11; // 4-DW header with data
        let len_dw = self.length_dw() & 0x3FF;
        // A length of exactly 1024 DW is encoded as 0 per the PCIe spec.
        let len_field = if self.length_dw() == 1024 { 0 } else { len_dw };
        let dw0: u32 = (fmt << 29)
            | ((u32::from(self.tlp_type.encoding()) & 0x1F) << 24)
            | ((u32::from(self.traffic_class) & 0x7) << 20)
            | ((u32::from(self.has_digest) & 0x1) << 15)
            | ((u32::from(self.poisoned) & 0x1) << 14)
            | ((u32::from(self.attributes) & 0x3) << 12)
            | len_field;
        let dw1: u32 = (u32::from(self.requester_id) << 16)
            | (u32::from(self.tag) << 8)
            | ((u32::from(self.last_be) & 0xF) << 4)
            | (u32::from(self.first_be) & 0xF);
        let dw2: u32 = (self.address >> 32) as u32;
        let dw3: u32 = (self.address & 0xFFFF_FFFC) as u32;
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&dw0.to_be_bytes());
        out[4..8].copy_from_slice(&dw1.to_be_bytes());
        out[8..12].copy_from_slice(&dw2.to_be_bytes());
        out[12..16].copy_from_slice(&dw3.to_be_bytes());
        out
    }

    /// Decodes a 16-byte header.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Truncated`] if fewer than 16 bytes are
    /// given, or [`ProtocolError::UnknownTlpType`] for unimplemented type
    /// encodings.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 16 {
            return Err(ProtocolError::Truncated {
                needed: 16,
                got: bytes.len(),
            });
        }
        let dw = |i: usize| -> u32 {
            u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]])
        };
        let dw0 = dw(0);
        let dw1 = dw(4);
        let dw2 = dw(8);
        let dw3 = dw(12);
        let tlp_type = TlpType::from_encoding(((dw0 >> 24) & 0x1F) as u8)?;
        let len_dw = dw0 & 0x3FF;
        let len_dw = if len_dw == 0 { 1024 } else { len_dw };
        Ok(TlpHeader {
            tlp_type,
            traffic_class: ((dw0 >> 20) & 0x7) as u8,
            has_digest: (dw0 >> 15) & 1 == 1,
            poisoned: (dw0 >> 14) & 1 == 1,
            attributes: ((dw0 >> 12) & 0x3) as u8,
            length_bytes: len_dw * 4,
            requester_id: (dw1 >> 16) as u16,
            tag: ((dw1 >> 8) & 0xFF) as u8,
            last_be: ((dw1 >> 4) & 0xF) as u8,
            first_be: (dw1 & 0xF) as u8,
            address: (u64::from(dw2) << 32) | u64::from(dw3 & 0xFFFF_FFFC),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_bandwidths_match_paper() {
        assert_eq!(PcieGen::Gen4.bandwidth().as_gbps(), 32.0);
        assert_eq!(PcieGen::Gen5.bandwidth().as_gbps(), 64.0);
        assert_eq!(PcieGen::Gen6.bandwidth().as_gbps(), 128.0);
    }

    #[test]
    fn overhead_is_24_bytes() {
        let fm = FramingModel::pcie_gen4();
        assert_eq!(fm.per_tlp_overhead(), 24);
        assert_eq!(fm.link_layer_overhead(), 8);
    }

    #[test]
    fn small_store_goodput_matches_fig2_shape() {
        let fm = FramingModel::pcie_gen4();
        // 32B transfers are roughly half as efficient as 128B (Fig 2 / §I).
        let g32 = fm.goodput(32).unwrap();
        let g128 = fm.goodput(128).unwrap();
        assert!(g32 < 0.62 && g32 > 0.5, "g32={g32}");
        assert!(g128 > 0.8, "g128={g128}");
        // 4B stores are dramatically worse.
        assert!(fm.goodput(4).unwrap() < 0.2);
        // Bulk approaches 1.
        assert!(fm.goodput(4096).unwrap() > 0.99);
        // An empty packet has no goodput — and no panic.
        assert_eq!(fm.goodput(0), None);
    }

    #[test]
    fn alternate_framings_are_consistent() {
        // CXL pays a small extra tax over PCIe; NVLink trades link-layer
        // tokens for flit padding.
        let pcie = FramingModel::pcie_gen4();
        let cxl = FramingModel::cxl();
        let nv = FramingModel::nvlink_flit();
        assert_eq!(cxl.per_tlp_overhead(), pcie.per_tlp_overhead() + 4);
        assert_eq!(nv.per_tlp_overhead(), 16);
        assert_eq!(nv.wire_bytes(17), 16 + 32); // padded to 2 flits
                                                // §IV-C: small-packet efficiency of PCIe and NVLink is similar.
        for size in [8u32, 16, 32] {
            let ratio = pcie.goodput(size).unwrap() / nv.goodput(size).unwrap();
            assert!((0.5..2.0).contains(&ratio), "size {size}: {ratio}");
        }
    }

    #[test]
    fn sub_dw_payloads_are_padded() {
        let fm = FramingModel::pcie_gen4();
        assert_eq!(fm.wire_bytes(1), fm.wire_bytes(4));
        assert_eq!(fm.wire_bytes(5), fm.wire_bytes(8));
    }

    #[test]
    fn bulk_wire_bytes_chunks_at_max_payload() {
        let fm = FramingModel::pcie_gen4();
        let one = fm.wire_bytes(4096);
        assert_eq!(fm.bulk_wire_bytes(8192), 2 * one);
        assert_eq!(fm.bulk_wire_bytes(0), 0);
        assert_eq!(fm.bulk_wire_bytes(4097), one + fm.wire_bytes(1));
    }

    #[test]
    fn header_roundtrip_memwrite() {
        let hdr = TlpHeader::mem_write(0x1234, 0x0000_7f00_dead_bee0, 256);
        let back = TlpHeader::decode(&hdr.encode()).unwrap();
        assert_eq!(back, hdr);
    }

    #[test]
    fn header_roundtrip_finepack() {
        let mut hdr = TlpHeader::finepack(7, 0x4000_0000, 4096);
        hdr.tag = 0xAB;
        hdr.traffic_class = 3;
        let back = TlpHeader::decode(&hdr.encode()).unwrap();
        assert_eq!(back, hdr);
        assert_eq!(back.length_dw(), 1024);
        assert_eq!(back.first_be, 0);
    }

    #[test]
    fn decode_truncated_errors() {
        let err = TlpHeader::decode(&[0u8; 8]).unwrap_err();
        assert!(matches!(err, ProtocolError::Truncated { .. }));
    }

    #[test]
    fn decode_unknown_type_errors() {
        let hdr = TlpHeader::mem_write(0, 0, 4);
        let mut bytes = hdr.encode();
        bytes[0] = (bytes[0] & 0xE0) | 0x1F; // type = all-ones (unassigned)
        assert!(matches!(
            TlpHeader::decode(&bytes),
            Err(ProtocolError::UnknownTlpType(_))
        ));
    }

    #[test]
    #[should_panic(expected = "DW-aligned")]
    fn unaligned_address_panics() {
        let _ = TlpHeader::mem_write(0, 0x3, 4);
    }

    #[test]
    #[should_panic(expected = "invalid TLP length")]
    fn oversized_payload_panics() {
        let _ = TlpHeader::mem_write(0, 0, MAX_PAYLOAD_BYTES + 4);
    }
}
