//! Goodput curves over transfer size — the model behind Figure 2.
//!
//! The paper measures peer-to-peer store goodput on real PCIe and NVLink
//! systems up to 128B and projects beyond. We have no hardware, so the
//! whole curve comes from the framing models, which are calibrated to the
//! public protocol specifications (see `DESIGN.md` §4).

use crate::nvlink::NvlinkModel;
use crate::pcie::FramingModel;

/// One point of a goodput curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodputPoint {
    /// Transfer (payload) size in bytes.
    pub size: u32,
    /// Useful fraction of wire bytes for PCIe.
    pub pcie: f64,
    /// Useful fraction of wire bytes for NVLink (flit-aligned case).
    pub nvlink: f64,
}

/// The transfer sizes plotted in Fig 2 (powers of two, 4B → 8KB).
pub fn fig2_sizes() -> Vec<u32> {
    (2..=13).map(|p| 1u32 << p).collect()
}

/// Computes the Fig 2 goodput series for both interconnects.
///
/// Sizes beyond each protocol's max payload are chunked into maximum-size
/// packets, matching how a DMA engine would move them ("projected"
/// region of the paper's figure).
///
/// # Examples
///
/// ```
/// use protocol::goodput_curve;
///
/// let curve = goodput_curve(&[32, 128, 4096]);
/// assert!(curve[0].pcie < curve[1].pcie);
/// assert!(curve[2].pcie > 0.99);
/// ```
pub fn goodput_curve(sizes: &[u32]) -> Vec<GoodputPoint> {
    let pcie = FramingModel::pcie_gen4();
    let nvlink = NvlinkModel::default();
    sizes
        .iter()
        .map(|&size| {
            let pcie_wire = pcie.bulk_wire_bytes(u64::from(size));
            let nv_wire = nvlink.bulk_wire_bytes(u64::from(size));
            GoodputPoint {
                size,
                pcie: f64::from(size) / pcie_wire as f64,
                nvlink: f64::from(size) / nv_wire as f64,
            }
        })
        .collect()
}

/// Fraction of peak bandwidth usable by stores of `size` bytes on PCIe —
/// i.e., "% of maximum theoretical throughput" from Fig 2's y-axis.
pub fn pcie_efficiency(size: u32) -> f64 {
    let fm = FramingModel::pcie_gen4();
    f64::from(size) / fm.bulk_wire_bytes(u64::from(size)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotonic_for_pcie_within_payload_limit() {
        let sizes = fig2_sizes();
        let curve = goodput_curve(&sizes);
        for pair in curve.windows(2) {
            if pair[1].size <= 4096 {
                assert!(
                    pair[1].pcie >= pair[0].pcie,
                    "pcie goodput not monotonic at {}",
                    pair[1].size
                );
            }
        }
    }

    #[test]
    fn fig2_headline_ratio_holds() {
        // §I: "32B transfers are roughly half as efficient as transfers of
        // 128B or larger" — relative to the bulk asymptote.
        let e32 = pcie_efficiency(32);
        let e4k = pcie_efficiency(4096);
        let ratio = e32 / e4k;
        assert!((0.45..0.68).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn fig2_sizes_span_4b_to_8kb() {
        let sizes = fig2_sizes();
        assert_eq!(*sizes.first().unwrap(), 4);
        assert_eq!(*sizes.last().unwrap(), 8192);
    }

    #[test]
    fn beyond_max_payload_saturates() {
        let a = pcie_efficiency(4096);
        let b = pcie_efficiency(8192);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn nvlink_and_pcie_comparable_at_small_sizes() {
        // §IV-C: "the small packet efficiency of PCIe and NVLink is
        // similar for sub-cache line stores".
        let curve = goodput_curve(&[8, 16, 32]);
        for p in curve {
            let ratio = p.pcie / p.nvlink;
            assert!((0.4..2.5).contains(&ratio), "size {}: {ratio}", p.size);
        }
    }
}
