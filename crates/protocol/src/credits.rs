//! PCIe credit-based flow control for posted writes.
//!
//! §IV-A: "A FinePack augmented PCIe implementation consumes buffers and
//! credits the same way a variable length memory write transaction is
//! currently specified on PCIe without change." This module models that
//! machinery: posted-header (PH) and posted-data (PD) credits, with data
//! credits in 16-byte units, consumed per TLP and released as the
//! receiver drains its buffer.

/// PCIe posted-data credit granularity, bytes.
pub const PD_UNIT_BYTES: u32 = 16;

/// A receiver's advertised posted-write credit pool, tracked by the
/// sender.
///
/// # Examples
///
/// ```
/// use protocol::CreditAccount;
///
/// // Enough buffer for one maximum-size posted write.
/// let mut fc = CreditAccount::new(8, 256);
/// assert!(fc.try_consume(4096));
/// assert!(!fc.try_consume(16)); // data credits exhausted
/// fc.release(4096);
/// assert!(fc.try_consume(16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditAccount {
    ph_max: u32,
    pd_max: u32,
    ph_used: u32,
    pd_used: u32,
}

impl CreditAccount {
    /// Creates a pool with `ph` header credits and `pd` 16-byte data
    /// credits.
    ///
    /// # Panics
    ///
    /// Panics if either pool is zero.
    pub fn new(ph: u32, pd: u32) -> Self {
        assert!(ph > 0 && pd > 0, "credit pools must be non-empty");
        CreditAccount {
            ph_max: ph,
            pd_max: pd,
            ph_used: 0,
            pd_used: 0,
        }
    }

    /// A pool sized for the paper's ingress buffer: 64 x 128B.
    pub fn paper_ingress() -> Self {
        CreditAccount::new(64, 64 * 128 / PD_UNIT_BYTES)
    }

    /// Credits one posted write of `payload` bytes consumes:
    /// `(header, data)` pairs.
    pub fn cost(payload: u32) -> (u32, u32) {
        (1, payload.div_ceil(PD_UNIT_BYTES))
    }

    /// True if a posted write of `payload` bytes can be sent now.
    pub fn can_send(&self, payload: u32) -> bool {
        let (ph, pd) = Self::cost(payload);
        self.ph_used + ph <= self.ph_max && self.pd_used + pd <= self.pd_max
    }

    /// Consumes credits for a posted write; returns false (and consumes
    /// nothing) if insufficient.
    pub fn try_consume(&mut self, payload: u32) -> bool {
        if !self.can_send(payload) {
            return false;
        }
        let (ph, pd) = Self::cost(payload);
        self.ph_used += ph;
        self.pd_used += pd;
        true
    }

    /// Releases the credits of a drained posted write.
    ///
    /// # Panics
    ///
    /// Panics if more credits are released than were consumed (a
    /// protocol violation).
    pub fn release(&mut self, payload: u32) {
        let (ph, pd) = Self::cost(payload);
        assert!(
            self.ph_used >= ph && self.pd_used >= pd,
            "credit release underflow"
        );
        self.ph_used -= ph;
        self.pd_used -= pd;
    }

    /// Outstanding header credits.
    pub fn headers_in_flight(&self) -> u32 {
        self.ph_used
    }

    /// Outstanding data credits (16B units).
    pub fn data_units_in_flight(&self) -> u32 {
        self.pd_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_matches_pcie_rules() {
        assert_eq!(CreditAccount::cost(1), (1, 1));
        assert_eq!(CreditAccount::cost(16), (1, 1));
        assert_eq!(CreditAccount::cost(17), (1, 2));
        assert_eq!(CreditAccount::cost(4096), (1, 256));
    }

    #[test]
    fn finepack_packet_costs_same_as_plain_write() {
        // The paper's compatibility claim: a FinePack transaction of N
        // payload bytes consumes exactly what a plain MWr of N bytes
        // consumes — nothing FinePack-specific.
        for payload in [64u32, 1000, 4096] {
            assert_eq!(CreditAccount::cost(payload), (1, payload.div_ceil(16)));
        }
    }

    #[test]
    fn exhaustion_and_release() {
        let mut fc = CreditAccount::new(2, 8);
        assert!(fc.try_consume(64)); // 1 PH, 4 PD
        assert!(fc.try_consume(64)); // 2 PH, 8 PD
        assert!(!fc.try_consume(1)); // PH exhausted
        fc.release(64);
        assert!(fc.try_consume(16));
        assert_eq!(fc.headers_in_flight(), 2);
        assert_eq!(fc.data_units_in_flight(), 5);
    }

    #[test]
    fn header_limited_small_writes() {
        // Many tiny writes exhaust headers long before data — the credit-
        // level version of the small-store inefficiency FinePack fixes.
        let mut fc = CreditAccount::paper_ingress();
        let mut sent = 0;
        while fc.try_consume(8) {
            sent += 1;
        }
        assert_eq!(sent, 64, "header credits bind first for 8B writes");
        assert!(fc.data_units_in_flight() < 512 / 4);
    }

    #[test]
    fn one_finepack_packet_replaces_many_headers() {
        // 42 coalesced 8B stores: raw P2P needs 42 header credits; one
        // FinePack packet needs 1 header + the same data volume.
        let mut raw = CreditAccount::paper_ingress();
        for _ in 0..42 {
            assert!(raw.try_consume(8));
        }
        assert_eq!(raw.headers_in_flight(), 42);
        let mut packed = CreditAccount::paper_ingress();
        assert!(packed.try_consume(42 * (5 + 8)));
        assert_eq!(packed.headers_in_flight(), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn over_release_panics() {
        let mut fc = CreditAccount::new(1, 1);
        fc.release(16);
    }
}
