//! PCIe credit-based flow control for posted writes.
//!
//! §IV-A: "A FinePack augmented PCIe implementation consumes buffers and
//! credits the same way a variable length memory write transaction is
//! currently specified on PCIe without change." This module models that
//! machinery: posted-header (PH) and posted-data (PD) credits, with data
//! credits in 16-byte units, consumed per TLP and released as the
//! receiver drains its buffer.

use std::collections::VecDeque;

use sim_engine::SimTime;

use crate::dllp::{Dllp, DLLP_WIRE_BYTES};

/// PCIe posted-data credit granularity, bytes.
pub const PD_UNIT_BYTES: u32 = 16;

/// A receiver's advertised posted-write credit pool, tracked by the
/// sender.
///
/// # Examples
///
/// ```
/// use protocol::CreditAccount;
///
/// // Enough buffer for one maximum-size posted write.
/// let mut fc = CreditAccount::new(8, 256);
/// assert!(fc.try_consume(4096));
/// assert!(!fc.try_consume(16)); // data credits exhausted
/// fc.release(4096);
/// assert!(fc.try_consume(16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditAccount {
    ph_max: u32,
    pd_max: u32,
    ph_used: u32,
    pd_used: u32,
}

impl CreditAccount {
    /// Creates a pool with `ph` header credits and `pd` 16-byte data
    /// credits.
    ///
    /// # Panics
    ///
    /// Panics if either pool is zero.
    pub fn new(ph: u32, pd: u32) -> Self {
        assert!(ph > 0 && pd > 0, "credit pools must be non-empty");
        CreditAccount {
            ph_max: ph,
            pd_max: pd,
            ph_used: 0,
            pd_used: 0,
        }
    }

    /// A pool sized for the paper's ingress buffer: 64 x 128B.
    pub fn paper_ingress() -> Self {
        CreditAccount::new(64, 64 * 128 / PD_UNIT_BYTES)
    }

    /// Credits one posted write of `payload` bytes consumes:
    /// `(header, data)` pairs.
    pub fn cost(payload: u32) -> (u32, u32) {
        (1, payload.div_ceil(PD_UNIT_BYTES))
    }

    /// True if a posted write of `payload` bytes can be sent now.
    pub fn can_send(&self, payload: u32) -> bool {
        let (ph, pd) = Self::cost(payload);
        self.ph_used + ph <= self.ph_max && self.pd_used + pd <= self.pd_max
    }

    /// Consumes credits for a posted write; returns false (and consumes
    /// nothing) if insufficient.
    pub fn try_consume(&mut self, payload: u32) -> bool {
        if !self.can_send(payload) {
            return false;
        }
        let (ph, pd) = Self::cost(payload);
        self.ph_used += ph;
        self.pd_used += pd;
        true
    }

    /// Releases the credits of a drained posted write.
    ///
    /// # Panics
    ///
    /// Panics if more credits are released than were consumed (a
    /// protocol violation).
    pub fn release(&mut self, payload: u32) {
        let (ph, pd) = Self::cost(payload);
        self.release_units(ph, pd);
    }

    /// Releases raw credit units, as carried by an `UpdateFC` DLLP.
    ///
    /// # Panics
    ///
    /// Panics if more credits are released than were consumed (a
    /// protocol violation).
    pub fn release_units(&mut self, ph: u32, pd: u32) {
        assert!(
            self.ph_used >= ph && self.pd_used >= pd,
            "credit release underflow"
        );
        self.ph_used -= ph;
        self.pd_used -= pd;
    }

    /// Outstanding header credits.
    pub fn headers_in_flight(&self) -> u32 {
        self.ph_used
    }

    /// Outstanding data credits (16B units).
    pub fn data_units_in_flight(&self) -> u32 {
        self.pd_used
    }
}

/// Cumulative credit-unit movement over a [`CreditTimeline`]'s
/// lifetime — the ledger a conservation auditor cross-checks: units
/// consumed must equal units returned plus units still in flight, and
/// consumed can never fall below returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CreditTotals {
    /// Posted-header credit units consumed by admitted TLPs.
    pub ph_consumed: u64,
    /// Posted-data credit units (16B each) consumed by admitted TLPs.
    pub pd_consumed: u64,
    /// Posted-header units returned by applied `UpdateFC` DLLPs.
    pub ph_returned: u64,
    /// Posted-data units returned by applied `UpdateFC` DLLPs.
    pub pd_returned: u64,
}

impl CreditTotals {
    /// Accumulates another ledger into this one (summing across links).
    pub fn merge(&mut self, other: &CreditTotals) {
        self.ph_consumed += other.ph_consumed;
        self.pd_consumed += other.pd_consumed;
        self.ph_returned += other.ph_returned;
        self.pd_returned += other.pd_returned;
    }

    /// `(header, data)` units in flight implied by the ledger.
    ///
    /// # Panics
    ///
    /// Panics if more units were returned than consumed — the
    /// conservation violation this ledger exists to expose.
    pub fn in_flight(&self) -> (u64, u64) {
        assert!(
            self.ph_consumed >= self.ph_returned && self.pd_consumed >= self.pd_returned,
            "credit ledger returned more units than it consumed: {self:?}"
        );
        (
            self.ph_consumed - self.ph_returned,
            self.pd_consumed - self.pd_returned,
        )
    }
}

/// Sender-side view of one link direction's posted-write flow control:
/// a [`CreditAccount`] plus the in-flight `UpdateFC` DLLPs that will
/// return credits at known future times.
///
/// Each completed TLP schedules an encoded [`Dllp::UpdateFcPosted`] for
/// arrival one credit-return latency after the receiver drained it; the
/// sender decodes and applies every update whose arrival time has
/// passed before checking admission.
///
/// # Examples
///
/// ```
/// use protocol::{CreditAccount, CreditTimeline};
/// use sim_engine::SimTime;
///
/// let mut tl = CreditTimeline::new(CreditAccount::new(1, 256), SimTime::from_ns(100));
/// let t0 = SimTime::ZERO;
/// assert_eq!(tl.admit(t0, 64), Ok(()));
/// // The single header credit is in flight: a second write must wait
/// // until the UpdateFC lands at drain + return latency.
/// tl.complete(64, SimTime::from_ns(50));
/// assert_eq!(tl.admit(t0, 64), Err(SimTime::from_ns(150)));
/// assert_eq!(tl.admit(SimTime::from_ns(150), 64), Ok(()));
/// ```
#[derive(Debug, Clone)]
pub struct CreditTimeline {
    account: CreditAccount,
    /// In-flight `UpdateFcPosted` credit returns keyed by arrival time,
    /// sorted. Stored post-roundtrip: each entry's counts were encoded
    /// into a wire [`Dllp`] and decoded back at [`CreditTimeline::
    /// complete`] time, so they carry exactly what the wire carries —
    /// without re-decoding on every admission probe.
    pending: VecDeque<(SimTime, u8, u16)>,
    return_latency: SimTime,
    updates_received: u64,
    blocked_attempts: u64,
    totals: CreditTotals,
}

impl CreditTimeline {
    /// Wraps `account` with a modeled `UpdateFC` round-trip latency.
    pub fn new(account: CreditAccount, return_latency: SimTime) -> Self {
        CreditTimeline {
            account,
            pending: VecDeque::new(),
            return_latency,
            updates_received: 0,
            blocked_attempts: 0,
            totals: CreditTotals::default(),
        }
    }

    /// Applies every pending `UpdateFC` that has arrived by `at`.
    fn apply_updates(&mut self, at: SimTime) {
        while let Some((when, ph, pd)) = self.pending.front() {
            if *when > at {
                break;
            }
            let (ph, pd) = (*ph, *pd);
            self.pending.pop_front();
            self.account.release_units(u32::from(ph), u32::from(pd));
            self.totals.ph_returned += u64::from(ph);
            self.totals.pd_returned += u64::from(pd);
            self.updates_received += 1;
        }
    }

    /// Earliest time at or after `at` when a posted write of `payload`
    /// bytes fits the pool, given the scheduled credit returns. Returns
    /// [`SimTime::MAX`] if the pool can never cover it (a config error —
    /// the pool is smaller than one TLP).
    pub fn earliest_admission(&mut self, at: SimTime, payload: u32) -> SimTime {
        self.apply_updates(at);
        if self.account.can_send(payload) {
            return at;
        }
        self.blocked_attempts += 1;
        let mut probe = self.account;
        for (when, ph, pd) in &self.pending {
            probe.release_units(u32::from(*ph), u32::from(*pd));
            if probe.can_send(payload) {
                return *when;
            }
        }
        SimTime::MAX
    }

    /// Consumes credits for a posted write at `at`, or reports the
    /// earliest retry time if the pool is exhausted.
    ///
    /// # Errors
    ///
    /// Returns the earliest admission time when credits are exhausted.
    pub fn admit(&mut self, at: SimTime, payload: u32) -> Result<(), SimTime> {
        let earliest = self.earliest_admission(at, payload);
        if earliest > at {
            return Err(earliest);
        }
        assert!(self.account.try_consume(payload), "admission was checked");
        let (ph, pd) = CreditAccount::cost(payload);
        self.totals.ph_consumed += u64::from(ph);
        self.totals.pd_consumed += u64::from(pd);
        Ok(())
    }

    /// Records that the receiver drained a posted write of `payload`
    /// bytes at `drained_at`: its credits travel back as an `UpdateFC`
    /// arriving one return latency later.
    pub fn complete(&mut self, payload: u32, drained_at: SimTime) {
        let (ph, pd) = CreditAccount::cost(payload);
        let ph = u8::try_from(ph).expect("one header per TLP");
        let pd = u16::try_from(pd).expect("12-bit data credits cover max payload");
        // The wire encoding is lossless only for in-range counts (ph
        // fits 8 bits, pd fits 12): enforce the field widths in every
        // build so release behavior can never silently diverge from
        // what `Dllp::encode` would accept on a real link.
        assert!(
            pd < 1 << 12,
            "data credits exceed the 12-bit UpdateFC wire field: {pd}"
        );
        // Debug builds additionally prove the encode/decode round trip.
        debug_assert_eq!(
            Dllp::decode(
                &Dllp::UpdateFcPosted {
                    header_credits: ph,
                    data_credits: pd,
                }
                .encode()
            )
            .expect("self-encoded UpdateFC decodes"),
            Dllp::UpdateFcPosted {
                header_credits: ph,
                data_credits: pd,
            },
            "UpdateFcPosted must round-trip losslessly through the wire"
        );
        let arrival = drained_at + self.return_latency;
        // Per-link drain times are non-decreasing, but hop floors can
        // reorder completions across calls: keep the queue sorted.
        let pos = self
            .pending
            .iter()
            .rposition(|(when, ..)| *when <= arrival)
            .map_or(0, |i| i + 1);
        self.pending.insert(pos, (arrival, ph, pd));
    }

    /// Applies every scheduled credit return immediately (barrier /
    /// iteration reset: the link quiesces and all buffers drain).
    ///
    /// Credits of admitted-but-uncompleted TLPs stay in flight — the
    /// end-of-run `consumed == returned + in_flight` balance is the
    /// auditor's law, not this method's postcondition.
    pub fn quiesce(&mut self) {
        self.apply_updates(SimTime::MAX);
    }

    /// The underlying sender-side credit account.
    pub fn account(&self) -> &CreditAccount {
        &self.account
    }

    /// The cumulative consumed/returned credit ledger. At any instant
    /// the account's in-flight units equal
    /// `totals().in_flight()` — the conservation law audited at the end
    /// of every run.
    pub fn totals(&self) -> &CreditTotals {
        &self.totals
    }

    /// `UpdateFC` DLLPs decoded and applied so far.
    pub fn updates_received(&self) -> u64 {
        self.updates_received
    }

    /// Wire bytes of `UpdateFC` DLLP traffic received so far. Kept out
    /// of the TLP traffic breakdown: DLLPs ride the opposite direction
    /// and would skew the paper's wire-byte accounting.
    pub fn dllp_bytes_received(&self) -> u64 {
        self.updates_received * u64::from(DLLP_WIRE_BYTES)
    }

    /// Admission attempts that found the pool exhausted.
    pub fn blocked_attempts(&self) -> u64 {
        self.blocked_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_matches_pcie_rules() {
        assert_eq!(CreditAccount::cost(1), (1, 1));
        assert_eq!(CreditAccount::cost(16), (1, 1));
        assert_eq!(CreditAccount::cost(17), (1, 2));
        assert_eq!(CreditAccount::cost(4096), (1, 256));
    }

    #[test]
    fn finepack_packet_costs_same_as_plain_write() {
        // The paper's compatibility claim: a FinePack transaction of N
        // payload bytes consumes exactly what a plain MWr of N bytes
        // consumes — nothing FinePack-specific.
        for payload in [64u32, 1000, 4096] {
            assert_eq!(CreditAccount::cost(payload), (1, payload.div_ceil(16)));
        }
    }

    #[test]
    fn exhaustion_and_release() {
        let mut fc = CreditAccount::new(2, 8);
        assert!(fc.try_consume(64)); // 1 PH, 4 PD
        assert!(fc.try_consume(64)); // 2 PH, 8 PD
        assert!(!fc.try_consume(1)); // PH exhausted
        fc.release(64);
        assert!(fc.try_consume(16));
        assert_eq!(fc.headers_in_flight(), 2);
        assert_eq!(fc.data_units_in_flight(), 5);
    }

    #[test]
    fn header_limited_small_writes() {
        // Many tiny writes exhaust headers long before data — the credit-
        // level version of the small-store inefficiency FinePack fixes.
        let mut fc = CreditAccount::paper_ingress();
        let mut sent = 0;
        while fc.try_consume(8) {
            sent += 1;
        }
        assert_eq!(sent, 64, "header credits bind first for 8B writes");
        assert!(fc.data_units_in_flight() < 512 / 4);
    }

    #[test]
    fn one_finepack_packet_replaces_many_headers() {
        // 42 coalesced 8B stores: raw P2P needs 42 header credits; one
        // FinePack packet needs 1 header + the same data volume.
        let mut raw = CreditAccount::paper_ingress();
        for _ in 0..42 {
            assert!(raw.try_consume(8));
        }
        assert_eq!(raw.headers_in_flight(), 42);
        let mut packed = CreditAccount::paper_ingress();
        assert!(packed.try_consume(42 * (5 + 8)));
        assert_eq!(packed.headers_in_flight(), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn over_release_panics() {
        let mut fc = CreditAccount::new(1, 1);
        fc.release(16);
    }

    #[test]
    fn timeline_blocks_until_update_fc_arrives() {
        let mut tl = CreditTimeline::new(CreditAccount::new(2, 8), SimTime::from_ns(10));
        let t0 = SimTime::ZERO;
        assert_eq!(tl.admit(t0, 64), Ok(())); // 1 PH, 4 PD
        assert_eq!(tl.admit(t0, 64), Ok(())); // 2 PH, 8 PD
        tl.complete(64, SimTime::from_ns(5)); // UpdateFC lands at 15ns
        tl.complete(64, SimTime::from_ns(20)); // UpdateFC lands at 30ns
                                               // A 128B write needs both completions' data credits back.
        assert_eq!(tl.admit(t0, 128), Err(SimTime::from_ns(30)));
        // A 64B write only needs the first.
        assert_eq!(tl.admit(SimTime::from_ns(2), 64), Err(SimTime::from_ns(15)));
        assert_eq!(tl.blocked_attempts(), 2);
        assert_eq!(tl.admit(SimTime::from_ns(15), 64), Ok(()));
        assert_eq!(tl.updates_received(), 1);
        assert_eq!(tl.dllp_bytes_received(), u64::from(DLLP_WIRE_BYTES));
    }

    #[test]
    fn totals_ledger_balances_at_every_step() {
        let mut tl = CreditTimeline::new(CreditAccount::new(4, 32), SimTime::from_ns(10));
        assert_eq!(*tl.totals(), CreditTotals::default());
        assert_eq!(tl.admit(SimTime::ZERO, 64), Ok(())); // 1 PH, 4 PD
        assert_eq!(tl.admit(SimTime::ZERO, 17), Ok(())); // 1 PH, 2 PD
        let t = *tl.totals();
        assert_eq!((t.ph_consumed, t.pd_consumed), (2, 6));
        assert_eq!((t.ph_returned, t.pd_returned), (0, 0));
        // The ledger's implied in-flight matches the live account.
        assert_eq!(
            t.in_flight(),
            (
                u64::from(tl.account().headers_in_flight()),
                u64::from(tl.account().data_units_in_flight())
            )
        );
        tl.complete(64, SimTime::from_ns(5)); // UpdateFC at 15ns
                                              // Blocked probes never move the ledger.
        let _ = tl.earliest_admission(SimTime::from_ns(6), 4096);
        assert_eq!(tl.totals().ph_returned, 0);
        tl.quiesce();
        let t = *tl.totals();
        assert_eq!((t.ph_returned, t.pd_returned), (1, 4));
        assert_eq!(t.in_flight(), (1, 2)); // the un-completed 17B write
                                           // Merging sums component-wise.
        let mut sum = CreditTotals::default();
        sum.merge(&t);
        sum.merge(&t);
        assert_eq!(sum.ph_consumed, 2 * t.ph_consumed);
    }

    #[test]
    #[should_panic(expected = "returned more units than it consumed")]
    fn inverted_ledger_is_a_loud_violation() {
        let t = CreditTotals {
            ph_consumed: 1,
            pd_consumed: 1,
            ph_returned: 2,
            pd_returned: 1,
        };
        let _ = t.in_flight();
    }

    #[test]
    fn timeline_quiesce_returns_all_credits() {
        let mut tl = CreditTimeline::new(CreditAccount::paper_ingress(), SimTime::from_ns(500));
        for i in 0..64 {
            assert_eq!(tl.admit(SimTime::ZERO, 8), Ok(()));
            tl.complete(8, SimTime::from_ns(i));
        }
        assert_eq!(tl.account().headers_in_flight(), 64);
        tl.quiesce();
        assert_eq!(tl.account().headers_in_flight(), 0);
        assert_eq!(tl.account().data_units_in_flight(), 0);
        assert_eq!(tl.updates_received(), 64);
    }

    #[test]
    fn timeline_pool_smaller_than_tlp_never_admits() {
        let mut tl = CreditTimeline::new(CreditAccount::new(1, 4), SimTime::ZERO);
        assert_eq!(tl.earliest_admission(SimTime::ZERO, 4096), SimTime::MAX);
    }
}
